/**
 * @file
 * Ablation study for the design choices DESIGN.md calls out:
 *  - warm start (phase + activity seeding from the baseline),
 *  - the optional vacuum X/Y-pairing constraint,
 * measured by the best cost reached and the time to reach it under
 * a fixed budget.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/table.h"

using namespace fermihedral;

int
main(int argc, char **argv)
{
    FlagSet flags("Ablation: warm start and vacuum constraint.");
    const auto *max_modes =
        flags.addInt("max-modes", 4, "largest mode count");
    const auto *timeout =
        flags.addDouble("timeout", 20.0, "budget per run (s)");
    bench::EngineFlags::add(flags);
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();

    bench::banner("descent ablations", "DESIGN.md");
    Table table({"Modes", "Warm start", "Vacuum", "Cost",
                 "Time-to-best (s)", "SAT calls", "Optimal?"});

    for (std::int64_t n = 3; n <= *max_modes; ++n) {
        for (const bool warm : {true, false}) {
            for (const bool vacuum : {true, false}) {
                core::DescentOptions options =
                    bench::descentOptions(bench::Config::FullSat,
                                          *timeout / 2.0, *timeout,
                                          vacuum);
                options.warmStart = warm;
                core::DescentSolver solver(
                    static_cast<std::size_t>(n), options);
                const auto result = solver.solve();
                const double time_to_best =
                    result.trajectory.empty()
                        ? result.solveSeconds
                        : result.trajectory.back().second;
                table.addRow(
                    {Table::num(n), warm ? "on" : "off",
                     vacuum ? "on" : "off",
                     Table::num(std::int64_t(result.cost)),
                     Table::num(time_to_best, 3),
                     Table::num(std::int64_t(result.satCalls)),
                     result.provedOptimal ? "yes" : "no"});
            }
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("Expected: warm start shortens time-to-best; "
                "removing the (optional) vacuum constraint never "
                "raises the optimal cost.\n");
    tflags.report();
    return 0;
}
