/**
 * @file
 * Shared helpers for the per-table / per-figure bench binaries.
 *
 * Every binary prints the same rows/series the paper reports; the
 * helpers here standardise the solve configurations the paper calls
 * Full SAT, SAT w/o Alg. and SAT + Anl., with CLI-adjustable
 * budgets so the full paper ranges can be reproduced when more time
 * is available.
 */

#ifndef FERMIHEDRAL_BENCH_BENCH_UTIL_H
#define FERMIHEDRAL_BENCH_BENCH_UTIL_H

#include <cstdio>

#include "api/compiler.h"
#include "common/flags.h"
#include "common/telemetry_flags.h"
#include "core/annealing.h"
#include "core/descent_solver.h"
#include "encodings/linear.h"
#include "fermion/models.h"
#include "hw/topology_flags.h"

namespace fermihedral::bench {

/**
 * The shared SAT-engine flags: every descent-running binary
 * registers the same portfolio/preprocessing knobs with one
 * EngineFlags::add(flags) call. Registration also arms an active
 * overlay that descentOptions() and compilationRequest() apply, so
 * the knobs reach every descent in the binary without threading
 * them through each call site.
 */
struct EngineFlags
{
    const std::int64_t *threads = nullptr;
    const std::int64_t *instances = nullptr;
    const bool *racing = nullptr;
    const bool *preprocess = nullptr;
    const bool *carry = nullptr;
    const bool *inprocess = nullptr;
    const double *deadlineSeconds = nullptr;
    hw::TopologyFlags topology;

    static EngineFlags
    add(FlagSet &flags)
    {
        EngineFlags engine;
        engine.threads = flags.addInt(
            "threads", 1,
            "solver threads per SAT step (0 = hardware)");
        engine.instances = flags.addInt(
            "instances", 0,
            "portfolio instances (0 = one per thread)");
        engine.racing = flags.addBool(
            "racing", false,
            "first-finisher-wins arbitration with clause sharing "
            "(faster, but winner may vary run to run)");
        engine.preprocess = flags.addBool(
            "preprocess", true,
            "simplify the clause database before solving");
        engine.carry = flags.addBool(
            "carry", true,
            "keep learnt clauses across descent steps "
            "(=false clears them after every SAT call)");
        engine.inprocess = flags.addBool(
            "inprocess", true,
            "subsumption + vivification between descent steps");
        engine.deadlineSeconds = flags.addDouble(
            "deadline-seconds", 0.0,
            "wall-clock deadline per compilation (<= 0 = none); "
            "past it the pipeline degrades to its best-so-far "
            "encoding with status deadline-exceeded");
        engine.topology = hw::TopologyFlags::add(flags);
        storage() = engine;
        return engine;
    }

    void
    apply(core::DescentOptions &options) const
    {
        options.threads = static_cast<std::size_t>(
            *threads < 0 ? 0 : *threads);
        options.portfolioInstances = static_cast<std::size_t>(
            *instances < 0 ? 0 : *instances);
        options.deterministic = !*racing;
        options.preprocess = *preprocess;
        options.carryLearnts = *carry;
        options.inprocess = *inprocess;
    }

    void
    apply(api::CompilationRequest &request) const
    {
        request.threads = static_cast<std::size_t>(
            *threads < 0 ? 0 : *threads);
        request.portfolioInstances = static_cast<std::size_t>(
            *instances < 0 ? 0 : *instances);
        request.deterministic = !*racing;
        request.preprocess = *preprocess;
        request.carryLearnts = *carry;
        request.inprocess = *inprocess;
        // Deadlines are a facade/service-level contract; the raw
        // DescentOptions overload deliberately has no equivalent.
        request.deadlineSeconds = *deadlineSeconds;
        // A --topology/--topology-file flag makes every request in
        // the binary hardware-aware: an Auto objective resolves to
        // routed-cost and costs become routed estimates.
        if (auto resolved = topology.resolve())
            request.topology = *std::move(resolved);
    }

    /** The overlay armed by add(), if any (one per binary). */
    static const EngineFlags *
    active()
    {
        return storage().threads ? &storage() : nullptr;
    }

  private:
    static EngineFlags &
    storage()
    {
        static EngineFlags registered;
        return registered;
    }
};

/** Paper configuration names (Sec. 5.1). */
enum class Config
{
    FullSat,  // all constraints in SAT
    NoAlg,    // algebraic independence dropped (Sec. 4.1)
};

/**
 * The --progress observer: one stderr line per descent bound.
 * Diagnostics stay off stdout, which the benches reserve for the
 * tables and series they print.
 */
inline std::function<void(const core::DescentProgress &)>
progressPrinter()
{
    return [](const core::DescentProgress &p) {
        const char *status =
            p.status == sat::SolveStatus::Sat
                ? "sat"
                : p.status == sat::SolveStatus::Unsat ? "unsat"
                                                      : "unknown";
        std::fprintf(stderr,
                     "progress: bound=%zu best=%zu calls=%zu "
                     "conflicts=%llu t=%.2fs %s\n",
                     p.bound, p.bestCost, p.satCalls,
                     static_cast<unsigned long long>(p.conflicts),
                     p.elapsedSeconds, status);
    };
}

/** Attach the --progress observer when the flag asked for one. */
template <typename OptionsOrRequest>
inline void
applyProgressFlag(OptionsOrRequest &target)
{
    const auto *flags = telemetry::TelemetryFlags::active();
    if (flags && flags->progressRequested())
        target.progress = progressPrinter();
}

/** Descent options for one of the paper's configurations. */
inline core::DescentOptions
descentOptions(Config config, double step_timeout,
               double total_timeout, bool vacuum = true)
{
    core::DescentOptions options;
    options.algebraicIndependence = config == Config::FullSat;
    options.vacuumPreservation = vacuum;
    options.stepTimeoutSeconds = step_timeout;
    options.totalTimeoutSeconds = total_timeout;
    if (const EngineFlags *engine = EngineFlags::active())
        engine->apply(options);
    applyProgressFlag(options);
    return options;
}

/**
 * A facade request for one of the paper's configurations. The
 * pipeline the old per-binary glue duplicated (independent descent
 * -> Algorithm 2 annealing -> seeded dependent descent) now lives
 * behind the "sat"/"sat-noalg" strategies; attach a Hamiltonian to
 * run it, leave `hamiltonian` empty for the independent search.
 */
inline api::CompilationRequest
compilationRequest(Config config, double step_timeout,
                   double total_timeout, bool vacuum = true)
{
    api::CompilationRequest request;
    request.strategy =
        config == Config::FullSat ? "sat" : "sat-noalg";
    request.algebraicIndependence = config == Config::FullSat;
    request.vacuumPreservation = vacuum;
    request.stepTimeoutSeconds = step_timeout;
    request.totalTimeoutSeconds = total_timeout;
    if (const EngineFlags *engine = EngineFlags::active())
        engine->apply(request);
    applyProgressFlag(request);
    return request;
}

/** Least-squares fit y = a * log2(x) + b over positive samples. */
struct LogFit
{
    double a = 0.0;
    double b = 0.0;
};

inline LogFit
fitLog2(const std::vector<std::pair<double, double>> &points)
{
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (const auto &[x, y] : points) {
        const double lx = std::log2(x);
        sx += lx;
        sy += y;
        sxx += lx * lx;
        sxy += lx * y;
    }
    const double n = static_cast<double>(points.size());
    LogFit fit;
    const double denom = n * sxx - sx * sx;
    if (std::abs(denom) > 1e-12) {
        fit.a = (n * sxy - sx * sy) / denom;
        fit.b = (sy - fit.a * sx) / n;
    }
    return fit;
}

/** Print a standard bench banner. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("=== Fermihedral repro bench: %s (%s) ===\n", what,
                paper_ref);
}

} // namespace fermihedral::bench

#endif // FERMIHEDRAL_BENCH_BENCH_UTIL_H
