/**
 * @file
 * Daemon round-trip throughput: an in-process fermihedrald core
 * (EncodingServer on a unix socket in a temp directory) driven by
 * the blocking EncodingClient, comparing cold compiles against
 * warm cache hits and non-pipelined against pipelined traffic.
 * This measures the transport + service overhead the daemon adds
 * on top of the search itself, so it uses the closed-form
 * strategies (no SAT) by default.
 */

#include <cstdio>
#include <filesystem>
#include <thread>
#include <unistd.h>

#include "bench_util.h"
#include "common/flags.h"
#include "common/table.h"
#include "common/timer.h"
#include "net/client.h"
#include "net/server.h"

using namespace fermihedral;

namespace {

/** One measurement: `count` requests, optionally pipelined. */
double
drive(net::EncodingClient &client, const api::RequestSpec &spec,
      std::size_t count, bool pipelined)
{
    Timer timer;
    if (pipelined) {
        for (std::size_t i = 0; i < count; ++i)
            client.sendCompile(i + 1, spec);
        for (std::size_t i = 0; i < count; ++i) {
            const auto frame = client.readMessage();
            if (!frame)
                fatal("daemon closed mid-bench");
            net::EncodingClient::decodeReply(*frame);
        }
    } else {
        for (std::size_t i = 0; i < count; ++i)
            client.compile(i + 1, spec);
    }
    return timer.seconds();
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("Daemon transport overhead: requests/s through "
                  "an in-process EncodingServer.");
    const auto *requests = flags.addInt(
        "requests", 200, "requests per measurement");
    const auto *modes =
        flags.addInt("modes", 6, "mode count of the request spec");
    const auto *strategy = flags.addString(
        "strategy", "bravyi-kitaev",
        "strategy (closed-form by default: measures transport, "
        "not search)");
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();

    bench::banner("daemon round-trip throughput",
                  "serving-layer extension");

    const auto socket_dir =
        std::filesystem::temp_directory_path() /
        ("fermihedral-bench-" +
         std::to_string(static_cast<unsigned>(::getpid())));
    std::filesystem::create_directories(socket_dir);
    net::ServerOptions options;
    options.unixPath = (socket_dir / "daemon.sock").string();
    net::EncodingServer server(options);
    std::thread loop([&server] { server.run(); });

    api::RequestSpec spec;
    spec.problem = "modes:" + std::to_string(*modes);
    spec.strategy = *strategy;

    const auto count = static_cast<std::size_t>(*requests);
    Table table({"Scenario", "Requests", "Seconds", "Req/s"});
    const auto row = [&](const char *name, double seconds) {
        table.addRow({name,
                      Table::num(static_cast<std::int64_t>(count)),
                      Table::num(seconds, 3),
                      Table::num(double(count) / seconds, 0)});
    };

    {
        net::EncodingClient client =
            net::EncodingClient::overUnix(options.unixPath);
        row("cold+warm sync", drive(client, spec, count, false));
    }
    {
        net::EncodingClient client =
            net::EncodingClient::overUnix(options.unixPath);
        row("warm sync", drive(client, spec, count, false));
    }
    {
        net::EncodingClient client =
            net::EncodingClient::overUnix(options.unixPath);
        row("warm pipelined", drive(client, spec, count, true));
    }

    server.stop();
    loop.join();
    std::printf("%s", table.render().c_str());
    std::error_code ec;
    std::filesystem::remove_all(socket_dir, ec);
    tflags.report();
    return 0;
}
