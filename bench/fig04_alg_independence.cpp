/**
 * @file
 * Figure 4: probability that n of the A_k algebraic-dependence
 * events (Eq. 15) hold simultaneously across sampled optimal
 * encodings — the numerical evidence for dropping the algebraic
 * independence clauses (Sec. 4.1). The paper finds P ~ 1/4^n,
 * independent of the mode count.
 */

#include <bit>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"

using namespace fermihedral;

namespace {

/**
 * For one encoding, estimate E over random subsets of
 * C(c, n)/C(N, n), where c is the number of qubit indices k whose
 * A_k event holds for the subset — i.e.\ the probability that n
 * fixed indices all hold.
 */
std::vector<double>
aEventProbabilities(const enc::FermionEncoding &encoding,
                    std::size_t max_n, Rng &rng,
                    std::size_t samples)
{
    const std::size_t strings = encoding.majoranas.size();
    const std::size_t qubits = encoding.numQubits();
    std::vector<double> sums(max_n + 1, 0.0);
    std::size_t counted = 0;

    const bool exhaustive = strings <= 14;
    const std::uint64_t subset_count =
        exhaustive ? ((std::uint64_t{1} << strings) - 1) : samples;

    for (std::uint64_t i = 1; i <= subset_count; ++i) {
        const std::uint64_t mask =
            exhaustive
                ? i
                : (rng.next() &
                   ((std::uint64_t{1} << strings) - 1));
        if (mask == 0)
            continue;
        // Count indices k with product == identity at k: xor of
        // symplectic bits is zero at that qubit.
        std::uint64_t x = 0, z = 0;
        std::uint64_t remaining = mask;
        while (remaining) {
            const int s = std::countr_zero(remaining);
            remaining &= remaining - 1;
            x ^= encoding.majoranas[s].xMask();
            z ^= encoding.majoranas[s].zMask();
        }
        const std::uint64_t identity_at = ~(x | z);
        std::size_t c = 0;
        for (std::size_t q = 0; q < qubits; ++q)
            c += (identity_at >> q) & 1;

        // E[C(c, n)] / C(N, n) accumulated per n.
        for (std::size_t n = 1; n <= max_n && n <= qubits; ++n) {
            double c_choose = 1.0, q_choose = 1.0;
            for (std::size_t j = 0; j < n; ++j) {
                c_choose *= c >= j ? double(c - j) : 0.0;
                q_choose *= double(qubits - j);
                c_choose /= double(j + 1);
                q_choose /= double(j + 1);
            }
            sums[n] += c_choose / q_choose;
        }
        ++counted;
    }
    std::vector<double> result(max_n + 1, 0.0);
    for (std::size_t n = 1; n <= max_n; ++n)
        result[n] = counted ? sums[n] / double(counted) : 0.0;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("Figure 4: probability of simultaneous A_k "
                  "dependence events.");
    const auto *max_modes =
        flags.addInt("max-modes", 5, "largest mode count");
    const auto *encodings_per_mode = flags.addInt(
        "samples", 12, "optimal encodings sampled per mode count");
    const auto *timeout =
        flags.addDouble("timeout", 30.0, "SAT budget per mode (s)");
    bench::EngineFlags::add(flags);
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();

    bench::banner("A_k dependence-event probabilities", "Figure 4");
    const std::size_t max_n = 5;
    Table table({"Modes", "n=1", "n=2", "n=3", "n=4", "n=5"});
    Rng rng(41);

    for (std::int64_t modes = 2; modes <= *max_modes; ++modes) {
        const auto options = bench::descentOptions(
            bench::Config::FullSat, *timeout / 2.0, *timeout);
        core::DescentSolver solver(
            static_cast<std::size_t>(modes), options);
        solver.solve();
        auto sampled = solver.enumerateOptimal(
            static_cast<std::size_t>(*encodings_per_mode),
            *timeout);
        if (sampled.empty())
            continue;

        std::vector<double> mean(max_n + 1, 0.0);
        for (const auto &encoding : sampled) {
            const auto p = aEventProbabilities(encoding, max_n,
                                               rng, 4096);
            for (std::size_t n = 1; n <= max_n; ++n)
                mean[n] += p[n];
        }
        std::vector<std::string> row = {Table::num(modes)};
        for (std::size_t n = 1; n <= max_n; ++n) {
            if (n > static_cast<std::size_t>(modes)) {
                row.push_back("-");
            } else {
                row.push_back(Table::num(
                    mean[n] / double(sampled.size()), 4));
            }
        }
        table.addRow(row);
    }
    std::printf("%s", table.render().c_str());
    std::printf("expected flat lines at 1/4^n: 0.25, 0.0625, "
                "0.0156, 0.0039, 0.0010\n");
    tflags.report();
    return 0;
}
