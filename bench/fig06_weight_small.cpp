/**
 * @file
 * Figure 6: average Pauli weight per Majorana operator, small scale
 * (Full SAT vs Bravyi-Kitaev), plus the log2 regressions the paper
 * plots (BK ~ 0.73 log2 N + 0.94, optimal ~ 0.56 log2 N + 0.95).
 *
 * Defaults cover N = 1..5 in a couple of minutes; raise
 * --max-modes/--timeout to reproduce the paper's 1..8.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/table.h"

using namespace fermihedral;

int
main(int argc, char **argv)
{
    FlagSet flags("Figure 6: per-operator Pauli weight, Full SAT.");
    const auto *max_modes =
        flags.addInt("max-modes", 5, "largest mode count");
    const auto *timeout =
        flags.addDouble("timeout", 60.0, "budget per mode count (s)");
    bench::EngineFlags::add(flags);
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();

    bench::banner("per-operator Pauli weight, small scale",
                  "Figure 6");
    Table table({"Modes", "BK weight/op", "Full SAT weight/op",
                 "Reduction", "Proved optimal"});
    std::vector<std::pair<double, double>> bk_points, sat_points;

    for (std::int64_t n = 1; n <= *max_modes; ++n) {
        const auto bk = enc::bravyiKitaev(
            static_cast<std::size_t>(n));
        const auto options = bench::descentOptions(
            bench::Config::FullSat, *timeout / 2.0, *timeout);
        core::DescentSolver solver(static_cast<std::size_t>(n),
                                   options);
        const auto result = solver.solve();

        const double bk_per_op = bk.weightPerOperator();
        const double sat_per_op =
            static_cast<double>(result.cost) /
            static_cast<double>(2 * n);
        table.addRow({Table::num(n), Table::num(bk_per_op, 3),
                      Table::num(sat_per_op, 3),
                      Table::percent(1.0 - sat_per_op / bk_per_op),
                      result.provedOptimal ? "yes" : "no"});
        if (n >= 2) {
            bk_points.emplace_back(double(n), bk_per_op);
            sat_points.emplace_back(double(n), sat_per_op);
        }
    }
    std::printf("%s", table.render().c_str());

    const auto bk_fit = bench::fitLog2(bk_points);
    const auto sat_fit = bench::fitLog2(sat_points);
    std::printf("regression   BK: %.2f log2(N) + %.2f   (paper: "
                "0.73 log2(N) + 0.94)\n",
                bk_fit.a, bk_fit.b);
    std::printf("regression  SAT: %.2f log2(N) + %.2f   (paper: "
                "0.56 log2(N) + 0.95)\n",
                sat_fit.a, sat_fit.b);
    tflags.report();
    return 0;
}
