/**
 * @file
 * Figure 7: average Pauli weight per Majorana operator at larger
 * scale — SAT w/o algebraic independence (Sec. 4.1) vs
 * Bravyi-Kitaev, with the per-mode improvement percentage.
 *
 * The vacuum X/Y-pairing clauses are relaxed here (the paper marks
 * them optional and this experiment only scores weight), which lets
 * the solver warm-start from the ternary-tree encoding. Defaults
 * cover N = 9..13; raise --max-modes/--timeout for the paper's
 * 9..19.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/table.h"

using namespace fermihedral;

int
main(int argc, char **argv)
{
    FlagSet flags("Figure 7: per-operator weight, SAT w/o Alg.");
    const auto *min_modes =
        flags.addInt("min-modes", 9, "smallest mode count");
    const auto *max_modes =
        flags.addInt("max-modes", 13, "largest mode count");
    const auto *timeout =
        flags.addDouble("timeout", 45.0, "budget per mode count (s)");
    bench::EngineFlags::add(flags);
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();

    bench::banner("per-operator Pauli weight, larger scale",
                  "Figure 7");
    Table table({"Modes", "BK weight/op", "SAT w/o Alg. weight/op",
                 "Improvement", "SAT calls"});

    for (std::int64_t n = *min_modes; n <= *max_modes; ++n) {
        const auto bk = enc::bravyiKitaev(
            static_cast<std::size_t>(n));
        const auto options = bench::descentOptions(
            bench::Config::NoAlg, *timeout / 2.0, *timeout,
            /*vacuum=*/false);
        core::DescentSolver solver(static_cast<std::size_t>(n),
                                   options);
        const auto result = solver.solve();

        const double bk_per_op = bk.weightPerOperator();
        const double sat_per_op =
            static_cast<double>(result.cost) /
            static_cast<double>(2 * n);
        table.addRow(
            {Table::num(n), Table::num(bk_per_op, 3),
             Table::num(sat_per_op, 3),
             Table::percent(1.0 - sat_per_op / bk_per_op),
             Table::num(std::int64_t(result.satCalls))});
    }
    std::printf("%s", table.render().c_str());
    std::printf("Paper reports a 17.36%% mean reduction over "
                "N = 9..19 (larger budgets improve the match).\n");
    tflags.report();
    return 0;
}
