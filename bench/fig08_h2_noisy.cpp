/**
 * @file
 * Figure 8: noisy simulation of H2 time evolution from the energy
 * eigenstates E0..E3 under Jordan-Wigner, Bravyi-Kitaev and the
 * Full SAT encoding. For each two-qubit error rate the harness
 * reports the measured energy and its standard deviation; the
 * better encoding drifts less from the eigenvalue and has the
 * smaller sigma.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "circuit/pauli_compiler.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "sim/exact.h"
#include "sim/noise.h"

using namespace fermihedral;

int
main(int argc, char **argv)
{
    FlagSet flags("Figure 8: noisy H2 evolution from E0..E3.");
    const auto *shots =
        flags.addInt("shots", 300, "trajectories per setting "
                                   "(paper: 3000)");
    const auto *timeout =
        flags.addDouble("timeout", 45.0, "SAT budget (s)");
    const auto *max_state =
        flags.addInt("max-state", 3, "highest eigenstate index");
    const auto *threads_flag =
        flags.addInt("threads", 0, "shot-runner threads (0 = "
                                   "hardware concurrency)");
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();
    ThreadPool pool(
        ThreadPool::resolveThreadCount(*threads_flag));

    bench::banner("noisy H2 simulation", "Figure 8");
    const auto h2 = fermion::h2Sto3gIntegrals().toHamiltonian();

    // Every encoding flows through the one facade; the SAT entry
    // runs the paper's full pipeline behind the "sat" strategy.
    api::CompilationRequest request = bench::compilationRequest(
        bench::Config::FullSat, *timeout / 2.0, *timeout);
    request.hamiltonian = h2;

    struct Entry
    {
        std::string name;
        api::CompilationResult compiled;
        sim::EigenSystem eigen;
        circuit::Circuit circuit;
    };
    api::Compiler compiler;
    std::vector<Entry> entries;
    for (const auto &[name, strategy] :
         std::vector<std::pair<std::string, std::string>>{
             {"JW", "jordan-wigner"},
             {"BK", "bravyi-kitaev"},
             {"Full SAT", "sat"}}) {
        Entry entry;
        entry.name = name;
        request.strategy = strategy;
        entry.compiled = compiler.compile(request);
        entry.eigen =
            sim::eigendecompose(entry.compiled.qubitHamiltonian);
        entry.circuit = circuit::compileTrotter(
            entry.compiled.qubitHamiltonian, 1.0);
        entries.push_back(std::move(entry));
    }

    Table table({"State", "2q error", "Encoding", "E measured",
                 "sigma", "E exact", "shots/s"});
    Rng rng(808);
    const double errors[] = {1e-4, 1e-3, 1e-2};
    std::size_t total_shots = 0;
    double total_seconds = 0.0;
    for (std::int64_t level = 0; level <= *max_state; ++level) {
        for (const double error : errors) {
            for (const auto &entry : entries) {
                sim::NoiseModel noise;
                noise.singleQubitError = 1e-4;
                noise.twoQubitError = error;
                const auto initial = entry.eigen.state(
                    static_cast<std::size_t>(level));
                const auto stats = sim::measureEnergy(
                    entry.circuit, initial,
                    entry.compiled.qubitHamiltonian, noise,
                    static_cast<std::size_t>(*shots), rng,
                    pool);
                total_shots += stats.shots;
                total_seconds += stats.elapsedSeconds;
                // Avoid operator+(const char*, string&&): GCC 12's
                // -Wrestrict false positive (PR 105651) fires on it
                // at -O2 and above.
                std::string state_label = "E";
                state_label += std::to_string(level);
                table.addRow(
                    {std::move(state_label),
                     Table::num(error, 4), entry.name,
                     Table::num(stats.mean, 4),
                     Table::num(stats.standardDeviation, 4),
                     Table::num(entry.eigen.values[level], 4),
                     Table::num(stats.shots /
                                    stats.elapsedSeconds,
                                0)});
            }
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("throughput: %.0f shots/s over %zu shots "
                "(%zu threads)\n",
                total_shots / total_seconds, total_shots,
                pool.threadCount());
    std::printf("Full SAT should show the least drift from the "
                "exact eigenvalue and the smallest sigma.\n");
    tflags.report();
    return 0;
}
