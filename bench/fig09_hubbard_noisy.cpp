/**
 * @file
 * Figure 9: noisy simulation of the 3x1 and 2x2 Fermi-Hubbard
 * models (periodic boundaries) from the ground eigenstate E0, for
 * Jordan-Wigner, Bravyi-Kitaev and the SAT encoding.
 *
 * With one Trotter step and the default couplings (t = 1, U = 4)
 * the product formula itself shifts the energy, so the noise drift
 * is reported against the noiseless Trotterized energy of the same
 * circuit (the stationary reference for this experiment); E0 is
 * printed for context. Use --steps/--t/--u for a more faithful
 * evolution at the cost of deeper circuits.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "circuit/pauli_compiler.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "sim/exact.h"
#include "sim/noise.h"

using namespace fermihedral;

int
main(int argc, char **argv)
{
    FlagSet flags("Figure 9: noisy Fermi-Hubbard evolution from "
                  "E0.");
    const auto *shots =
        flags.addInt("shots", 150, "trajectories per setting "
                                   "(paper: 1000)");
    const auto *timeout =
        flags.addDouble("timeout", 45.0, "SAT budget per model (s)");
    const auto *hop = flags.addDouble("t", 1.0, "hopping");
    const auto *repulsion = flags.addDouble("u", 4.0, "on-site U");
    const auto *steps =
        flags.addInt("steps", 1, "Trotter steps");
    const auto *skip_2x2 = flags.addBool(
        "skip-2x2", false, "skip the 8-qubit model (faster)");
    const auto *threads_flag =
        flags.addInt("threads", 0, "shot-runner threads (0 = "
                                   "hardware concurrency)");
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();
    ThreadPool pool(
        ThreadPool::resolveThreadCount(*threads_flag));

    bench::banner("noisy Fermi-Hubbard simulation", "Figure 9");

    struct Model
    {
        std::string name;
        fermion::FermionHamiltonian hamiltonian;
        bench::Config config;
    };
    std::vector<Model> models;
    models.push_back({"3x1",
                      fermion::fermiHubbard1D(3, *hop, *repulsion),
                      bench::Config::FullSat});
    if (!*skip_2x2) {
        models.push_back({"2x2",
                          fermion::fermiHubbard2x2(*hop,
                                                   *repulsion),
                          bench::Config::NoAlg});
    }

    Table table({"Model", "2q error", "Encoding", "E measured",
                 "sigma", "E noiseless", "Drift", "E0 exact",
                 "shots/s"});
    Rng rng(909);
    std::size_t total_shots = 0;
    double total_seconds = 0.0;
    api::Compiler compiler;
    for (const auto &model : models) {
        const auto &h = model.hamiltonian;
        api::CompilationRequest request = bench::compilationRequest(
            model.config, *timeout / 2.0, *timeout);
        request.hamiltonian = h;
        const std::string sat_strategy = request.strategy;

        for (const auto &[name, strategy] :
             std::vector<std::pair<std::string, std::string>>{
                 {"JW", "jordan-wigner"},
                 {"BK", "bravyi-kitaev"},
                 {"Full SAT", sat_strategy}}) {
            request.strategy = strategy;
            const auto compiled = compiler.compile(request);
            const auto &qubit_h = compiled.qubitHamiltonian;
            const auto eigen = sim::eigendecompose(qubit_h);
            const auto initial = eigen.state(0);
            circuit::CompileOptions copts;
            copts.trotterSteps =
                static_cast<std::size_t>(*steps);
            const auto circuit =
                circuit::compileTrotter(qubit_h, 1.0, copts);

            sim::StateVector noiseless = initial;
            noiseless.applyCircuit(circuit);
            const double reference =
                noiseless.expectation(qubit_h);

            for (const double error : {1e-4, 1e-3, 1e-2}) {
                sim::NoiseModel noise;
                noise.singleQubitError = 1e-4;
                noise.twoQubitError = error;
                const auto stats = sim::measureEnergy(
                    circuit, initial, qubit_h, noise,
                    static_cast<std::size_t>(*shots), rng,
                    pool);
                total_shots += stats.shots;
                total_seconds += stats.elapsedSeconds;
                table.addRow(
                    {model.name, Table::num(error, 4), name,
                     Table::num(stats.mean, 4),
                     Table::num(stats.standardDeviation, 4),
                     Table::num(reference, 4),
                     Table::num(stats.mean - reference, 4),
                     Table::num(eigen.values[0], 4),
                     Table::num(stats.shots /
                                    stats.elapsedSeconds,
                                0)});
            }
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("throughput: %.0f shots/s over %zu shots "
                "(%zu threads)\n",
                total_shots / total_seconds, total_shots,
                pool.threadCount());
    std::printf("Full SAT should show the smallest |drift| growth "
                "with the error rate (paper Fig. 9).\n");
    tflags.report();
    return 0;
}
