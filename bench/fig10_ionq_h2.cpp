/**
 * @file
 * Figure 10: the real-system study. The paper ran the H2 ground
 * state evolution on the IonQ Aria-1 ion-trap machine; hardware
 * being unavailable here, the same compiled circuits run on the
 * noisy simulator configured with the device fidelities the paper
 * quotes (99.99% 1q, 98.91% 2q, 98.82% readout). Reported: the
 * measured-energy distribution per encoding.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "circuit/pauli_compiler.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "hw/router.h"
#include "hw/topology_flags.h"
#include "sim/exact.h"
#include "sim/noise.h"

using namespace fermihedral;

int
main(int argc, char **argv)
{
    FlagSet flags("Figure 10: H2 on a simulated IonQ Aria-1.");
    const auto *shots =
        flags.addInt("shots", 1000, "measurement shots");
    const auto *timeout =
        flags.addDouble("timeout", 45.0, "SAT budget (s)");
    const auto *threads_flag =
        flags.addInt("threads", 0, "shot-runner threads (0 = "
                                   "hardware concurrency)");
    const auto topo_flags = hw::TopologyFlags::add(flags);
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();
    // With --topology/--topology-file the compile becomes
    // connectivity-aware and the table gains routed columns; the
    // noisy simulation itself stays on the logical circuit (the
    // paper's device was all-to-all ion-trap).
    const auto topology = topo_flags.resolve();
    ThreadPool pool(
        ThreadPool::resolveThreadCount(*threads_flag));

    bench::banner("H2 on simulated IonQ Aria-1", "Figure 10");
    const auto h2 = fermion::h2Sto3gIntegrals().toHamiltonian();

    api::CompilationRequest request = bench::compilationRequest(
        bench::Config::FullSat, *timeout / 2.0, *timeout);
    request.hamiltonian = h2;
    if (topology)
        request.topology = *topology;

    const auto noise = sim::NoiseModel::ionqAria1();
    std::vector<std::string> headers = {"Encoding", "E measured",
                                        "sigma", "E0 exact",
                                        "CNOTs", "shots/s"};
    if (topology) {
        headers.push_back("Routed 2q");
        headers.push_back("SWAPs");
    }
    Table table(headers);
    Rng rng(1010);
    std::size_t total_shots = 0;
    double total_seconds = 0.0;
    api::Compiler compiler;
    for (const auto &[name, strategy] :
         std::vector<std::pair<std::string, std::string>>{
             {"JW", "jordan-wigner"},
             {"BK", "bravyi-kitaev"},
             {"Full SAT", "sat"}}) {
        request.strategy = strategy;
        const auto compiled = compiler.compile(request);
        const auto &qubit_h = compiled.qubitHamiltonian;
        const auto eigen = sim::eigendecompose(qubit_h);
        const auto initial = eigen.state(0);
        const auto circuit = circuit::compileTrotter(qubit_h, 1.0);
        const auto stats = sim::measureEnergy(
            circuit, initial, qubit_h, noise,
            static_cast<std::size_t>(*shots), rng, pool);
        total_shots += stats.shots;
        total_seconds += stats.elapsedSeconds;
        std::vector<std::string> row = {
            name, Table::num(stats.mean, 3),
            Table::num(stats.standardDeviation, 3),
            Table::num(eigen.values[0], 3),
            Table::num(std::int64_t(circuit.costs().cnotGates)),
            Table::num(stats.shots / stats.elapsedSeconds, 0)};
        if (topology) {
            const auto routed =
                hw::routeCircuit(circuit, *topology);
            row.push_back(Table::num(
                std::int64_t(routed.stats.twoQubitGates)));
            row.push_back(
                Table::num(std::int64_t(routed.stats.swaps)));
        }
        table.addRow(row);
    }
    std::printf("%s", table.render().c_str());
    std::printf("throughput: %.0f shots/s over %zu shots "
                "(%zu threads)\n",
                total_shots / total_seconds, total_shots,
                pool.threadCount());
    std::printf("Paper measured E = -1.49 (JW), -1.54 (BK), -1.56 "
                "(Full SAT) on the real device; the ordering and "
                "sigma ranking are the reproduced shape.\n");
    tflags.report();
    return 0;
}
