/**
 * @file
 * Figure 11: time to construct and to solve the encoding problem
 * with vs without the algebraic independence clauses, and the
 * resulting speedups. As in the paper, the time the solver spends
 * proving that no cheaper encoding exists is excluded: "solving"
 * is the time until the best model was found.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/table.h"

using namespace fermihedral;

namespace {

struct Measurement
{
    double construct;
    double solve;
    std::size_t cost;
};

Measurement
run(std::size_t modes, bench::Config config, double timeout)
{
    const auto options =
        bench::descentOptions(config, timeout / 2.0, timeout);
    core::DescentSolver solver(modes, options);
    const auto result = solver.solve();
    Measurement m;
    m.construct = result.constructSeconds;
    // Exclude the final UNSAT/timeout round: take the time of the
    // last improving model (the paper's convention).
    m.solve = result.trajectory.empty()
                  ? result.solveSeconds
                  : result.trajectory.back().second;
    m.cost = result.cost;
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("Figure 11: construct/solve time w/ and w/o "
                  "algebraic independence.");
    const auto *max_modes =
        flags.addInt("max-modes", 5, "largest mode count");
    const auto *timeout =
        flags.addDouble("timeout", 60.0, "budget per run (s)");
    if (!flags.parse(argc, argv))
        return 0;

    bench::banner("time to construct and solve", "Figure 11");
    Table table({"Modes", "Construct w/ (s)", "Construct w/o (s)",
                 "Speedup", "Solve w/ (s)", "Solve w/o (s)",
                 "Speedup", "Same cost?"});

    for (std::int64_t n = 2; n <= *max_modes; ++n) {
        const auto with = run(static_cast<std::size_t>(n),
                              bench::Config::FullSat, *timeout);
        const auto without = run(static_cast<std::size_t>(n),
                                 bench::Config::NoAlg, *timeout);
        auto speedup = [](double a, double b) {
            return b > 1e-9 ? Table::num(a / b, 1) + "x"
                            : std::string("-");
        };
        table.addRow(
            {Table::num(n), Table::num(with.construct, 4),
             Table::num(without.construct, 4),
             speedup(with.construct, without.construct),
             Table::num(with.solve, 4),
             Table::num(without.solve, 4),
             speedup(with.solve, without.solve),
             with.cost == without.cost ? "yes" : "no"});
    }
    std::printf("%s", table.render().c_str());
    std::printf("Dropping the 4^N independence clauses should give "
                "growing construct and solve speedups while the "
                "optimal cost stays identical (Sec. 4.1).\n");
    return 0;
}
