/**
 * @file
 * Figure 11: time to construct and to solve the encoding problem
 * with vs without the algebraic independence clauses, and the
 * resulting speedups. As in the paper, the time the solver spends
 * proving that no cheaper encoding exists is excluded: "solving"
 * is the time until the best model was found.
 *
 * On top of the paper's figure this binary exposes the SAT engine:
 * --threads/--instances/--racing/--preprocess select the portfolio
 * configuration, a second table reports per-run solver statistics
 * (propagations, conflicts, learnt literals, simplifier
 * eliminations), --compare races the configured engine against
 * its ungated predecessor (unbudgeted upfront preprocessing, no
 * between-step maintenance) at equal budgets — best-of---repeats
 * per cell — and reports the descended-cost-vs-wallclock outcome,
 * and --json dumps everything as a machine-readable artifact for
 * CI trend tracking.
 */

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/flags.h"
#include "common/json_writer.h"
#include "common/parallel.h"
#include "common/table.h"

using namespace fermihedral;

namespace {

struct Measurement
{
    double construct = 0.0;
    double solve = 0.0;
    double totalSolve = 0.0;
    core::DescentResult result;
};

Measurement
run(std::size_t modes, bench::Config config, double timeout,
    bool baseline_engine)
{
    // Same paper configuration the other benches use. The
    // registered EngineFlags overlay has already been applied by
    // descentOptions(); baseline runs then pin the previous
    // engine generation over it: unconditional upfront
    // preprocessing (no wall-clock budget, no size ceiling) and no
    // between-step maintenance. It reused one incremental solver
    // across bound steps — implicit carry-over — so carry stays on.
    core::DescentOptions options =
        bench::descentOptions(config, timeout / 2.0, timeout);
    if (baseline_engine) {
        options.inprocess = false;
        options.carryLearnts = true;
        options.preprocessBudgetSeconds = -1.0;
        options.preprocessMaxClauses = 0;
    }
    core::DescentSolver solver(modes, options);
    Measurement m;
    m.result = solver.solve();
    m.construct = m.result.constructSeconds;
    // Exclude the final UNSAT/timeout round: take the time of the
    // last improving model (the paper's convention).
    m.solve = m.result.trajectory.empty()
                  ? m.result.solveSeconds
                  : m.result.trajectory.back().second;
    m.totalSolve = m.result.solveSeconds;
    return m;
}

std::string
trajectoryString(const core::DescentResult &result)
{
    std::string out;
    for (const auto &[cost, seconds] : result.trajectory) {
        if (!out.empty())
            out += ' ';
        out += std::to_string(cost);
        out += '@';
        out += Table::num(seconds, 3);
        out += 's';
    }
    return out.empty() ? std::string("(baseline only)") : out;
}

void
appendRunJson(std::string &json, const char *label,
              std::int64_t modes, const Measurement &m)
{
    const auto &r = m.result;
    const auto &s = r.satStats;
    JsonWriter w;
    w.beginObject()
        .member("label", label)
        .member("modes", modes)
        .member("cost", r.cost)
        .member("baseline_cost", r.baselineCost)
        .member("proved_optimal", r.provedOptimal)
        .member("sat_calls", r.satCalls)
        .member("construct_s", m.construct)
        .member("time_to_best_s", m.solve)
        .member("solve_s", m.totalSolve)
        .member("vars", r.numVars)
        .member("clauses", r.numClauses)
        .member("propagations", s.aggregate.propagations)
        .member("conflicts", s.aggregate.conflicts)
        .member("learnt_literals", s.aggregate.learntLiterals)
        .member("shared_out", s.aggregate.sharedOut)
        .member("eliminated_vars",
                s.simplifier.eliminatedVariables)
        .member("subsumed", s.simplifier.subsumedClauses)
        .member("strengthened", s.simplifier.strengthenedLiterals)
        .member("simplified_clauses",
                s.simplifier.simplifiedClauses)
        .member("simplify_s", s.simplifier.seconds)
        .member("gc_runs", s.aggregate.garbageCollects)
        .member("reclaimed_words", s.aggregate.reclaimedWords)
        .member("inprocessings", s.aggregate.inprocessings)
        .member("inprocess_subsumed",
                s.aggregate.inprocessSubsumed)
        .member("vivified_clauses", s.aggregate.vivifiedClauses)
        .member("vivified_literals", s.aggregate.vivifiedLiterals)
        .member("cleared_learnts", s.aggregate.clearedLearnts)
        .member("last_winner", s.lastWinner)
        .endObject();
    if (json.back() != '[')
        json += ',';
    json += "\n  ";
    json += w.take();
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("Figure 11: construct/solve time w/ and w/o "
                  "algebraic independence, with SAT-engine "
                  "statistics.");
    const auto *max_modes =
        flags.addInt("max-modes", 5, "largest mode count");
    const auto *timeout =
        flags.addDouble("timeout", 60.0, "budget per run (s)");
    const auto engine = bench::EngineFlags::add(flags);
    const auto *compare = flags.addBool(
        "compare", false,
        "also run the previous engine generation (ungated upfront "
        "preprocessing, no between-step maintenance) and report "
        "cost-vs-wallclock against it");
    const auto *repeats = flags.addInt(
        "repeats", 3,
        "best-of repeats per --compare measurement (the duel "
        "decides sub-10ms races; single runs are noise-bound)");
    const auto *json_path = flags.addString(
        "json", "", "write run statistics to this JSON file");
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();

    std::string json = "[";

    bench::banner("time to construct and solve", "Figure 11");
    Table table({"Modes", "Construct w/ (s)", "Construct w/o (s)",
                 "Speedup", "Solve w/ (s)", "Solve w/o (s)",
                 "Speedup", "Same cost?"});
    Table stats({"Modes", "Config", "Props", "Conflicts",
                 "Learnt lits", "Elim vars", "Subsumed",
                 "Clauses simp/orig", "GCs", "Inproc",
                 "Viv lits", "SAT calls", "Cost@walltime"});

    // Discarded warmup: the first descent of the process pays the
    // allocator and page-fault costs, which at N=2/3 are the same
    // order as the measured solve itself.
    (void)run(2, bench::Config::NoAlg, *timeout,
              /*baseline_engine=*/false);

    for (std::int64_t n = 2; n <= *max_modes; ++n) {
        const auto with =
            run(static_cast<std::size_t>(n),
                bench::Config::FullSat, *timeout,
                /*baseline_engine=*/false);
        const auto without =
            run(static_cast<std::size_t>(n), bench::Config::NoAlg,
                *timeout, /*baseline_engine=*/false);
        auto speedup = [](double a, double b) {
            return b > 1e-9 ? Table::num(a / b, 1) + "x"
                            : std::string("-");
        };
        table.addRow(
            {Table::num(n), Table::num(with.construct, 4),
             Table::num(without.construct, 4),
             speedup(with.construct, without.construct),
             Table::num(with.solve, 4),
             Table::num(without.solve, 4),
             speedup(with.solve, without.solve),
             with.result.cost == without.result.cost ? "yes"
                                                     : "no"});
        for (const auto *m : {&with, &without}) {
            const auto &s = m->result.satStats;
            stats.addRow(
                {Table::num(n), m == &with ? "w/ alg" : "w/o alg",
                 Table::num(std::int64_t(
                     s.aggregate.propagations)),
                 Table::num(std::int64_t(s.aggregate.conflicts)),
                 Table::num(std::int64_t(
                     s.aggregate.learntLiterals)),
                 Table::num(std::int64_t(
                     s.simplifier.eliminatedVariables)),
                 Table::num(std::int64_t(
                     s.simplifier.subsumedClauses)),
                 Table::num(std::int64_t(
                     s.simplifier.simplifiedClauses)) +
                     "/" +
                     Table::num(std::int64_t(
                         s.simplifier.originalClauses)),
                 Table::num(std::int64_t(
                     s.aggregate.garbageCollects)),
                 Table::num(std::int64_t(
                     s.aggregate.inprocessings)),
                 Table::num(std::int64_t(
                     s.aggregate.vivifiedLiterals)),
                 Table::num(std::int64_t(m->result.satCalls)),
                 trajectoryString(m->result)});
        }
        appendRunJson(json, "full_sat", n, with);
        appendRunJson(json, "no_alg", n, without);
    }
    std::printf("%s", table.render().c_str());
    std::printf("Dropping the 4^N independence clauses should give "
                "growing construct and solve speedups while the "
                "optimal cost stays identical (Sec. 4.1).\n\n");
    std::printf("%s", stats.render().c_str());
    const std::size_t resolved_threads =
        ThreadPool::resolveThreadCount(*engine.threads);
    const std::size_t resolved_instances =
        *engine.instances > 0
            ? static_cast<std::size_t>(*engine.instances)
            : resolved_threads;
    std::printf("Engine: %zu thread(s), %zu instance(s), %s "
                "arbitration, preprocessing %s, carry-over %s, "
                "inprocessing %s.\n",
                resolved_threads, resolved_instances,
                *engine.racing ? "racing" : "deterministic",
                *engine.preprocess ? "on" : "off",
                *engine.carry ? "on" : "off",
                *engine.inprocess ? "on" : "off");

    if (*compare) {
        std::printf("\n");
        bench::banner("gated engine vs ungated predecessor "
                      "at equal budgets",
                      "Figure 11 extension");
        Table duel({"Modes", "Config", "Cost base", "Cost engine",
                    "t-best base (s)", "t-best engine (s)",
                    "Speedup"});
        // Lower cost wins outright; at equal cost the faster
        // time-to-best does. Best-of-R with the two engines
        // interleaved: process-level noise (page cache, scheduler)
        // drifts over seconds, and at sub-10ms scales a single
        // measurement is decided by that drift, not the solver.
        const auto better = [](const Measurement &a,
                               const Measurement &b) {
            if (b.result.cost != a.result.cost)
                return b.result.cost < a.result.cost;
            return b.solve < a.solve;
        };
        const std::int64_t rounds = std::max<std::int64_t>(
            std::int64_t{1}, *repeats);
        for (std::int64_t n = 2; n <= *max_modes; ++n) {
            for (const auto config : {bench::Config::FullSat,
                                      bench::Config::NoAlg}) {
                const bool full =
                    config == bench::Config::FullSat;
                auto base =
                    run(static_cast<std::size_t>(n), config,
                        *timeout, /*baseline_engine=*/true);
                auto tuned =
                    run(static_cast<std::size_t>(n), config,
                        *timeout, /*baseline_engine=*/false);
                // Cells whose whole solve is under half a second
                // are decided by sub-millisecond scheduler noise:
                // buy those extra rounds, they cost nearly nothing.
                for (std::int64_t r = 1;
                     r < rounds ||
                     (r < 5 * rounds &&
                      std::min(base.totalSolve,
                               tuned.totalSolve) < 0.5);
                     ++r) {
                    const auto b =
                        run(static_cast<std::size_t>(n), config,
                            *timeout, /*baseline_engine=*/true);
                    if (better(base, b))
                        base = b;
                    const auto e =
                        run(static_cast<std::size_t>(n), config,
                            *timeout, /*baseline_engine=*/false);
                    if (better(tuned, e))
                        tuned = e;
                }
                duel.addRow(
                    {Table::num(n), full ? "w/ alg" : "w/o alg",
                     Table::num(std::int64_t(base.result.cost)),
                     Table::num(std::int64_t(tuned.result.cost)),
                     Table::num(base.solve, 4),
                     Table::num(tuned.solve, 4),
                     tuned.solve > 1e-9
                         ? Table::num(base.solve / tuned.solve,
                                      2) +
                               "x"
                         : "-"});
                // Both duel sides go to the JSON so engine_* vs
                // baseline_* reproduces the table exactly (the
                // first-loop full_sat/no_alg rows are single-shot
                // and noisier).
                appendRunJson(json,
                              full ? "baseline_full_sat"
                                   : "baseline_no_alg",
                              n, base);
                appendRunJson(json,
                              full ? "engine_full_sat"
                                   : "engine_no_alg",
                              n, tuned);
            }
        }
        std::printf("%s", duel.render().c_str());
        std::printf("t-best is the wall-clock until the cheapest "
                    "encoding was found (the paper's solve-time "
                    "convention); equal costs with a smaller "
                    "t-best is the win condition.\n");
    }

    json += "\n]\n";
    if (!json_path->empty()) {
        std::FILE *f = std::fopen(json_path->c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path->c_str());
            tflags.report();
            return 1;
        }
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::fprintf(stderr, "wrote %s\n", json_path->c_str());
    }
    tflags.report();
    return 0;
}
