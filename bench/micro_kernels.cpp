/**
 * @file
 * google-benchmark micro-kernels for the performance-critical
 * primitives: Pauli algebra, SAT solving, state-vector gates,
 * Hamiltonian mapping and annealing sweeps.
 */

#include <benchmark/benchmark.h>

#include "circuit/passes.h"
#include "circuit/pauli_compiler.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/annealing.h"
#include "core/descent_solver.h"
#include "core/encoding_model.h"
#include "encodings/encoding.h"
#include "encodings/linear.h"
#include "fermion/models.h"
#include "sat/dimacs.h"
#include "sat/portfolio.h"
#include "sat/preprocess.h"
#include "sat/solver.h"
#include "sat/totalizer.h"
#include "sim/exact.h"
#include "sim/noise.h"
#include "sim/statevector.h"

using namespace fermihedral;

namespace {

pauli::PauliString
randomString(std::size_t qubits, Rng &rng)
{
    pauli::PauliString p(qubits);
    for (std::size_t q = 0; q < qubits; ++q)
        p.setOp(q, static_cast<pauli::PauliOp>(rng.nextBelow(4)));
    return p;
}

void
BM_PauliProduct(benchmark::State &state)
{
    Rng rng(1);
    const auto a = randomString(32, rng);
    const auto b = randomString(32, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(a * b);
}
BENCHMARK(BM_PauliProduct);

void
BM_PauliProductWeight(benchmark::State &state)
{
    Rng rng(2);
    const auto a = randomString(32, rng);
    const auto b = randomString(32, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(pauli::productWeight(a, b));
}
BENCHMARK(BM_PauliProductWeight);

void
BM_StateVectorHadamard(benchmark::State &state)
{
    sim::StateVector psi(
        static_cast<std::size_t>(state.range(0)));
    const circuit::Gate gate{circuit::GateKind::H, 0, 0, 0.0};
    for (auto _ : state) {
        psi.applyGate(gate);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_StateVectorHadamard)->Arg(10)->Arg(14)->Arg(18);

void
BM_StateVectorCnot(benchmark::State &state)
{
    sim::StateVector psi(
        static_cast<std::size_t>(state.range(0)));
    psi.applyGate({circuit::GateKind::H, 0, 0, 0.0});
    for (auto _ : state) {
        psi.applyGate({circuit::GateKind::Cnot, 0,
                       static_cast<std::uint32_t>(state.range(0)) -
                           1,
                       0.0});
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_StateVectorCnot)->Arg(10)->Arg(14)->Arg(18);

void
BM_StateVectorRz(benchmark::State &state)
{
    sim::StateVector psi(
        static_cast<std::size_t>(state.range(0)));
    const circuit::Gate gate{circuit::GateKind::Rz, 0, 0, 0.37};
    for (auto _ : state) {
        psi.applyGate(gate);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_StateVectorRz)->Arg(10)->Arg(14)->Arg(18);

void
BM_StateVectorPauliX(benchmark::State &state)
{
    sim::StateVector psi(
        static_cast<std::size_t>(state.range(0)));
    const circuit::Gate gate{circuit::GateKind::X, 0, 0, 0.0};
    for (auto _ : state) {
        psi.applyGate(gate);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_StateVectorPauliX)->Arg(10)->Arg(14)->Arg(18);

/** Shared fixture for the trajectory-engine kernels: H2 under BK. */
struct H2Fixture
{
    pauli::PauliSum hamiltonian;
    circuit::Circuit circuit;
    circuit::FusedCircuit lowered;
    circuit::FusedCircuit fused;
    sim::StateVector initial;
    sim::StateVector evolved;

    H2Fixture()
        : hamiltonian(enc::mapToQubits(
              fermion::h2Sto3gIntegrals().toHamiltonian(),
              enc::bravyiKitaev(4))),
          circuit(circuit::compileTrotter(hamiltonian, 1.0)),
          lowered(circuit::lowerToMatrices(circuit)),
          fused(circuit::fuseSingleQubitGates(circuit)),
          initial(sim::eigendecompose(hamiltonian).state(0)),
          evolved(initial)
    {
        evolved.applyCircuit(circuit);
    }

    static const H2Fixture &
    instance()
    {
        static const H2Fixture fixture;
        return fixture;
    }
};

void
BM_ApplyCircuitTrotterH2(benchmark::State &state)
{
    const auto &fixture = H2Fixture::instance();
    sim::StateVector psi = fixture.initial;
    for (auto _ : state) {
        psi.applyCircuit(fixture.circuit);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_ApplyCircuitTrotterH2);

void
BM_ApplyFusedTrotterH2(benchmark::State &state)
{
    const auto &fixture = H2Fixture::instance();
    sim::StateVector psi = fixture.initial;
    for (auto _ : state) {
        psi.applyFused(fixture.fused);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_ApplyFusedTrotterH2);

void
BM_NoisyTrajectoryH2(benchmark::State &state)
{
    const auto &fixture = H2Fixture::instance();
    sim::NoiseModel noise;
    noise.singleQubitError = 1e-4;
    noise.twoQubitError = 1e-3;
    Rng rng(11);
    sim::StateVector scratch(1);
    for (auto _ : state) {
        sim::runNoisyTrajectoryInto(fixture.lowered,
                                    fixture.initial, noise, rng,
                                    scratch);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_NoisyTrajectoryH2);

void
BM_SampleEnergyUngroupedH2(benchmark::State &state)
{
    const auto &fixture = H2Fixture::instance();
    sim::NoiseModel noise;
    noise.readoutError = 1e-3;
    Rng rng(12);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::sampleEnergy(
            fixture.evolved, fixture.hamiltonian, noise, rng));
    }
}
BENCHMARK(BM_SampleEnergyUngroupedH2);

void
BM_SampleEnergyGroupedH2(benchmark::State &state)
{
    const auto &fixture = H2Fixture::instance();
    const sim::MeasurementPlan plan(fixture.hamiltonian);
    sim::NoiseModel noise;
    noise.readoutError = 1e-3;
    Rng rng(13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim::sampleEnergy(fixture.evolved, plan, noise, rng));
    }
}
BENCHMARK(BM_SampleEnergyGroupedH2);

void
BM_MeasureEnergyH2(benchmark::State &state)
{
    const auto &fixture = H2Fixture::instance();
    sim::NoiseModel noise;
    noise.singleQubitError = 1e-4;
    noise.twoQubitError = 1e-3;
    noise.readoutError = 1e-3;
    ThreadPool pool(static_cast<std::size_t>(state.range(0)));
    Rng rng(14);
    const std::size_t shots = 512;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::measureEnergy(
            fixture.circuit, fixture.initial, fixture.hamiltonian,
            noise, shots, rng, pool));
    }
    state.counters["shots/s"] = benchmark::Counter(
        static_cast<double>(shots * state.iterations()),
        benchmark::Counter::kIsRate);
}
// Wall-clock timing: with worker threads, main-thread CPU time
// would misreport the rate.
BENCHMARK(BM_MeasureEnergyH2)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void
BM_SampleBasisLinear(benchmark::State &state)
{
    Rng init(15);
    sim::StateVector psi(14);
    for (std::uint32_t q = 0; q < 14; ++q) {
        psi.applyGate({circuit::GateKind::H, q, 0, 0.0});
        psi.applyGate({circuit::GateKind::Rz, q, 0,
                       init.nextDouble(0, 6)});
    }
    Rng rng(16);
    for (auto _ : state)
        benchmark::DoNotOptimize(psi.sampleBasisState(rng));
}
BENCHMARK(BM_SampleBasisLinear);

void
BM_SampleBasisTable(benchmark::State &state)
{
    Rng init(15);
    sim::StateVector psi(14);
    for (std::uint32_t q = 0; q < 14; ++q) {
        psi.applyGate({circuit::GateKind::H, q, 0, 0.0});
        psi.applyGate({circuit::GateKind::Rz, q, 0,
                       init.nextDouble(0, 6)});
    }
    const sim::SampleTable table(psi);
    Rng rng(16);
    for (auto _ : state)
        benchmark::DoNotOptimize(table.sample(rng));
}
BENCHMARK(BM_SampleBasisTable);

void
BM_PauliExpectation(benchmark::State &state)
{
    Rng rng(3);
    const std::size_t qubits = 10;
    sim::StateVector psi(qubits);
    for (std::uint32_t q = 0; q < qubits; ++q)
        psi.applyGate({circuit::GateKind::H, q, 0, 0.0});
    pauli::PauliSum h(qubits);
    for (int t = 0; t < 50; ++t)
        h.add(rng.nextGaussian(), randomString(qubits, rng));
    h.simplify();
    for (auto _ : state)
        benchmark::DoNotOptimize(psi.expectation(h));
}
BENCHMARK(BM_PauliExpectation);

void
BM_SatSolveRandom3Sat(benchmark::State &state)
{
    const int num_vars = static_cast<int>(state.range(0));
    const int clauses = num_vars * 4;
    for (auto _ : state) {
        state.PauseTiming();
        Rng rng(77);
        sat::Solver solver;
        for (int v = 0; v < num_vars; ++v)
            solver.newVar();
        for (int c = 0; c < clauses; ++c) {
            const auto v1 = static_cast<sat::Var>(
                rng.nextBelow(num_vars));
            const auto v2 = static_cast<sat::Var>(
                rng.nextBelow(num_vars));
            const auto v3 = static_cast<sat::Var>(
                rng.nextBelow(num_vars));
            solver.addTernary(sat::mkLit(v1, rng.nextBool()),
                              sat::mkLit(v2, rng.nextBool()),
                              sat::mkLit(v3, rng.nextBool()));
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize(solver.solve());
    }
}
BENCHMARK(BM_SatSolveRandom3Sat)->Arg(50)->Arg(100);

void
BM_PortfolioSolveRandom3Sat(benchmark::State &state)
{
    // The full new-engine path — preprocessing plus a racing
    // portfolio of `instances` — on the same instances as
    // BM_SatSolveRandom3Sat's 100-variable arg.
    const std::size_t instances =
        static_cast<std::size_t>(state.range(0));
    const int num_vars = 100, clauses = 400;
    for (auto _ : state) {
        state.PauseTiming();
        Rng rng(77);
        sat::PortfolioOptions options;
        options.instances = instances;
        options.threads = instances;
        options.deterministic = false;
        sat::PortfolioSolver solver(options);
        for (int v = 0; v < num_vars; ++v)
            solver.newVar();
        for (int c = 0; c < clauses; ++c) {
            const auto v1 = static_cast<sat::Var>(
                rng.nextBelow(num_vars));
            const auto v2 = static_cast<sat::Var>(
                rng.nextBelow(num_vars));
            const auto v3 = static_cast<sat::Var>(
                rng.nextBelow(num_vars));
            solver.addTernary(sat::mkLit(v1, rng.nextBool()),
                              sat::mkLit(v2, rng.nextBool()),
                              sat::mkLit(v3, rng.nextBool()));
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize(solver.solve());
    }
}
BENCHMARK(BM_PortfolioSolveRandom3Sat)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime();

/** The N=4 encoding instance as a snapshot CNF, built once. */
const sat::Cnf &
encodingCnf()
{
    static const sat::Cnf cnf = [] {
        sat::Solver solver;
        core::EncodingModelOptions options;
        options.modes = 4;
        options.costCap =
            enc::bravyiKitaev(4).totalWeight();
        core::EncodingModel model(solver, options);
        return sat::snapshotCnf(solver);
    }();
    return cnf;
}

void
BM_SimplifyEncodingInstance(benchmark::State &state)
{
    // One full preprocessing run (subsumption + self-subsuming
    // resolution + BVE) over the N=4 full-SAT encoding instance.
    const sat::Cnf &cnf = encodingCnf();
    std::size_t eliminated = 0;
    for (auto _ : state) {
        sat::Simplifier simp(cnf.numVars);
        for (const auto &clause : cnf.clauses)
            simp.addClause(clause);
        simp.run();
        eliminated = simp.stats().eliminatedVariables;
        benchmark::DoNotOptimize(eliminated);
    }
    state.counters["eliminated_vars"] =
        static_cast<double>(eliminated);
    state.counters["clauses"] =
        static_cast<double>(cnf.clauses.size());
}
BENCHMARK(BM_SimplifyEncodingInstance);

void
BM_DescentSolve(benchmark::State &state)
{
    // Wall-clock of a full Algorithm 1 descent (N=3, full SAT,
    // deterministic) with preprocessing off (arg 0) or on (arg 1).
    core::DescentOptions options;
    options.stepTimeoutSeconds = 30.0;
    options.totalTimeoutSeconds = 60.0;
    options.preprocess = state.range(0) != 0;
    std::size_t cost = 0;
    for (auto _ : state) {
        core::DescentSolver solver(3, options);
        const auto result = solver.solve();
        cost = result.cost;
        benchmark::DoNotOptimize(result.cost);
    }
    state.counters["cost"] = static_cast<double>(cost);
}
BENCHMARK(BM_DescentSolve)->Arg(0)->Arg(1)->UseRealTime();

void
BM_TotalizerConstruction(benchmark::State &state)
{
    const int inputs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sat::Solver solver;
        std::vector<sat::Lit> in;
        for (int i = 0; i < inputs; ++i)
            in.push_back(sat::mkLit(solver.newVar()));
        sat::Totalizer totalizer(solver, in, inputs / 4);
        benchmark::DoNotOptimize(totalizer.width());
    }
}
BENCHMARK(BM_TotalizerConstruction)->Arg(128)->Arg(512);

void
BM_MapToQubits(benchmark::State &state)
{
    const auto h = fermion::fermiHubbard1D(4, 1.0, 4.0);
    const auto bk = enc::bravyiKitaev(h.modes());
    for (auto _ : state)
        benchmark::DoNotOptimize(enc::mapToQubits(h, bk));
}
BENCHMARK(BM_MapToQubits);

void
BM_HamiltonianPauliWeight(benchmark::State &state)
{
    Rng rng(5);
    const auto h = fermion::sykModel(6, rng);
    const auto bk = enc::bravyiKitaev(h.modes());
    for (auto _ : state)
        benchmark::DoNotOptimize(
            enc::hamiltonianPauliWeight(h, bk));
}
BENCHMARK(BM_HamiltonianPauliWeight);

void
BM_AnnealingRun(benchmark::State &state)
{
    const auto h = fermion::fermiHubbard1D(4, 1.0, 4.0);
    const auto bk = enc::bravyiKitaev(h.modes());
    core::AnnealingOptions options;
    options.iterationsPerTemperature = 50;
    options.initialTemperature = 10.0;
    options.temperatureStep = 1.0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core::annealPairing(bk, h, options));
}
BENCHMARK(BM_AnnealingRun);

void
BM_CompileTrotter(benchmark::State &state)
{
    const auto h = fermion::fermiHubbard1D(3, 1.0, 4.0);
    const auto qubit_h =
        enc::mapToQubits(h, enc::bravyiKitaev(h.modes()));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            circuit::compileTrotter(qubit_h, 1.0));
}
BENCHMARK(BM_CompileTrotter);

void
BM_Eigendecompose(benchmark::State &state)
{
    const auto h = fermion::fermiHubbard1D(3, 1.0, 4.0);
    const auto qubit_h =
        enc::mapToQubits(h, enc::jordanWigner(h.modes()));
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::eigendecompose(qubit_h));
}
BENCHMARK(BM_Eigendecompose);

} // namespace

BENCHMARK_MAIN();
