/**
 * @file
 * Table 3: number of variables and clauses in the generated SAT
 * instances with and without the algebraic independence
 * constraints (Hamiltonian-independent weight objective).
 *
 * The construction is counted on a fresh solver per row; no solving
 * happens. Defaults build "with" instances up to N = 7 (N = 8 takes
 * a while and several GB in the paper's setup too) and "without" up
 * to N = 18 like the paper.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/encoding_model.h"

using namespace fermihedral;

namespace {

struct InstanceSize
{
    std::size_t vars;
    std::size_t clauses;
};

InstanceSize
buildInstance(std::size_t modes, bool algebraic_independence)
{
    sat::Solver solver;
    core::EncodingModelOptions options;
    options.modes = modes;
    options.algebraicIndependence = algebraic_independence;
    options.costCap = enc::bravyiKitaev(modes).totalWeight();
    core::EncodingModel model(solver, options);
    return InstanceSize{solver.numVars(), solver.numClauses()};
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("Table 3: SAT instance sizes w/ and w/o "
                  "algebraic independence.");
    const auto *max_with = flags.addInt(
        "max-with", 7, "largest N for the 'with' instances");
    const auto *max_without = flags.addInt(
        "max-without", 18, "largest N for the 'without' instances");
    if (!flags.parse(argc, argv))
        return 0;

    bench::banner("SAT instance sizes", "Table 3");
    Table table({"Modes", "#Vars w/", "#Vars w/o", "#Clauses w/",
                 "#Clauses w/o", "Vars/Clause w/",
                 "Vars/Clause w/o"});

    for (std::int64_t n = 2; n <= *max_without; ++n) {
        const auto without = buildInstance(
            static_cast<std::size_t>(n), false);
        std::string with_vars = "N/A", with_clauses = "N/A",
                    with_ratio = "N/A";
        if (n <= *max_with) {
            const auto with =
                buildInstance(static_cast<std::size_t>(n), true);
            with_vars = Table::num(std::int64_t(with.vars));
            with_clauses = Table::num(std::int64_t(with.clauses));
            with_ratio = Table::num(
                double(with.clauses) / double(with.vars), 2);
        }
        table.addRow(
            {Table::num(n), with_vars,
             Table::num(std::int64_t(without.vars)), with_clauses,
             Table::num(std::int64_t(without.clauses)), with_ratio,
             Table::num(double(without.clauses) /
                            double(without.vars),
                        2)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("The 'with' columns grow ~4^N (paper: N/A beyond "
                "8); the 'without' columns grow ~N^2.\n");
    return 0;
}
