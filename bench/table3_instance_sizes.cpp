/**
 * @file
 * Table 3: number of variables and clauses in the generated SAT
 * instances with and without the algebraic independence
 * constraints (Hamiltonian-independent weight objective), plus the
 * effect of clause-database preprocessing on the instances the
 * descent actually solves.
 *
 * The construction is counted on a fresh solver per row; no solving
 * happens. Defaults build "with" instances up to N = 7 (N = 8 takes
 * a while and several GB in the paper's setup too) and "without" up
 * to N = 18 like the paper. The preprocessing columns run the
 * simplifier exactly as a descent solve would: operator bits and
 * totalizer outputs frozen, everything else eliminable.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/encoding_model.h"
#include "sat/portfolio.h"
#include "sat/solver.h"

using namespace fermihedral;

namespace {

struct InstanceSize
{
    std::size_t vars = 0;
    std::size_t clauses = 0;
    std::size_t binaryClauses = 0;
    std::size_t arenaWords = 0;
    std::size_t simplifiedVars = 0;
    std::size_t simplifiedClauses = 0;
    std::size_t eliminated = 0;
    double simplifySeconds = 0.0;
};

InstanceSize
buildInstance(std::size_t modes, bool algebraic_independence,
              bool simplify)
{
    InstanceSize size;
    core::EncodingModelOptions options;
    options.modes = modes;
    options.algebraicIndependence = algebraic_independence;
    options.costCap = enc::bravyiKitaev(modes).totalWeight();
    {
        sat::Solver solver;
        core::EncodingModel model(solver, options);
        size.vars = solver.numVars();
        size.clauses = solver.numClauses();
        size.binaryClauses = solver.numBinaryClauses();
        size.arenaWords = solver.arenaWords();
    }
    if (simplify) {
        sat::PortfolioOptions engine;
        engine.instances = 1;
        sat::PortfolioSolver solver(engine);
        core::EncodingModel model(solver, options);
        solver.prepare();
        const auto &stats = solver.portfolioStats().simplifier;
        // The simplifier's own wall-clock, excluding the CDCL
        // instance construction prepare() also performs.
        size.simplifySeconds = stats.seconds;
        size.eliminated = stats.eliminatedVariables;
        size.simplifiedVars = solver.numVars() -
                              stats.eliminatedVariables -
                              stats.fixedVariables;
        size.simplifiedClauses = stats.simplifiedClauses;
    }
    return size;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("Table 3: SAT instance sizes w/ and w/o "
                  "algebraic independence, raw and preprocessed.");
    const auto *max_with = flags.addInt(
        "max-with", 7, "largest N for the 'with' instances");
    const auto *max_without = flags.addInt(
        "max-without", 18, "largest N for the 'without' instances");
    const auto *max_simplify = flags.addInt(
        "max-simplify", 10,
        "largest N to run the simplifier on (0 disables)");
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();

    bench::banner("SAT instance sizes", "Table 3");
    Table table({"Modes", "#Vars w/", "#Vars w/o", "#Clauses w/",
                 "#Clauses w/o", "Vars/Clause w/",
                 "Vars/Clause w/o"});
    Table simplified({"Modes", "#Vars w/o", "simp", "#Clauses w/o",
                      "simp", "Eliminated", "Simplify (s)"});
    Table layout({"Modes", "#Clauses w/o", "Binary", "Long",
                  "Arena KiB", "B/clause"});

    for (std::int64_t n = 2; n <= *max_without; ++n) {
        const bool simplify = n <= *max_simplify;
        const auto without = buildInstance(
            static_cast<std::size_t>(n), false, simplify);
        std::string with_vars = "N/A", with_clauses = "N/A",
                    with_ratio = "N/A";
        if (n <= *max_with) {
            const auto with = buildInstance(
                static_cast<std::size_t>(n), true, false);
            with_vars = Table::num(std::int64_t(with.vars));
            with_clauses = Table::num(std::int64_t(with.clauses));
            with_ratio = Table::num(
                double(with.clauses) / double(with.vars), 2);
        }
        table.addRow(
            {Table::num(n), with_vars,
             Table::num(std::int64_t(without.vars)), with_clauses,
             Table::num(std::int64_t(without.clauses)), with_ratio,
             Table::num(double(without.clauses) /
                            double(without.vars),
                        2)});
        if (simplify) {
            simplified.addRow(
                {Table::num(n),
                 Table::num(std::int64_t(without.vars)),
                 Table::num(
                     std::int64_t(without.simplifiedVars)),
                 Table::num(std::int64_t(without.clauses)),
                 Table::num(
                     std::int64_t(without.simplifiedClauses)),
                 Table::num(std::int64_t(without.eliminated)),
                 Table::num(without.simplifySeconds, 4)});
        }
        layout.addRow(
            {Table::num(n),
             Table::num(std::int64_t(without.clauses)),
             Table::num(std::int64_t(without.binaryClauses)),
             Table::num(std::int64_t(without.clauses -
                                     without.binaryClauses)),
             Table::num(double(without.arenaWords) * 4.0 / 1024.0,
                        1),
             Table::num(without.clauses > 0
                            ? double(without.arenaWords) * 4.0 /
                                  double(without.clauses)
                            : 0.0,
                        1)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("The 'with' columns grow ~4^N (paper: N/A beyond "
                "8); the 'without' columns grow ~N^2.\n\n");
    std::printf("%s", simplified.render().c_str());
    std::printf("Preprocessing (subsumption, self-subsuming "
                "resolution, bounded variable elimination; "
                "operator bits and totalizer outputs frozen) "
                "shrinks the instances before the descent's first "
                "SAT call.\n\n");
    std::printf("%s", layout.render().c_str());
    std::printf("Solver-core layout of the raw instances: binary "
                "clauses propagate entirely from their dedicated "
                "watcher lists (the implied literal rides in the "
                "watcher, so those chains never dereference the "
                "arena); the arena footprint covers every stored "
                "clause plus three metadata words each.\n");
    tflags.report();
    return 0;
}
