/**
 * @file
 * Table 4: Hamiltonian-dependent total Pauli weight at small scale
 * — Bravyi-Kitaev vs SAT+Anl. vs Full SAT on the three benchmark
 * Hamiltonians (electronic structure, Fermi-Hubbard, four-body
 * SYK).
 *
 * Defaults run the smaller instances in a few minutes; pass
 * --large for the paper's full case list and raise --timeout to
 * push each Full SAT run closer to its optimum.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"

using namespace fermihedral;

namespace {

struct Case
{
    std::string name;
    fermion::FermionHamiltonian hamiltonian;
};

std::vector<Case>
buildCases(bool large)
{
    std::vector<Case> cases;
    Rng rng(2024);
    cases.push_back({"Electronic-4",
                     fermion::syntheticElectronicStructure(4, rng)});
    cases.push_back({"Hubbard-4",
                     fermion::fermiHubbard1D(2, 1.0, 4.0)});
    cases.push_back({"Hubbard-6",
                     fermion::fermiHubbard1D(3, 1.0, 4.0)});
    cases.push_back({"SYK-3", fermion::sykModel(3, rng)});
    cases.push_back({"SYK-4", fermion::sykModel(4, rng)});
    if (large) {
        cases.push_back(
            {"Electronic-6",
             fermion::syntheticElectronicStructure(6, rng)});
        cases.push_back({"Hubbard-8",
                         fermion::fermiHubbard2x2(1.0, 4.0)});
        cases.push_back({"SYK-5", fermion::sykModel(5, rng)});
        cases.push_back({"SYK-6", fermion::sykModel(6, rng)});
    }
    return cases;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("Table 4: Hamiltonian-dependent Pauli weight, "
                  "small scale.");
    const auto *timeout =
        flags.addDouble("timeout", 45.0, "SAT budget per case (s)");
    const auto *large =
        flags.addBool("large", false, "run the full paper range");
    bench::EngineFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;

    bench::banner("Hamiltonian-dependent Pauli weight, small scale",
                  "Table 4");
    Table table({"Case", "Modes", "BK", "SAT+Anl.", "Red.",
                 "Full SAT", "Red.", "Optimal?"});

    for (const auto &test_case : buildCases(*large)) {
        const auto &h = test_case.hamiltonian;
        const auto bk = enc::bravyiKitaev(h.modes());
        const auto bk_weight = enc::hamiltonianPauliWeight(h, bk);

        // SAT + annealing: Hamiltonian-independent Full SAT, then
        // Algorithm 2 pairing.
        const auto indep_options = bench::descentOptions(
            bench::Config::FullSat, *timeout / 4.0,
            *timeout / 2.0);
        core::DescentSolver indep_solver(h.modes(), indep_options);
        const auto indep = indep_solver.solve();
        const auto annealed =
            core::annealPairing(indep.encoding, h);

        // Full SAT with the Hamiltonian-dependent objective,
        // seeded with the annealed solution so its result is
        // never worse than SAT+Anl. (as in the paper).
        auto full_options = bench::descentOptions(
            bench::Config::FullSat, *timeout / 2.0, *timeout);
        full_options.seedEncoding = annealed.encoding;
        core::DescentSolver full_solver(h, full_options);
        const auto full = full_solver.solve();

        auto reduction = [bk_weight](std::size_t w) {
            return Table::percent(
                1.0 - double(w) / double(bk_weight), 2);
        };
        table.addRow({test_case.name,
                      Table::num(std::int64_t(h.modes())),
                      Table::num(std::int64_t(bk_weight)),
                      Table::num(std::int64_t(annealed.finalCost)),
                      reduction(annealed.finalCost),
                      Table::num(std::int64_t(full.cost)),
                      reduction(full.cost),
                      full.provedOptimal ? "yes" : "budget"});
    }
    std::printf("%s", table.render().c_str());
    std::printf("Paper: Full SAT averages 37.26%% reduction, "
                "SAT+Anl. 21.63%% (Table 4).\n");
    return 0;
}
