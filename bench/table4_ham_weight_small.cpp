/**
 * @file
 * Table 4: Hamiltonian-dependent total Pauli weight at small scale
 * — Bravyi-Kitaev vs SAT+Anl. vs Full SAT on the three benchmark
 * Hamiltonians (electronic structure, Fermi-Hubbard, four-body
 * SYK).
 *
 * Defaults run the smaller instances in a few minutes; pass
 * --large for the paper's full case list and raise --timeout to
 * push each Full SAT run closer to its optimum.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"

using namespace fermihedral;

namespace {

struct Case
{
    std::string name;
    fermion::FermionHamiltonian hamiltonian;
};

std::vector<Case>
buildCases(bool large)
{
    std::vector<Case> cases;
    Rng rng(2024);
    cases.push_back({"Electronic-4",
                     fermion::syntheticElectronicStructure(4, rng)});
    cases.push_back({"Hubbard-4",
                     fermion::fermiHubbard1D(2, 1.0, 4.0)});
    cases.push_back({"Hubbard-6",
                     fermion::fermiHubbard1D(3, 1.0, 4.0)});
    cases.push_back({"SYK-3", fermion::sykModel(3, rng)});
    cases.push_back({"SYK-4", fermion::sykModel(4, rng)});
    if (large) {
        cases.push_back(
            {"Electronic-6",
             fermion::syntheticElectronicStructure(6, rng)});
        cases.push_back({"Hubbard-8",
                         fermion::fermiHubbard2x2(1.0, 4.0)});
        cases.push_back({"SYK-5", fermion::sykModel(5, rng)});
        cases.push_back({"SYK-6", fermion::sykModel(6, rng)});
    }
    return cases;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("Table 4: Hamiltonian-dependent Pauli weight, "
                  "small scale.");
    const auto *timeout =
        flags.addDouble("timeout", 45.0, "SAT budget per case (s)");
    const auto *large =
        flags.addBool("large", false, "run the full paper range");
    bench::EngineFlags::add(flags);
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();

    bench::banner("Hamiltonian-dependent Pauli weight, small scale",
                  "Table 4");
    Table table({"Case", "Modes", "BK", "SAT+Anl.", "Red.",
                 "Full SAT", "Red.", "Optimal?"});

    // One facade request per case: the "sat" strategy runs the
    // whole pipeline (independent solve, Algorithm 2 pairing,
    // seeded dependent solve) and reports the intermediate
    // SAT+Anl. cost in its provenance.
    api::Compiler compiler;
    for (const auto &test_case : buildCases(*large)) {
        const auto &h = test_case.hamiltonian;
        api::CompilationRequest request = bench::compilationRequest(
            bench::Config::FullSat, *timeout / 2.0, *timeout);
        request.hamiltonian = h;
        const auto result = compiler.compile(request);

        const std::size_t bk_weight = result.baselineCost;
        auto reduction = [bk_weight](std::size_t w) {
            return Table::percent(
                1.0 - double(w) / double(bk_weight), 2);
        };
        table.addRow({test_case.name,
                      Table::num(std::int64_t(h.modes())),
                      Table::num(std::int64_t(bk_weight)),
                      Table::num(std::int64_t(result.annealedCost)),
                      reduction(result.annealedCost),
                      Table::num(std::int64_t(result.cost)),
                      reduction(result.cost),
                      result.provedOptimal ? "yes" : "budget"});
    }
    std::printf("%s", table.render().c_str());
    std::printf("Paper: Full SAT averages 37.26%% reduction, "
                "SAT+Anl. 21.63%% (Table 4).\n");
    tflags.report();
    return 0;
}
