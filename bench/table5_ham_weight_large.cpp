/**
 * @file
 * Table 5: Hamiltonian-dependent total Pauli weight at larger scale
 * — Bravyi-Kitaev vs SAT+Anl. (Full SAT is out of reach here, as in
 * the paper). The Hamiltonian-independent solve drops the algebraic
 * independence clauses (Sec. 4.1) and the optional vacuum pairing,
 * then Algorithm 2 assigns the pairs.
 *
 * Defaults cover the smaller rows of the paper's table; pass
 * --large for the full list.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"

using namespace fermihedral;

namespace {

struct Case
{
    std::string name;
    fermion::FermionHamiltonian hamiltonian;
};

std::vector<Case>
buildCases(bool large)
{
    std::vector<Case> cases;
    Rng rng(1234);
    cases.push_back({"Electronic-8",
                     fermion::syntheticElectronicStructure(8, rng)});
    cases.push_back({"Hubbard-10",
                     fermion::fermiHubbard1D(5, 1.0, 4.0)});
    cases.push_back({"Hubbard-12",
                     fermion::fermiHubbard1D(6, 1.0, 4.0)});
    cases.push_back({"SYK-8", fermion::sykModel(8, rng)});
    if (large) {
        cases.push_back(
            {"Electronic-10",
             fermion::syntheticElectronicStructure(10, rng)});
        cases.push_back(
            {"Electronic-12",
             fermion::syntheticElectronicStructure(12, rng)});
        cases.push_back({"Hubbard-14",
                         fermion::fermiHubbard1D(7, 1.0, 4.0)});
        cases.push_back({"Hubbard-16",
                         fermion::fermiHubbard1D(8, 1.0, 4.0)});
        cases.push_back({"Hubbard-18",
                         fermion::fermiHubbard1D(9, 1.0, 4.0)});
        cases.push_back({"SYK-9", fermion::sykModel(9, rng)});
        cases.push_back({"SYK-10", fermion::sykModel(10, rng)});
        cases.push_back({"SYK-11", fermion::sykModel(11, rng)});
    }
    return cases;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("Table 5: Hamiltonian-dependent Pauli weight, "
                  "larger scale (SAT+Anl. only).");
    const auto *timeout =
        flags.addDouble("timeout", 45.0, "SAT budget per case (s)");
    const auto *large =
        flags.addBool("large", false, "run the full paper range");
    bench::EngineFlags::add(flags);
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();

    bench::banner("Hamiltonian-dependent Pauli weight, larger scale",
                  "Table 5");
    Table table({"Case", "Modes", "BK", "SAT+Anl.", "Reduction"});

    // The "sat+annealing" strategy is this table's whole pipeline:
    // Hamiltonian-independent descent (no algebraic independence,
    // no vacuum pairing), then Algorithm 2 over both the SAT and
    // the BK seed, keeping the cheaper pairing.
    api::Compiler compiler;
    for (const auto &test_case : buildCases(*large)) {
        const auto &h = test_case.hamiltonian;
        api::CompilationRequest request = bench::compilationRequest(
            bench::Config::NoAlg, *timeout / 2.0, *timeout,
            /*vacuum=*/false);
        request.strategy = "sat+annealing";
        request.hamiltonian = h;
        const auto result = compiler.compile(request);

        table.addRow(
            {test_case.name, Table::num(std::int64_t(h.modes())),
             Table::num(std::int64_t(result.baselineCost)),
             Table::num(std::int64_t(result.cost)),
             Table::percent(1.0 - double(result.cost) /
                                      double(result.baselineCost),
                            2)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("Paper: SAT+Anl. averages 23.71%% reduction over "
                "BK at 8..18 modes (Table 5).\n");
    tflags.report();
    return 0;
}
