/**
 * @file
 * Table 6: gate counts of the compiled time-evolution circuits
 * (t = 1) for H2, the 3x1 and the 2x2 Fermi-Hubbard models —
 * Bravyi-Kitaev vs the SAT encoding, with Jordan-Wigner as an
 * extra reference column.
 *
 * Circuits are compiled with this repo's Trotter compiler and
 * peephole passes (standing in for Paulihedral + Qiskit level 3);
 * absolute numbers differ from the paper, the BK -> SAT reduction
 * shape is what is reproduced.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "circuit/pauli_compiler.h"
#include "common/flags.h"
#include "common/table.h"

using namespace fermihedral;

namespace {

struct Row
{
    std::string case_name;
    circuit::CircuitCosts jw, bk, sat;
};

circuit::CircuitCosts
compileWith(api::Compiler &compiler,
            api::CompilationRequest request,
            const std::string &strategy, double time)
{
    request.strategy = strategy;
    const auto result = compiler.compile(request);
    return circuit::compileTrotter(result.qubitHamiltonian, time)
        .costs();
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("Table 6: compiled circuit gate counts.");
    const auto *timeout =
        flags.addDouble("timeout", 60.0, "SAT budget per case (s)");
    const auto *time =
        flags.addDouble("time", 1.0, "evolution time t");
    bench::EngineFlags::add(flags);
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();

    bench::banner("compiled gate counts", "Table 6");

    struct Case
    {
        std::string name;
        fermion::FermionHamiltonian hamiltonian;
        bench::Config config;
    };
    std::vector<Case> cases;
    cases.push_back({"H2 (4q)",
                     fermion::h2Sto3gIntegrals().toHamiltonian(),
                     bench::Config::FullSat});
    cases.push_back({"3x1 Hubbard (6q)",
                     fermion::fermiHubbard1D(3, 1.0, 4.0),
                     bench::Config::FullSat});
    cases.push_back({"2x2 Hubbard (8q)",
                     fermion::fermiHubbard2x2(1.0, 4.0),
                     bench::Config::NoAlg});

    Table table({"Case", "Gates", "JW", "BK", "Full SAT",
                 "Red. vs BK"});
    api::Compiler compiler;
    for (const auto &test_case : cases) {
        api::CompilationRequest request = bench::compilationRequest(
            test_case.config, *timeout / 2.0, *timeout);
        request.hamiltonian = test_case.hamiltonian;
        const std::string sat_strategy = request.strategy;

        const auto jw_costs =
            compileWith(compiler, request, "jordan-wigner", *time);
        const auto bk_costs =
            compileWith(compiler, request, "bravyi-kitaev", *time);
        const auto sat_costs =
            compileWith(compiler, request, sat_strategy, *time);

        struct Metric
        {
            const char *name;
            std::size_t circuit::CircuitCosts::*field;
        };
        const Metric metrics[] = {
            {"Single", &circuit::CircuitCosts::singleQubitGates},
            {"CNOT", &circuit::CircuitCosts::cnotGates},
            {"Total", &circuit::CircuitCosts::totalGates},
            {"Depth", &circuit::CircuitCosts::depth},
        };
        for (const auto &metric : metrics) {
            const auto jw_value = jw_costs.*(metric.field);
            const auto bk_value = bk_costs.*(metric.field);
            const auto sat_value = sat_costs.*(metric.field);
            table.addRow(
                {test_case.name, metric.name,
                 Table::num(std::int64_t(jw_value)),
                 Table::num(std::int64_t(bk_value)),
                 Table::num(std::int64_t(sat_value)),
                 Table::percent(1.0 - double(sat_value) /
                                          double(bk_value),
                                2)});
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("Paper: ~20%% single-qubit and ~35%% CNOT reduction "
                "vs BK on these workloads.\n");
    tflags.report();
    return 0;
}
