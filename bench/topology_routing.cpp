/**
 * @file
 * Routed-depth study: what the weight objective misses on real
 * connectivity. The paper's metric (Pauli weight, Eq. 14) assumes
 * all-to-all coupling; on a grid or heavy-hex device every
 * non-adjacent CNOT costs SWAPs. This bench compiles each workload
 * with the weight-optimal `sat` strategy and the two
 * connectivity-aware ones (`sat-routed` relabels the SAT encoding's
 * qubits, `pick-routed` additionally races the closed-form
 * baselines), routes the one-step Trotter circuit of each result
 * with hw/router.h, and reports routed two-qubit count / SWAPs /
 * depth side by side.
 *
 * --check turns the table into an assertion for CI: the routed-cost
 * strategies must never route to MORE two-qubit gates than the
 * weight-optimal baseline (they select by exactly this metric, with
 * the baseline's encoding among the candidates), and
 * --require-improvement additionally demands at least one strictly
 * better cell. --json writes the rows as a machine-readable
 * artifact.
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "api/model_spec.h"
#include "bench_util.h"
#include "circuit/pauli_compiler.h"
#include "common/flags.h"
#include "common/json_writer.h"
#include "common/table.h"
#include "hw/routed_cost.h"
#include "hw/router.h"

using namespace fermihedral;

namespace {

/** Split a comma-separated flag value, dropping empty items. */
std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> items;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find(',', start);
        if (end == std::string::npos)
            end = text.size();
        std::string item = text.substr(start, end - start);
        while (!item.empty() && item.front() == ' ')
            item.erase(item.begin());
        while (!item.empty() && item.back() == ' ')
            item.pop_back();
        if (!item.empty())
            items.push_back(std::move(item));
        start = end + 1;
    }
    return items;
}

/** One measured (workload, topology, strategy) cell. */
struct Cell
{
    std::string workload;
    std::string topology;
    std::string strategy;
    std::size_t objectiveCost = 0;
    std::size_t estimate = 0;
    std::size_t logicalCnots = 0;
    hw::RoutedStats routed;
    bool provedOptimal = false;
};

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags(
        "Routed two-qubit cost of weight-optimal vs routed-cost "
        "strategies on constrained topologies.");
    const auto *timeout =
        flags.addDouble("timeout", 20.0, "SAT budget per compile "
                                         "(s)");
    const auto *topologies_flag = flags.addString(
        "topologies", "grid:2x4,heavy-hex:1",
        "comma-separated topology specs to sweep");
    const auto *workloads_flag = flags.addString(
        "workloads", "h2,hubbard:2x2",
        "comma-separated model specs to sweep (api/model_spec.h "
        "grammar)");
    const auto *check = flags.addBool(
        "check", false,
        "exit 1 if any routed-cost strategy routes to more "
        "two-qubit gates than the weight-optimal sat baseline");
    const auto *require_improvement = flags.addBool(
        "require-improvement", false,
        "with --check, also require at least one strictly better "
        "routed two-qubit cell");
    const auto *json_path = flags.addString(
        "json", "", "write the measured cells to this JSON file");
    const auto engine = bench::EngineFlags::add(flags);
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();

    bench::banner("routed depth on constrained topologies",
                  "hardware-topology extension");

    const auto workloads = splitList(*workloads_flag);
    const auto topologies = splitList(*topologies_flag);
    if (workloads.empty() || topologies.empty())
        fatal("--workloads and --topologies must each name at "
              "least one item");
    const std::vector<std::string> strategies = {
        "sat", "sat-routed", "pick-routed"};

    Table table({"Workload", "Topology", "Strategy", "Obj cost",
                 "Est 2q", "CNOTs", "Routed 2q", "SWAPs", "Depth",
                 "Optimal"});
    std::vector<Cell> cells;
    api::Compiler compiler;
    for (const auto &workload : workloads) {
        for (const auto &topology_spec : topologies) {
            for (const auto &strategy : strategies) {
                api::RequestSpec spec;
                spec.problem = workload;
                spec.topology = topology_spec;
                spec.strategy = strategy;
                spec.stepTimeoutSeconds = *timeout / 2.0;
                spec.totalTimeoutSeconds = *timeout;
                auto request = api::buildRequest(spec);
                engine.apply(request);
                // The sweep owns the topology axis; a --topology
                // override from EngineFlags would collapse it.
                request.topology =
                    hw::Topology::parseSpec(topology_spec);
                bench::applyProgressFlag(request);

                const auto compiled = compiler.compile(request);
                // Same measurement the routed strategies select
                // by: one-step Trotter circuit, default router.
                const auto circuit = circuit::compileTrotter(
                    compiled.qubitHamiltonian, 1.0);
                const auto routed = hw::routeCircuit(
                    circuit, *request.topology);

                Cell cell;
                cell.workload = workload;
                cell.topology = topology_spec;
                cell.strategy = strategy;
                cell.objectiveCost = compiled.cost;
                cell.estimate = hw::routedCostEstimate(
                    *request.hamiltonian, compiled.encoding,
                    *request.topology);
                cell.logicalCnots = circuit.costs().cnotGates;
                cell.routed = routed.stats;
                cell.provedOptimal = compiled.provedOptimal;
                cells.push_back(cell);

                table.addRow(
                    {workload, topology_spec, strategy,
                     Table::num(std::int64_t(cell.objectiveCost)),
                     Table::num(std::int64_t(cell.estimate)),
                     Table::num(std::int64_t(cell.logicalCnots)),
                     Table::num(
                         std::int64_t(routed.stats.twoQubitGates)),
                     Table::num(std::int64_t(routed.stats.swaps)),
                     Table::num(std::int64_t(routed.stats.depth)),
                     cell.provedOptimal ? "yes" : "no"});
            }
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "Routed 2q counts CNOTs after SWAP insertion (3 per SWAP); "
        "the routed-cost strategies select by exactly that metric, "
        "so they should never lose to the weight-optimal rows.\n");

    // The --check contract: per (workload, topology), every
    // routed-cost strategy's routed 2q <= sat's.
    std::size_t violations = 0, strict_wins = 0, compared = 0;
    std::map<std::pair<std::string, std::string>, std::size_t>
        baseline;
    for (const auto &cell : cells)
        if (cell.strategy == "sat")
            baseline[{cell.workload, cell.topology}] =
                cell.routed.twoQubitGates;
    for (const auto &cell : cells) {
        if (cell.strategy == "sat")
            continue;
        const std::size_t sat_2q =
            baseline.at({cell.workload, cell.topology});
        ++compared;
        if (cell.routed.twoQubitGates > sat_2q) {
            ++violations;
            std::fprintf(
                stderr,
                "check: %s on %s: %s routed to %zu 2q gates > "
                "sat's %zu\n",
                cell.workload.c_str(), cell.topology.c_str(),
                cell.strategy.c_str(), cell.routed.twoQubitGates,
                sat_2q);
        } else if (cell.routed.twoQubitGates < sat_2q) {
            ++strict_wins;
        }
    }
    std::printf("routed-cost strategies matched or beat the "
                "baseline in %zu/%zu cells (%zu strictly "
                "better).\n",
                compared - violations, compared, strict_wins);

    if (!json_path->empty()) {
        JsonWriter w;
        w.beginArray();
        for (const auto &cell : cells) {
            w.beginObject()
                .member("workload", cell.workload)
                .member("topology", cell.topology)
                .member("strategy", cell.strategy)
                .member("objective_cost",
                        std::uint64_t(cell.objectiveCost))
                .member("estimated_2q",
                        std::uint64_t(cell.estimate))
                .member("logical_cnots",
                        std::uint64_t(cell.logicalCnots))
                .member("routed_2q",
                        std::uint64_t(cell.routed.twoQubitGates))
                .member("swaps", std::uint64_t(cell.routed.swaps))
                .member("depth", std::uint64_t(cell.routed.depth))
                .member("proved_optimal", cell.provedOptimal)
                .endObject();
        }
        w.endArray();
        std::FILE *f = std::fopen(json_path->c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path->c_str());
            tflags.report();
            return 1;
        }
        std::fputs(w.str().c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::fprintf(stderr, "wrote %s\n", json_path->c_str());
    }
    tflags.report();

    if (*check) {
        if (violations > 0)
            return 1;
        if (*require_improvement && strict_wins == 0) {
            std::fprintf(stderr,
                         "check: no strictly better routed 2q "
                         "cell anywhere in the sweep\n");
            return 1;
        }
    }
    return 0;
}
