/**
 * @file
 * End-to-end noisy simulation of the H2 molecule (the paper's
 * quantum-chemistry workload): compile the problem through the
 * facade per strategy, Trotterize the resulting qubit Hamiltonian,
 * and measure the ground state energy drift under increasing
 * two-qubit gate error.
 *
 * Usage: h2_noisy_simulation [--shots=300] [--timeout=30]
 *                            [--threads=0]
 */

#include <cstdio>

#include "api/compiler.h"
#include "circuit/pauli_compiler.h"
#include "common/flags.h"
#include "common/telemetry_flags.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "fermion/models.h"
#include "sim/exact.h"
#include "sim/noise.h"

using namespace fermihedral;

int
main(int argc, char **argv)
{
    FlagSet flags("Noisy H2 ground-state simulation per encoding.");
    const auto *shots =
        flags.addInt("shots", 300, "trajectories per setting");
    const auto *timeout =
        flags.addDouble("timeout", 30.0, "SAT budget (s)");
    const auto *threads_flag =
        flags.addInt("threads", 0, "shot-runner threads (0 = "
                                   "hardware concurrency)");
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();
    ThreadPool pool(
        ThreadPool::resolveThreadCount(*threads_flag));

    const auto h2 = fermion::h2Sto3gIntegrals().toHamiltonian();
    std::printf("H2/STO-3G: %zu spin orbitals, %zu terms\n",
                h2.modes(), h2.termCount());

    api::CompilationRequest request;
    request.hamiltonian = h2;
    request.stepTimeoutSeconds = *timeout / 3.0;
    request.totalTimeoutSeconds = *timeout;

    struct Entry
    {
        const char *name;
        api::CompilationResult compiled;
    };
    api::Compiler compiler;
    std::vector<Entry> entries;
    for (const auto &[name, strategy] :
         std::vector<std::pair<const char *, const char *>>{
             {"JW", "jordan-wigner"},
             {"BK", "bravyi-kitaev"},
             {"SAT", "sat"}}) {
        request.strategy = strategy;
        entries.push_back({name, compiler.compile(request)});
    }
    const auto &sat = entries.back().compiled;
    std::printf("SAT encoding: Hamiltonian Pauli weight %zu "
                "(BK baseline %zu), %zu measurement families\n",
                sat.cost, sat.baselineCost,
                sat.measurementGroups.size());

    Table table({"2q error", "Encoding", "E (measured)", "sigma",
                 "E0 (exact)", "shots/s"});
    Rng rng(20240427);
    std::size_t total_shots = 0;
    double total_seconds = 0.0;
    for (const double error : {1e-4, 1e-3, 1e-2}) {
        for (const auto &entry : entries) {
            const auto &qubit_h = entry.compiled.qubitHamiltonian;
            const auto eigen = sim::eigendecompose(qubit_h);
            const auto initial = eigen.state(0);
            const auto circuit =
                circuit::compileTrotter(qubit_h, 1.0);

            sim::NoiseModel noise;
            noise.singleQubitError = 1e-4;
            noise.twoQubitError = error;
            const auto stats = sim::measureEnergy(
                circuit, initial, qubit_h, noise,
                static_cast<std::size_t>(*shots), rng, pool);
            total_shots += stats.shots;
            total_seconds += stats.elapsedSeconds;
            table.addRow({Table::num(error, 4), entry.name,
                          Table::num(stats.mean, 4),
                          Table::num(stats.standardDeviation, 4),
                          Table::num(eigen.values[0], 4),
                          Table::num(stats.shots /
                                         stats.elapsedSeconds,
                                     0)});
        }
    }
    std::printf("\n%s", table.render().c_str());
    std::printf("throughput: %.0f shots/s over %zu shots "
                "(%zu threads)\n",
                total_shots / total_seconds, total_shots,
                pool.threadCount());
    std::printf("Lower drift from E0 and smaller sigma indicate a "
                "better encoding.\n");
    tflags.report();
    return 0;
}
