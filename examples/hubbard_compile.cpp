/**
 * @file
 * Compile a Fermi-Hubbard time-evolution circuit under different
 * Fermion-to-qubit encodings and compare the circuit costs — the
 * workload the paper's introduction motivates for condensed-matter
 * simulation.
 *
 * Usage: hubbard_compile [--sites=3] [--t=1] [--u=4]
 *                        [--timeout=45] [--time=1.0]
 */

#include <cstdio>

#include "circuit/pauli_compiler.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/annealing.h"
#include "core/descent_solver.h"
#include "encodings/linear.h"
#include "fermion/models.h"

using namespace fermihedral;

namespace {

void
addRow(Table &table, const char *name,
       const fermion::FermionHamiltonian &h,
       const enc::FermionEncoding &encoding, double time)
{
    const auto qubit_h = enc::mapToQubits(h, encoding);
    const auto costs =
        circuit::compileTrotter(qubit_h, time).costs();
    table.addRow(
        {name,
         Table::num(std::int64_t(
             enc::hamiltonianPauliWeight(h, encoding))),
         Table::num(std::int64_t(qubit_h.size())),
         Table::num(std::int64_t(costs.singleQubitGates)),
         Table::num(std::int64_t(costs.cnotGates)),
         Table::num(std::int64_t(costs.totalGates)),
         Table::num(std::int64_t(costs.depth))});
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("Compile Fermi-Hubbard circuits per encoding.");
    const auto *sites = flags.addInt("sites", 3, "ring sites");
    const auto *t = flags.addDouble("t", 1.0, "hopping amplitude");
    const auto *u = flags.addDouble("u", 4.0, "on-site repulsion");
    const auto *timeout =
        flags.addDouble("timeout", 45.0, "SAT budget (s)");
    const auto *time =
        flags.addDouble("time", 1.0, "evolution time");
    if (!flags.parse(argc, argv))
        return 0;

    const auto h = fermion::fermiHubbard1D(
        static_cast<std::size_t>(*sites), *t, *u);
    std::printf("1-D Fermi-Hubbard ring: %lld sites, %zu modes, "
                "%zu terms\n",
                static_cast<long long>(*sites), h.modes(),
                h.termCount());

    // SAT + annealing pipeline (Sec. 4): Hamiltonian-independent
    // optimum, then anneal the pairing for this Hamiltonian.
    core::DescentOptions options;
    options.algebraicIndependence = h.modes() <= 4;
    options.stepTimeoutSeconds = *timeout / 3.0;
    options.totalTimeoutSeconds = *timeout;
    core::DescentSolver solver(h.modes(), options);
    const auto sat = solver.solve();
    const auto annealed = core::annealPairing(sat.encoding, h);

    Table table({"Encoding", "Ham. weight", "Pauli terms", "Single",
                 "CNOT", "Total", "Depth"});
    addRow(table, "Jordan-Wigner", h,
           enc::jordanWigner(h.modes()), *time);
    addRow(table, "Bravyi-Kitaev", h,
           enc::bravyiKitaev(h.modes()), *time);
    addRow(table, "SAT", h, sat.encoding, *time);
    addRow(table, "SAT+Anl.", h, annealed.encoding, *time);
    std::printf("\n%s", table.render().c_str());
    std::printf("annealing: %zu -> %zu Hamiltonian Pauli weight\n",
                annealed.initialCost, annealed.finalCost);
    return 0;
}
