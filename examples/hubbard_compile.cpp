/**
 * @file
 * Compile a Fermi-Hubbard time-evolution circuit under different
 * encoding strategies and compare the circuit costs — the workload
 * the paper's introduction motivates for condensed-matter
 * simulation. All encodings come from the Compiler facade; with
 * --cache-dir repeated runs reuse the solved encodings.
 *
 * Usage: hubbard_compile [--sites=3] [--t=1] [--u=4]
 *                        [--timeout=45] [--time=1.0]
 *                        [--cache-dir=PATH]
 *                        [--cache-stats-json=FILE]
 */

#include <cstdio>
#include <fstream>

#include "api/service.h"
#include "circuit/pauli_compiler.h"
#include "common/flags.h"
#include "common/telemetry_flags.h"
#include "common/table.h"
#include "fermion/models.h"

using namespace fermihedral;

namespace {

void
addRow(Table &table, const char *name,
       const api::CompilationResult &result, double time)
{
    const auto costs =
        circuit::compileTrotter(result.qubitHamiltonian, time)
            .costs();
    table.addRow(
        {name, Table::num(std::int64_t(result.cost)),
         Table::num(std::int64_t(result.qubitHamiltonian.size())),
         Table::num(std::int64_t(costs.singleQubitGates)),
         Table::num(std::int64_t(costs.cnotGates)),
         Table::num(std::int64_t(costs.totalGates)),
         Table::num(std::int64_t(costs.depth))});
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("Compile Fermi-Hubbard circuits per encoding.");
    const auto *sites = flags.addInt("sites", 3, "ring sites");
    const auto *t = flags.addDouble("t", 1.0, "hopping amplitude");
    const auto *u = flags.addDouble("u", 4.0, "on-site repulsion");
    const auto *timeout =
        flags.addDouble("timeout", 45.0, "SAT budget (s)");
    const auto *time =
        flags.addDouble("time", 1.0, "evolution time");
    const auto *cache_dir = flags.addString(
        "cache-dir", "", "on-disk encoding cache directory");
    const auto *stats_json = flags.addString(
        "cache-stats-json", "",
        "write cache statistics to this JSON file");
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();

    const auto h = fermion::fermiHubbard1D(
        static_cast<std::size_t>(*sites), *t, *u);
    std::printf("1-D Fermi-Hubbard ring: %lld sites, %zu modes, "
                "%zu terms\n",
                static_cast<long long>(*sites), h.modes(),
                h.termCount());

    api::ServiceOptions service_options;
    service_options.diskCachePath = *cache_dir;
    api::CompilerService service(service_options);

    api::CompilationRequest request;
    request.hamiltonian = h;
    request.algebraicIndependence = h.modes() <= 4;
    request.stepTimeoutSeconds = *timeout / 3.0;
    request.totalTimeoutSeconds = *timeout;

    Table table({"Encoding", "Ham. weight", "Pauli terms", "Single",
                 "CNOT", "Total", "Depth"});
    struct Entry
    {
        const char *label;
        const char *strategy;
    };
    const Entry entries[] = {
        {"Jordan-Wigner", "jordan-wigner"},
        {"Bravyi-Kitaev", "bravyi-kitaev"},
        {"SAT+Anl.", "sat+annealing"},
        {"SAT", "sat"},
    };
    api::CompilationResult annealed;
    for (const auto &entry : entries) {
        request.strategy = entry.strategy;
        auto result = service.compile(request);
        addRow(table, entry.label, result, *time);
        if (request.strategy == std::string("sat+annealing"))
            annealed = std::move(result);
    }
    std::printf("\n%s", table.render().c_str());
    std::printf("sat+annealing: Hamiltonian Pauli weight %zu "
                "(BK baseline %zu)\n",
                annealed.annealedCost, annealed.baselineCost);

    const auto stats = service.cacheStats();
    std::printf("cache: %zu hits (%zu from disk), %zu misses, "
                "%zu computes\n",
                stats.hits, stats.diskHits, stats.misses,
                stats.computes);
    if (!stats_json->empty()) {
        std::ofstream out(*stats_json);
        out << service.cacheStatsJson() << '\n';
    }
    tflags.report();
    return 0;
}
