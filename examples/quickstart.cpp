/**
 * @file
 * Quickstart: find the optimal Fermion-to-qubit encoding for a
 * small system and compare it with the textbook baselines.
 *
 * Usage: quickstart [--modes=3] [--timeout=30]
 */

#include <cstdio>

#include "common/flags.h"
#include "common/table.h"
#include "core/descent_solver.h"
#include "encodings/linear.h"
#include "encodings/ternary_tree.h"

using namespace fermihedral;

int
main(int argc, char **argv)
{
    FlagSet flags("Find a SAT-optimal Fermion-to-qubit encoding.");
    const auto *modes = flags.addInt("modes", 3, "Fermionic modes");
    const auto *timeout =
        flags.addDouble("timeout", 30.0, "total solve budget (s)");
    if (!flags.parse(argc, argv))
        return 0;

    const auto n = static_cast<std::size_t>(*modes);
    std::printf("Searching the optimal encoding for %zu modes...\n",
                n);

    core::DescentOptions options;
    options.stepTimeoutSeconds = *timeout / 3.0;
    options.totalTimeoutSeconds = *timeout;
    core::DescentSolver solver(n, options);
    const auto result = solver.solve();

    std::printf("\nOptimal Majorana operators (%s):\n",
                result.provedOptimal ? "proved optimal"
                                     : "best found in budget");
    for (std::size_t j = 0; j < n; ++j) {
        std::printf("  mode %zu:  gamma[%zu] = %s   gamma[%zu] = %s\n",
                    j, 2 * j,
                    result.encoding.majoranas[2 * j].label().c_str(),
                    2 * j + 1,
                    result.encoding.majoranas[2 * j + 1]
                        .label()
                        .c_str());
    }

    const auto validation = enc::validateEncoding(result.encoding);
    std::printf("\nconstraints: anticommutativity=%s "
                "independence=%s xy-pairing=%s\n",
                validation.anticommutativity ? "ok" : "FAIL",
                validation.algebraicIndependence ? "ok" : "FAIL",
                validation.xyPairing ? "ok" : "FAIL");

    Table table({"Encoding", "Total Pauli weight", "Per operator"});
    const auto jw = enc::jordanWigner(n);
    const auto bk = enc::bravyiKitaev(n);
    const auto tt = enc::ternaryTree(n);
    table.addRow({"Jordan-Wigner",
                  Table::num(std::int64_t(jw.totalWeight())),
                  Table::num(jw.weightPerOperator(), 2)});
    table.addRow({"Bravyi-Kitaev",
                  Table::num(std::int64_t(bk.totalWeight())),
                  Table::num(bk.weightPerOperator(), 2)});
    table.addRow({"Ternary tree",
                  Table::num(std::int64_t(tt.totalWeight())),
                  Table::num(tt.weightPerOperator(), 2)});
    table.addRow({"Fermihedral (SAT)",
                  Table::num(std::int64_t(result.cost)),
                  Table::num(result.encoding.weightPerOperator(),
                             2)});
    std::printf("\n%s", table.render().c_str());
    std::printf("SAT calls: %zu, construct %.2fs, solve %.2fs\n",
                result.satCalls, result.constructSeconds,
                result.solveSeconds);
    return 0;
}
