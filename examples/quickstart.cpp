/**
 * @file
 * Quickstart: compile a small system through the unified Compiler
 * facade under every registered encoding strategy and compare the
 * results. With --cache-dir the CompilerService persists solved
 * encodings, so a second run answers from the cache without any
 * SAT search (the cache line at the bottom reports it).
 *
 * Usage: quickstart [--modes=3] [--timeout=30] [--strategy=sat]
 *                   [--deadline-seconds=0] [--cache-dir=PATH]
 *                   [--cache-stats-json=FILE]
 */

#include <cstdio>
#include <fstream>

#include "api/service.h"
#include "api/strategy_registry.h"
#include "common/flags.h"
#include "common/telemetry_flags.h"
#include "common/table.h"
#include "hw/topology_flags.h"

using namespace fermihedral;

int
main(int argc, char **argv)
{
    FlagSet flags("Compile a small system under every encoding "
                  "strategy via the Compiler facade.");
    const auto *modes = flags.addInt("modes", 3, "Fermionic modes");
    const auto *timeout =
        flags.addDouble("timeout", 30.0, "total solve budget (s)");
    const auto *strategy = flags.addString(
        "strategy", "sat", "strategy for the detailed printout");
    const auto *cache_dir = flags.addString(
        "cache-dir", "", "on-disk encoding cache directory "
                         "(empty = in-memory only)");
    const auto *stats_json = flags.addString(
        "cache-stats-json", "",
        "write cache statistics to this JSON file");
    const auto *deadline = flags.addDouble(
        "deadline-seconds", 0.0,
        "wall-clock deadline per compilation (<= 0 = none); past "
        "it the pipeline returns its best-so-far encoding with "
        "status deadline-exceeded");
    const auto topo_flags = hw::TopologyFlags::add(flags);
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();
    const auto topology = topo_flags.resolve();

    const auto n = static_cast<std::size_t>(*modes);
    std::printf("Compiling %zu modes through the facade...\n", n);

    api::ServiceOptions service_options;
    service_options.diskCachePath = *cache_dir;
    api::CompilerService service(service_options);

    api::CompilationRequest request;
    request.modes = n;
    request.stepTimeoutSeconds = *timeout / 3.0;
    request.totalTimeoutSeconds = *timeout;
    request.deadlineSeconds = *deadline;
    // A --topology flag resolves the Auto objective to routed-cost:
    // the cost column below becomes the routed two-qubit estimate.
    if (topology)
        request.topology = *topology;

    // One request per strategy, submitted as one async batch.
    const std::vector<std::string> strategies = {
        "jordan-wigner", "bravyi-kitaev", "ternary-tree", *strategy};
    std::vector<api::CompilationRequest> batch;
    for (const std::string &name : strategies) {
        request.strategy = name;
        batch.push_back(request);
    }
    const auto results = service.compileBatch(std::move(batch));

    const auto &chosen = results.back();
    std::printf("\nMajorana operators from strategy '%s' (%s):\n",
                chosen.strategy.c_str(),
                chosen.provedOptimal ? "proved optimal"
                : chosen.fromCache   ? "cached"
                : chosen.status != api::ResultStatus::Ok
                    ? api::resultStatusName(chosen.status)
                    : "best found in budget");
    for (std::size_t j = 0; j < n; ++j) {
        std::printf("  mode %zu:  gamma[%zu] = %s   gamma[%zu] = %s\n",
                    j, 2 * j,
                    chosen.encoding.majoranas[2 * j].label().c_str(),
                    2 * j + 1,
                    chosen.encoding.majoranas[2 * j + 1]
                        .label()
                        .c_str());
    }
    std::printf("\nconstraints: anticommutativity=%s "
                "independence=%s xy-pairing=%s\n",
                chosen.validation.anticommutativity ? "ok" : "FAIL",
                chosen.validation.algebraicIndependence ? "ok"
                                                        : "FAIL",
                chosen.validation.xyPairing ? "ok" : "FAIL");

    Table table({"Strategy",
                 topology ? "Routed 2q est." : "Total Pauli weight",
                 "Per operator", "Optimal?", "SAT calls"});
    for (const auto &result : results) {
        table.addRow(
            {result.strategy, Table::num(std::int64_t(result.cost)),
             Table::num(result.encoding.weightPerOperator(), 2),
             result.provedOptimal ? "yes" : "-",
             Table::num(std::int64_t(result.satCalls))});
    }
    std::printf("\n%s", table.render().c_str());

    const auto stats = service.cacheStats();
    std::printf("registered strategies:");
    for (const auto &name : api::registeredStrategyNames())
        std::printf(" %s", name.c_str());
    std::printf("\ncache: %zu hits (%zu from disk), %zu misses, "
                "%zu computes\n",
                stats.hits, stats.diskHits, stats.misses,
                stats.computes);
    if (!stats_json->empty()) {
        std::ofstream out(*stats_json);
        out << service.cacheStatsJson() << '\n';
    }
    tflags.report();
    return 0;
}
