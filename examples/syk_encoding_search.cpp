/**
 * @file
 * Hamiltonian-dependent encoding search for the four-body SYK model
 * (the paper's quantum-field-theory workload): compare Full SAT
 * against the scalable SAT + simulated-annealing pipeline.
 *
 * Usage: syk_encoding_search [--modes=3] [--seed=7] [--timeout=60]
 */

#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/annealing.h"
#include "core/descent_solver.h"
#include "encodings/linear.h"
#include "fermion/models.h"

using namespace fermihedral;

int
main(int argc, char **argv)
{
    FlagSet flags("SYK Hamiltonian-dependent encoding search.");
    const auto *modes = flags.addInt("modes", 3, "Fermionic modes");
    const auto *seed = flags.addInt("seed", 7, "coupling seed");
    const auto *timeout =
        flags.addDouble("timeout", 60.0, "SAT budget (s)");
    if (!flags.parse(argc, argv))
        return 0;

    Rng rng(static_cast<std::uint64_t>(*seed));
    const auto n = static_cast<std::size_t>(*modes);
    const auto syk = fermion::sykModel(n, rng);
    std::printf("SYK: %zu modes (%zu Majoranas), %zu four-body "
                "terms\n",
                n, 2 * n, syk.majoranaTerms().size());

    const auto bk = enc::bravyiKitaev(n);
    const auto bk_weight = enc::hamiltonianPauliWeight(syk, bk);

    // Full SAT: the Hamiltonian-dependent objective in the model.
    core::DescentOptions full_options;
    full_options.stepTimeoutSeconds = *timeout / 3.0;
    full_options.totalTimeoutSeconds = *timeout;
    core::DescentSolver full_solver(syk, full_options);
    const auto full = full_solver.solve();

    // SAT + annealing: independent objective, then pair assignment.
    core::DescentOptions indep_options = full_options;
    core::DescentSolver indep_solver(n, indep_options);
    const auto indep = indep_solver.solve();
    const auto annealed = core::annealPairing(indep.encoding, syk);

    auto reduction = [bk_weight](std::size_t w) {
        return Table::percent(
            1.0 - double(w) / double(bk_weight), 2);
    };
    Table table({"Method", "Ham. Pauli weight", "vs BK"});
    table.addRow({"Bravyi-Kitaev",
                  Table::num(std::int64_t(bk_weight)), "-"});
    table.addRow({"SAT+Anl.",
                  Table::num(std::int64_t(annealed.finalCost)),
                  reduction(annealed.finalCost)});
    table.addRow({full.provedOptimal ? "Full SAT (optimal)"
                                     : "Full SAT (budgeted)",
                  Table::num(std::int64_t(full.cost)),
                  reduction(full.cost)});
    std::printf("\n%s", table.render().c_str());

    const auto validation = enc::validateEncoding(full.encoding);
    std::printf("Full SAT encoding valid: %s\n",
                validation.valid() ? "yes" : validation.detail.c_str());
    return 0;
}
