/**
 * @file
 * Hamiltonian-dependent encoding search for the four-body SYK model
 * (the paper's quantum-field-theory workload): compare the full
 * "sat" pipeline against the scalable "sat+annealing" strategy,
 * both through the Compiler facade.
 *
 * Usage: syk_encoding_search [--modes=3] [--seed=7] [--timeout=60]
 */

#include <cstdio>

#include "api/compiler.h"
#include "common/flags.h"
#include "common/telemetry_flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "fermion/models.h"

using namespace fermihedral;

int
main(int argc, char **argv)
{
    FlagSet flags("SYK Hamiltonian-dependent encoding search.");
    const auto *modes = flags.addInt("modes", 3, "Fermionic modes");
    const auto *seed = flags.addInt("seed", 7, "coupling seed");
    const auto *timeout =
        flags.addDouble("timeout", 60.0, "SAT budget (s)");
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();

    Rng rng(static_cast<std::uint64_t>(*seed));
    const auto n = static_cast<std::size_t>(*modes);
    const auto syk = fermion::sykModel(n, rng);
    std::printf("SYK: %zu modes (%zu Majoranas), %zu four-body "
                "terms\n",
                n, 2 * n, syk.majoranaTerms().size());

    api::CompilationRequest request;
    request.hamiltonian = syk;
    request.stepTimeoutSeconds = *timeout / 3.0;
    request.totalTimeoutSeconds = *timeout;

    api::Compiler compiler;
    request.strategy = "sat+annealing";
    const auto annealed = compiler.compile(request);
    request.strategy = "sat";
    const auto full = compiler.compile(request);

    const std::size_t bk_weight = full.baselineCost;
    auto reduction = [bk_weight](std::size_t w) {
        return Table::percent(
            1.0 - double(w) / double(bk_weight), 2);
    };
    Table table({"Method", "Ham. Pauli weight", "vs BK"});
    table.addRow({"Bravyi-Kitaev",
                  Table::num(std::int64_t(bk_weight)), "-"});
    table.addRow({"SAT+Anl.",
                  Table::num(std::int64_t(annealed.cost)),
                  reduction(annealed.cost)});
    table.addRow({full.provedOptimal ? "Full SAT (optimal)"
                                     : "Full SAT (budgeted)",
                  Table::num(std::int64_t(full.cost)),
                  reduction(full.cost)});
    std::printf("\n%s", table.render().c_str());

    std::printf("Full SAT encoding valid: %s\n",
                full.validation.valid()
                    ? "yes"
                    : full.validation.detail.c_str());
    tflags.report();
    return 0;
}
