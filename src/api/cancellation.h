/**
 * @file
 * CancellationToken: the caller-ownable cancel switch a
 * CompilationRequest carries. Copies share one flag, so the caller
 * keeps a copy, hands the request to a Compiler or CompilerService,
 * and may cancel from any thread at any time; the searches observe
 * the flag through the existing sat::Budget::stopFlag path at
 * SAT-step granularity (every budget poll, i.e.\ every solver
 * decision and every ~1024 conflicts).
 *
 * Key invariants:
 *  - requestCancel() is sticky (no un-cancel), lock-free, and safe
 *    from any thread, including concurrently with the search.
 *  - A default-constructed token is valid and never fires; every
 *    request therefore has one, and flag() is never null.
 *  - Cancellation degrades, never aborts: the pipeline returns its
 *    best-so-far (at worst closed-form baseline) encoding with
 *    ResultStatus::Cancelled.
 */

#ifndef FERMIHEDRAL_API_CANCELLATION_H
#define FERMIHEDRAL_API_CANCELLATION_H

#include <atomic>
#include <memory>

namespace fermihedral::api {

class CancellationToken
{
  public:
    CancellationToken()
        : state(std::make_shared<std::atomic<bool>>(false))
    {
    }

    /** Request cancellation (sticky; observed by all copies). */
    void
    requestCancel() const noexcept
    {
        state->store(true, std::memory_order_relaxed);
    }

    /** True once any copy requested cancellation. */
    bool
    cancelled() const noexcept
    {
        return state->load(std::memory_order_relaxed);
    }

    /** The raw flag composed into sat::Budget::stopFlag. */
    const std::atomic<bool> *
    flag() const noexcept
    {
        return state.get();
    }

  private:
    std::shared_ptr<std::atomic<bool>> state;
};

} // namespace fermihedral::api

#endif // FERMIHEDRAL_API_CANCELLATION_H
