#include "api/compiler.h"

#include "api/strategy_registry.h"
#include "common/logging.h"
#include "common/timer.h"

namespace fermihedral::api {

const char *
objectiveName(Objective objective)
{
    switch (objective) {
      case Objective::Auto: return "auto";
      case Objective::TotalWeight: return "total-weight";
      case Objective::HamiltonianWeight: return "hamiltonian-weight";
      case Objective::RoutedCost: return "routed-cost";
    }
    panic("unhandled Objective value ",
          static_cast<int>(objective));
}

const char *
resultStatusName(ResultStatus status)
{
    switch (status) {
      case ResultStatus::Ok: return "ok";
      case ResultStatus::DeadlineExceeded:
          return "deadline-exceeded";
      case ResultStatus::Cancelled: return "cancelled";
      case ResultStatus::Shed: return "shed";
      case ResultStatus::Error: return "error";
    }
    panic("unhandled ResultStatus value ",
          static_cast<int>(status));
}

Objective
CompilationRequest::resolvedObjective() const
{
    if (objective == Objective::Auto) {
        if (topology)
            return Objective::RoutedCost;
        return hamiltonian ? Objective::HamiltonianWeight
                           : Objective::TotalWeight;
    }
    if (objective == Objective::HamiltonianWeight && !hamiltonian)
        fatal("objective 'hamiltonian-weight' needs a Hamiltonian "
              "in the CompilationRequest");
    if (objective == Objective::RoutedCost && !topology)
        fatal("objective 'routed-cost' needs a topology in the "
              "CompilationRequest");
    return objective;
}

CompilationResult
Compiler::assemble(const CompilationRequest &request,
                   const SearchOutcome &outcome)
{
    Timer timer;
    CompilationResult result;
    result.encoding = outcome.encoding;
    result.cost = outcome.cost;
    result.baselineCost = outcome.baselineCost;
    result.annealedCost = outcome.annealedCost;
    result.provedOptimal = outcome.provedOptimal;
    result.satCalls = outcome.satCalls;
    result.status = outcome.status;
    result.statusMessage = outcome.statusMessage;
    result.strategy = request.strategy;
    result.objective = request.resolvedObjective();
    result.validation = enc::validateEncoding(result.encoding);
    if (request.hamiltonian) {
        result.qubitHamiltonian =
            enc::mapToQubits(*request.hamiltonian, result.encoding);
        result.measurementGroups =
            pauli::groupQubitWiseCommuting(result.qubitHamiltonian);
    }
    result.mappingSeconds = timer.seconds();
    return result;
}

CompilationResult
Compiler::compile(const CompilationRequest &request) const
{
    if (request.resolvedModes() == 0)
        fatal("CompilationRequest needs modes > 0 or a Hamiltonian");
    if (request.topology) {
        if (!request.topology->connected())
            fatal("CompilationRequest topology must be connected");
        if (request.topology->numQubits() <
            request.resolvedModes())
            fatal("topology has ", request.topology->numQubits(),
                  " qubits but the problem needs ",
                  request.resolvedModes());
    }
    const auto strategy = makeStrategy(request.strategy);
    Timer timer;
    const SearchOutcome outcome = strategy->search(request);
    const double search_seconds = timer.seconds();
    CompilationResult result = assemble(request, outcome);
    result.searchSeconds = search_seconds;
    return result;
}

} // namespace fermihedral::api
