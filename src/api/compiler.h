/**
 * @file
 * The unified compilation facade: one public entry point for the
 * whole Fermihedral pipeline (problem spec -> encoding search ->
 * qubit Hamiltonian -> measurement grouping).
 *
 * A CompilationRequest names a problem (bare mode count or a
 * FermionHamiltonian), an encoding strategy from the registry
 * (api/strategy_registry.h), an objective, the Section 3.1
 * constraint toggles and the solve budgets. Compiler::compile()
 * resolves the strategy, runs the search, and — when a Hamiltonian
 * is present — maps it to a qubit PauliSum and groups the terms
 * into qubit-wise commuting measurement families. Everything the
 * examples and benches previously wired by hand is behind this one
 * call; CompilerService (api/service.h) layers caching and async
 * batching on top.
 *
 * Key invariants:
 *  - compile() is deterministic: equal requests (with
 *    deterministic = true and budgets that do not bind) produce
 *    equal CompilationResults, which is what makes the service's
 *    content-addressed cache sound.
 *  - result.cost always equals the resolved objective re-evaluated
 *    on result.encoding, and qubitHamiltonian/measurementGroups
 *    are pure functions of (request.hamiltonian, encoding).
 *  - Unknown strategy or objective combinations are fatal
 *    diagnostics (FatalError), never silent fallbacks.
 */

#ifndef FERMIHEDRAL_API_COMPILER_H
#define FERMIHEDRAL_API_COMPILER_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "api/cancellation.h"
#include "core/descent_solver.h"
#include "encodings/encoding.h"
#include "fermion/operators.h"
#include "hw/topology.h"
#include "pauli/commuting_groups.h"
#include "pauli/pauli_sum.h"

namespace fermihedral::api {

/** What the encoding search minimises. */
enum class Objective
{
    /**
     * Pick automatically: RoutedCost when the request carries a
     * hardware topology, else HamiltonianWeight when it carries a
     * Hamiltonian, TotalWeight otherwise.
     */
    Auto,
    /** Hamiltonian-independent total Pauli weight (Sec. 3.6). */
    TotalWeight,
    /** Eq. 14 Hamiltonian-dependent Pauli weight (Sec. 3.7). */
    HamiltonianWeight,
    /**
     * Connectivity-aware estimated two-qubit gate cost on the
     * request's topology (hw/routed_cost.h); requires `topology`.
     */
    RoutedCost,
};

/** Printable name of a resolved objective. */
const char *objectiveName(Objective objective);

/**
 * How a compilation ended. Everything except Error and Shed still
 * carries a valid encoding (the degradation ladder: best-so-far SAT
 * model, else the closed-form Bravyi-Kitaev baseline), so callers
 * can serve degraded answers instead of failing.
 */
enum class ResultStatus
{
    /** Full-fidelity result (the only status the caches store). */
    Ok,
    /** The request's deadline expired; best-so-far returned. */
    DeadlineExceeded,
    /** The caller's CancellationToken fired; best-so-far returned. */
    Cancelled,
    /** Rejected by admission control; no search ran, no encoding. */
    Shed,
    /** A post-validation failure; statusMessage has the detail. */
    Error,
};

/** Printable name of a result status. */
const char *resultStatusName(ResultStatus status);

/** One compilation problem: spec, strategy, constraints, budgets. */
struct CompilationRequest
{
    /** Fermionic mode count (ignored when `hamiltonian` is set). */
    std::size_t modes = 0;

    /** The problem Hamiltonian (enables mapping + measurement). */
    std::optional<fermion::FermionHamiltonian> hamiltonian;

    /**
     * Hardware connectivity the encoding should target. Setting it
     * resolves an Auto objective to RoutedCost (and is required by
     * RoutedCost and the sat-routed / pick-routed strategies).
     * Problem identity, not an execution knob: it IS part of the
     * cache identity whenever the resolved objective consumes it.
     */
    std::optional<hw::Topology> topology;

    /** Registered strategy name (see api/strategy_registry.h). */
    std::string strategy = "sat";

    /** Search objective; Auto resolves from the problem spec. */
    Objective objective = Objective::Auto;

    /** Keep the power-set algebraic independence clauses. */
    bool algebraicIndependence = true;

    /** Keep the vacuum X/Y-pairing clauses. */
    bool vacuumPreservation = true;

    /** Wall-clock budget for each individual SAT call (seconds). */
    double stepTimeoutSeconds = 15.0;

    /** Wall-clock budget for the whole search (seconds). */
    double totalTimeoutSeconds = 45.0;

    /**
     * Wall-clock deadline for the whole request (<= 0 = none). The
     * deadline caps every stage's budget; past it the pipeline
     * degrades to its best-so-far encoding with
     * ResultStatus::DeadlineExceeded instead of running on. Under a
     * CompilerService the clock starts at submit(), so time queued
     * counts against it. An execution knob like the budgets: NOT
     * part of the cache identity.
     */
    double deadlineSeconds = 0.0;

    /**
     * Caller-ownable cancel switch (see api/cancellation.h). Keep a
     * copy and requestCancel() from any thread; the search stops at
     * the next budget poll and returns best-so-far with
     * ResultStatus::Cancelled. An execution knob: NOT part of the
     * cache identity.
     */
    CancellationToken cancellation;

    /** Threads racing each SAT step (0 = hardware concurrency). */
    std::size_t threads = 1;

    /** Portfolio instances per SAT step (0 = one per thread). */
    std::size_t portfolioInstances = 0;

    /** Fixed-winner arbitration (bit-identical across threads). */
    bool deterministic = true;

    /** Simplify the clause database before the first SAT call. */
    bool preprocess = true;

    /** Keep learnt clauses across descent steps (carry-over). */
    bool carryLearnts = true;

    /** Inprocess clause databases between descent steps. */
    bool inprocess = true;

    /**
     * Per-bound progress observer forwarded to every descent the
     * strategy runs (see core::DescentProgress). An execution knob
     * like the budgets: NOT part of the request's cache identity —
     * two requests differing only here hit the same cache entry.
     */
    std::function<void(const core::DescentProgress &)> progress;

    /** Mode count the search runs at (Hamiltonian wins). */
    std::size_t resolvedModes() const
    {
        return hamiltonian ? hamiltonian->modes() : modes;
    }

    /** The objective after Auto resolution (fatal on mismatch). */
    Objective resolvedObjective() const;
};

/**
 * What an EncodingStrategy returns: the encoding plus the search
 * provenance the facade folds into the CompilationResult.
 */
struct SearchOutcome
{
    enc::FermionEncoding encoding;

    /** Objective value of `encoding`. */
    std::size_t cost = 0;

    /** Objective value of the Bravyi-Kitaev baseline. */
    std::size_t baselineCost = 0;

    /**
     * Objective value after the Algorithm 2 annealing stage, when
     * the strategy ran one (0 otherwise).
     */
    std::size_t annealedCost = 0;

    /** The search proved `cost` optimal (UNSAT at cost - 1). */
    bool provedOptimal = false;

    /** SAT solve() calls made (0 for closed-form strategies). */
    std::size_t satCalls = 0;

    /**
     * Transport metadata, not provenance: how the search ended.
     * Never serialized — caches only ever store Ok outcomes, so a
     * parsed outcome's default Ok is correct by construction.
     */
    ResultStatus status = ResultStatus::Ok;

    /** Human-readable detail for non-Ok statuses. */
    std::string statusMessage;
};

/** The full output of one compilation. */
struct CompilationResult
{
    /** The chosen Fermion-to-qubit encoding. */
    enc::FermionEncoding encoding;

    /**
     * The problem Hamiltonian mapped through `encoding` (empty sum
     * when the request carried no Hamiltonian).
     */
    pauli::PauliSum qubitHamiltonian;

    /**
     * Measurement plan: the qubit Hamiltonian's terms partitioned
     * into qubit-wise commuting families (one basis rotation each).
     */
    std::vector<pauli::CommutingGroup> measurementGroups;

    // --- cost -------------------------------------------------
    /** Objective value of `encoding`. */
    std::size_t cost = 0;
    /** Objective value of the Bravyi-Kitaev baseline. */
    std::size_t baselineCost = 0;
    /** Post-annealing objective value (0 when not annealed). */
    std::size_t annealedCost = 0;
    /** `cost` is proved optimal. */
    bool provedOptimal = false;

    // --- provenance -------------------------------------------
    /** Strategy that produced the encoding. */
    std::string strategy;
    /** Resolved objective the search minimised. */
    Objective objective = Objective::TotalWeight;
    /** SAT solve() calls made (0 = no SAT involved). */
    std::size_t satCalls = 0;
    /** Constraint checks re-evaluated on `encoding`. */
    enc::EncodingValidation validation;

    // --- run stats (not part of the serialized identity) ------
    /** Wall-clock seconds spent in the encoding search. */
    double searchSeconds = 0.0;
    /** Wall-clock seconds spent mapping + grouping. */
    double mappingSeconds = 0.0;
    /** The result came from a CompilerService cache hit. */
    bool fromCache = false;
    /** The result shared another in-flight request's search. */
    bool coalesced = false;
    /**
     * How the compilation ended (see ResultStatus). Non-Ok results
     * other than Shed/Error still carry a valid encoding; they are
     * never cached.
     */
    ResultStatus status = ResultStatus::Ok;
    /** Human-readable detail for non-Ok statuses. */
    std::string statusMessage;
};

/**
 * The facade: resolves the strategy by name and runs the pipeline
 * end to end. Stateless and cheap to construct; for caching and
 * async submission use CompilerService (api/service.h).
 */
class Compiler
{
  public:
    /** Run the full pipeline for one request. */
    CompilationResult compile(const CompilationRequest &request) const;

    /**
     * Rebuild the Hamiltonian-dependent parts of a result (qubit
     * Hamiltonian, measurement groups, validation) from a search
     * outcome — the deterministic step shared by fresh compiles
     * and cache hits.
     */
    static CompilationResult assemble(
        const CompilationRequest &request,
        const SearchOutcome &outcome);
};

} // namespace fermihedral::api

#endif // FERMIHEDRAL_API_COMPILER_H
