#include "api/model_spec.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/rng.h"
#include "fermion/models.h"

namespace fermihedral::api {

namespace {

constexpr std::uint64_t kDefaultSykSeed = 7;
constexpr double kHubbardT = 1.0;
constexpr double kHubbardU = 4.0;

/** Strict decimal size_t; nullopt on anything else. */
std::optional<std::size_t>
parseCount(std::string_view text)
{
    if (text.empty() || text.size() > 9)
        return std::nullopt;
    std::size_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return std::nullopt;
        value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    return value;
}

bool
failSpec(std::string *error, std::string message)
{
    if (error)
        *error = std::move(message);
    return false;
}

/**
 * Periodic L×W Hubbard lattice edge list over sites indexed
 * y * length + x. Wrap edges collapse for dimensions of size 1
 * (self-loop: dropped) and size 2 (duplicate: deduplicated).
 */
std::vector<std::pair<std::uint32_t, std::uint32_t>>
hubbardLatticeEdges(std::size_t length, std::size_t width)
{
    std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
    const auto site = [length](std::size_t x, std::size_t y) {
        return static_cast<std::uint32_t>(y * length + x);
    };
    const auto add = [&edges](std::uint32_t a, std::uint32_t b) {
        if (a == b)
            return;
        edges.insert({std::min(a, b), std::max(a, b)});
    };
    for (std::size_t y = 0; y < width; ++y) {
        for (std::size_t x = 0; x < length; ++x) {
            add(site(x, y), site((x + 1) % length, y));
            add(site(x, y), site(x, (y + 1) % width));
        }
    }
    return {edges.begin(), edges.end()};
}

/**
 * Resolve one (range-free) model spec into the request's problem
 * fields. Returns false with *error set on malformed specs.
 */
bool
applyModelSpec(std::string_view spec, CompilationRequest &request,
               std::string *error)
{
    const auto reject = [&](std::string_view detail) {
        return failSpec(error, "malformed model spec '" +
                                   std::string(spec) + "': " +
                                   std::string(detail));
    };
    const auto checkModes = [&](std::size_t modes) {
        if (modes == 0)
            return reject("mode count must be positive");
        if (modes > pauli::PauliString::maxQubits)
            return reject("mode count exceeds the " +
                          std::to_string(
                              pauli::PauliString::maxQubits) +
                          "-qubit ceiling");
        return true;
    };

    const std::size_t colon = spec.find(':');
    const std::string_view family = spec.substr(0, colon);
    const std::string_view args =
        colon == std::string_view::npos ? std::string_view{}
                                        : spec.substr(colon + 1);

    if (family == "h2") {
        if (colon != std::string_view::npos)
            return reject("h2 takes no parameters");
        request.hamiltonian =
            fermion::h2Sto3gIntegrals().toHamiltonian();
        return true;
    }
    if (family == "modes") {
        const auto modes = parseCount(args);
        if (!modes)
            return reject("expected modes:<count>");
        if (!checkModes(*modes))
            return false;
        request.modes = *modes;
        request.hamiltonian.reset();
        return true;
    }
    if (family == "hubbard1d") {
        const auto sites = parseCount(args);
        if (!sites || *sites < 2)
            return reject("expected hubbard1d:<sites >= 2>");
        if (!checkModes(2 * *sites))
            return false;
        request.hamiltonian = fermion::fermiHubbard1D(
            *sites, kHubbardT, kHubbardU);
        return true;
    }
    if (family == "hubbard") {
        const std::size_t x = args.find('x');
        if (x == std::string_view::npos)
            return reject("expected hubbard:<length>x<width>");
        const auto length = parseCount(args.substr(0, x));
        const auto width = parseCount(args.substr(x + 1));
        if (!length || !width || *length == 0 || *width == 0)
            return reject("expected hubbard:<length>x<width>");
        const std::size_t sites = *length * *width;
        if (sites < 2)
            return reject("lattice needs at least 2 sites");
        if (!checkModes(2 * sites))
            return false;
        request.hamiltonian = fermion::fermiHubbard(
            sites, hubbardLatticeEdges(*length, *width),
            kHubbardT, kHubbardU);
        return true;
    }
    if (family == "syk") {
        const std::size_t colon2 = args.find(':');
        const auto modes = parseCount(args.substr(0, colon2));
        std::uint64_t seed = kDefaultSykSeed;
        if (colon2 != std::string_view::npos) {
            const auto parsed = parseCount(args.substr(colon2 + 1));
            if (!parsed)
                return reject("expected syk:<modes>[:<seed>]");
            seed = *parsed;
        }
        if (!modes || *modes < 2)
            return reject("expected syk:<modes >= 2>");
        if (!checkModes(*modes))
            return false;
        Rng rng(seed);
        request.hamiltonian = fermion::sykModel(*modes, rng);
        return true;
    }
    return reject("unknown model family '" + std::string(family) +
                  "' (modes, h2, hubbard, hubbard1d, syk)");
}

/** "A..B" -> [A, B]; "A" -> [A, A]; nullopt on malformed. */
std::optional<std::pair<std::size_t, std::size_t>>
parseRange(std::string_view text)
{
    const std::size_t dots = text.find("..");
    if (dots == std::string_view::npos) {
        const auto value = parseCount(text);
        if (!value)
            return std::nullopt;
        return std::make_pair(*value, *value);
    }
    const auto low = parseCount(text.substr(0, dots));
    const auto high = parseCount(text.substr(dots + 2));
    if (!low || !high || *low > *high)
        return std::nullopt;
    return std::make_pair(*low, *high);
}

/** Expand one warm item's model part into concrete model specs. */
std::vector<std::string>
expandModelRanges(const std::string &model)
{
    std::vector<std::string> specs;
    const std::size_t colon = model.find(':');
    const std::string family = model.substr(0, colon);
    const std::string args =
        colon == std::string::npos ? "" : model.substr(colon + 1);

    if (family == "hubbard" && colon != std::string::npos) {
        // hubbard:L1xW1..L2xW2 sweeps both dimensions.
        const std::size_t dots = args.find("..");
        if (dots != std::string::npos) {
            const std::string low = args.substr(0, dots);
            const std::string high = args.substr(dots + 2);
            const std::size_t x1 = low.find('x');
            const std::size_t x2 = high.find('x');
            const auto l1 = parseCount(
                std::string_view(low).substr(0, x1));
            const auto w1 =
                x1 == std::string::npos
                    ? std::nullopt
                    : parseCount(std::string_view(low).substr(x1 + 1));
            const auto l2 = parseCount(
                std::string_view(high).substr(0, x2));
            const auto w2 =
                x2 == std::string::npos
                    ? std::nullopt
                    : parseCount(
                          std::string_view(high).substr(x2 + 1));
            if (!l1 || !w1 || !l2 || !w2 || *l1 > *l2 || *w1 > *w2)
                fatal("malformed warm range '", model,
                      "': expected hubbard:L1xW1..L2xW2");
            for (std::size_t w = *w1; w <= *w2; ++w)
                for (std::size_t l = *l1; l <= *l2; ++l)
                    specs.push_back("hubbard:" + std::to_string(l) +
                                    "x" + std::to_string(w));
            return specs;
        }
        specs.push_back(model);
        return specs;
    }
    if ((family == "modes" || family == "syk" ||
         family == "hubbard1d") &&
        colon != std::string::npos &&
        args.find("..") != std::string::npos &&
        args.find(':') == std::string::npos) {
        const auto range = parseRange(args);
        if (!range)
            fatal("malformed warm range '", model,
                  "': expected ", family, ":A..B");
        for (std::size_t n = range->first; n <= range->second; ++n)
            specs.push_back(family + ":" + std::to_string(n));
        return specs;
    }
    specs.push_back(model);
    return specs;
}

} // namespace

std::optional<CompilationRequest>
tryBuildRequest(const RequestSpec &spec, std::string *error)
{
    CompilationRequest request;
    if (!applyModelSpec(spec.problem, request, error))
        return std::nullopt;
    if (!spec.topology.empty()) {
        std::string topology_error;
        auto topology = hw::Topology::tryParseSpec(
            spec.topology, &topology_error);
        if (!topology) {
            failSpec(error, std::move(topology_error));
            return std::nullopt;
        }
        if (!topology->connected()) {
            failSpec(error, "topology '" + spec.topology +
                                "' is not connected");
            return std::nullopt;
        }
        if (topology->numQubits() < request.resolvedModes()) {
            failSpec(error,
                     "topology '" + spec.topology + "' has " +
                         std::to_string(topology->numQubits()) +
                         " qubits but the problem needs " +
                         std::to_string(request.resolvedModes()));
            return std::nullopt;
        }
        request.topology = *std::move(topology);
    } else if (spec.objective == Objective::RoutedCost) {
        failSpec(error, "objective 'routed-cost' needs a topology "
                        "in the request spec");
        return std::nullopt;
    }
    request.strategy = spec.strategy;
    request.objective = spec.objective;
    request.algebraicIndependence = spec.algebraicIndependence;
    request.vacuumPreservation = spec.vacuumPreservation;
    request.stepTimeoutSeconds = spec.stepTimeoutSeconds;
    request.totalTimeoutSeconds = spec.totalTimeoutSeconds;
    request.deadlineSeconds = spec.deadlineSeconds;
    return request;
}

CompilationRequest
buildRequest(const RequestSpec &spec)
{
    std::string error;
    auto request = tryBuildRequest(spec, &error);
    if (!request)
        fatal(error);
    return *std::move(request);
}

std::vector<RequestSpec>
expandWarmSpec(const std::string &spec)
{
    std::vector<RequestSpec> expanded;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t end = spec.find_first_of(";,", start);
        if (end == std::string::npos)
            end = spec.size();
        std::string item = spec.substr(start, end - start);
        start = end + 1;
        // Trim surrounding spaces so flag values read naturally.
        while (!item.empty() && item.front() == ' ')
            item.erase(item.begin());
        while (!item.empty() && item.back() == ' ')
            item.pop_back();
        if (item.empty())
            continue;

        RequestSpec base;
        const std::size_t at = item.find('@');
        if (at != std::string::npos) {
            base.strategy = item.substr(at + 1);
            if (base.strategy.empty())
                fatal("malformed warm item '", item,
                      "': empty strategy after '@'");
            item.resize(at);
        }
        for (const std::string &model : expandModelRanges(item)) {
            base.problem = model;
            // Validate eagerly: --warm specs are operator input,
            // so a typo should fail at startup, not mid-sweep.
            std::string error;
            if (!tryBuildRequest(base, &error))
                fatal(error);
            expanded.push_back(base);
        }
    }
    if (expanded.empty())
        fatal("warm spec '", spec, "' names no models");
    return expanded;
}

} // namespace fermihedral::api
