/**
 * @file
 * Model specs and wire request specs: the problem-naming layer the
 * encoding daemon and its warm-start mode share. A *model spec* is
 * a short string naming a problem from the paper's benchmark
 * families — `modes:N` (bare mode count), `h2` (the STO-3G
 * molecule), `hubbard:LxW` (periodic L×W Fermi-Hubbard lattice,
 * t = 1, U = 4), `hubbard1d:S` (periodic ring), `syk:N[:seed]`
 * (four-body SYK, default seed 7) — and a *RequestSpec* bundles a
 * model spec with the strategy, objective, constraint toggles and
 * budgets, i.e.\ everything a CompilationRequest needs that fits
 * on a wire (docs/PROTOCOL.md documents the serialized form,
 * api/serialize.h implements it).
 *
 * Warm sweeps extend the model grammar with ranges for library
 * precompilation (`--warm`): `modes:2..5`, `syk:2..4`,
 * `hubbard:1x2..2x2` (both dimensions sweep), items separated by
 * `;` or `,`, each optionally suffixed `@strategy`.
 *
 * Key invariants:
 *  - buildRequest() is deterministic: the same RequestSpec always
 *    produces the same CompilationRequest (models with random
 *    couplings derive them from the spec's seed), which is what
 *    makes a spec a valid cache-warming unit — the daemon's store
 *    key depends only on what the spec names.
 *  - tryParseModelSpec()/tryBuildRequest() reject rather than
 *    clamp: a malformed spec or one whose mode count exceeds
 *    pauli::PauliString::maxQubits returns nullopt with a
 *    diagnostic in *error, never a silently altered problem.
 *  - expandWarmSpec() is fatal on malformed input (it parses
 *    operator-written flags, not peer bytes) and expands ranges in
 *    deterministic ascending order.
 */

#ifndef FERMIHEDRAL_API_MODEL_SPEC_H
#define FERMIHEDRAL_API_MODEL_SPEC_H

#include <optional>
#include <string>
#include <vector>

#include "api/compiler.h"

namespace fermihedral::api {

/** Everything a compile request carries over the wire. */
struct RequestSpec
{
    /** Model spec naming the problem (see file docs). */
    std::string problem = "modes:2";

    /** Registered strategy name. */
    std::string strategy = "sat";

    /** Objective; Auto resolves from the problem spec. */
    Objective objective = Objective::Auto;

    /**
     * Hardware topology spec ("grid:2x4", "heavy-hex:1", ...; see
     * hw/topology.h), empty = none. Required when the objective is
     * routed-cost; with Auto it switches the resolved objective to
     * routed-cost.
     */
    std::string topology;

    /** Section 3.1 constraint toggles. */
    bool algebraicIndependence = true;
    bool vacuumPreservation = true;

    /** Budgets and deadline (execution knobs, not identity). */
    double stepTimeoutSeconds = 15.0;
    double totalTimeoutSeconds = 45.0;
    double deadlineSeconds = 0.0;
};

/**
 * Resolve the spec into a full CompilationRequest (building the
 * named Hamiltonian when the family carries one). On failure
 * returns nullopt and, when `error` is non-null, a one-line
 * diagnostic.
 */
std::optional<CompilationRequest> tryBuildRequest(
    const RequestSpec &spec, std::string *error);

/** tryBuildRequest with malformed specs as fatal diagnostics. */
CompilationRequest buildRequest(const RequestSpec &spec);

/**
 * Expand a warm-sweep spec (see file docs) into one RequestSpec
 * per (model, strategy) point, budgets left at their defaults for
 * the caller to override. Malformed specs are fatal.
 */
std::vector<RequestSpec> expandWarmSpec(const std::string &spec);

} // namespace fermihedral::api

#endif // FERMIHEDRAL_API_MODEL_SPEC_H
