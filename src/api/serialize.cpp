#include "api/serialize.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/logging.h"
#include "hw/topology.h"

namespace fermihedral::api {

namespace {

constexpr const char *kEncodingHeader = "fermihedral-encoding v1";
constexpr const char *kOutcomeHeader = "fermihedral-outcome v1";
constexpr const char *kResultHeader = "fermihedral-result v1";
constexpr const char *kRequestHeader = "fermihedral-request v1";

/** Bit-exact hexfloat rendering (C99 %a). */
std::string
hexDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%a", value);
    return buffer;
}

/**
 * Line cursor over the serialized text. All take*() helpers set
 * `failed` instead of throwing, so tryParse*() stays silent on
 * corrupted input.
 */
struct Reader
{
    std::string_view text;
    std::size_t pos = 0;
    bool failed = false;

    /** Next line without its terminator; fails at end of input. */
    std::string_view
    takeLine()
    {
        if (failed || pos >= text.size()) {
            failed = true;
            return {};
        }
        const std::size_t eol = text.find('\n', pos);
        const std::size_t end =
            eol == std::string_view::npos ? text.size() : eol;
        std::string_view line = text.substr(pos, end - pos);
        pos = eol == std::string_view::npos ? text.size() : eol + 1;
        return line;
    }

    /** Consume a line that must equal `expected` verbatim. */
    void
    expectLine(std::string_view expected)
    {
        if (takeLine() != expected)
            failed = true;
    }

    /** Consume "<key> <value>" and return the value part. */
    std::string_view
    takeField(std::string_view key)
    {
        const std::string_view line = takeLine();
        if (failed || line.size() < key.size() + 2 ||
            line.substr(0, key.size()) != key ||
            line[key.size()] != ' ') {
            failed = true;
            return {};
        }
        return line.substr(key.size() + 1);
    }

    std::size_t
    takeSize(std::string_view key)
    {
        const std::string_view value = takeField(key);
        if (failed)
            return 0;
        // Strict decimal only: strtoull's wider grammar (signs,
        // whitespace, 0x) would let corrupted fields mis-parse
        // into huge values instead of being rejected. 18 digits
        // also keeps every accepted value below 2^63.
        if (value.empty() || value.size() > 18) {
            failed = true;
            return 0;
        }
        std::size_t parsed = 0;
        for (const char c : value) {
            if (c < '0' || c > '9') {
                failed = true;
                return 0;
            }
            parsed = parsed * 10 + static_cast<std::size_t>(c - '0');
        }
        return parsed;
    }

    bool
    takeBool(std::string_view key)
    {
        const std::string_view value = takeField(key);
        if (value == "0")
            return false;
        if (value == "1")
            return true;
        failed = true;
        return false;
    }

    /** True when every byte of the input has been consumed. */
    bool
    atEnd() const
    {
        return !failed && pos >= text.size();
    }
};

/** Hexfloat (or any strtod-accepted) token -> double. */
std::optional<double>
parseDouble(std::string_view token)
{
    const std::string copy(token);
    char *end = nullptr;
    const double value = std::strtod(copy.c_str(), &end);
    if (copy.empty() || end != copy.c_str() + copy.size())
        return std::nullopt;
    return value;
}

/**
 * Validate and parse a Pauli label without going through the fatal
 * path of PauliString::fromLabel, so corrupted input stays silent.
 */
std::optional<pauli::PauliString>
parseLabel(std::string_view label, std::size_t expected_qubits)
{
    std::size_t prefix = 0;
    while (prefix < label.size() &&
           (label[prefix] == '-' || label[prefix] == '+' ||
            label[prefix] == 'i'))
        ++prefix;
    const std::string_view ops = label.substr(prefix);
    if (ops.size() != expected_qubits ||
        ops.size() > pauli::PauliString::maxQubits)
        return std::nullopt;
    for (const char c : ops) {
        if (c != 'I' && c != 'X' && c != 'Y' && c != 'Z')
            return std::nullopt;
    }
    return pauli::PauliString::fromLabel(label);
}

void
appendEncoding(std::ostringstream &out,
               const enc::FermionEncoding &encoding)
{
    out << kEncodingHeader << '\n'
        << "modes " << encoding.modes << '\n'
        << "qubits " << encoding.numQubits() << '\n'
        << "majoranas " << encoding.majoranas.size() << '\n';
    for (const auto &majorana : encoding.majoranas)
        out << majorana.label() << '\n';
}

std::optional<enc::FermionEncoding>
readEncoding(Reader &reader)
{
    reader.expectLine(kEncodingHeader);
    enc::FermionEncoding encoding;
    encoding.modes = reader.takeSize("modes");
    const std::size_t qubits = reader.takeSize("qubits");
    const std::size_t count = reader.takeSize("majoranas");
    if (reader.failed || qubits > pauli::PauliString::maxQubits ||
        count != 2 * encoding.modes)
        return std::nullopt;
    encoding.majoranas.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const auto string = parseLabel(reader.takeLine(), qubits);
        if (reader.failed || !string)
            return std::nullopt;
        encoding.majoranas.push_back(*string);
    }
    return encoding;
}

void
appendOutcomeFields(std::ostringstream &out,
                    const SearchOutcome &outcome)
{
    out << "cost " << outcome.cost << '\n'
        << "baseline " << outcome.baselineCost << '\n'
        << "annealed " << outcome.annealedCost << '\n'
        << "optimal " << (outcome.provedOptimal ? 1 : 0) << '\n'
        << "satcalls " << outcome.satCalls << '\n';
}

std::optional<SearchOutcome>
readOutcomeFields(Reader &reader)
{
    SearchOutcome outcome;
    outcome.cost = reader.takeSize("cost");
    outcome.baselineCost = reader.takeSize("baseline");
    outcome.annealedCost = reader.takeSize("annealed");
    outcome.provedOptimal = reader.takeBool("optimal");
    outcome.satCalls = reader.takeSize("satcalls");
    if (reader.failed)
        return std::nullopt;
    return outcome;
}

std::optional<Objective>
objectiveFromName(std::string_view name)
{
    if (name == objectiveName(Objective::TotalWeight))
        return Objective::TotalWeight;
    if (name == objectiveName(Objective::HamiltonianWeight))
        return Objective::HamiltonianWeight;
    if (name == objectiveName(Objective::RoutedCost))
        return Objective::RoutedCost;
    return std::nullopt;
}

} // namespace

std::string
serializeEncoding(const enc::FermionEncoding &encoding)
{
    std::ostringstream out;
    appendEncoding(out, encoding);
    return out.str();
}

std::optional<enc::FermionEncoding>
tryParseEncoding(std::string_view text)
{
    Reader reader{text};
    const auto encoding = readEncoding(reader);
    if (!encoding || !reader.atEnd())
        return std::nullopt;
    return encoding;
}

enc::FermionEncoding
parseEncoding(std::string_view text)
{
    auto encoding = tryParseEncoding(text);
    if (!encoding)
        fatal("malformed serialized FermionEncoding (expected the '",
              kEncodingHeader, "' format)");
    return *std::move(encoding);
}

std::string
serializeOutcome(const SearchOutcome &outcome)
{
    std::ostringstream out;
    out << kOutcomeHeader << '\n';
    appendOutcomeFields(out, outcome);
    appendEncoding(out, outcome.encoding);
    return out.str();
}

std::optional<SearchOutcome>
tryParseOutcome(std::string_view text)
{
    Reader reader{text};
    reader.expectLine(kOutcomeHeader);
    auto outcome = readOutcomeFields(reader);
    if (!outcome)
        return std::nullopt;
    const auto encoding = readEncoding(reader);
    if (!encoding || !reader.atEnd())
        return std::nullopt;
    outcome->encoding = *encoding;
    return outcome;
}

std::string
serializeResult(const CompilationResult &result)
{
    std::ostringstream out;
    out << kResultHeader << '\n'
        << "strategy " << result.strategy << '\n'
        << "objective " << objectiveName(result.objective) << '\n';
    SearchOutcome outcome;
    outcome.cost = result.cost;
    outcome.baselineCost = result.baselineCost;
    outcome.annealedCost = result.annealedCost;
    outcome.provedOptimal = result.provedOptimal;
    outcome.satCalls = result.satCalls;
    appendOutcomeFields(out, outcome);
    appendEncoding(out, result.encoding);

    const auto &terms = result.qubitHamiltonian.terms();
    out << "hamiltonian " << result.qubitHamiltonian.numQubits()
        << ' ' << terms.size() << '\n';
    for (const auto &term : terms) {
        out << hexDouble(term.coefficient.real()) << ' '
            << hexDouble(term.coefficient.imag()) << ' '
            << term.string.label() << '\n';
    }
    out << "groups " << result.measurementGroups.size() << '\n';
    for (const auto &group : result.measurementGroups) {
        out << group.basis.label() << ' '
            << group.termIndices.size();
        for (const std::size_t index : group.termIndices)
            out << ' ' << index;
        out << '\n';
    }
    return out.str();
}

std::optional<CompilationResult>
tryParseResult(std::string_view text)
{
    Reader reader{text};
    reader.expectLine(kResultHeader);
    CompilationResult result;
    result.strategy = std::string(reader.takeField("strategy"));
    const auto objective =
        objectiveFromName(reader.takeField("objective"));
    const auto outcome = readOutcomeFields(reader);
    if (reader.failed || !objective || !outcome)
        return std::nullopt;
    result.objective = *objective;
    result.cost = outcome->cost;
    result.baselineCost = outcome->baselineCost;
    result.annealedCost = outcome->annealedCost;
    result.provedOptimal = outcome->provedOptimal;
    result.satCalls = outcome->satCalls;

    const auto encoding = readEncoding(reader);
    if (!encoding)
        return std::nullopt;
    result.encoding = *encoding;

    // "hamiltonian <qubits> <terms>"
    const std::string_view ham = reader.takeField("hamiltonian");
    std::size_t ham_qubits = 0, term_count = 0;
    {
        const std::string copy(ham);
        char *end = nullptr;
        ham_qubits = std::strtoull(copy.c_str(), &end, 10);
        if (end == copy.c_str() || *end != ' ')
            return std::nullopt;
        char *end2 = nullptr;
        term_count = std::strtoull(end + 1, &end2, 10);
        if (end2 == end + 1 || *end2 != '\0')
            return std::nullopt;
    }
    if (ham_qubits > pauli::PauliString::maxQubits)
        return std::nullopt;
    result.qubitHamiltonian = pauli::PauliSum(ham_qubits);
    for (std::size_t i = 0; i < term_count; ++i) {
        const std::string_view line = reader.takeLine();
        if (reader.failed)
            return std::nullopt;
        const std::size_t first = line.find(' ');
        const std::size_t second =
            first == std::string_view::npos
                ? std::string_view::npos
                : line.find(' ', first + 1);
        if (second == std::string_view::npos)
            return std::nullopt;
        const auto re = parseDouble(line.substr(0, first));
        const auto im =
            parseDouble(line.substr(first + 1, second - first - 1));
        const auto string =
            parseLabel(line.substr(second + 1), ham_qubits);
        if (!re || !im || !string || string->phaseExp() != 0)
            return std::nullopt;
        result.qubitHamiltonian.add({*re, *im}, *string);
    }

    const std::size_t group_count = reader.takeSize("groups");
    if (reader.failed)
        return std::nullopt;
    result.measurementGroups.reserve(group_count);
    for (std::size_t g = 0; g < group_count; ++g) {
        const std::string_view line = reader.takeLine();
        if (reader.failed)
            return std::nullopt;
        const std::size_t first = line.find(' ');
        if (first == std::string_view::npos)
            return std::nullopt;
        const auto basis =
            parseLabel(line.substr(0, first), ham_qubits);
        if (!basis)
            return std::nullopt;
        pauli::CommutingGroup group;
        group.basis = *basis;
        const std::string rest(line.substr(first + 1));
        const char *cursor = rest.c_str();
        char *end = nullptr;
        const std::size_t index_count =
            std::strtoull(cursor, &end, 10);
        if (end == cursor)
            return std::nullopt;
        cursor = end;
        for (std::size_t i = 0; i < index_count; ++i) {
            if (*cursor != ' ')
                return std::nullopt;
            ++cursor;
            const std::size_t index = std::strtoull(cursor, &end, 10);
            if (end == cursor)
                return std::nullopt;
            if (index >= term_count)
                return std::nullopt;
            group.termIndices.push_back(index);
            cursor = end;
        }
        if (*cursor != '\0')
            return std::nullopt;
        result.measurementGroups.push_back(std::move(group));
    }
    if (!reader.atEnd())
        return std::nullopt;
    result.validation = enc::validateEncoding(result.encoding);
    return result;
}

std::string
serializeRequestSpec(const RequestSpec &spec)
{
    std::ostringstream out;
    out << kRequestHeader << '\n'
        << "problem " << spec.problem << '\n'
        << "strategy " << spec.strategy << '\n'
        << "objective " << objectiveName(spec.objective) << '\n'
        << "alg " << (spec.algebraicIndependence ? 1 : 0) << '\n'
        << "vac " << (spec.vacuumPreservation ? 1 : 0) << '\n'
        << "step-timeout " << hexDouble(spec.stepTimeoutSeconds)
        << '\n'
        << "total-timeout " << hexDouble(spec.totalTimeoutSeconds)
        << '\n'
        << "deadline " << hexDouble(spec.deadlineSeconds) << '\n';
    // Optional trailing line: only emitted when a topology is set,
    // so topology-free requests stay byte-identical to the format
    // the v1 wire fixtures pin.
    if (!spec.topology.empty())
        out << "topology " << spec.topology << '\n';
    return out.str();
}

std::optional<RequestSpec>
tryParseRequestSpec(std::string_view text)
{
    Reader reader{text};
    reader.expectLine(kRequestHeader);
    RequestSpec spec;
    spec.problem = std::string(reader.takeField("problem"));
    spec.strategy = std::string(reader.takeField("strategy"));
    const std::string_view objective =
        reader.takeField("objective");
    if (objective == objectiveName(Objective::Auto))
        spec.objective = Objective::Auto;
    else if (const auto parsed = objectiveFromName(objective))
        spec.objective = *parsed;
    else
        return std::nullopt;
    spec.algebraicIndependence = reader.takeBool("alg");
    spec.vacuumPreservation = reader.takeBool("vac");
    const auto step =
        parseDouble(reader.takeField("step-timeout"));
    const auto total =
        parseDouble(reader.takeField("total-timeout"));
    const auto deadline =
        parseDouble(reader.takeField("deadline"));
    if (reader.failed || !step || !total || !deadline)
        return std::nullopt;
    // Budgets are durations: NaN or negatives would silently turn
    // into "no limit" downstream, so reject them here.
    if (!(*step >= 0.0) || !(*total >= 0.0) || !(*deadline >= 0.0))
        return std::nullopt;
    spec.stepTimeoutSeconds = *step;
    spec.totalTimeoutSeconds = *total;
    spec.deadlineSeconds = *deadline;
    if (!reader.atEnd()) {
        spec.topology =
            std::string(reader.takeField("topology"));
        // The spec must name a real topology: rejecting here turns
        // a peer's bad bytes into a typed parse failure instead of
        // a fatal downstream.
        if (reader.failed || !reader.atEnd() ||
            !hw::Topology::tryParseSpec(spec.topology))
            return std::nullopt;
    }
    // A routed-cost objective without a topology could never
    // compile; reject it at the wire boundary so the daemon
    // answers with a typed error result instead of crashing.
    if (spec.objective == Objective::RoutedCost &&
        spec.topology.empty())
        return std::nullopt;
    return spec;
}

CompilationResult
parseResult(std::string_view text)
{
    auto result = tryParseResult(text);
    if (!result)
        fatal("malformed serialized CompilationResult (expected "
              "the '", kResultHeader, "' format)");
    return *std::move(result);
}

} // namespace fermihedral::api
