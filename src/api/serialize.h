/**
 * @file
 * Stable, versioned text serialization for encodings and
 * compilation results — the persistence layer under the
 * CompilerService's content-addressed cache and any future
 * wire protocol.
 *
 * Format: line-oriented ASCII with a `fermihedral-<kind> v1`
 * header. Pauli strings are stored as their labels (phase prefix
 * included), floating-point coefficients as C99 hexfloats, so
 * round trips are bit-exact, not just approximate.
 *
 * Key invariants:
 *  - parse*(serialize*(x)) reproduces every serialized field of x
 *    exactly: modes, qubit counts, phases, coefficients, group
 *    structure. Run statistics (searchSeconds, mappingSeconds,
 *    fromCache) are transport metadata and are NOT serialized;
 *    CompilationResult::validation is recomputed on parse.
 *  - tryParse*() never throws and never writes diagnostics: any
 *    malformed, truncated or version-mismatched input returns
 *    std::nullopt (the cache treats it as a miss). parse*() is the
 *    fatal-diagnostic wrapper for inputs that must be well-formed.
 *  - The version tag is bumped whenever the format changes;
 *    readers reject versions they do not know.
 */

#ifndef FERMIHEDRAL_API_SERIALIZE_H
#define FERMIHEDRAL_API_SERIALIZE_H

#include <optional>
#include <string>
#include <string_view>

#include "api/compiler.h"
#include "api/model_spec.h"
#include "encodings/encoding.h"

namespace fermihedral::api {

/** Serialize a wire request spec (`fermihedral-request v1`). */
std::string serializeRequestSpec(const RequestSpec &spec);

/** Parse a request spec; std::nullopt on any malformed input. */
std::optional<RequestSpec> tryParseRequestSpec(
    std::string_view text);

/** Serialize an encoding (versioned text, round-trip exact). */
std::string serializeEncoding(const enc::FermionEncoding &encoding);

/** Parse an encoding; std::nullopt on any malformed input. */
std::optional<enc::FermionEncoding> tryParseEncoding(
    std::string_view text);

/** Parse an encoding; malformed input is a fatal diagnostic. */
enc::FermionEncoding parseEncoding(std::string_view text);

/** Serialize a search outcome (the cache's stored payload). */
std::string serializeOutcome(const SearchOutcome &outcome);

/** Parse a search outcome; std::nullopt on malformed input. */
std::optional<SearchOutcome> tryParseOutcome(std::string_view text);

/** Serialize a full compilation result (stats excluded). */
std::string serializeResult(const CompilationResult &result);

/** Parse a result; std::nullopt on any malformed input. */
std::optional<CompilationResult> tryParseResult(
    std::string_view text);

/** Parse a result; malformed input is a fatal diagnostic. */
CompilationResult parseResult(std::string_view text);

} // namespace fermihedral::api

#endif // FERMIHEDRAL_API_SERIALIZE_H
