#include "api/service.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/serialize.h"
#include "api/strategy_registry.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "common/timer.h"

namespace fermihedral::api {

namespace {

/** The service's registry handles (allocated on first use). */
struct ServiceMetrics
{
    telemetry::Counter &cacheHits;
    telemetry::Counter &cacheMisses;
    telemetry::Counter &cacheCorrupted;
    telemetry::Gauge &queueDepth;
    telemetry::Histogram &latencySeconds;

    static ServiceMetrics &
    get()
    {
        auto &registry = telemetry::MetricsRegistry::global();
        static ServiceMetrics metrics{
            registry.counter("service.cache.hits"),
            registry.counter("service.cache.misses"),
            registry.counter("service.cache.corrupted"),
            registry.gauge("service.queue_depth"),
            registry.histogram("service.latency_seconds"),
        };
        return metrics;
    }
};

/** FNV-1a 64-bit hash of the canonical key (file names). */
std::uint64_t
fnv1a64(std::string_view text)
{
    std::uint64_t hash = 1469598103934665603ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

} // namespace

std::string
CompilerService::canonicalRequestKey(
    const CompilationRequest &request)
{
    const Objective objective = request.resolvedObjective();
    std::ostringstream key;
    key << "v1|strategy=" << request.strategy
        << "|objective=" << objectiveName(objective)
        << "|modes=" << request.resolvedModes()
        << "|alg=" << (request.algebraicIndependence ? 1 : 0)
        << "|vac=" << (request.vacuumPreservation ? 1 : 0);
    if (objective == Objective::HamiltonianWeight) {
        key << "|structure=" << std::hex;
        bool first = true;
        for (const auto &subset :
             fermion::majoranaStructure(*request.hamiltonian)) {
            key << (first ? "" : ",") << subset.mask << 'x'
                << subset.multiplicity;
            first = false;
        }
    }
    return key.str();
}

CompilerService::CompilerService(const ServiceOptions &options)
    : options(options),
      pool(ThreadPool::resolveThreadCount(
          static_cast<std::int64_t>(options.threads))),
      dispatcher([this] { dispatcherLoop(); })
{
}

CompilerService::~CompilerService()
{
    {
        std::lock_guard lock(queueMutex);
        stopping = true;
    }
    queueCv.notify_all();
    dispatcher.join();
}

std::string
CompilerService::diskEntryPath(const std::string &key) const
{
    char name[32];
    std::snprintf(name, sizeof name, "%016llx.fhc",
                  static_cast<unsigned long long>(fnv1a64(key)));
    return (std::filesystem::path(options.diskCachePath) / name)
        .string();
}

std::optional<SearchOutcome>
CompilerService::lookup(const std::string &key)
{
    {
        std::lock_guard lock(cacheMutex);
        const auto it = lruIndex.find(key);
        if (it != lruIndex.end()) {
            lru.splice(lru.begin(), lru, it->second);
            ++stats.hits;
            ServiceMetrics::get().cacheHits.add();
            return it->second->outcome;
        }
    }
    if (options.diskCachePath.empty())
        return std::nullopt;

    const std::string path = diskEntryPath(key);
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return std::nullopt;
    std::ostringstream content;
    content << file.rdbuf();
    std::string_view text{content.view()};

    // First line must restate the canonical key: it guards against
    // both corruption and (improbable) hash collisions.
    std::optional<SearchOutcome> outcome;
    const std::string expected = "key " + key + "\n";
    if (text.substr(0, expected.size()) == expected)
        outcome = tryParseOutcome(text.substr(expected.size()));
    std::lock_guard lock(cacheMutex);
    if (!outcome) {
        ++stats.corrupted;
        ServiceMetrics::get().cacheCorrupted.add();
        return std::nullopt;
    }
    ++stats.hits;
    ++stats.diskHits;
    ServiceMetrics::get().cacheHits.add();
    // Promote into the LRU so later hits skip the disk read.
    insertLocked(key, *outcome);
    return outcome;
}

void
CompilerService::insertLocked(const std::string &key,
                              const SearchOutcome &outcome)
{
    if (options.cacheCapacity == 0 ||
        lruIndex.find(key) != lruIndex.end())
        return;
    lru.push_front(CacheEntry{key, outcome});
    lruIndex.emplace(key, lru.begin());
    ++stats.insertions;
    while (lru.size() > options.cacheCapacity) {
        lruIndex.erase(lru.back().key);
        lru.pop_back();
        ++stats.evictions;
    }
}

void
CompilerService::store(const std::string &key,
                       const SearchOutcome &outcome)
{
    {
        std::lock_guard lock(cacheMutex);
        insertLocked(key, outcome);
    }
    if (options.diskCachePath.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(options.diskCachePath, ec);
    if (ec) {
        warn("encoding cache: cannot create '",
             options.diskCachePath, "': ", ec.message());
        return;
    }
    // Write-temp-then-rename: concurrent stores of the same key
    // (two pool threads computing identical requests) each land a
    // complete file; the rename is atomic, so readers never see a
    // torn entry.
    const std::string path = diskEntryPath(key);
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp."
             << std::hash<std::thread::id>{}(
                    std::this_thread::get_id());
    {
        std::ofstream file(tmp_name.str(),
                           std::ios::binary | std::ios::trunc);
        if (!file) {
            warn("encoding cache: cannot write '", tmp_name.str(),
                 "'");
            return;
        }
        file << "key " << key << '\n' << serializeOutcome(outcome);
    }
    std::filesystem::rename(tmp_name.str(), path, ec);
    if (ec)
        warn("encoding cache: cannot publish '", path, "': ",
             ec.message());
}

CompilationResult
CompilerService::compile(const CompilationRequest &request)
{
    telemetry::TraceSpan span("service.compile");
    if (span.active())
        span.arg("strategy", request.strategy);
    const std::string key = canonicalRequestKey(request);
    if (auto cached = lookup(key)) {
        CompilationResult result =
            Compiler::assemble(request, *cached);
        result.fromCache = true;
        if (span.active())
            span.arg("cached", true);
        return result;
    }

    Timer timer;
    const auto strategy = makeStrategy(request.strategy);
    const SearchOutcome outcome = strategy->search(request);
    const double search_seconds = timer.seconds();
    {
        std::lock_guard lock(cacheMutex);
        ++stats.misses;
        ++stats.computes;
    }
    ServiceMetrics::get().cacheMisses.add();
    // Per-strategy compile counter: the name lookup takes the
    // registry mutex, which a full strategy search dwarfs.
    telemetry::MetricsRegistry::global()
        .counter("service.compiles." + request.strategy)
        .add();
    if (span.active())
        span.arg("cached", false);
    store(key, outcome);
    CompilationResult result = Compiler::assemble(request, outcome);
    result.searchSeconds = search_seconds;
    return result;
}

std::future<CompilationResult>
CompilerService::submit(CompilationRequest request)
{
    // Fail fast on unknown strategies (with the nearest-name
    // suggestion) instead of burying the diagnostic in a future.
    makeStrategy(request.strategy);

    auto &metrics = ServiceMetrics::get();
    metrics.queueDepth.add(1);
    const std::uint64_t submitted_ns = Timer::nowNs();
    std::packaged_task<CompilationResult()> task(
        [this, submitted_ns, request = std::move(request)] {
            auto &m = ServiceMetrics::get();
            m.queueDepth.add(-1);
            struct LatencyGuard
            {
                std::uint64_t submittedNs;
                telemetry::Histogram &latency;
                ~LatencyGuard()
                {
                    latency.record(
                        static_cast<double>(Timer::nowNs() -
                                            submittedNs) *
                        1e-9);
                }
            } guard{submitted_ns, m.latencySeconds};
            return compile(request);
        });
    auto future = task.get_future();
    {
        std::lock_guard lock(queueMutex);
        require(!stopping,
                "CompilerService::submit after shutdown began");
        queue.push_back(std::move(task));
    }
    queueCv.notify_one();
    return future;
}

std::vector<CompilationResult>
CompilerService::compileBatch(
    std::vector<CompilationRequest> requests)
{
    std::vector<std::future<CompilationResult>> futures;
    futures.reserve(requests.size());
    for (auto &request : requests)
        futures.push_back(submit(std::move(request)));
    std::vector<CompilationResult> results;
    results.reserve(futures.size());
    for (auto &future : futures)
        results.push_back(future.get());
    return results;
}

void
CompilerService::dispatcherLoop()
{
    for (;;) {
        std::vector<std::packaged_task<CompilationResult()>> batch;
        {
            std::unique_lock lock(queueMutex);
            queueCv.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (queue.empty())
                return; // stopping, and fully drained
            batch.assign(
                std::make_move_iterator(queue.begin()),
                std::make_move_iterator(queue.end()));
            queue.clear();
        }
        // packaged_task stores exceptions in its future, so tasks
        // never throw across the pool (its documented contract).
        pool.forEach(batch.size(), [&batch](std::size_t index) {
            batch[index]();
        });
    }
}

CacheStats
CompilerService::cacheStats() const
{
    std::lock_guard lock(cacheMutex);
    return stats;
}

std::string
CompilerService::cacheStatsJson() const
{
    const CacheStats snapshot = cacheStats();
    JsonWriter json;
    json.beginObject()
        .member("hits", snapshot.hits)
        .member("diskHits", snapshot.diskHits)
        .member("misses", snapshot.misses)
        .member("computes", snapshot.computes)
        .member("insertions", snapshot.insertions)
        .member("evictions", snapshot.evictions)
        .member("corrupted", snapshot.corrupted)
        .endObject();
    return json.take();
}

std::string
CompilerService::metricsJson()
{
    return telemetry::MetricsRegistry::global().metricsJson();
}

} // namespace fermihedral::api
