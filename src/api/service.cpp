#include "api/service.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/serialize.h"
#include "api/strategy_registry.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "common/timer.h"

namespace fermihedral::api {

namespace {

/** The service's registry handles (allocated on first use). */
struct ServiceMetrics
{
    telemetry::Counter &cacheHits;
    telemetry::Counter &cacheMisses;
    telemetry::Counter &cacheCorrupted;
    telemetry::Counter &ok;
    telemetry::Counter &deadlineExceeded;
    telemetry::Counter &cancelled;
    telemetry::Counter &shed;
    telemetry::Counter &errors;
    telemetry::Counter &coalesced;
    telemetry::Gauge &queueDepth;
    telemetry::Histogram &latencySeconds;

    static ServiceMetrics &
    get()
    {
        auto &registry = telemetry::MetricsRegistry::global();
        static ServiceMetrics metrics{
            registry.counter("service.cache.hits"),
            registry.counter("service.cache.misses"),
            registry.counter("service.cache.corrupted"),
            registry.counter("service.ok"),
            registry.counter("service.deadline_exceeded"),
            registry.counter("service.cancelled"),
            registry.counter("service.shed"),
            registry.counter("service.errors"),
            registry.counter("service.coalesced"),
            registry.gauge("service.queue_depth"),
            registry.histogram("service.latency_seconds"),
        };
        return metrics;
    }
};

/** FNV-1a 64-bit hash of the canonical key (file names). */
std::uint64_t
fnv1a64(std::string_view text)
{
    std::uint64_t hash = 1469598103934665603ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

/** The disk-entry header prefix (format v2: CRC over the rest). */
constexpr std::string_view cacheHeaderPrefix =
    "fermihedral-cache v2 crc32 ";

/**
 * Validate a disk entry's v2 header and CRC. Returns the payload
 * after the header (the `key` echo line plus the serialized
 * outcome), or nullopt for anything torn, truncated, bit-flipped
 * or version-mismatched.
 */
std::optional<std::string_view>
checkedCachePayload(std::string_view view)
{
    if (view.substr(0, cacheHeaderPrefix.size()) !=
            cacheHeaderPrefix ||
        view.size() <= cacheHeaderPrefix.size() + 8 ||
        view[cacheHeaderPrefix.size() + 8] != '\n')
        return std::nullopt;
    std::uint32_t expected_crc = 0;
    for (const char c : view.substr(cacheHeaderPrefix.size(), 8)) {
        expected_crc <<= 4;
        if (c >= '0' && c <= '9')
            expected_crc |= static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            expected_crc |= static_cast<std::uint32_t>(c - 'a' + 10);
        else
            return std::nullopt;
    }
    const std::string_view payload =
        view.substr(cacheHeaderPrefix.size() + 9);
    if (crc32(payload) != expected_crc)
        return std::nullopt;
    return payload;
}

} // namespace

StoreVerification
verifyEncodingStore(const std::string &path)
{
    StoreVerification report;
    std::error_code ec;
    if (path.empty() || !std::filesystem::is_directory(path, ec))
        return report;
    for (const auto &entry :
         std::filesystem::recursive_directory_iterator(path, ec)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".fhc")
            continue;
        ++report.entries;
        std::ifstream file(entry.path(), std::ios::binary);
        std::ostringstream content;
        content << file.rdbuf();
        const std::string text = std::move(content).str();
        report.bytes += text.size();

        bool intact = false;
        if (const auto payload = checkedCachePayload(text)) {
            // Without the original request we cannot re-derive the
            // expected key, but the echo line must be present and
            // the stored outcome must still parse.
            const std::size_t eol = payload->find('\n');
            intact = payload->substr(0, 4) == "key " &&
                     eol != std::string_view::npos &&
                     tryParseOutcome(payload->substr(eol + 1))
                         .has_value();
        }
        if (!intact) {
            ++report.corrupted;
            warn("encoding store: corrupted entry '",
                 entry.path().string(), "'");
        }
    }
    return report;
}

std::string
CompilerService::canonicalRequestKey(
    const CompilationRequest &request)
{
    const Objective objective = request.resolvedObjective();
    std::ostringstream key;
    key << "v1|strategy=" << request.strategy
        << "|objective=" << objectiveName(objective)
        << "|modes=" << request.resolvedModes()
        << "|alg=" << (request.algebraicIndependence ? 1 : 0)
        << "|vac=" << (request.vacuumPreservation ? 1 : 0);
    if (objective == Objective::HamiltonianWeight ||
        (objective == Objective::RoutedCost &&
         request.hamiltonian)) {
        key << "|structure=" << std::hex;
        bool first = true;
        for (const auto &subset :
             fermion::majoranaStructure(*request.hamiltonian)) {
            key << (first ? "" : ",") << subset.mask << 'x'
                << subset.multiplicity;
            first = false;
        }
        key << std::dec;
    }
    if (objective == Objective::RoutedCost) {
        // The graph itself, not the spec that built it: two specs
        // naming the same connectivity must share an entry.
        key << "|topology=" << request.topology->edgesSpec();
        if (request.hamiltonian) {
            // The routed strategies route the mapped Trotter
            // circuit, which depends on the raw term coefficients
            // — not just the Eq. 14 structure — so the identity
            // must hash them too.
            std::ostringstream terms;
            terms << std::hexfloat;
            for (const auto &term :
                 request.hamiltonian->fermionTerms()) {
                terms << 'f' << term.coefficient;
                for (const auto &op : term.ops)
                    terms << (op.creation ? '+' : '-') << op.mode;
            }
            for (const auto &term :
                 request.hamiltonian->majoranaTerms()) {
                terms << 'm' << term.coefficient;
                for (const auto index : term.indices)
                    terms << ':' << index;
            }
            key << "|hterms=" << std::hex
                << fnv1a64(terms.str()) << std::dec;
        }
    }
    return key.str();
}

CompilerService::CompilerService(const ServiceOptions &options)
    : options(options)
{
    const std::size_t count = ThreadPool::resolveThreadCount(
        static_cast<std::int64_t>(options.threads));
    workers.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

CompilerService::~CompilerService()
{
    {
        std::lock_guard lock(queueMutex);
        stopping = true;
    }
    queueCv.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

std::string
CompilerService::diskEntryPath(const std::string &key) const
{
    const std::uint64_t hash = fnv1a64(key);
    char name[32];
    std::snprintf(name, sizeof name, "%016llx.fhc",
                  static_cast<unsigned long long>(hash));
    std::filesystem::path path(options.diskCachePath);
    if (options.diskCacheShards > 0) {
        // Sharded layout: <store>/<hash mod N as %02x>/<hash>.fhc.
        char shard[16];
        std::snprintf(shard, sizeof shard, "%02llx",
                      static_cast<unsigned long long>(
                          hash % options.diskCacheShards));
        path /= shard;
    }
    return (path / name).string();
}

std::optional<SearchOutcome>
CompilerService::lookup(const std::string &key)
{
    {
        std::lock_guard lock(cacheMutex);
        const auto it = lruIndex.find(key);
        if (it != lruIndex.end()) {
            lru.splice(lru.begin(), lru, it->second);
            ++stats.hits;
            ServiceMetrics::get().cacheHits.add();
            return it->second->outcome;
        }
    }
    if (options.diskCachePath.empty())
        return std::nullopt;

    const std::string path = diskEntryPath(key);
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return std::nullopt;
    std::ostringstream content;
    content << file.rdbuf();
    std::string text = std::move(content).str();
    // Failpoint: corrupt the bytes just read, as a bad sector (or
    // a non-atomic concurrent writer) would.
    if (failpoint::fire("service.cache.read.corrupt") &&
        !text.empty())
        text[text.size() / 2] =
            static_cast<char>(text[text.size() / 2] ^ 0x20);

    // Format v2: a header carrying a CRC32 over the remainder,
    // then the canonical-key echo (guards corruption and
    // improbable hash collisions), then the outcome. Anything else
    // — truncated, zero-length, bit-flipped, or a pre-CRC v1 entry
    // — counts as corrupted and reads as a miss.
    std::optional<SearchOutcome> outcome;
    if (const auto payload = checkedCachePayload(text)) {
        const std::string expected_key = "key " + key + "\n";
        if (payload->substr(0, expected_key.size()) == expected_key)
            outcome = tryParseOutcome(
                payload->substr(expected_key.size()));
    }
    std::lock_guard lock(cacheMutex);
    if (!outcome) {
        ++stats.corrupted;
        ServiceMetrics::get().cacheCorrupted.add();
        return std::nullopt;
    }
    ++stats.hits;
    ++stats.diskHits;
    ServiceMetrics::get().cacheHits.add();
    // Promote into the LRU so later hits skip the disk read.
    insertLocked(key, *outcome);
    return outcome;
}

void
CompilerService::insertLocked(const std::string &key,
                              const SearchOutcome &outcome)
{
    if (options.cacheCapacity == 0 ||
        lruIndex.find(key) != lruIndex.end())
        return;
    lru.push_front(CacheEntry{key, outcome});
    lruIndex.emplace(key, lru.begin());
    ++stats.insertions;
    while (lru.size() > options.cacheCapacity) {
        lruIndex.erase(lru.back().key);
        lru.pop_back();
        ++stats.evictions;
    }
}

void
CompilerService::store(const std::string &key,
                       const SearchOutcome &outcome)
{
    {
        std::lock_guard lock(cacheMutex);
        insertLocked(key, outcome);
    }
    if (options.diskCachePath.empty())
        return;
    const std::string path = diskEntryPath(key);
    std::error_code ec;
    // Covers the shard subdirectory too when sharding is on.
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);
    if (ec) {
        warn("encoding cache: cannot create '",
             options.diskCachePath, "': ", ec.message());
        return;
    }
    // Format v2: the header's CRC32 covers everything after it, so
    // a torn or bit-flipped entry is rejected on read even when
    // the text would still parse.
    std::string payload = "key " + key + "\n";
    payload += serializeOutcome(outcome);
    char header[48];
    std::snprintf(header, sizeof header,
                  "fermihedral-cache v2 crc32 %08x\n",
                  crc32(payload));
    // Failpoint: a torn write publishes a truncated payload under
    // an intact header; the read-side CRC must catch it.
    if (failpoint::fire("service.cache.write.torn"))
        payload.resize(payload.size() / 2);
    // Write-temp-then-rename: concurrent stores of the same key
    // (two pool threads computing identical requests) each land a
    // complete file; the rename is atomic, so readers never see a
    // torn entry.
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp."
             << std::hash<std::thread::id>{}(
                    std::this_thread::get_id());
    {
        std::ofstream file(tmp_name.str(),
                           std::ios::binary | std::ios::trunc);
        if (!file) {
            warn("encoding cache: cannot write '", tmp_name.str(),
                 "'");
            return;
        }
        // Failpoint: the write fails mid-entry (disk full); no
        // entry may be published and the tmp file is cleaned up.
        if (failpoint::fire("service.cache.write.enospc")) {
            file.close();
            std::error_code rm;
            std::filesystem::remove(tmp_name.str(), rm);
            warn("encoding cache: cannot write '", tmp_name.str(),
                 "' (injected ENOSPC)");
            return;
        }
        file << header << payload;
    }
    std::filesystem::rename(tmp_name.str(), path, ec);
    if (ec)
        warn("encoding cache: cannot publish '", path, "': ",
             ec.message());
}

CompilationResult
CompilerService::compile(const CompilationRequest &request)
{
    // Unknown strategy names are caller errors and stay fatal on
    // the caller's thread; everything past this validation line
    // degrades to a ResultStatus instead of throwing.
    makeStrategy(request.strategy);
    {
        std::lock_guard lock(cacheMutex);
        ++serving.submitted;
    }
    return guardedCompile(request, 0.0);
}

CompilationResult
CompilerService::guardedCompile(const CompilationRequest &request,
                                double queue_wait_seconds)
{
    try {
        return compileImpl(request, queue_wait_seconds);
    } catch (const std::exception &error) {
        CompilationResult result;
        result.strategy = request.strategy;
        result.status = ResultStatus::Error;
        result.statusMessage = error.what();
        recordStatus(ResultStatus::Error);
        return result;
    } catch (...) {
        CompilationResult result;
        result.strategy = request.strategy;
        result.status = ResultStatus::Error;
        result.statusMessage = "unknown failure";
        recordStatus(ResultStatus::Error);
        return result;
    }
}

CompilationResult
CompilerService::finishResult(const CompilationRequest &request,
                              const SearchOutcome &outcome)
{
    CompilationResult result = Compiler::assemble(request, outcome);
    recordStatus(result.status);
    return result;
}

CompilationResult
CompilerService::compileImpl(const CompilationRequest &request,
                             double queue_wait_seconds)
{
    telemetry::TraceSpan span("service.compile");
    if (span.active())
        span.arg("strategy", request.strategy);
    const std::string key = canonicalRequestKey(request);
    // The cache is consulted before the deadline: a warm hit is
    // effectively free, so it is served full-fidelity even when
    // the request over-waited in the queue.
    if (auto cached = lookup(key)) {
        CompilationResult result = finishResult(request, *cached);
        result.fromCache = true;
        if (span.active())
            span.arg("cached", true);
        return result;
    }

    // A deadline keeps ticking while the request waits in the
    // submit queue; a request that spent its whole deadline queued
    // degrades to the closed-form baseline without searching.
    double remaining_deadline = request.deadlineSeconds;
    if (request.deadlineSeconds > 0.0) {
        remaining_deadline =
            request.deadlineSeconds - queue_wait_seconds;
        if (remaining_deadline <= 0.0)
            return finishResult(
                request,
                baselineOutcome(request,
                                ResultStatus::DeadlineExceeded,
                                "deadline expired while queued"));
    }
    if (request.cancellation.cancelled())
        return finishResult(
            request,
            baselineOutcome(request, ResultStatus::Cancelled,
                            "cancelled before the search started"));

    // Coalescing: the first request in becomes the leader and runs
    // the search; identical concurrent specs wait for its outcome
    // instead of duplicating the SAT work.
    std::shared_ptr<InflightSearch> entry;
    bool leader = false;
    {
        std::lock_guard lock(inflightMutex);
        auto [it, inserted] = inflight.try_emplace(key);
        if (inserted) {
            it->second = std::make_shared<InflightSearch>();
            it->second->future =
                it->second->promise.get_future().share();
            leader = true;
        }
        entry = it->second;
    }
    if (!leader) {
        {
            std::lock_guard lock(cacheMutex);
            ++serving.coalesced;
        }
        ServiceMetrics::get().coalesced.add();
        if (span.active())
            span.arg("coalesced", true);
        // A follower only ever waits for a leader that is already
        // running (or done) — never the other way round — so
        // coalescing cannot deadlock the pool. A leader failure
        // rethrows here and guardedCompile converts it.
        const auto shared = entry->future.get();
        CompilationResult result = finishResult(request, *shared);
        result.coalesced = true;
        return result;
    }

    Timer timer;
    std::shared_ptr<SearchOutcome> outcome;
    try {
        const auto strategy = makeStrategy(request.strategy);
        if (remaining_deadline != request.deadlineSeconds) {
            // Shrink the deadline by the time already queued. The
            // copy is only taken on this (deadline-carrying) path.
            CompilationRequest effective = request;
            effective.deadlineSeconds = remaining_deadline;
            outcome = std::make_shared<SearchOutcome>(
                strategy->search(effective));
        } else {
            outcome = std::make_shared<SearchOutcome>(
                strategy->search(request));
        }
    } catch (...) {
        {
            std::lock_guard lock(inflightMutex);
            inflight.erase(key);
        }
        entry->promise.set_exception(std::current_exception());
        throw;
    }
    const double search_seconds = timer.seconds();
    entry->promise.set_value(outcome);
    {
        std::lock_guard lock(inflightMutex);
        inflight.erase(key);
    }

    {
        std::lock_guard lock(cacheMutex);
        ++stats.misses;
        ++stats.computes;
        if (outcome->status != ResultStatus::Ok)
            ++serving.degraded;
    }
    ServiceMetrics::get().cacheMisses.add();
    // Per-strategy compile counter: the name lookup takes the
    // registry mutex, which a full strategy search dwarfs.
    telemetry::MetricsRegistry::global()
        .counter("service.compiles." + request.strategy)
        .add();
    if (span.active())
        span.arg("cached", false);
    // Degraded outcomes are never cached: a later request with a
    // healthier budget must get the chance to do better.
    if (outcome->status == ResultStatus::Ok)
        store(key, *outcome);
    CompilationResult result = finishResult(request, *outcome);
    result.searchSeconds = search_seconds;
    return result;
}

void
CompilerService::recordStatus(ResultStatus status)
{
    {
        std::lock_guard lock(cacheMutex);
        switch (status) {
          case ResultStatus::Ok: ++serving.ok; break;
          case ResultStatus::DeadlineExceeded:
              ++serving.deadlineExceeded;
              break;
          case ResultStatus::Cancelled: ++serving.cancelled; break;
          case ResultStatus::Shed: ++serving.shed; break;
          case ResultStatus::Error: ++serving.errors; break;
        }
    }
    auto &metrics = ServiceMetrics::get();
    switch (status) {
      case ResultStatus::Ok: metrics.ok.add(); break;
      case ResultStatus::DeadlineExceeded:
          metrics.deadlineExceeded.add();
          break;
      case ResultStatus::Cancelled: metrics.cancelled.add(); break;
      case ResultStatus::Shed: metrics.shed.add(); break;
      case ResultStatus::Error: metrics.errors.add(); break;
    }
}

std::future<CompilationResult>
CompilerService::submit(CompilationRequest request)
{
    // Fail fast on unknown strategies (with the nearest-name
    // suggestion) instead of burying the diagnostic in a future.
    makeStrategy(request.strategy);
    {
        std::lock_guard lock(cacheMutex);
        ++serving.submitted;
    }

    auto &metrics = ServiceMetrics::get();
    const std::string strategy_name = request.strategy;
    const std::uint64_t submitted_ns = Timer::nowNs();
    std::packaged_task<CompilationResult()> task(
        [this, submitted_ns, request = std::move(request)] {
            auto &m = ServiceMetrics::get();
            m.queueDepth.add(-1);
            struct LatencyGuard
            {
                std::uint64_t submittedNs;
                telemetry::Histogram &latency;
                ~LatencyGuard()
                {
                    latency.record(
                        static_cast<double>(Timer::nowNs() -
                                            submittedNs) *
                        1e-9);
                }
            } guard{submitted_ns, m.latencySeconds};
            const double queue_wait =
                static_cast<double>(Timer::nowNs() -
                                    submitted_ns) *
                1e-9;
            // Failpoint: a worker dying on the request must
            // surface as an Error result through the future —
            // never a broken promise, never an abort.
            if (failpoint::fire("service.dispatch.fail")) {
                CompilationResult result;
                result.strategy = request.strategy;
                result.status = ResultStatus::Error;
                result.statusMessage =
                    "injected fault: service.dispatch.fail";
                recordStatus(ResultStatus::Error);
                return result;
            }
            return guardedCompile(request, queue_wait);
        });

    // Admission control: reject-newest once the queue is at depth.
    bool shed = false;
    std::future<CompilationResult> future;
    {
        std::lock_guard lock(queueMutex);
        require(!stopping,
                "CompilerService::submit after shutdown began");
        if (options.maxQueueDepth > 0 &&
            queue.size() >= options.maxQueueDepth) {
            shed = true;
        } else {
            future = task.get_future();
            queue.push_back(std::move(task));
        }
    }
    if (shed) {
        recordStatus(ResultStatus::Shed);
        CompilationResult result;
        result.strategy = strategy_name;
        result.status = ResultStatus::Shed;
        result.statusMessage =
            "submit queue full (depth " +
            std::to_string(options.maxQueueDepth) +
            "); request shed";
        std::promise<CompilationResult> ready;
        ready.set_value(std::move(result));
        return ready.get_future();
    }
    metrics.queueDepth.add(1);
    queueCv.notify_one();
    return future;
}

std::vector<CompilationResult>
CompilerService::compileBatch(
    std::vector<CompilationRequest> requests)
{
    std::vector<std::future<CompilationResult>> futures;
    futures.reserve(requests.size());
    for (auto &request : requests)
        futures.push_back(submit(std::move(request)));
    std::vector<CompilationResult> results;
    results.reserve(futures.size());
    for (auto &future : futures)
        results.push_back(future.get());
    return results;
}

void
CompilerService::workerLoop()
{
    // One task at a time per worker — never a whole batch. A batch
    // barrier would let one long-running SAT search hold back every
    // request submitted after it; pulling singly bounds the
    // head-of-line cost at (queue depth / workers), which is what
    // the daemon's pipelined out-of-order responses rely on.
    for (;;) {
        std::packaged_task<CompilationResult()> task;
        {
            std::unique_lock lock(queueMutex);
            queueCv.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (queue.empty())
                return; // stopping, and fully drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        // packaged_task stores exceptions in its future, and with
        // guardedCompile it no longer stores even those: every
        // failure is an Error-status result.
        task();
    }
}

CacheStats
CompilerService::cacheStats() const
{
    std::lock_guard lock(cacheMutex);
    return stats;
}

ServiceStats
CompilerService::serviceStats() const
{
    std::lock_guard lock(cacheMutex);
    return serving;
}

std::string
CompilerService::cacheStatsJson() const
{
    const CacheStats snapshot = cacheStats();
    JsonWriter json;
    json.beginObject()
        .member("hits", snapshot.hits)
        .member("diskHits", snapshot.diskHits)
        .member("misses", snapshot.misses)
        .member("computes", snapshot.computes)
        .member("insertions", snapshot.insertions)
        .member("evictions", snapshot.evictions)
        .member("corrupted", snapshot.corrupted)
        .endObject();
    return json.take();
}

std::string
CompilerService::metricsJson()
{
    return telemetry::MetricsRegistry::global().metricsJson();
}

} // namespace fermihedral::api
