/**
 * @file
 * CompilerService: the serving layer on top of the Compiler facade
 * — batch/async submission over the shared common/parallel.h
 * ThreadPool plus a content-addressed encoding cache (in-memory
 * LRU, optional on-disk store), so repeated requests for an
 * already-solved (modes, objective, constraints) spec skip the SAT
 * search entirely. On top of that sits the fault-tolerant serving
 * core: per-request deadlines and cancellation, graceful
 * degradation to best-so-far encodings (typed ResultStatus instead
 * of exceptions), bounded-queue admission control with
 * reject-newest load shedding, and in-flight coalescing of
 * identical concurrent specs.
 *
 * Cache identity. canonicalRequestKey() renders the parts of a
 * request the built-in strategies' searches consume: strategy name,
 * resolved objective, mode count, constraint toggles, and — for
 * Hamiltonian-dependent objectives — the Eq. 14 cost structure
 * (Majorana subset masks with multiplicities). A routed-cost
 * objective additionally renders the topology's canonical edge
 * list and, with a Hamiltonian, a hash of the raw terms (the
 * routed strategies route the mapped Trotter circuit, which the
 * structure masks alone do not determine). Execution knobs
 * (budgets, deadline, cancellation, threads, determinism,
 * preprocessing) are deliberately NOT part of the identity: once a
 * spec is solved, later requests reuse the encoding whatever budget
 * they carried. A custom strategy whose search depends on data
 * outside the key (e.g.\ raw term coefficients) should run with
 * caching disabled (cacheCapacity = 0 and no disk path).
 *
 * Failure model (docs/ARCHITECTURE.md, "Failure model"):
 *  - compile()/submit() return a CompilationResult for every
 *    accepted request; result.status says how it ended. Degraded
 *    results (DeadlineExceeded, Cancelled) still carry a valid
 *    encoding — at worst the closed-form Bravyi-Kitaev baseline —
 *    and are never cached. Shed results carry no encoding.
 *  - Unknown strategy names are fatal at compile()/submit()
 *    validation, on the caller's thread. Every post-validation
 *    failure surfaces as ResultStatus::Error through the returned
 *    result/future — never an exception from future.get(), never
 *    abort().
 *  - On-disk entries are CRC-checked (format v2); torn, truncated,
 *    zero-length, bit-flipped or version-mismatched entries are
 *    counted (CacheStats::corrupted), treated as misses, then
 *    overwritten by the recomputed entry.
 *
 * Key invariants:
 *  - A cache hit reproduces the original CompilationResult
 *    bit-identically in every serialized field (the stored payload
 *    is the SearchOutcome; mapping and grouping are re-derived
 *    deterministically) with fromCache = true and no strategy
 *    execution — cacheStats().computes does not move. Only Ok
 *    outcomes are ever stored.
 *  - submit() never runs work on the caller's thread; tasks are
 *    pulled one at a time by a fixed set of worker threads, so a
 *    long-running compilation occupies one worker and never
 *    head-of-line blocks later submissions — the property the
 *    daemon's pipelined out-of-order responses rest on.
 *  - Identical requests in flight at the same moment are
 *    coalesced: the first becomes the leader and runs the search,
 *    the rest block on its outcome and assemble their own results
 *    from it (ServiceStats::coalesced counts the followers).
 *    Leaders never wait on followers, so coalescing cannot
 *    deadlock the pool; disk entries are published by atomic
 *    rename, so none is ever torn.
 *  - With maxQueueDepth > 0, submit() sheds the newest request
 *    once the queue is full: the returned future is immediately
 *    ready with ResultStatus::Shed and no work is queued.
 *  - The destructor drains every submitted task before returning,
 *    so futures obtained from submit() never dangle.
 */

#ifndef FERMIHEDRAL_API_SERVICE_H
#define FERMIHEDRAL_API_SERVICE_H

#include <condition_variable>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/compiler.h"
#include "common/parallel.h"

namespace fermihedral::api {

/** Configuration of a CompilerService. */
struct ServiceOptions
{
    /**
     * Threads compiling submitted requests concurrently
     * (0 = hardware concurrency).
     */
    std::size_t threads = 1;

    /** In-memory LRU capacity in entries (0 disables it). */
    std::size_t cacheCapacity = 256;

    /**
     * Directory for the on-disk encoding store (one file per
     * canonical key hash). Empty disables persistence; the
     * directory is created on first write.
     */
    std::string diskCachePath;

    /**
     * Fan the store over this many hashed subdirectories
     * (`<shard>/<hash>.fhc`, shard = key hash mod N in lowercase
     * hex). 0 keeps the flat single-directory layout. Sharding
     * bounds per-directory entry counts for large warmed libraries;
     * changing the count orphans existing entries (they re-compute
     * and re-store under the new layout — see docs/OPERATIONS.md).
     */
    std::size_t diskCacheShards = 0;

    /**
     * Admission control: maximum requests waiting in the submit
     * queue (0 = unbounded). When the queue is full, submit()
     * rejects the newest request with ResultStatus::Shed instead
     * of queueing it — bounded memory and bounded queueing delay
     * under overload.
     */
    std::size_t maxQueueDepth = 0;
};

/** Cache behaviour counters. */
struct CacheStats
{
    /** Requests answered from the cache (memory or disk). */
    std::size_t hits = 0;
    /** Hits served by parsing an on-disk entry. */
    std::size_t diskHits = 0;
    /** Requests that had to run the strategy. */
    std::size_t misses = 0;
    /** Strategy executions (== misses; split for readability). */
    std::size_t computes = 0;
    /** Entries written into the in-memory LRU. */
    std::size_t insertions = 0;
    /** LRU entries discarded for capacity. */
    std::size_t evictions = 0;
    /** On-disk entries rejected as corrupted or mismatched. */
    std::size_t corrupted = 0;
};

/**
 * Per-status serving counters (this service instance only; the
 * process-wide equivalents live in the telemetry registry under
 * service.ok / service.deadline_exceeded / service.cancelled /
 * service.shed / service.errors / service.coalesced).
 */
struct ServiceStats
{
    /** Requests accepted by compile()/submit(), shed included. */
    std::size_t submitted = 0;
    /** Results returned, by final status. */
    std::size_t ok = 0;
    std::size_t deadlineExceeded = 0;
    std::size_t cancelled = 0;
    std::size_t shed = 0;
    std::size_t errors = 0;
    /** Followers that shared an in-flight leader's search. */
    std::size_t coalesced = 0;
    /** Non-Ok search outcomes (computed but never cached). */
    std::size_t degraded = 0;
};

/** What verifyEncodingStore() found on disk. */
struct StoreVerification
{
    /** `.fhc` files scanned (all shard layouts). */
    std::size_t entries = 0;
    /** Entries whose CRC, key echo, or payload failed to check. */
    std::size_t corrupted = 0;
    /** Total bytes across scanned entries. */
    std::size_t bytes = 0;
};

/**
 * Offline CRC audit of an on-disk encoding store: scan every
 * `.fhc` entry under `path` (flat and sharded layouts alike),
 * re-check the v2 header CRC against the payload and re-parse the
 * stored outcome. Read-only — corrupted entries are reported, not
 * deleted (the serving path already treats them as misses and
 * overwrites them on the next compute). A missing directory is an
 * empty store, not an error.
 */
StoreVerification verifyEncodingStore(const std::string &path);

/** The cached, batching compilation service (see file docs). */
class CompilerService
{
  public:
    explicit CompilerService(const ServiceOptions &options = {});
    ~CompilerService();

    CompilerService(const CompilerService &) = delete;
    CompilerService &operator=(const CompilerService &) = delete;

    /**
     * Compile synchronously on the caller's thread, consulting the
     * cache first. Thread-safe. Unknown strategy names are fatal;
     * any later failure comes back as ResultStatus::Error.
     */
    CompilationResult compile(const CompilationRequest &request);

    /**
     * Enqueue a request for asynchronous compilation on the
     * service's thread pool. The strategy name is validated here
     * (fatal on unknown names); all later failures surface through
     * the returned future as ResultStatus::Error results —
     * future.get() never throws. A full queue (maxQueueDepth)
     * returns an immediately-ready ResultStatus::Shed result.
     */
    std::future<CompilationResult> submit(CompilationRequest request);

    /** Submit every request, wait for all, return in order. */
    std::vector<CompilationResult> compileBatch(
        std::vector<CompilationRequest> requests);

    /** Snapshot of the cache counters. */
    CacheStats cacheStats() const;

    /** Snapshot of the per-status serving counters. */
    ServiceStats serviceStats() const;

    /** The counters as a single-line JSON object (CI artifacts). */
    std::string cacheStatsJson() const;

    /**
     * The process-wide telemetry registry rendered as one JSON
     * object (common/telemetry.h) — queue depth, submit-to-complete
     * latency percentiles, per-strategy compile counters, cache
     * counters, shed/cancel/coalesce counters, solver counters. The
     * deployable-service metrics endpoint the roadmap asks for.
     */
    static std::string metricsJson();

    /**
     * The canonical cache identity of a request (see file docs).
     * Deterministic, space-free, human-readable.
     */
    static std::string canonicalRequestKey(
        const CompilationRequest &request);

  private:
    struct CacheEntry
    {
        std::string key;
        SearchOutcome outcome;
    };
    using LruList = std::list<CacheEntry>;

    /** One in-flight search shared by coalesced requests. */
    struct InflightSearch
    {
        std::promise<std::shared_ptr<const SearchOutcome>> promise;
        std::shared_future<std::shared_ptr<const SearchOutcome>>
            future;
    };

    /** Cache lookup (memory, then disk). nullopt = miss. */
    std::optional<SearchOutcome> lookup(const std::string &key);

    /** Insert into the LRU (and the disk store when configured). */
    void store(const std::string &key, const SearchOutcome &outcome);

    /** LRU insert + capacity eviction; cacheMutex must be held. */
    void insertLocked(const std::string &key,
                      const SearchOutcome &outcome);

    std::string diskEntryPath(const std::string &key) const;

    /** compileImpl with every failure folded into an Error result. */
    CompilationResult guardedCompile(
        const CompilationRequest &request,
        double queue_wait_seconds);

    /** The full serve path: cache, deadline, coalesce, search. */
    CompilationResult compileImpl(const CompilationRequest &request,
                                  double queue_wait_seconds);

    /** Assemble + per-status accounting for a finished outcome. */
    CompilationResult finishResult(const CompilationRequest &request,
                                   const SearchOutcome &outcome);

    /** Bump the per-status counters (instance + telemetry). */
    void recordStatus(ResultStatus status);

    void workerLoop();

    ServiceOptions options;

    mutable std::mutex cacheMutex;
    LruList lru;
    std::unordered_map<std::string, LruList::iterator> lruIndex;
    CacheStats stats;
    ServiceStats serving;

    std::mutex inflightMutex;
    std::unordered_map<std::string, std::shared_ptr<InflightSearch>>
        inflight;

    std::mutex queueMutex;
    std::condition_variable queueCv;
    std::deque<std::packaged_task<CompilationResult()>> queue;
    bool stopping = false;
    std::vector<std::thread> workers;
};

} // namespace fermihedral::api

#endif // FERMIHEDRAL_API_SERVICE_H
