#include "api/strategy_registry.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/logging.h"
#include "common/suggest.h"
#include "common/timer.h"
#include "core/annealing.h"
#include "core/descent_solver.h"
#include "encodings/linear.h"
#include "encodings/ternary_tree.h"

namespace fermihedral::api {

namespace {

/** Objective value of an encoding under the request's objective. */
std::size_t
objectiveValue(const CompilationRequest &request,
               const enc::FermionEncoding &encoding)
{
    if (request.resolvedObjective() == Objective::HamiltonianWeight)
        return enc::hamiltonianPauliWeight(*request.hamiltonian,
                                           encoding);
    return encoding.totalWeight();
}

/** Shared baseline: Bravyi-Kitaev under the request's objective. */
std::size_t
baselineValue(const CompilationRequest &request)
{
    return objectiveValue(
        request, enc::bravyiKitaev(request.resolvedModes()));
}

/**
 * Wall-clock deadline state for one strategy run. The clock starts
 * at construction (strategy entry); cap() shrinks a stage budget to
 * whatever the deadline leaves, so a multi-stage pipeline can never
 * overrun it by more than one budget poll.
 */
class DeadlineClock
{
  public:
    explicit DeadlineClock(double deadline_seconds)
        : deadlineSeconds(deadline_seconds)
    {
    }

    bool
    enabled() const
    {
        return deadlineSeconds > 0.0;
    }

    double
    remaining() const
    {
        return deadlineSeconds - timer.seconds();
    }

    bool
    expired() const
    {
        return enabled() && remaining() <= 0.0;
    }

    double
    cap(double budget_seconds) const
    {
        if (!enabled())
            return budget_seconds;
        return std::min(budget_seconds,
                        std::max(remaining(), 0.0));
    }

  private:
    Timer timer;
    double deadlineSeconds;
};

/**
 * Map a descent's termination to the result status. A budget that
 * ran out on its own is a normal anytime answer (Ok); only the
 * caller-visible limits (deadline, cancellation) are reported.
 */
ResultStatus
statusFor(core::DescentTermination termination,
          const DeadlineClock &clock)
{
    if (termination == core::DescentTermination::Cancelled)
        return ResultStatus::Cancelled;
    if (termination == core::DescentTermination::BudgetExhausted &&
        clock.expired())
        return ResultStatus::DeadlineExceeded;
    return ResultStatus::Ok;
}

const char *
statusDetail(ResultStatus status)
{
    if (status == ResultStatus::Cancelled)
        return "cancelled mid-search; best-so-far encoding returned";
    if (status == ResultStatus::DeadlineExceeded)
        return "deadline exceeded; best-so-far encoding returned";
    return "";
}

/**
 * Degrade a Hamiltonian-dependent pipeline that was cut short after
 * its independent stage: keep the cheaper of the stage's encoding
 * and the Bravyi-Kitaev baseline under the real (Hamiltonian)
 * objective. Both are valid, so a degraded answer always is.
 */
SearchOutcome
degradeAfterIndependent(const CompilationRequest &request,
                        const core::DescentResult &indep,
                        ResultStatus status)
{
    SearchOutcome outcome;
    outcome.baselineCost = baselineValue(request);
    const std::size_t indep_cost =
        objectiveValue(request, indep.encoding);
    if (indep_cost <= outcome.baselineCost) {
        outcome.encoding = indep.encoding;
        outcome.cost = indep_cost;
    } else {
        outcome.encoding =
            enc::bravyiKitaev(request.resolvedModes());
        outcome.cost = outcome.baselineCost;
    }
    outcome.satCalls = indep.satCalls;
    outcome.status = status;
    outcome.statusMessage = statusDetail(status);
    return outcome;
}

/** A closed-form baseline wrapped as a strategy. */
class ClosedFormStrategy final : public EncodingStrategy
{
  public:
    using Builder = enc::FermionEncoding (*)(std::size_t);

    explicit ClosedFormStrategy(Builder builder) : builder(builder) {}

    SearchOutcome
    search(const CompilationRequest &request) const override
    {
        SearchOutcome outcome;
        outcome.encoding = builder(request.resolvedModes());
        outcome.cost = objectiveValue(request, outcome.encoding);
        outcome.baselineCost = baselineValue(request);
        return outcome;
    }

  private:
    Builder builder;
};

/** DescentOptions shared by every SAT-backed strategy. */
core::DescentOptions
descentOptions(const CompilationRequest &request,
               bool algebraic_independence)
{
    core::DescentOptions options;
    options.algebraicIndependence = algebraic_independence;
    options.vacuumPreservation = request.vacuumPreservation;
    options.stepTimeoutSeconds = request.stepTimeoutSeconds;
    options.totalTimeoutSeconds = request.totalTimeoutSeconds;
    options.threads = request.threads;
    options.portfolioInstances = request.portfolioInstances;
    options.deterministic = request.deterministic;
    options.preprocess = request.preprocess;
    options.carryLearnts = request.carryLearnts;
    options.inprocess = request.inprocess;
    options.progress = request.progress;
    options.stopFlag = request.cancellation.flag();
    return options;
}

/**
 * Algorithm 1 descent. With a Hamiltonian-dependent objective this
 * runs the paper's full pipeline: Hamiltonian-independent solve on
 * half the budget, Algorithm 2 annealing, then the dependent solve
 * seeded with the annealed encoding (never worse than SAT+Anl.).
 */
class SatStrategy final : public EncodingStrategy
{
  public:
    explicit SatStrategy(bool algebraic_independence)
        : algebraicIndependence(algebraic_independence)
    {
    }

    SearchOutcome
    search(const CompilationRequest &request) const override
    {
        const bool with_alg =
            algebraicIndependence && request.algebraicIndependence;
        const DeadlineClock clock(request.deadlineSeconds);
        SearchOutcome outcome;
        if (request.resolvedObjective() == Objective::TotalWeight) {
            auto options = descentOptions(request, with_alg);
            options.totalTimeoutSeconds =
                clock.cap(options.totalTimeoutSeconds);
            core::DescentSolver solver(request.resolvedModes(),
                                       options);
            const auto result = solver.solve();
            outcome.encoding = result.encoding;
            outcome.cost = result.cost;
            outcome.baselineCost = result.baselineCost;
            outcome.provedOptimal = result.provedOptimal;
            outcome.satCalls = result.satCalls;
            outcome.status = statusFor(result.termination, clock);
            outcome.statusMessage = statusDetail(outcome.status);
            return outcome;
        }

        // The whole pipeline shares request.totalTimeoutSeconds:
        // half for the independent solve, whatever actually
        // remains for the seeded dependent solve (an early
        // optimality proof hands its leftover budget on). A
        // deadline additionally caps every stage and short-circuits
        // the pipeline down the degradation ladder.
        Timer timer;
        const auto &h = *request.hamiltonian;
        auto indep_options = descentOptions(request, with_alg);
        indep_options.stepTimeoutSeconds /= 2.0;
        indep_options.totalTimeoutSeconds =
            clock.cap(indep_options.totalTimeoutSeconds / 2.0);
        core::DescentSolver indep_solver(h.modes(), indep_options);
        const auto indep = indep_solver.solve();
        if (indep.termination ==
            core::DescentTermination::Cancelled)
            return degradeAfterIndependent(
                request, indep, ResultStatus::Cancelled);
        if (clock.expired())
            return degradeAfterIndependent(
                request, indep, ResultStatus::DeadlineExceeded);
        const auto annealed =
            core::annealPairing(indep.encoding, h);

        auto full_options = descentOptions(request, with_alg);
        full_options.totalTimeoutSeconds = clock.cap(std::max(
            request.totalTimeoutSeconds - timer.seconds(), 0.0));
        full_options.seedEncoding = annealed.encoding;
        core::DescentSolver full_solver(h, full_options);
        const auto full = full_solver.solve();

        outcome.baselineCost = full.baselineCost;
        outcome.annealedCost = annealed.finalCost;
        outcome.provedOptimal = full.provedOptimal;
        outcome.satCalls = indep.satCalls + full.satCalls;
        if (full.cost <= annealed.finalCost) {
            outcome.encoding = full.encoding;
            outcome.cost = full.cost;
        } else {
            outcome.encoding = annealed.encoding;
            outcome.cost = annealed.finalCost;
        }
        outcome.status = statusFor(full.termination, clock);
        outcome.statusMessage = statusDetail(outcome.status);
        return outcome;
    }

  private:
    bool algebraicIndependence;
};

/**
 * The scalable path: Hamiltonian-independent descent, then
 * Algorithm 2 pairing. Both the SAT solution and the Bravyi-Kitaev
 * baseline are annealed and the cheaper pairing kept (annealing
 * never worsens its own seed), as the Table 5 reproduction does.
 */
class SatAnnealingStrategy final : public EncodingStrategy
{
  public:
    SearchOutcome
    search(const CompilationRequest &request) const override
    {
        if (!request.hamiltonian)
            fatal("strategy 'sat+annealing' needs a Hamiltonian: "
                  "Algorithm 2 minimises the Hamiltonian-dependent "
                  "Pauli weight");
        // The annealed pairing depends on the Hamiltonian, so a
        // total-weight objective would both misreport cost and
        // break the service's cache identity (which only hashes
        // the Eq. 14 structure for Hamiltonian-dependent
        // objectives).
        if (request.resolvedObjective() != Objective::HamiltonianWeight)
            fatal("strategy 'sat+annealing' requires the "
                  "hamiltonian-weight objective (leave the "
                  "objective on Auto)");
        const auto &h = *request.hamiltonian;

        const DeadlineClock clock(request.deadlineSeconds);
        auto options =
            descentOptions(request, request.algebraicIndependence);
        options.totalTimeoutSeconds =
            clock.cap(options.totalTimeoutSeconds);
        core::DescentSolver solver(h.modes(), options);
        const auto indep = solver.solve();
        if (indep.termination ==
            core::DescentTermination::Cancelled)
            return degradeAfterIndependent(
                request, indep, ResultStatus::Cancelled);
        if (clock.expired())
            return degradeAfterIndependent(
                request, indep, ResultStatus::DeadlineExceeded);

        const auto annealed_sat =
            core::annealPairing(indep.encoding, h);
        const auto annealed_bk = core::annealPairing(
            enc::bravyiKitaev(h.modes()), h);
        const auto &best =
            annealed_sat.finalCost <= annealed_bk.finalCost
                ? annealed_sat
                : annealed_bk;

        SearchOutcome outcome;
        outcome.encoding = best.encoding;
        outcome.cost = best.finalCost;
        outcome.annealedCost = best.finalCost;
        outcome.baselineCost = baselineValue(request);
        outcome.satCalls = indep.satCalls;
        return outcome;
    }
};

struct Registry
{
    std::mutex mutex;
    std::map<std::string, StrategyFactory> factories;
};

Registry &
registry()
{
    static Registry instance;
    static const bool builtins_registered = [] {
        auto closed = [](const char *name,
                         ClosedFormStrategy::Builder builder) {
            instance.factories.emplace(name, [builder] {
                return std::make_unique<ClosedFormStrategy>(builder);
            });
        };
        closed("jordan-wigner", enc::jordanWigner);
        closed("bravyi-kitaev", enc::bravyiKitaev);
        closed("parity", enc::parity);
        closed("ternary-tree", enc::ternaryTree);
        instance.factories.emplace("sat", [] {
            return std::make_unique<SatStrategy>(true);
        });
        instance.factories.emplace("sat-noalg", [] {
            return std::make_unique<SatStrategy>(false);
        });
        instance.factories.emplace("sat+annealing", [] {
            return std::make_unique<SatAnnealingStrategy>();
        });
        return true;
    }();
    (void)builtins_registered;
    return instance;
}

} // namespace

void
registerStrategy(const std::string &name, StrategyFactory factory)
{
    require(static_cast<bool>(factory),
            "registerStrategy: null factory for '", name, "'");
    Registry &r = registry();
    std::lock_guard lock(r.mutex);
    if (!r.factories.emplace(name, std::move(factory)).second)
        fatal("encoding strategy '", name, "' is already registered");
}

bool
strategyRegistered(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard lock(r.mutex);
    return r.factories.count(name) > 0;
}

std::unique_ptr<EncodingStrategy>
makeStrategy(const std::string &name)
{
    Registry &r = registry();
    StrategyFactory factory;
    {
        std::lock_guard lock(r.mutex);
        const auto it = r.factories.find(name);
        if (it != r.factories.end())
            factory = it->second;
    }
    if (!factory) {
        const auto names = registeredStrategyNames();
        if (const auto nearest = suggestNearest(name, names))
            fatal("unknown encoding strategy '", name,
                  "' (did you mean '", *nearest, "'?)");
        fatal("unknown encoding strategy '", name, "'");
    }
    return factory();
}

std::vector<std::string>
registeredStrategyNames()
{
    Registry &r = registry();
    std::lock_guard lock(r.mutex);
    std::vector<std::string> names;
    names.reserve(r.factories.size());
    for (const auto &[name, factory] : r.factories)
        names.push_back(name);
    return names; // std::map iteration is already sorted
}

SearchOutcome
baselineOutcome(const CompilationRequest &request,
                ResultStatus status, std::string message)
{
    SearchOutcome outcome;
    outcome.encoding =
        enc::bravyiKitaev(request.resolvedModes());
    outcome.cost = objectiveValue(request, outcome.encoding);
    outcome.baselineCost = outcome.cost;
    outcome.status = status;
    outcome.statusMessage = std::move(message);
    return outcome;
}

} // namespace fermihedral::api
