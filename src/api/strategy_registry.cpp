#include "api/strategy_registry.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "circuit/pauli_compiler.h"
#include "common/logging.h"
#include "common/suggest.h"
#include "common/timer.h"
#include "core/annealing.h"
#include "core/descent_solver.h"
#include "encodings/linear.h"
#include "encodings/ternary_tree.h"
#include "hw/routed_cost.h"
#include "hw/router.h"

namespace fermihedral::api {

namespace {

/** Objective value of an encoding under the request's objective. */
std::size_t
objectiveValue(const CompilationRequest &request,
               const enc::FermionEncoding &encoding)
{
    switch (request.resolvedObjective()) {
      case Objective::HamiltonianWeight:
        return enc::hamiltonianPauliWeight(*request.hamiltonian,
                                           encoding);
      case Objective::RoutedCost:
        return request.hamiltonian
                   ? hw::routedCostEstimate(*request.hamiltonian,
                                            encoding,
                                            *request.topology)
                   : hw::routedCostEstimate(encoding,
                                            *request.topology);
      default:
        return encoding.totalWeight();
    }
}

/** Shared baseline: Bravyi-Kitaev under the request's objective. */
std::size_t
baselineValue(const CompilationRequest &request)
{
    return objectiveValue(
        request, enc::bravyiKitaev(request.resolvedModes()));
}

/**
 * Wall-clock deadline state for one strategy run. The clock starts
 * at construction (strategy entry); cap() shrinks a stage budget to
 * whatever the deadline leaves, so a multi-stage pipeline can never
 * overrun it by more than one budget poll.
 */
class DeadlineClock
{
  public:
    explicit DeadlineClock(double deadline_seconds)
        : deadlineSeconds(deadline_seconds)
    {
    }

    bool
    enabled() const
    {
        return deadlineSeconds > 0.0;
    }

    double
    remaining() const
    {
        return deadlineSeconds - timer.seconds();
    }

    bool
    expired() const
    {
        return enabled() && remaining() <= 0.0;
    }

    double
    cap(double budget_seconds) const
    {
        if (!enabled())
            return budget_seconds;
        return std::min(budget_seconds,
                        std::max(remaining(), 0.0));
    }

  private:
    Timer timer;
    double deadlineSeconds;
};

/**
 * Map a descent's termination to the result status. A budget that
 * ran out on its own is a normal anytime answer (Ok); only the
 * caller-visible limits (deadline, cancellation) are reported.
 */
ResultStatus
statusFor(core::DescentTermination termination,
          const DeadlineClock &clock)
{
    if (termination == core::DescentTermination::Cancelled)
        return ResultStatus::Cancelled;
    if (termination == core::DescentTermination::BudgetExhausted &&
        clock.expired())
        return ResultStatus::DeadlineExceeded;
    return ResultStatus::Ok;
}

const char *
statusDetail(ResultStatus status)
{
    if (status == ResultStatus::Cancelled)
        return "cancelled mid-search; best-so-far encoding returned";
    if (status == ResultStatus::DeadlineExceeded)
        return "deadline exceeded; best-so-far encoding returned";
    return "";
}

/**
 * Degrade a Hamiltonian-dependent pipeline that was cut short after
 * its independent stage: keep the cheaper of the stage's encoding
 * and the Bravyi-Kitaev baseline under the real (Hamiltonian)
 * objective. Both are valid, so a degraded answer always is.
 */
SearchOutcome
degradeAfterIndependent(const CompilationRequest &request,
                        const core::DescentResult &indep,
                        ResultStatus status)
{
    SearchOutcome outcome;
    outcome.baselineCost = baselineValue(request);
    const std::size_t indep_cost =
        objectiveValue(request, indep.encoding);
    if (indep_cost <= outcome.baselineCost) {
        outcome.encoding = indep.encoding;
        outcome.cost = indep_cost;
    } else {
        outcome.encoding =
            enc::bravyiKitaev(request.resolvedModes());
        outcome.cost = outcome.baselineCost;
    }
    outcome.satCalls = indep.satCalls;
    outcome.status = status;
    outcome.statusMessage = statusDetail(status);
    return outcome;
}

/**
 * Selection metric of the routed strategies: the actual routed
 * two-qubit gate count of the one-step Trotter circuit when a
 * Hamiltonian is present (compile and router defaults identical to
 * bench/topology_routing, so the bench measures exactly what the
 * strategy optimized), the hw/routed_cost.h estimator otherwise.
 */
std::size_t
routedSelectionMetric(const CompilationRequest &request,
                      const enc::FermionEncoding &encoding)
{
    const hw::Topology &topology = *request.topology;
    if (!request.hamiltonian)
        return hw::routedCostEstimate(encoding, topology);
    const auto mapped =
        enc::mapToQubits(*request.hamiltonian, encoding);
    const auto logical = circuit::compileTrotter(mapped, 1.0);
    return hw::routeCircuit(logical, topology)
        .stats.twoQubitGates;
}

/** Shared validation of the routed strategies' preconditions. */
void
requireRoutedRequest(const CompilationRequest &request,
                     const char *name)
{
    if (!request.topology)
        fatal("strategy '", name, "' needs a topology in the "
              "CompilationRequest");
    if (request.resolvedObjective() != Objective::RoutedCost)
        fatal("strategy '", name, "' requires the routed-cost "
              "objective (set a topology and leave the objective "
              "on Auto)");
}

/** A closed-form baseline wrapped as a strategy. */
class ClosedFormStrategy final : public EncodingStrategy
{
  public:
    using Builder = enc::FermionEncoding (*)(std::size_t);

    explicit ClosedFormStrategy(Builder builder) : builder(builder) {}

    SearchOutcome
    search(const CompilationRequest &request) const override
    {
        SearchOutcome outcome;
        outcome.encoding = builder(request.resolvedModes());
        outcome.cost = objectiveValue(request, outcome.encoding);
        outcome.baselineCost = baselineValue(request);
        return outcome;
    }

  private:
    Builder builder;
};

/** DescentOptions shared by every SAT-backed strategy. */
core::DescentOptions
descentOptions(const CompilationRequest &request,
               bool algebraic_independence)
{
    core::DescentOptions options;
    options.algebraicIndependence = algebraic_independence;
    options.vacuumPreservation = request.vacuumPreservation;
    options.stepTimeoutSeconds = request.stepTimeoutSeconds;
    options.totalTimeoutSeconds = request.totalTimeoutSeconds;
    options.threads = request.threads;
    options.portfolioInstances = request.portfolioInstances;
    options.deterministic = request.deterministic;
    options.preprocess = request.preprocess;
    options.carryLearnts = request.carryLearnts;
    options.inprocess = request.inprocess;
    options.progress = request.progress;
    options.stopFlag = request.cancellation.flag();
    return options;
}

/**
 * Run `inner` under the weight objective its search actually
 * minimises, then re-score the outcome under the request's
 * routed-cost objective. This is how the weight-based SAT
 * strategies stay usable as routed baselines: the encoding is the
 * weight search's, only the reported costs change. The
 * weight-specific provenance (annealedCost, provedOptimal) is
 * dropped — it would misreport under the re-scored objective.
 */
SearchOutcome
rescoreUnderRoutedCost(const CompilationRequest &request,
                       const EncodingStrategy &inner)
{
    CompilationRequest weight = request;
    weight.topology.reset();
    weight.objective = request.hamiltonian
                           ? Objective::HamiltonianWeight
                           : Objective::TotalWeight;
    SearchOutcome outcome = inner.search(weight);
    outcome.cost = objectiveValue(request, outcome.encoding);
    outcome.baselineCost = baselineValue(request);
    outcome.annealedCost = 0;
    outcome.provedOptimal = false;
    return outcome;
}

/**
 * Algorithm 1 descent. With a Hamiltonian-dependent objective this
 * runs the paper's full pipeline: Hamiltonian-independent solve on
 * half the budget, Algorithm 2 annealing, then the dependent solve
 * seeded with the annealed encoding (never worse than SAT+Anl.).
 * Under a routed-cost objective the weight search runs unchanged
 * and the outcome is re-scored (the weight-optimal baseline of the
 * topology benches).
 */
class SatStrategy final : public EncodingStrategy
{
  public:
    explicit SatStrategy(bool algebraic_independence)
        : algebraicIndependence(algebraic_independence)
    {
    }

    SearchOutcome
    search(const CompilationRequest &request) const override
    {
        if (request.resolvedObjective() == Objective::RoutedCost)
            return rescoreUnderRoutedCost(request, *this);
        const bool with_alg =
            algebraicIndependence && request.algebraicIndependence;
        const DeadlineClock clock(request.deadlineSeconds);
        SearchOutcome outcome;
        if (request.resolvedObjective() == Objective::TotalWeight) {
            auto options = descentOptions(request, with_alg);
            options.totalTimeoutSeconds =
                clock.cap(options.totalTimeoutSeconds);
            core::DescentSolver solver(request.resolvedModes(),
                                       options);
            const auto result = solver.solve();
            outcome.encoding = result.encoding;
            outcome.cost = result.cost;
            outcome.baselineCost = result.baselineCost;
            outcome.provedOptimal = result.provedOptimal;
            outcome.satCalls = result.satCalls;
            outcome.status = statusFor(result.termination, clock);
            outcome.statusMessage = statusDetail(outcome.status);
            return outcome;
        }

        // The whole pipeline shares request.totalTimeoutSeconds:
        // half for the independent solve, whatever actually
        // remains for the seeded dependent solve (an early
        // optimality proof hands its leftover budget on). A
        // deadline additionally caps every stage and short-circuits
        // the pipeline down the degradation ladder.
        Timer timer;
        const auto &h = *request.hamiltonian;
        auto indep_options = descentOptions(request, with_alg);
        indep_options.stepTimeoutSeconds /= 2.0;
        indep_options.totalTimeoutSeconds =
            clock.cap(indep_options.totalTimeoutSeconds / 2.0);
        core::DescentSolver indep_solver(h.modes(), indep_options);
        const auto indep = indep_solver.solve();
        if (indep.termination ==
            core::DescentTermination::Cancelled)
            return degradeAfterIndependent(
                request, indep, ResultStatus::Cancelled);
        if (clock.expired())
            return degradeAfterIndependent(
                request, indep, ResultStatus::DeadlineExceeded);
        const auto annealed =
            core::annealPairing(indep.encoding, h);

        auto full_options = descentOptions(request, with_alg);
        full_options.totalTimeoutSeconds = clock.cap(std::max(
            request.totalTimeoutSeconds - timer.seconds(), 0.0));
        full_options.seedEncoding = annealed.encoding;
        core::DescentSolver full_solver(h, full_options);
        const auto full = full_solver.solve();

        outcome.baselineCost = full.baselineCost;
        outcome.annealedCost = annealed.finalCost;
        outcome.provedOptimal = full.provedOptimal;
        outcome.satCalls = indep.satCalls + full.satCalls;
        if (full.cost <= annealed.finalCost) {
            outcome.encoding = full.encoding;
            outcome.cost = full.cost;
        } else {
            outcome.encoding = annealed.encoding;
            outcome.cost = annealed.finalCost;
        }
        outcome.status = statusFor(full.termination, clock);
        outcome.statusMessage = statusDetail(outcome.status);
        return outcome;
    }

  private:
    bool algebraicIndependence;
};

/**
 * The scalable path: Hamiltonian-independent descent, then
 * Algorithm 2 pairing. Both the SAT solution and the Bravyi-Kitaev
 * baseline are annealed and the cheaper pairing kept (annealing
 * never worsens its own seed), as the Table 5 reproduction does.
 */
class SatAnnealingStrategy final : public EncodingStrategy
{
  public:
    SearchOutcome
    search(const CompilationRequest &request) const override
    {
        if (!request.hamiltonian)
            fatal("strategy 'sat+annealing' needs a Hamiltonian: "
                  "Algorithm 2 minimises the Hamiltonian-dependent "
                  "Pauli weight");
        if (request.resolvedObjective() == Objective::RoutedCost)
            return rescoreUnderRoutedCost(request, *this);
        // The annealed pairing depends on the Hamiltonian, so a
        // total-weight objective would both misreport cost and
        // break the service's cache identity (which only hashes
        // the Eq. 14 structure for Hamiltonian-dependent
        // objectives).
        if (request.resolvedObjective() != Objective::HamiltonianWeight)
            fatal("strategy 'sat+annealing' requires the "
                  "hamiltonian-weight objective (leave the "
                  "objective on Auto)");
        const auto &h = *request.hamiltonian;

        const DeadlineClock clock(request.deadlineSeconds);
        auto options =
            descentOptions(request, request.algebraicIndependence);
        options.totalTimeoutSeconds =
            clock.cap(options.totalTimeoutSeconds);
        core::DescentSolver solver(h.modes(), options);
        const auto indep = solver.solve();
        if (indep.termination ==
            core::DescentTermination::Cancelled)
            return degradeAfterIndependent(
                request, indep, ResultStatus::Cancelled);
        if (clock.expired())
            return degradeAfterIndependent(
                request, indep, ResultStatus::DeadlineExceeded);

        const auto annealed_sat =
            core::annealPairing(indep.encoding, h);
        const auto annealed_bk = core::annealPairing(
            enc::bravyiKitaev(h.modes()), h);
        const auto &best =
            annealed_sat.finalCost <= annealed_bk.finalCost
                ? annealed_sat
                : annealed_bk;

        SearchOutcome outcome;
        outcome.encoding = best.encoding;
        outcome.cost = best.finalCost;
        outcome.annealedCost = best.finalCost;
        outcome.baselineCost = baselineValue(request);
        outcome.satCalls = indep.satCalls;
        return outcome;
    }
};

/**
 * Weight-optimal SAT search followed by topology-aware placement:
 * the searched encoding's qubit labels are re-placed by
 * hw::optimizePlacement and the better-routing of {searched,
 * re-placed} is kept, so the result never routes worse than the
 * plain `sat` strategy's encoding from the same search.
 */
class SatRoutedStrategy final : public EncodingStrategy
{
  public:
    SearchOutcome
    search(const CompilationRequest &request) const override
    {
        requireRoutedRequest(request, "sat-routed");
        CompilationRequest weight = request;
        weight.topology.reset();
        weight.objective = request.hamiltonian
                               ? Objective::HamiltonianWeight
                               : Objective::TotalWeight;
        const SatStrategy sat(true);
        SearchOutcome outcome = sat.search(weight);

        const auto placed = hw::optimizePlacement(
            outcome.encoding, *request.topology,
            request.hamiltonian ? &*request.hamiltonian : nullptr);
        if (routedSelectionMetric(request, placed) <=
            routedSelectionMetric(request, outcome.encoding))
            outcome.encoding = placed;

        outcome.cost = objectiveValue(request, outcome.encoding);
        outcome.baselineCost = baselineValue(request);
        outcome.annealedCost = 0;
        outcome.provedOptimal = false;
        return outcome;
    }
};

/**
 * Rescoring selection: route every closed-form baseline plus the
 * weight-optimal SAT encoding (each also in its re-placed variant)
 * and return whichever routes best. Because the SAT encoding is
 * itself a candidate, the pick can never route worse than the
 * weight-optimal baseline; because the closed forms are always
 * available, a deadline or cancellation that truncates the SAT
 * search still leaves a full candidate set (the status reports the
 * truncation).
 */
class PickRoutedStrategy final : public EncodingStrategy
{
  public:
    SearchOutcome
    search(const CompilationRequest &request) const override
    {
        requireRoutedRequest(request, "pick-routed");
        const fermion::FermionHamiltonian *h =
            request.hamiltonian ? &*request.hamiltonian : nullptr;
        const std::size_t modes = request.resolvedModes();

        CompilationRequest weight = request;
        weight.topology.reset();
        weight.objective = h ? Objective::HamiltonianWeight
                             : Objective::TotalWeight;
        const SatStrategy sat_strategy(true);
        const SearchOutcome sat = sat_strategy.search(weight);

        std::vector<enc::FermionEncoding> candidates;
        for (const auto builder :
             {enc::jordanWigner, enc::bravyiKitaev, enc::parity,
              enc::ternaryTree})
            candidates.push_back(builder(modes));
        candidates.push_back(sat.encoding);
        const std::size_t base_count = candidates.size();
        for (std::size_t i = 0; i < base_count; ++i)
            candidates.push_back(hw::optimizePlacement(
                candidates[i], *request.topology, h));

        // Ties keep the earliest candidate, so selection is
        // deterministic in the fixed candidate order.
        std::size_t best = 0;
        std::size_t best_metric = SIZE_MAX;
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            const std::size_t metric =
                routedSelectionMetric(request, candidates[i]);
            if (metric < best_metric) {
                best_metric = metric;
                best = i;
            }
        }

        SearchOutcome outcome;
        outcome.encoding = candidates[best];
        outcome.cost = objectiveValue(request, outcome.encoding);
        outcome.baselineCost = baselineValue(request);
        outcome.satCalls = sat.satCalls;
        outcome.status = sat.status;
        outcome.statusMessage = sat.statusMessage;
        return outcome;
    }
};

struct Registry
{
    std::mutex mutex;
    std::map<std::string, StrategyFactory> factories;
};

Registry &
registry()
{
    static Registry instance;
    static const bool builtins_registered = [] {
        auto closed = [](const char *name,
                         ClosedFormStrategy::Builder builder) {
            instance.factories.emplace(name, [builder] {
                return std::make_unique<ClosedFormStrategy>(builder);
            });
        };
        closed("jordan-wigner", enc::jordanWigner);
        closed("bravyi-kitaev", enc::bravyiKitaev);
        closed("parity", enc::parity);
        closed("ternary-tree", enc::ternaryTree);
        instance.factories.emplace("sat", [] {
            return std::make_unique<SatStrategy>(true);
        });
        instance.factories.emplace("sat-noalg", [] {
            return std::make_unique<SatStrategy>(false);
        });
        instance.factories.emplace("sat+annealing", [] {
            return std::make_unique<SatAnnealingStrategy>();
        });
        instance.factories.emplace("sat-routed", [] {
            return std::make_unique<SatRoutedStrategy>();
        });
        instance.factories.emplace("pick-routed", [] {
            return std::make_unique<PickRoutedStrategy>();
        });
        return true;
    }();
    (void)builtins_registered;
    return instance;
}

} // namespace

void
registerStrategy(const std::string &name, StrategyFactory factory)
{
    require(static_cast<bool>(factory),
            "registerStrategy: null factory for '", name, "'");
    Registry &r = registry();
    std::lock_guard lock(r.mutex);
    if (!r.factories.emplace(name, std::move(factory)).second)
        fatal("encoding strategy '", name, "' is already registered");
}

bool
strategyRegistered(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard lock(r.mutex);
    return r.factories.count(name) > 0;
}

std::unique_ptr<EncodingStrategy>
makeStrategy(const std::string &name)
{
    Registry &r = registry();
    StrategyFactory factory;
    {
        std::lock_guard lock(r.mutex);
        const auto it = r.factories.find(name);
        if (it != r.factories.end())
            factory = it->second;
    }
    if (!factory) {
        const auto names = registeredStrategyNames();
        if (const auto nearest = suggestNearest(name, names))
            fatal("unknown encoding strategy '", name,
                  "' (did you mean '", *nearest, "'?)");
        fatal("unknown encoding strategy '", name, "'");
    }
    return factory();
}

std::vector<std::string>
registeredStrategyNames()
{
    Registry &r = registry();
    std::lock_guard lock(r.mutex);
    std::vector<std::string> names;
    names.reserve(r.factories.size());
    for (const auto &[name, factory] : r.factories)
        names.push_back(name);
    return names; // std::map iteration is already sorted
}

SearchOutcome
baselineOutcome(const CompilationRequest &request,
                ResultStatus status, std::string message)
{
    SearchOutcome outcome;
    outcome.encoding =
        enc::bravyiKitaev(request.resolvedModes());
    outcome.cost = objectiveValue(request, outcome.encoding);
    outcome.baselineCost = outcome.cost;
    outcome.status = status;
    outcome.statusMessage = std::move(message);
    return outcome;
}

} // namespace fermihedral::api
