/**
 * @file
 * The encoding-strategy registry: named factories behind which the
 * closed-form baselines and the SAT searches share one interface.
 *
 * Built-in strategies (registered on first use):
 *
 *   jordan-wigner   A = I linear encoding            (closed form)
 *   bravyi-kitaev   Fenwick-tree linear encoding     (closed form)
 *   parity          prefix-sum linear encoding       (closed form)
 *   ternary-tree    balanced ternary tree            (closed form)
 *   sat             Algorithm 1 descent; with a Hamiltonian-
 *                   dependent objective it runs the paper's full
 *                   pipeline (independent solve -> Algorithm 2
 *                   annealing -> seeded dependent solve)
 *   sat-noalg       `sat` with the algebraic independence clauses
 *                   dropped (Sec. 4.1)
 *   sat+annealing   independent solve + Algorithm 2 pairing only
 *                   (the scalable path of Table 5)
 *   sat-routed      weight-optimal SAT search + topology-aware
 *                   qubit re-placement; needs request.topology
 *                   and the routed-cost objective (hw/)
 *   pick-routed     routes every closed-form baseline plus the
 *                   weight-optimal SAT encoding and returns the
 *                   best-routing one; same requirements
 *
 * New strategies are a registration, not a refactor: implement
 * EncodingStrategy, call registerStrategy() once, and every facade
 * caller (examples, benches, the cached service) can name it.
 *
 * Key invariants:
 *  - Names are unique; registering a duplicate is fatal.
 *  - makeStrategy() of an unknown name is a fatal diagnostic that
 *    suggests the nearest registered name (edit distance <= 2).
 *  - registeredStrategyNames() is sorted, so listings and cache
 *    keys are deterministic.
 */

#ifndef FERMIHEDRAL_API_STRATEGY_REGISTRY_H
#define FERMIHEDRAL_API_STRATEGY_REGISTRY_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/compiler.h"

namespace fermihedral::api {

/** One way of producing an encoding for a request. */
class EncodingStrategy
{
  public:
    virtual ~EncodingStrategy() = default;

    /**
     * Produce an encoding (and its search provenance) for the
     * request. The facade validates the spec before calling; the
     * strategy may still reject combinations it cannot serve
     * (e.g.\ annealing without a Hamiltonian) with fatal().
     */
    virtual SearchOutcome search(
        const CompilationRequest &request) const = 0;
};

/** Factory producing a strategy instance. */
using StrategyFactory =
    std::function<std::unique_ptr<EncodingStrategy>()>;

/** Register a named strategy. Duplicate names are fatal. */
void registerStrategy(const std::string &name,
                      StrategyFactory factory);

/** True when `name` is registered (built-ins count). */
bool strategyRegistered(const std::string &name);

/**
 * Instantiate the named strategy. Unknown names are fatal, with a
 * nearest-name suggestion when one is within edit distance 2.
 */
std::unique_ptr<EncodingStrategy> makeStrategy(
    const std::string &name);

/** All registered names, sorted. */
std::vector<std::string> registeredStrategyNames();

/**
 * The last rung of the degradation ladder: the closed-form
 * Bravyi-Kitaev baseline under the request's resolved objective,
 * tagged with a non-Ok `status` and `message`. Used by the serving
 * layer when a request expires or is cancelled before any search
 * ran (degraded results are never cached).
 */
SearchOutcome baselineOutcome(const CompilationRequest &request,
                              ResultStatus status,
                              std::string message);

} // namespace fermihedral::api

#endif // FERMIHEDRAL_API_STRATEGY_REGISTRY_H
