#include "circuit/circuit.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace fermihedral::circuit {

Circuit::Circuit(std::size_t num_qubits) : n(num_qubits)
{
    require(num_qubits >= 1 && num_qubits <= 64,
            "Circuit supports 1..64 qubits");
}

void
Circuit::checkQubit(std::uint32_t qubit) const
{
    require(qubit < n, "gate qubit ", qubit, " out of range for ", n,
            "-qubit circuit");
}

void
Circuit::add(GateKind kind, std::uint32_t qubit, double angle)
{
    require(!isTwoQubit(kind), "use addCnot for two-qubit gates");
    checkQubit(qubit);
    gateList.push_back(Gate{kind, qubit, 0, angle});
}

void
Circuit::addCnot(std::uint32_t control, std::uint32_t target)
{
    checkQubit(control);
    checkQubit(target);
    require(control != target, "CNOT control equals target");
    gateList.push_back(Gate{GateKind::Cnot, control, target, 0.0});
}

void
Circuit::append(const Circuit &other)
{
    require(other.n == n, "appending circuit of different width");
    gateList.insert(gateList.end(), other.gateList.begin(),
                    other.gateList.end());
}

CircuitCosts
Circuit::costs() const
{
    CircuitCosts costs;
    std::vector<std::size_t> level(n, 0);
    for (const Gate &gate : gateList) {
        if (gate.kind == GateKind::Cnot) {
            ++costs.cnotGates;
            const std::size_t at =
                std::max(level[gate.qubit0], level[gate.qubit1]) + 1;
            level[gate.qubit0] = at;
            level[gate.qubit1] = at;
        } else {
            ++costs.singleQubitGates;
            level[gate.qubit0] += 1;
        }
    }
    costs.totalGates = costs.singleQubitGates + costs.cnotGates;
    costs.depth = level.empty()
                      ? 0
                      : *std::max_element(level.begin(), level.end());
    return costs;
}

std::string
Circuit::toString() const
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(6);
    for (const Gate &gate : gateList) {
        oss << gateName(gate.kind);
        if (isRotation(gate.kind))
            oss << '(' << gate.angle << ')';
        oss << " q" << gate.qubit0;
        if (gate.kind == GateKind::Cnot)
            oss << ", q" << gate.qubit1;
        oss << '\n';
    }
    return oss.str();
}

const char *
gateName(GateKind kind)
{
    switch (kind) {
      case GateKind::H: return "h";
      case GateKind::X: return "x";
      case GateKind::Y: return "y";
      case GateKind::Z: return "z";
      case GateKind::S: return "s";
      case GateKind::Sdg: return "sdg";
      case GateKind::Rx: return "rx";
      case GateKind::Ry: return "ry";
      case GateKind::Rz: return "rz";
      case GateKind::Cnot: return "cx";
    }
    return "?";
}

} // namespace fermihedral::circuit
