/**
 * @file
 * Quantum circuit intermediate representation and cost metrics.
 *
 * The gate set is what the Pauli-evolution compiler emits (Fig. 3):
 * single-qubit Cliffords, Z/X/Y rotations and CNOT. Gate counts and
 * ASAP depth reproduce the Table 6 metrics.
 *
 * Key invariants:
 *  - Every stored Gate has qubit indices < numQubits() (checked on
 *    append) and an angle only when isRotation(kind).
 *  - A Circuit is a flat ordered gate list — no implicit
 *    reordering; passes that reorder/remove gates live in
 *    passes.h and must preserve the unitary.
 *  - costs() is pure: CNOT count, single-qubit count and ASAP
 *    depth are derived from the list without modifying it.
 */

#ifndef FERMIHEDRAL_CIRCUIT_CIRCUIT_H
#define FERMIHEDRAL_CIRCUIT_CIRCUIT_H

#include <cstdint>
#include <string>
#include <vector>

namespace fermihedral::circuit {

/** Gate kinds in the compiler's target set. */
enum class GateKind : std::uint8_t
{
    H,
    X,
    Y,
    Z,
    S,
    Sdg,
    Rx,
    Ry,
    Rz,
    Cnot,
};

/** True for the parameterised rotation gates. */
constexpr bool
isRotation(GateKind kind)
{
    return kind == GateKind::Rx || kind == GateKind::Ry ||
           kind == GateKind::Rz;
}

/** True for two-qubit gates. */
constexpr bool
isTwoQubit(GateKind kind)
{
    return kind == GateKind::Cnot;
}

/** One gate instance. */
struct Gate
{
    GateKind kind;
    /** Target qubit (CNOT: control in qubit0, target in qubit1). */
    std::uint32_t qubit0;
    std::uint32_t qubit1 = 0;
    /** Rotation angle for Rx/Ry/Rz, otherwise 0. */
    double angle = 0.0;
};

/** Aggregate cost metrics of a circuit (Table 6 columns). */
struct CircuitCosts
{
    std::size_t singleQubitGates = 0;
    std::size_t cnotGates = 0;
    std::size_t totalGates = 0;
    std::size_t depth = 0;
};

/** A gate list over a fixed number of qubits. */
class Circuit
{
  public:
    Circuit() = default;
    explicit Circuit(std::size_t num_qubits);

    std::size_t numQubits() const { return n; }
    const std::vector<Gate> &gates() const { return gateList; }
    std::size_t size() const { return gateList.size(); }

    /** Append a single-qubit gate. */
    void add(GateKind kind, std::uint32_t qubit, double angle = 0.0);

    /** Append a CNOT. */
    void addCnot(std::uint32_t control, std::uint32_t target);

    /** Append all gates of another circuit (same width). */
    void append(const Circuit &other);

    /** Gate counts and ASAP depth. */
    CircuitCosts costs() const;

    /** One-gate-per-line listing for the examples. */
    std::string toString() const;

  private:
    std::size_t n = 0;
    std::vector<Gate> gateList;

    void checkQubit(std::uint32_t qubit) const;
};

/** Printable gate name ("h", "cx", ...). */
const char *gateName(GateKind kind);

} // namespace fermihedral::circuit

#endif // FERMIHEDRAL_CIRCUIT_CIRCUIT_H
