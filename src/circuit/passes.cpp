#include "circuit/passes.h"

#include <cmath>
#include <vector>

#include "common/logging.h"

namespace fermihedral::circuit {

namespace {

/** True when the two gates are mutually inverse 1q Cliffords. */
bool
inversePair(GateKind a, GateKind b)
{
    if (a == b) {
        return a == GateKind::H || a == GateKind::X ||
               a == GateKind::Y || a == GateKind::Z;
    }
    return (a == GateKind::S && b == GateKind::Sdg) ||
           (a == GateKind::Sdg && b == GateKind::S);
}

/** Angle folded to (-2 pi, 2 pi]; rotation matrices have period
 *  4 pi (Rz(theta + 2 pi) = -Rz(theta)), so folding modulo 4 pi
 *  keeps the optimized circuit equal as a matrix, not merely up to
 *  a global phase. */
double
foldAngle(double angle)
{
    constexpr double four_pi = 4.0 * M_PI;
    angle = std::fmod(angle, four_pi);
    if (angle > 2.0 * M_PI)
        angle -= four_pi;
    if (angle <= -2.0 * M_PI)
        angle += four_pi;
    return angle;
}

} // namespace

std::size_t
cancelAndMergeOnce(Circuit &circuit)
{
    const std::size_t n = circuit.numQubits();
    std::vector<Gate> gates(circuit.gates());
    std::vector<char> alive(gates.size(), 1);
    // Per-qubit stack of indices of alive gates touching the qubit,
    // in program order; back() is the latest.
    std::vector<std::vector<std::size_t>> last(n);

    std::size_t removed = 0;
    for (std::size_t i = 0; i < gates.size(); ++i) {
        Gate &gate = gates[i];
        if (gate.kind == GateKind::Cnot) {
            auto &sc = last[gate.qubit0];
            auto &st = last[gate.qubit1];
            if (!sc.empty() && !st.empty() &&
                sc.back() == st.back()) {
                const std::size_t j = sc.back();
                const Gate &prev = gates[j];
                if (prev.kind == GateKind::Cnot &&
                    prev.qubit0 == gate.qubit0 &&
                    prev.qubit1 == gate.qubit1) {
                    alive[j] = 0;
                    alive[i] = 0;
                    sc.pop_back();
                    st.pop_back();
                    removed += 2;
                    continue;
                }
            }
            sc.push_back(i);
            st.push_back(i);
            continue;
        }

        auto &stack = last[gate.qubit0];
        if (!stack.empty()) {
            const std::size_t j = stack.back();
            Gate &prev = gates[j];
            if (prev.kind != GateKind::Cnot &&
                prev.qubit0 == gate.qubit0) {
                if (inversePair(prev.kind, gate.kind)) {
                    alive[j] = 0;
                    alive[i] = 0;
                    stack.pop_back();
                    removed += 2;
                    continue;
                }
                if (isRotation(gate.kind) &&
                    prev.kind == gate.kind) {
                    prev.angle = foldAngle(prev.angle + gate.angle);
                    alive[i] = 0;
                    ++removed;
                    if (std::abs(prev.angle) < 1e-12) {
                        alive[j] = 0;
                        stack.pop_back();
                        ++removed;
                    }
                    continue;
                }
            }
        }
        if (isRotation(gate.kind) &&
            std::abs(foldAngle(gate.angle)) < 1e-12) {
            alive[i] = 0;
            ++removed;
            continue;
        }
        stack.push_back(i);
    }

    Circuit rebuilt(n);
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (!alive[i])
            continue;
        if (gates[i].kind == GateKind::Cnot)
            rebuilt.addCnot(gates[i].qubit0, gates[i].qubit1);
        else
            rebuilt.add(gates[i].kind, gates[i].qubit0,
                        gates[i].angle);
    }
    circuit = std::move(rebuilt);
    return removed;
}

void
optimizeCircuit(Circuit &circuit)
{
    while (cancelAndMergeOnce(circuit) > 0) {
    }
}

Matrix2
multiply(const Matrix2 &a, const Matrix2 &b)
{
    Matrix2 out;
    out.m00 = a.m00 * b.m00 + a.m01 * b.m10;
    out.m01 = a.m00 * b.m01 + a.m01 * b.m11;
    out.m10 = a.m10 * b.m00 + a.m11 * b.m10;
    out.m11 = a.m10 * b.m01 + a.m11 * b.m11;
    return out;
}

Matrix2
singleQubitMatrix(const Gate &gate)
{
    constexpr std::complex<double> i{0.0, 1.0};
    const double half = gate.angle / 2.0;
    const double c = std::cos(half);
    const double s = std::sin(half);
    Matrix2 m;
    switch (gate.kind) {
      case GateKind::H: {
        const double r = 1.0 / std::sqrt(2.0);
        m = {r, r, r, -r};
        break;
      }
      case GateKind::X:
        m = {0.0, 1.0, 1.0, 0.0};
        break;
      case GateKind::Y:
        m = {0.0, -i, i, 0.0};
        break;
      case GateKind::Z:
        m = {1.0, 0.0, 0.0, -1.0};
        break;
      case GateKind::S:
        m = {1.0, 0.0, 0.0, i};
        break;
      case GateKind::Sdg:
        m = {1.0, 0.0, 0.0, -i};
        break;
      case GateKind::Rx:
        m = {c, -i * s, -i * s, c};
        break;
      case GateKind::Ry:
        m = {c, -s, s, c};
        break;
      case GateKind::Rz:
        m = {std::complex<double>{c, -s}, 0.0, 0.0,
             std::complex<double>{c, s}};
        break;
      case GateKind::Cnot:
        panic("singleQubitMatrix called with a CNOT");
    }
    return m;
}

FusedCircuit
fuseSingleQubitGates(const Circuit &circuit)
{
    const std::size_t n = circuit.numQubits();
    FusedCircuit out;
    out.numQubits = n;

    // Per-qubit matrix accumulated since the last CNOT on the qubit.
    std::vector<Matrix2> pending(n);
    std::vector<char> has_pending(n, 0);

    const auto flush = [&](std::uint32_t qubit) {
        if (!has_pending[qubit])
            return;
        FusedGate fused;
        fused.qubit0 = qubit;
        fused.matrix = pending[qubit];
        out.gates.push_back(fused);
        pending[qubit] = Matrix2{};
        has_pending[qubit] = 0;
    };

    for (const Gate &gate : circuit.gates()) {
        if (gate.kind == GateKind::Cnot) {
            flush(gate.qubit0);
            flush(gate.qubit1);
            FusedGate fused;
            fused.isCnot = true;
            fused.qubit0 = gate.qubit0;
            fused.qubit1 = gate.qubit1;
            out.gates.push_back(fused);
            continue;
        }
        pending[gate.qubit0] = multiply(singleQubitMatrix(gate),
                                        pending[gate.qubit0]);
        has_pending[gate.qubit0] = 1;
    }
    for (std::uint32_t q = 0; q < n; ++q)
        flush(q);
    return out;
}

FusedCircuit
lowerToMatrices(const Circuit &circuit)
{
    FusedCircuit out;
    out.numQubits = circuit.numQubits();
    out.gates.reserve(circuit.size());
    for (const Gate &gate : circuit.gates()) {
        FusedGate fused;
        fused.qubit0 = gate.qubit0;
        if (gate.kind == GateKind::Cnot) {
            fused.isCnot = true;
            fused.qubit1 = gate.qubit1;
        } else {
            fused.matrix = singleQubitMatrix(gate);
        }
        out.gates.push_back(fused);
    }
    return out;
}

} // namespace fermihedral::circuit
