/**
 * @file
 * Peephole optimization passes over the circuit IR.
 *
 * A light-weight stand-in for the Qiskit level-3 stack used by the
 * paper's Table 6: cancel adjacent self-inverse pairs (H/X/Y/Z,
 * CNOT-CNOT, S-Sdg), merge adjacent equal-axis rotations, and drop
 * rotations by multiples of 2 pi. Passes run to a fixpoint.
 *
 * Key invariants:
 *  - Passes preserve the implemented unitary up to global phase;
 *    "adjacent" means adjacent on the gates' qubits (gates on
 *    disjoint qubits commute past each other).
 *  - optimizeCircuit() terminates: every rewrite strictly removes
 *    gates, so the fixpoint is reached in at most size() rounds.
 *  - The qubit count never changes; only the gate list shrinks.
 */

#ifndef FERMIHEDRAL_CIRCUIT_PASSES_H
#define FERMIHEDRAL_CIRCUIT_PASSES_H

#include "circuit/circuit.h"

namespace fermihedral::circuit {

/**
 * One optimization pass: cancel inverse pairs and merge rotations
 * that are adjacent on their qubits. Returns the number of gates
 * removed.
 */
std::size_t cancelAndMergeOnce(Circuit &circuit);

/** Run cancelAndMergeOnce until no gate is removed. */
void optimizeCircuit(Circuit &circuit);

} // namespace fermihedral::circuit

#endif // FERMIHEDRAL_CIRCUIT_PASSES_H
