/**
 * @file
 * Peephole optimization passes over the circuit IR.
 *
 * A light-weight stand-in for the Qiskit level-3 stack used by the
 * paper's Table 6: cancel adjacent self-inverse pairs (H/X/Y/Z,
 * CNOT-CNOT, S-Sdg), merge adjacent equal-axis rotations, and drop
 * rotations by multiples of 2 pi. Passes run to a fixpoint.
 *
 * Also hosts the simulation-side fusion pass: runs of single-qubit
 * gates that are adjacent on their qubit collapse into one 2x2
 * matrix (a FusedCircuit), so the state-vector simulator sweeps the
 * amplitudes once per run instead of once per gate. Fusion is for
 * noiseless application only — per-gate error channels (sim/noise)
 * must see every gate individually.
 *
 * Key invariants:
 *  - Passes preserve the implemented unitary up to global phase;
 *    "adjacent" means adjacent on the gates' qubits (gates on
 *    disjoint qubits commute past each other). fuseSingleQubitGates
 *    preserves the unitary exactly (including global phase): it
 *    only multiplies the gates' actual matrices.
 *  - optimizeCircuit() terminates: every rewrite strictly removes
 *    gates, so the fixpoint is reached in at most size() rounds.
 *  - The qubit count never changes; only the gate list shrinks.
 */

#ifndef FERMIHEDRAL_CIRCUIT_PASSES_H
#define FERMIHEDRAL_CIRCUIT_PASSES_H

#include <complex>
#include <vector>

#include "circuit/circuit.h"

namespace fermihedral::circuit {

/**
 * One optimization pass: cancel inverse pairs and merge rotations
 * that are adjacent on their qubits. Returns the number of gates
 * removed.
 */
std::size_t cancelAndMergeOnce(Circuit &circuit);

/** Run cancelAndMergeOnce until no gate is removed. */
void optimizeCircuit(Circuit &circuit);

/** A 2x2 complex matrix in row-major order (m[row][column]). */
struct Matrix2
{
    std::complex<double> m00{1.0, 0.0};
    std::complex<double> m01{0.0, 0.0};
    std::complex<double> m10{0.0, 0.0};
    std::complex<double> m11{1.0, 0.0};

    /** True when both off-diagonal entries are exactly zero. */
    bool
    isDiagonal() const
    {
        return m01 == std::complex<double>{0.0, 0.0} &&
               m10 == std::complex<double>{0.0, 0.0};
    }

    /** True when both diagonal entries are exactly zero (X, Y). */
    bool
    isAntiDiagonal() const
    {
        return m00 == std::complex<double>{0.0, 0.0} &&
               m11 == std::complex<double>{0.0, 0.0};
    }
};

/** Matrix product a * b (apply b first, then a). */
Matrix2 multiply(const Matrix2 &a, const Matrix2 &b);

/**
 * The exact 2x2 matrix of a single-qubit gate (including the
 * rotation angle). Calling this with a CNOT is a usage error.
 */
Matrix2 singleQubitMatrix(const Gate &gate);

/** One fused operation: either a CNOT or a 2x2 matrix on a qubit. */
struct FusedGate
{
    bool isCnot = false;
    /** Matrix target qubit (CNOT: control). */
    std::uint32_t qubit0 = 0;
    /** CNOT target qubit (unused for matrices). */
    std::uint32_t qubit1 = 0;
    /** Accumulated matrix (identity for CNOTs). */
    Matrix2 matrix;
};

/** A circuit after single-qubit-run fusion. */
struct FusedCircuit
{
    std::size_t numQubits = 0;
    std::vector<FusedGate> gates;
};

/**
 * Collapse every maximal run of single-qubit gates that is adjacent
 * on its qubit (only CNOTs touching the qubit break a run) into a
 * single FusedGate matrix, preserving order relative to the CNOTs.
 * The fused circuit implements exactly the same unitary.
 */
FusedCircuit fuseSingleQubitGates(const Circuit &circuit);

/**
 * Lower every gate to its matrix WITHOUT merging runs: the output
 * has exactly one FusedGate per input gate, with rotation trig
 * evaluated once here instead of on every application. This is the
 * representation the per-gate noise channels need — fusing runs
 * would change how many error opportunities a trajectory sees.
 */
FusedCircuit lowerToMatrices(const Circuit &circuit);

} // namespace fermihedral::circuit

#endif // FERMIHEDRAL_CIRCUIT_PASSES_H
