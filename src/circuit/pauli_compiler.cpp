#include "circuit/pauli_compiler.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "circuit/passes.h"
#include "common/logging.h"

namespace fermihedral::circuit {

void
appendPauliEvolution(Circuit &circuit,
                     const pauli::PauliString &string, double theta)
{
    require(string.numQubits() == circuit.numQubits(),
            "Pauli string width does not match circuit");
    require(string.phaseExp() % 2 == 0,
            "cannot exponentiate a non-Hermitian (i-phased) string");
    if (string.phaseExp() == 2)
        theta = -theta;
    if (string.isIdentity())
        return; // global phase only

    // Step 1: rotate each qubit into the Z basis.
    std::vector<std::uint32_t> support;
    for (std::size_t q = 0; q < string.numQubits(); ++q) {
        const pauli::PauliOp op = string.op(q);
        if (op == pauli::PauliOp::I)
            continue;
        support.push_back(static_cast<std::uint32_t>(q));
        if (op == pauli::PauliOp::X) {
            circuit.add(GateKind::H, q);
        } else if (op == pauli::PauliOp::Y) {
            circuit.add(GateKind::Sdg, q);
            circuit.add(GateKind::H, q);
        }
    }

    // Steps 2-4: CNOT star into the target, Rz, star reversed.
    // exp(i theta Z...Z) = CNOTs * Rz(-2 theta) * CNOTs.
    const std::uint32_t target = support.back();
    for (const std::uint32_t q : support) {
        if (q != target)
            circuit.addCnot(q, target);
    }
    circuit.add(GateKind::Rz, target, -2.0 * theta);
    for (std::size_t i = support.size(); i-- > 0;) {
        if (support[i] != target)
            circuit.addCnot(support[i], target);
    }

    // Step 5: undo the basis rotations.
    for (const std::uint32_t q : support) {
        const pauli::PauliOp op = string.op(q);
        if (op == pauli::PauliOp::X) {
            circuit.add(GateKind::H, q);
        } else if (op == pauli::PauliOp::Y) {
            circuit.add(GateKind::H, q);
            circuit.add(GateKind::S, q);
        }
    }
}

std::vector<pauli::PauliTerm>
orderTerms(const pauli::PauliSum &hamiltonian, TermOrder order)
{
    std::vector<pauli::PauliTerm> terms;
    for (const auto &term : hamiltonian.terms()) {
        if (!term.string.isIdentity())
            terms.push_back(term);
    }
    if (order == TermOrder::Natural || terms.size() <= 2)
        return terms;

    if (order == TermOrder::Lexicographic) {
        std::sort(terms.begin(), terms.end(),
                  [](const pauli::PauliTerm &a,
                     const pauli::PauliTerm &b) {
                      return a.string < b.string;
                  });
        return terms;
    }

    // GreedyOverlap: chain terms so neighbours share as many equal
    // non-identity operators as possible (those single-qubit basis
    // rotations and CNOT legs cancel between adjacent blocks).
    auto overlap = [](const pauli::PauliString &a,
                      const pauli::PauliString &b) {
        // Equal ops: neither mask differs; non-identity: mask set.
        const std::uint64_t same_x = ~(a.xMask() ^ b.xMask());
        const std::uint64_t same_z = ~(a.zMask() ^ b.zMask());
        const std::uint64_t non_identity =
            (a.xMask() | a.zMask()) & (b.xMask() | b.zMask());
        return std::popcount(same_x & same_z & non_identity);
    };

    std::vector<pauli::PauliTerm> chain;
    std::vector<bool> used(terms.size(), false);
    std::size_t current = 0;
    used[0] = true;
    chain.push_back(terms[0]);
    for (std::size_t step = 1; step < terms.size(); ++step) {
        int best_score = -1;
        std::size_t best_index = 0;
        for (std::size_t i = 0; i < terms.size(); ++i) {
            if (used[i])
                continue;
            const int score =
                overlap(terms[current].string, terms[i].string);
            if (score > best_score) {
                best_score = score;
                best_index = i;
            }
        }
        used[best_index] = true;
        chain.push_back(terms[best_index]);
        current = best_index;
    }
    return chain;
}

Circuit
compileTrotter(const pauli::PauliSum &hamiltonian, double time,
               const CompileOptions &options)
{
    require(options.trotterSteps >= 1,
            "compileTrotter needs at least one step");
    require(hamiltonian.isHermitian(1e-6),
            "compileTrotter requires a Hermitian Pauli sum");
    Circuit circuit(hamiltonian.numQubits());
    const auto terms = orderTerms(hamiltonian, options.order);
    const double dt =
        time / static_cast<double>(options.trotterSteps);
    for (std::size_t step = 0; step < options.trotterSteps; ++step) {
        if (options.trotterOrder == TrotterOrder::First) {
            for (const auto &term : terms) {
                appendPauliEvolution(circuit, term.string,
                                     term.coefficient.real() * dt);
            }
        } else {
            // Symmetric Suzuki step: half forward, half backward.
            for (const auto &term : terms) {
                appendPauliEvolution(
                    circuit, term.string,
                    term.coefficient.real() * dt / 2.0);
            }
            for (std::size_t i = terms.size(); i-- > 0;) {
                appendPauliEvolution(
                    circuit, terms[i].string,
                    terms[i].coefficient.real() * dt / 2.0);
            }
        }
    }
    if (options.optimize)
        optimizeCircuit(circuit);
    return circuit;
}

} // namespace fermihedral::circuit
