/**
 * @file
 * Compilation of Pauli-string evolutions into basic gates.
 *
 * Implements the five-step recipe of the paper's Figure 3 for each
 * exp(i theta P) factor, first-order Trotterization for a whole
 * Pauli-sum Hamiltonian, and a greedy term-ordering heuristic that
 * maximises gate cancellation between adjacent evolution blocks
 * (standing in for the Paulihedral + Qiskit-L3 stack the paper uses
 * for Table 6).
 *
 * Key invariants:
 *  - appendPauliEvolution() requires a real tracked phase (i^0 or
 *    i^2); the sign folds into the rotation angle, so the emitted
 *    circuit equals exp(i theta P) exactly (identity strings emit
 *    nothing — a global phase).
 *  - compileTrotter() emits one evolution block per non-identity
 *    term per step; term ordering and peephole passes change gate
 *    counts but never the implemented unitary.
 *  - orderTerms() returns a permutation of the sum's terms —
 *    nothing is dropped, merged or rescaled.
 */

#ifndef FERMIHEDRAL_CIRCUIT_PAULI_COMPILER_H
#define FERMIHEDRAL_CIRCUIT_PAULI_COMPILER_H

#include "circuit/circuit.h"
#include "pauli/pauli_string.h"
#include "pauli/pauli_sum.h"

namespace fermihedral::circuit {

/** Term-ordering strategies for Trotter compilation. */
enum class TermOrder
{
    /** Keep the PauliSum's canonical order. */
    Natural,
    /** Sort lexicographically by operator pattern. */
    Lexicographic,
    /** Greedy chain maximising operator overlap between neighbours. */
    GreedyOverlap,
};

/** Product-formula order. */
enum class TrotterOrder
{
    /** exp(iHt) ~ prod_j exp(i w_j P_j dt) per step. */
    First,
    /**
     * Second-order Suzuki: forward half-step then backward
     * half-step, with O(dt^3) local error. Adjacent half-steps share
     * a boundary term, which the peephole passes merge.
     */
    Second,
};

/** Options for compileTrotter. */
struct CompileOptions
{
    TermOrder order = TermOrder::GreedyOverlap;
    /** Run the cancellation/rotation-merging peephole passes. */
    bool optimize = true;
    /** Number of Trotter steps. */
    std::size_t trotterSteps = 1;
    /** Product-formula order (extension beyond the paper). */
    TrotterOrder trotterOrder = TrotterOrder::First;
};

/**
 * Append the circuit implementing exp(i * theta * P).
 *
 * The string's tracked phase must be real (i^0 or i^2); a negative
 * sign folds into the rotation angle. Identity strings are a global
 * phase and emit nothing.
 */
void appendPauliEvolution(Circuit &circuit,
                          const pauli::PauliString &string,
                          double theta);

/**
 * First-order Trotter circuit for exp(i * H * time) with the given
 * term ordering and optimization options.
 */
Circuit compileTrotter(const pauli::PauliSum &hamiltonian,
                       double time,
                       const CompileOptions &options = {});

/** The term sequence compileTrotter would use (exposed for tests). */
std::vector<pauli::PauliTerm> orderTerms(
    const pauli::PauliSum &hamiltonian, TermOrder order);

} // namespace fermihedral::circuit

#endif // FERMIHEDRAL_CIRCUIT_PAULI_COMPILER_H
