#include "circuit/qasm.h"

#include <iomanip>
#include <sstream>

namespace fermihedral::circuit {

std::string
toQasm(const Circuit &circuit, bool measure)
{
    std::ostringstream oss;
    oss << "OPENQASM 2.0;\n";
    oss << "include \"qelib1.inc\";\n";
    oss << "qreg q[" << circuit.numQubits() << "];\n";
    if (measure)
        oss << "creg c[" << circuit.numQubits() << "];\n";
    oss << std::setprecision(17);
    for (const Gate &gate : circuit.gates()) {
        oss << gateName(gate.kind);
        if (isRotation(gate.kind))
            oss << '(' << gate.angle << ')';
        oss << " q[" << gate.qubit0 << ']';
        if (gate.kind == GateKind::Cnot)
            oss << ", q[" << gate.qubit1 << ']';
        oss << ";\n";
    }
    if (measure) {
        oss << "measure q -> c;\n";
    }
    return oss.str();
}

} // namespace fermihedral::circuit
