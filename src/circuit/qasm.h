/**
 * @file
 * OpenQASM 2.0 export for compiled circuits, so encodings found by
 * this library can be executed on real backends (the paper's IonQ
 * study submitted such circuits through Amazon Braket).
 */

#ifndef FERMIHEDRAL_CIRCUIT_QASM_H
#define FERMIHEDRAL_CIRCUIT_QASM_H

#include <string>

#include "circuit/circuit.h"

namespace fermihedral::circuit {

/**
 * Render the circuit as OpenQASM 2.0 using the standard qelib1
 * gates (h, x, y, z, s, sdg, rx, ry, rz, cx).
 *
 * @param circuit The circuit to render.
 * @param measure Append a full register measurement when true.
 */
std::string toQasm(const Circuit &circuit, bool measure = false);

} // namespace fermihedral::circuit

#endif // FERMIHEDRAL_CIRCUIT_QASM_H
