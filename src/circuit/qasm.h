/**
 * @file
 * OpenQASM 2.0 export for compiled circuits, so encodings found by
 * this library can be executed on real backends (the paper's IonQ
 * study submitted such circuits through Amazon Braket).
 *
 * Key invariants:
 *  - Output is self-contained OpenQASM 2.0 (header, qelib1
 *    include, one qreg; plus a creg and measurements when
 *    requested) and covers the full GateKind set — every circuit
 *    this library can build is exportable.
 *  - Gates are emitted in list order; rotation angles print with
 *    enough digits to round-trip a double.
 */

#ifndef FERMIHEDRAL_CIRCUIT_QASM_H
#define FERMIHEDRAL_CIRCUIT_QASM_H

#include <string>

#include "circuit/circuit.h"

namespace fermihedral::circuit {

/**
 * Render the circuit as OpenQASM 2.0 using the standard qelib1
 * gates (h, x, y, z, s, sdg, rx, ry, rz, cx).
 *
 * @param circuit The circuit to render.
 * @param measure Append a full register measurement when true.
 */
std::string toQasm(const Circuit &circuit, bool measure = false);

} // namespace fermihedral::circuit

#endif // FERMIHEDRAL_CIRCUIT_QASM_H
