/**
 * @file
 * CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over a byte
 * string. Used by the on-disk encoding cache to detect torn or
 * bit-flipped entries that a line-oriented parser alone could miss
 * (e.g.\ a flipped bit inside a hexfloat coefficient still parses).
 */

#ifndef FERMIHEDRAL_COMMON_CRC32_H
#define FERMIHEDRAL_COMMON_CRC32_H

#include <array>
#include <cstdint>
#include <string_view>

namespace fermihedral {

inline std::uint32_t
crc32(std::string_view data)
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (const char ch : data)
        crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^
              (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

} // namespace fermihedral

#endif // FERMIHEDRAL_COMMON_CRC32_H
