#include "common/failpoint.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>

#include "common/logging.h"

namespace fermihedral::failpoint {

namespace {

enum class Mode
{
    Always,
    Times,
    After,
    Every,
};

struct Entry
{
    Mode mode = Mode::Always;
    std::uint64_t param = 0;
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
};

/** Parse a firing spec; nullopt means "off" (disarm). */
std::optional<Entry>
parseSpec(std::string_view name, std::string_view spec)
{
    auto counted = [&](Mode mode,
                       std::string_view text) -> Entry {
        std::uint64_t value = 0;
        bool any = false;
        for (const char c : text) {
            if (c < '0' || c > '9' || text.size() > 18)
                fatal("failpoint '", name, "': malformed count in "
                      "spec '", spec, "'");
            value = value * 10 + static_cast<std::uint64_t>(c - '0');
            any = true;
        }
        if (!any || (mode != Mode::After && value == 0))
            fatal("failpoint '", name, "': malformed count in "
                  "spec '", spec, "'");
        Entry entry;
        entry.mode = mode;
        entry.param = value;
        return entry;
    };
    if (spec == "off")
        return std::nullopt;
    if (spec == "always")
        return Entry{Mode::Always, 0};
    if (spec == "once")
        return Entry{Mode::Times, 1};
    if (spec.substr(0, 6) == "times:")
        return counted(Mode::Times, spec.substr(6));
    if (spec.substr(0, 6) == "after:")
        return counted(Mode::After, spec.substr(6));
    if (spec.substr(0, 6) == "every:")
        return counted(Mode::Every, spec.substr(6));
    fatal("failpoint '", name, "': unknown spec '", spec,
          "' (expected always|once|times:N|after:N|every:N|off)");
}

struct Registry
{
    std::mutex mutex;
    std::map<std::string, Entry, std::less<>> entries;
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

void
armOne(Registry &r, std::string_view name, std::string_view spec)
{
    if (name.empty())
        fatal("failpoint: empty name in spec '", spec, "'");
    const std::optional<Entry> entry = parseSpec(name, spec);
    std::lock_guard lock(r.mutex);
    const auto it = r.entries.find(name);
    if (!entry) {
        if (it != r.entries.end()) {
            r.entries.erase(it);
            detail::armedCount.fetch_sub(
                1, std::memory_order_relaxed);
        }
        return;
    }
    if (it == r.entries.end()) {
        r.entries.emplace(std::string(name), *entry);
        detail::armedCount.fetch_add(1, std::memory_order_relaxed);
    } else {
        it->second = *entry; // re-spec resets the counters
    }
}

void
armList(Registry &r, std::string_view csv)
{
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t end = csv.find(',', start);
        if (end == std::string_view::npos)
            end = csv.size();
        const std::string_view item =
            csv.substr(start, end - start);
        if (!item.empty()) {
            const std::size_t eq = item.find('=');
            if (eq == std::string_view::npos)
                fatal("failpoint: malformed entry '", item,
                      "' (expected name=spec)");
            armOne(r, item.substr(0, eq), item.substr(eq + 1));
        }
        start = end + 1;
    }
}

/**
 * Environment arming runs at load time so every binary honours
 * FERMIHEDRAL_FAILPOINTS without any call-site opt-in.
 */
const bool envArmed = [] {
    if (const char *env = std::getenv("FERMIHEDRAL_FAILPOINTS"))
        armList(registry(), env);
    return true;
}();

} // namespace

namespace detail {

bool
fireSlow(std::string_view name)
{
    Registry &r = registry();
    std::lock_guard lock(r.mutex);
    const auto it = r.entries.find(name);
    if (it == r.entries.end())
        return false;
    Entry &entry = it->second;
    ++entry.evaluations;
    bool fired = false;
    switch (entry.mode) {
      case Mode::Always: fired = true; break;
      case Mode::Times: fired = entry.fires < entry.param; break;
      case Mode::After: fired = entry.evaluations > entry.param;
          break;
      case Mode::Every:
          fired = entry.evaluations % entry.param == 0;
          break;
    }
    if (fired)
        ++entry.fires;
    return fired;
}

} // namespace detail

void
arm(std::string_view name, std::string_view spec)
{
    armOne(registry(), name, spec);
}

void
disarm(std::string_view name)
{
    Registry &r = registry();
    std::lock_guard lock(r.mutex);
    const auto it = r.entries.find(name);
    if (it == r.entries.end())
        return;
    r.entries.erase(it);
    detail::armedCount.fetch_sub(1, std::memory_order_relaxed);
}

void
disarmAll()
{
    Registry &r = registry();
    std::lock_guard lock(r.mutex);
    detail::armedCount.fetch_sub(r.entries.size(),
                                 std::memory_order_relaxed);
    r.entries.clear();
}

void
armFromSpec(std::string_view csv)
{
    armList(registry(), csv);
}

FailpointCounts
counts(std::string_view name)
{
    Registry &r = registry();
    std::lock_guard lock(r.mutex);
    const auto it = r.entries.find(name);
    if (it == r.entries.end())
        return {};
    return {it->second.evaluations, it->second.fires};
}

std::vector<std::string>
armedNames()
{
    Registry &r = registry();
    std::lock_guard lock(r.mutex);
    std::vector<std::string> names;
    names.reserve(r.entries.size());
    for (const auto &[name, entry] : r.entries)
        names.push_back(name);
    return names; // std::map iteration is already sorted
}

} // namespace fermihedral::failpoint
