/**
 * @file
 * Deterministic fault injection: a process-wide registry of named
 * failpoints that production code queries with fire() at the places
 * faults are worth rehearsing (disk-cache writes, the service
 * dispatcher, the solver budget poll). Tests and operators arm a
 * failpoint with a deterministic firing spec; everything stays
 * inert otherwise.
 *
 * Zero-cost when disabled, like telemetry::TraceSpan: with nothing
 * armed, fire() is a single relaxed atomic load of a global armed
 * count — safe to keep on hot paths such as Solver::budgetExpired.
 * Armed failpoints take a registry mutex per evaluation, which only
 * fault-injection runs pay.
 *
 * Firing specs (all counter-based — no randomness, so runs are
 * reproducible):
 *
 *   always      fire on every evaluation
 *   once        fire on the first evaluation only (= times:1)
 *   times:N     fire on the first N evaluations
 *   after:N     fire on every evaluation past the first N
 *   every:N     fire on every Nth evaluation (N >= 1)
 *   off         disarm (accepted for env-var convenience)
 *
 * Arming sources:
 *  - programmatic: arm("service.cache.write.torn", "always");
 *  - environment:  FERMIHEDRAL_FAILPOINTS="name=spec,name=spec",
 *    parsed once at process start, so any binary can run under
 *    injected faults without a recompile.
 *
 * Failpoints compiled into the repo today:
 *
 *   service.cache.write.torn    publish a truncated disk entry
 *   service.cache.write.enospc  fail the disk write (no entry)
 *   service.cache.read.corrupt  flip a byte in the entry just read
 *   service.dispatch.fail       fail the dispatched request
 *   sat.budget.expire           force the budget poll to expire
 *
 * Key invariants:
 *  - fire() of a name that is not armed returns false and mutates
 *    nothing; arming unknown names is allowed (the registry is
 *    open — a name is just a string agreed with the call site).
 *  - Malformed specs are fatal diagnostics (FatalError), both from
 *    arm() and from the environment variable.
 *  - Counters (evaluations/fires) are exact under concurrency; the
 *    per-thread interleaving of `every:N` is the only source of
 *    nondeterminism, and only when multiple threads share a name.
 */

#ifndef FERMIHEDRAL_COMMON_FAILPOINT_H
#define FERMIHEDRAL_COMMON_FAILPOINT_H

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fermihedral::failpoint {

namespace detail {

/** Armed-failpoint count; nonzero routes fire() to the registry. */
inline std::atomic<std::size_t> armedCount{0};

bool fireSlow(std::string_view name);

} // namespace detail

/**
 * True when the named failpoint is armed and its spec fires on this
 * evaluation. The caller then injects its fault.
 */
inline bool
fire(std::string_view name)
{
    if (detail::armedCount.load(std::memory_order_relaxed) == 0)
        return false;
    return detail::fireSlow(name);
}

/** Arm (or re-spec) a failpoint. Malformed specs are fatal. */
void arm(std::string_view name, std::string_view spec);

/** Disarm one failpoint (drops its counters). No-op if unknown. */
void disarm(std::string_view name);

/** Disarm everything (test teardown). */
void disarmAll();

/**
 * Arm from a comma-separated "name=spec,name=spec" list — the
 * FERMIHEDRAL_FAILPOINTS grammar. Malformed entries are fatal.
 */
void armFromSpec(std::string_view csv);

/** Evaluation/fire counters of one armed failpoint. */
struct FailpointCounts
{
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
};

/** Counters for `name` (zeros when not armed). */
FailpointCounts counts(std::string_view name);

/** Names currently armed, sorted. */
std::vector<std::string> armedNames();

} // namespace fermihedral::failpoint

#endif // FERMIHEDRAL_COMMON_FAILPOINT_H
