#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "common/suggest.h"

namespace fermihedral {

FlagSet::FlagSet(std::string description)
    : description(std::move(description))
{
}

FlagSet::~FlagSet()
{
    for (Flag *flag : flags)
        delete flag;
}

std::int64_t *
FlagSet::addInt(const std::string &name, std::int64_t default_value,
                const std::string &help)
{
    auto *flag = new Flag();
    flag->name = name;
    flag->help = help;
    flag->kind = Kind::Int;
    flag->intValue = default_value;
    flag->defaultText = std::to_string(default_value);
    flags.push_back(flag);
    return &flag->intValue;
}

double *
FlagSet::addDouble(const std::string &name, double default_value,
                   const std::string &help)
{
    auto *flag = new Flag();
    flag->name = name;
    flag->help = help;
    flag->kind = Kind::Double;
    flag->doubleValue = default_value;
    flag->defaultText = std::to_string(default_value);
    flags.push_back(flag);
    return &flag->doubleValue;
}

bool *
FlagSet::addBool(const std::string &name, bool default_value,
                 const std::string &help)
{
    auto *flag = new Flag();
    flag->name = name;
    flag->help = help;
    flag->kind = Kind::Bool;
    flag->boolValue = default_value;
    flag->defaultText = default_value ? "true" : "false";
    flags.push_back(flag);
    return &flag->boolValue;
}

std::string *
FlagSet::addString(const std::string &name,
                   const std::string &default_value,
                   const std::string &help)
{
    auto *flag = new Flag();
    flag->name = name;
    flag->help = help;
    flag->kind = Kind::String;
    flag->stringValue = default_value;
    flag->defaultText = default_value.empty() ? "\"\"" : default_value;
    flags.push_back(flag);
    return &flag->stringValue;
}

FlagSet::Flag *
FlagSet::find(const std::string &name)
{
    for (Flag *flag : flags) {
        if (flag->name == name)
            return flag;
    }
    return nullptr;
}

void
FlagSet::assign(Flag &flag, const std::string &text)
{
    char *end = nullptr;
    switch (flag.kind) {
      case Kind::Int:
        flag.intValue = std::strtoll(text.c_str(), &end, 10);
        if (text.empty() || *end != '\0')
            fatal("flag '--", flag.name, "' expects an integer, got '",
                  text, "'");
        break;
      case Kind::Double:
        flag.doubleValue = std::strtod(text.c_str(), &end);
        if (text.empty() || *end != '\0')
            fatal("flag '--", flag.name, "' expects a number, got '",
                  text, "'");
        break;
      case Kind::Bool:
        flag.boolValue = !(text == "false" || text == "0" ||
                           text == "no");
        break;
      case Kind::String:
        flag.stringValue = text;
        break;
    }
}

bool
FlagSet::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            return false;
        }
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected positional argument '", arg, "'");
        arg = arg.substr(2);

        std::string value;
        bool has_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_value = true;
        }

        Flag *flag = find(arg);
        if (!flag) {
            std::vector<std::string> names;
            names.reserve(flags.size());
            for (const Flag *registered : flags)
                names.push_back(registered->name);
            if (const auto nearest = suggestNearest(arg, names))
                fatal("unknown flag '--", arg, "' (did you mean '--",
                      *nearest, "'?)");
            fatal("unknown flag '--", arg, "' (try --help)");
        }

        if (!has_value) {
            if (flag->kind == Kind::Bool) {
                flag->boolValue = true;
                continue;
            }
            if (i + 1 >= argc)
                fatal("flag '--", arg, "' expects a value");
            value = argv[++i];
        }
        assign(*flag, value);
    }
    return true;
}

std::string
FlagSet::usage() const
{
    std::ostringstream oss;
    oss << description << "\n\nFlags:\n";
    for (const Flag *flag : flags) {
        oss << "  --" << flag->name << " (default: "
            << flag->defaultText << ")\n      " << flag->help << "\n";
    }
    return oss.str();
}

} // namespace fermihedral
