/**
 * @file
 * Minimal command-line flag parser for the bench/example binaries.
 *
 * Each binary declares the flags it understands and calls
 * FlagSet::parse(argc, argv). Supported syntaxes: --name=value,
 * --name value, and --name for booleans. --help prints the registered
 * flags with their defaults and exits.
 *
 * Key invariants:
 *  - Pointers returned by add*() stay valid for the FlagSet's
 *    lifetime (storage is per-flag heap allocations, not a
 *    reallocating vector) and hold the default until parse() runs.
 *  - Unknown flags, missing values and malformed numeric values
 *    are fatal (the binary exits with a diagnostic); bool values
 *    other than "false"/"0"/"no" read as true. parse() returning
 *    false means --help was printed and the caller should exit 0.
 *  - Lookup takes the first registration of a name, so names must
 *    be unique within a FlagSet (duplicates are not detected).
 */

#ifndef FERMIHEDRAL_COMMON_FLAGS_H
#define FERMIHEDRAL_COMMON_FLAGS_H

#include <cstdint>
#include <string>
#include <vector>

namespace fermihedral {

/** A registry of typed command-line flags. */
class FlagSet
{
  public:
    /** @param description One-line summary printed by --help. */
    explicit FlagSet(std::string description);

    /** Register an integer flag; returns a stable pointer to it. */
    std::int64_t *addInt(const std::string &name,
                         std::int64_t default_value,
                         const std::string &help);

    /** Register a floating-point flag. */
    double *addDouble(const std::string &name, double default_value,
                      const std::string &help);

    /** Register a boolean flag (set by presence or =true/=false). */
    bool *addBool(const std::string &name, bool default_value,
                  const std::string &help);

    /** Register a string flag. */
    std::string *addString(const std::string &name,
                           const std::string &default_value,
                           const std::string &help);

    /**
     * Parse argv. Unknown flags are fatal. --help prints usage and
     * returns false (callers should exit 0).
     */
    bool parse(int argc, char **argv);

    /** Render the --help text. */
    std::string usage() const;

  private:
    enum class Kind { Int, Double, Bool, String };

    struct Flag
    {
        std::string name;
        std::string help;
        Kind kind;
        std::int64_t intValue = 0;
        double doubleValue = 0.0;
        bool boolValue = false;
        std::string stringValue;
        std::string defaultText;
    };

    Flag *find(const std::string &name);
    void assign(Flag &flag, const std::string &text);

    std::string description;
    // Deque-like stability: flags are stored via unique pointers so the
    // addresses handed out by add*() stay valid as more flags register.
    std::vector<Flag *> flags;

  public:
    FlagSet(const FlagSet &) = delete;
    FlagSet &operator=(const FlagSet &) = delete;
    ~FlagSet();
};

} // namespace fermihedral

#endif // FERMIHEDRAL_COMMON_FLAGS_H
