#include "common/gf2.h"

#include <bit>

#include "common/logging.h"

namespace fermihedral {

BitVector::BitVector(std::size_t size)
    : words((size + 63) / 64, 0), numBits(size)
{
}

bool
BitVector::get(std::size_t index) const
{
    require(index < numBits, "BitVector::get out of range");
    return (words[index / 64] >> (index % 64)) & 1u;
}

void
BitVector::set(std::size_t index, bool value)
{
    require(index < numBits, "BitVector::set out of range");
    const std::uint64_t mask = std::uint64_t{1} << (index % 64);
    if (value)
        words[index / 64] |= mask;
    else
        words[index / 64] &= ~mask;
}

void
BitVector::flip(std::size_t index)
{
    require(index < numBits, "BitVector::flip out of range");
    words[index / 64] ^= std::uint64_t{1} << (index % 64);
}

BitVector &
BitVector::operator^=(const BitVector &other)
{
    require(numBits == other.numBits,
            "BitVector xor length mismatch");
    for (std::size_t w = 0; w < words.size(); ++w)
        words[w] ^= other.words[w];
    return *this;
}

std::size_t
BitVector::popcount() const
{
    std::size_t count = 0;
    for (std::uint64_t word : words)
        count += static_cast<std::size_t>(std::popcount(word));
    return count;
}

bool
BitVector::isZero() const
{
    for (std::uint64_t word : words) {
        if (word != 0)
            return false;
    }
    return true;
}

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols)
    : data(rows, BitVector(cols)), numCols(cols)
{
}

BitMatrix
BitMatrix::identity(std::size_t rows)
{
    BitMatrix m(rows, rows);
    for (std::size_t i = 0; i < rows; ++i)
        m.set(i, i, true);
    return m;
}

bool
BitMatrix::get(std::size_t row, std::size_t col) const
{
    return data[row].get(col);
}

void
BitMatrix::set(std::size_t row, std::size_t col, bool value)
{
    data[row].set(col, value);
}

BitVector
BitMatrix::multiply(const BitVector &vec) const
{
    require(vec.size() == numCols, "BitMatrix::multiply size mismatch");
    BitVector out(rows());
    for (std::size_t r = 0; r < rows(); ++r) {
        // Row-vector dot product over GF(2).
        std::size_t parity = 0;
        for (std::size_t c = 0; c < numCols; ++c)
            parity ^= (data[r].get(c) & vec.get(c)) ? 1u : 0u;
        out.set(r, parity);
    }
    return out;
}

std::size_t
BitMatrix::rank() const
{
    std::vector<BitVector> work(data);
    std::size_t rank = 0;
    for (std::size_t col = 0; col < numCols && rank < work.size();
         ++col) {
        std::size_t pivot = rank;
        while (pivot < work.size() && !work[pivot].get(col))
            ++pivot;
        if (pivot == work.size())
            continue;
        std::swap(work[rank], work[pivot]);
        for (std::size_t r = 0; r < work.size(); ++r) {
            if (r != rank && work[r].get(col))
                work[r] ^= work[rank];
        }
        ++rank;
    }
    return rank;
}

std::optional<BitMatrix>
BitMatrix::inverse() const
{
    if (rows() != numCols)
        return std::nullopt;
    const std::size_t n = rows();
    std::vector<BitVector> left(data);
    BitMatrix right = identity(n);

    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        while (pivot < n && !left[pivot].get(col))
            ++pivot;
        if (pivot == n)
            return std::nullopt;
        std::swap(left[col], left[pivot]);
        std::swap(right.row(col), right.row(pivot));
        for (std::size_t r = 0; r < n; ++r) {
            if (r != col && left[r].get(col)) {
                left[r] ^= left[col];
                right.row(r) ^= right.row(col);
            }
        }
    }
    return right;
}

BitMatrix
BitMatrix::transposed() const
{
    BitMatrix out(numCols, rows());
    for (std::size_t r = 0; r < rows(); ++r) {
        for (std::size_t c = 0; c < numCols; ++c) {
            if (get(r, c))
                out.set(c, r, true);
        }
    }
    return out;
}

} // namespace fermihedral
