/**
 * @file
 * Dense linear algebra over GF(2).
 *
 * Used by the linear Fermion-to-qubit encodings (Jordan-Wigner,
 * Bravyi-Kitaev, Parity are all x = A n transforms of the occupation
 * vector) and by the algebraic-independence validator, which reduces
 * to a GF(2) rank computation on symplectic vectors.
 *
 * Key invariants:
 *  - BitVector stores bits packed into 64-bit words; bits at or
 *    above size() are always zero, so popcount()/isZero()/equality
 *    never see stale padding.
 *  - operator^= requires equal lengths; there is no implicit
 *    resizing anywhere in this module.
 *  - BitMatrix queries (rank(), inverse(), transposed(),
 *    multiply()) are const and never modify the receiver;
 *    inverse() returns nullopt exactly when the matrix is
 *    non-square or singular over GF(2).
 */

#ifndef FERMIHEDRAL_COMMON_GF2_H
#define FERMIHEDRAL_COMMON_GF2_H

#include <cstdint>
#include <optional>
#include <vector>

namespace fermihedral {

/** A packed bit vector over GF(2) with xor arithmetic. */
class BitVector
{
  public:
    BitVector() = default;
    /** All-zero vector of the given length. */
    explicit BitVector(std::size_t size);

    std::size_t size() const { return numBits; }
    bool get(std::size_t index) const;
    void set(std::size_t index, bool value);
    void flip(std::size_t index);

    /** In-place xor with another vector of the same length. */
    BitVector &operator^=(const BitVector &other);

    /** Number of set bits. */
    std::size_t popcount() const;

    /** True when every bit is zero. */
    bool isZero() const;

    bool operator==(const BitVector &other) const = default;

  private:
    std::vector<std::uint64_t> words;
    std::size_t numBits = 0;
};

/** A dense GF(2) matrix with row-major BitVector storage. */
class BitMatrix
{
  public:
    BitMatrix() = default;
    /** All-zero rows x cols matrix. */
    BitMatrix(std::size_t rows, std::size_t cols);

    /** The rows x rows identity matrix. */
    static BitMatrix identity(std::size_t rows);

    std::size_t rows() const { return data.size(); }
    std::size_t cols() const { return numCols; }

    bool get(std::size_t row, std::size_t col) const;
    void set(std::size_t row, std::size_t col, bool value);

    BitVector &row(std::size_t index) { return data[index]; }
    const BitVector &row(std::size_t index) const
    {
        return data[index];
    }

    /** Matrix-vector product over GF(2). */
    BitVector multiply(const BitVector &vec) const;

    /** Rank via Gaussian elimination (does not modify *this). */
    std::size_t rank() const;

    /** Inverse if square and invertible, std::nullopt otherwise. */
    std::optional<BitMatrix> inverse() const;

    /** Transpose. */
    BitMatrix transposed() const;

  private:
    std::vector<BitVector> data;
    std::size_t numCols = 0;
};

} // namespace fermihedral

#endif // FERMIHEDRAL_COMMON_GF2_H
