#include "common/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace fermihedral {

std::string
JsonWriter::escape(std::string_view text)
{
    std::string escaped;
    escaped.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"':
            escaped += "\\\"";
            break;
        case '\\':
            escaped += "\\\\";
            break;
        case '\b':
            escaped += "\\b";
            break;
        case '\f':
            escaped += "\\f";
            break;
        case '\n':
            escaped += "\\n";
            break;
        case '\r':
            escaped += "\\r";
            break;
        case '\t':
            escaped += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                escaped += buf;
            } else {
                escaped += c;
            }
        }
    }
    return escaped;
}

void
JsonWriter::beforeValue()
{
    require(expectValue || (!scopes.empty() &&
                            scopes.back() == Scope::Array),
            "JsonWriter: value emitted where a key is required");
    if (!scopes.empty() && scopes.back() == Scope::Array &&
        scopeHasElement.back()) {
        out += ',';
    }
    if (!scopes.empty())
        scopeHasElement.back() = true;
    // Inside an object a value only follows a key; the key already
    // placed the comma and colon.
    expectValue = scopes.empty() ||
                  scopes.back() == Scope::Array;
}

void
JsonWriter::beforeKey()
{
    require(!scopes.empty() && scopes.back() == Scope::Object,
            "JsonWriter: key() outside an object");
    require(!expectValue,
            "JsonWriter: key() where a value is required");
    if (scopeHasElement.back())
        out += ',';
    scopeHasElement.back() = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out += '{';
    scopes.push_back(Scope::Object);
    scopeHasElement.push_back(false);
    expectValue = false;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    require(!scopes.empty() && scopes.back() == Scope::Object &&
                !expectValue,
            "JsonWriter: unbalanced endObject()");
    out += '}';
    scopes.pop_back();
    scopeHasElement.pop_back();
    expectValue = !scopes.empty() &&
                  scopes.back() == Scope::Array;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out += '[';
    scopes.push_back(Scope::Array);
    scopeHasElement.push_back(false);
    expectValue = true;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    require(!scopes.empty() && scopes.back() == Scope::Array,
            "JsonWriter: unbalanced endArray()");
    out += ']';
    scopes.pop_back();
    scopeHasElement.pop_back();
    expectValue = !scopes.empty() &&
                  scopes.back() == Scope::Array;
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    beforeKey();
    out += '"';
    out += escape(name);
    out += "\":";
    expectValue = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    beforeValue();
    out += '"';
    out += escape(text);
    out += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(bool boolean)
{
    beforeValue();
    out += boolean ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t number)
{
    beforeValue();
    out += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    beforeValue();
    out += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(double number)
{
    if (!std::isfinite(number))
        return null();
    beforeValue();
    char buf[32];
    const auto [end, ec] =
        std::to_chars(buf, buf + sizeof buf, number);
    require(ec == std::errc{}, "JsonWriter: double render failed");
    out.append(buf, end);
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    out += "null";
    return *this;
}

JsonWriter &
JsonWriter::rawValue(std::string_view json)
{
    require(!json.empty(), "JsonWriter: empty raw fragment");
    beforeValue();
    out += json;
    return *this;
}

std::string
JsonWriter::take()
{
    require(scopes.empty(), "JsonWriter: take() with open scopes");
    std::string document = std::move(out);
    out.clear();
    expectValue = true;
    return document;
}

} // namespace fermihedral
