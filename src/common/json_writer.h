/**
 * @file
 * Streaming JSON writer shared by every JSON-emitting surface
 * (telemetry export, the CompilerService cache/metrics endpoints,
 * the bench --json artifacts). Replaces the per-binary hand-rolled
 * string concatenation that never escaped its strings.
 *
 * Output is compact (no whitespace between tokens), so artifacts
 * stay grep-able byte-for-byte: {"hits":4,"misses":0}.
 *
 * Key invariants:
 *  - Every emitted document is syntactically valid JSON as long as
 *    the begin/end calls are balanced and key() precedes each value
 *    inside an object; violations are panics (library bug), never
 *    malformed output.
 *  - escape() renders any byte sequence into a valid JSON string
 *    body: quote, backslash and control characters (< 0x20) are
 *    escaped, everything else (including multi-byte UTF-8) passes
 *    through unchanged.
 *  - Doubles are written with enough digits to round-trip
 *    (std::to_chars shortest form); NaN/Inf — which JSON cannot
 *    represent — are written as null.
 */

#ifndef FERMIHEDRAL_COMMON_JSON_WRITER_H
#define FERMIHEDRAL_COMMON_JSON_WRITER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fermihedral {

/** Incremental writer producing one compact JSON document. */
class JsonWriter
{
  public:
    JsonWriter() = default;

    /** Escape `text` into a JSON string body (no quotes added). */
    static std::string escape(std::string_view text);

    // --- structure ----------------------------------------------
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object member key; the next call must be a value. */
    JsonWriter &key(std::string_view name);

    // --- values -------------------------------------------------
    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text)
    {
        return value(std::string_view(text));
    }
    JsonWriter &value(bool boolean);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(double number);
    JsonWriter &value(int number)
    {
        return value(static_cast<std::int64_t>(number));
    }
    JsonWriter &null();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    member(std::string_view name, T &&v)
    {
        key(name);
        return value(std::forward<T>(v));
    }

    /**
     * Splice a pre-rendered JSON fragment in value position (e.g.\
     * a nested document produced by another writer). The caller
     * vouches for its validity.
     */
    JsonWriter &rawValue(std::string_view json);

    /** The document so far (valid once all scopes are closed). */
    const std::string &str() const { return out; }

    /** Move the document out; the writer is reset for reuse. */
    std::string take();

  private:
    enum class Scope : std::uint8_t { Object, Array };

    /** Comma/placement bookkeeping before a value or key. */
    void beforeValue();
    void beforeKey();

    std::string out;
    std::vector<Scope> scopes;
    /** A value is legal right now (start, after key, in array). */
    bool expectValue = true;
    /** Current scope already holds at least one element. */
    std::vector<bool> scopeHasElement;
};

} // namespace fermihedral

#endif // FERMIHEDRAL_COMMON_JSON_WRITER_H
