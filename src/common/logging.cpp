#include "common/logging.h"

#include <cstdio>

namespace fermihedral {
namespace detail {

/** Write a tagged single-line message to stderr. */
void
emit(const char *tag, const std::string &message)
{
    std::fprintf(stderr, "[%s] %s\n", tag, message.c_str());
    std::fflush(stderr);
}

} // namespace detail
} // namespace fermihedral
