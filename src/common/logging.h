/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: inform()/warn() report conditions to the
 * user without stopping, fatal() aborts because of a user error (bad
 * arguments, impossible configuration), and panic() aborts because an
 * internal invariant was violated (a bug in this library).
 *
 * Key invariants:
 *  - fatal()/panic()/require() never return; callers may rely on
 *    the checked condition holding on the fall-through path.
 *  - Diagnostics go to stderr only — stdout is reserved for the
 *    tables and data the bench binaries print.
 */

#ifndef FERMIHEDRAL_COMMON_LOGGING_H
#define FERMIHEDRAL_COMMON_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace fermihedral {

namespace detail {

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

void emit(const char *tag, const std::string &message);

} // namespace detail

/** Error thrown by fatal(): the user asked for something impossible. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what) {}
};

/** Error thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what) {}
};

/** Print an informational status message to stderr. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

/** Print a warning to stderr; execution continues. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/**
 * Abort the current computation because of a user-level error.
 *
 * @throws FatalError always.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emit("fatal", msg);
    throw FatalError(msg);
}

/**
 * Abort because an internal invariant does not hold (a library bug).
 *
 * @throws PanicError always.
 */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emit("panic", msg);
    throw PanicError(msg);
}

/** Check an invariant; panic with a message when it fails. */
template <typename... Args>
void
require(bool condition, Args&&... args)
{
    if (!condition)
        panic(std::forward<Args>(args)...);
}

} // namespace fermihedral

#endif // FERMIHEDRAL_COMMON_LOGGING_H
