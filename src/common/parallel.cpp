#include "common/parallel.h"

#include "common/logging.h"

namespace fermihedral {

ThreadPool::ThreadPool(std::size_t thread_count)
    : count(thread_count == 0 ? hardwareConcurrency() : thread_count)
{
    // The calling thread is one of the `count` participants; only
    // the remaining count - 1 need dedicated workers.
    workers.reserve(count - 1);
    for (std::size_t w = 0; w + 1 < count; ++w)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    wake.notify_all();
    for (auto &worker : workers)
        worker.join();
}

std::size_t
ThreadPool::hardwareConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t
ThreadPool::resolveThreadCount(std::int64_t requested)
{
    return requested <= 0 ? hardwareConcurrency()
                          : static_cast<std::size_t>(requested);
}

void
ThreadPool::runTasks()
{
    for (;;) {
        const std::size_t index =
            nextIndex.fetch_add(1, std::memory_order_relaxed);
        if (index >= jobCount)
            return;
        (*job)(index);
    }
}

void
ThreadPool::workerLoop()
{
    std::size_t seen_generation = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex);
            wake.wait(lock, [&] {
                return stopping || generation != seen_generation;
            });
            if (stopping)
                return;
            seen_generation = generation;
        }
        runTasks();
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (--activeWorkers == 0)
                done.notify_all();
        }
    }
}

void
ThreadPool::forEach(std::size_t task_count,
                    const std::function<void(std::size_t)> &task)
{
    require(task != nullptr, "ThreadPool::forEach needs a task");
    if (task_count == 0)
        return;
    if (workers.empty()) {
        for (std::size_t i = 0; i < task_count; ++i)
            task(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex);
        job = &task;
        jobCount = task_count;
        nextIndex.store(0, std::memory_order_relaxed);
        activeWorkers = workers.size();
        ++generation;
    }
    wake.notify_all();
    runTasks();
    {
        std::unique_lock<std::mutex> lock(mutex);
        done.wait(lock, [&] { return activeWorkers == 0; });
        job = nullptr;
    }
}

} // namespace fermihedral
