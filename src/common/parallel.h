/**
 * @file
 * Small reusable thread pool for data-parallel loops.
 *
 * The noisy-trajectory engine fans independent Monte-Carlo shots
 * across cores with forEach(); the pool is equally usable for any
 * embarrassingly parallel index loop. Determinism is the caller's
 * contract: tasks must derive all randomness from their index (see
 * Rng::fork) and write only to per-index slots, so results are
 * bit-identical for every thread count.
 *
 * Key invariants:
 *  - threadCount() == 1 runs every task inline on the caller's
 *    thread: no worker threads are spawned and no synchronisation
 *    happens, so the serial path is exactly the plain loop.
 *  - forEach() visits every index in [0, count) exactly once and
 *    returns only after all tasks have finished. Indices are
 *    claimed dynamically, so no ordering between tasks may be
 *    assumed.
 *  - forEach() is not re-entrant: one loop at a time per pool, and
 *    tasks must not call forEach() on their own pool.
 *  - Tasks must not throw: an escaping exception would terminate
 *    the worker (the library reports errors via require()/panic()
 *    before entering parallel regions).
 */

#ifndef FERMIHEDRAL_COMMON_PARALLEL_H
#define FERMIHEDRAL_COMMON_PARALLEL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fermihedral {

/** Fixed-size pool of worker threads for index-parallel loops. */
class ThreadPool
{
  public:
    /**
     * @param thread_count Number of threads participating in loops
     *     (including the calling thread); 0 selects
     *     hardwareConcurrency().
     */
    explicit ThreadPool(std::size_t thread_count = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Threads participating in forEach (>= 1). */
    std::size_t threadCount() const { return count; }

    /**
     * Run task(index) for every index in [0, count), distributing
     * indices dynamically over the pool's threads. Blocks until all
     * tasks are done. The calling thread participates in the work.
     */
    void forEach(std::size_t task_count,
                 const std::function<void(std::size_t)> &task);

    /** The machine's hardware thread count (>= 1). */
    static std::size_t hardwareConcurrency();

    /**
     * Map a --threads flag value to a pool size: any value <= 0
     * selects hardwareConcurrency().
     */
    static std::size_t resolveThreadCount(std::int64_t requested);

  private:
    void workerLoop();
    void runTasks();

    std::size_t count;
    std::vector<std::thread> workers;

    std::mutex mutex;
    std::condition_variable wake;
    std::condition_variable done;
    const std::function<void(std::size_t)> *job = nullptr;
    std::size_t jobCount = 0;
    std::atomic<std::size_t> nextIndex{0};
    std::size_t generation = 0;
    std::size_t activeWorkers = 0;
    bool stopping = false;
};

} // namespace fermihedral

#endif // FERMIHEDRAL_COMMON_PARALLEL_H
