#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace fermihedral {

namespace {

/** SplitMix64 finaliser: bijective avalanche mixing of one word. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** SplitMix64 step, used to expand the seed into xoshiro state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    return mix64(x);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state)
        word = splitMix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;
    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    require(bound > 0, "Rng::nextBelow called with bound 0");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextInt(std::int64_t lo, std::int64_t hi)
{
    require(lo <= hi, "Rng::nextInt: empty range");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits -> uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    if (hasSpare) {
        hasSpare = false;
        return spareGaussian;
    }
    double u, v, s;
    do {
        u = nextDouble(-1.0, 1.0);
        v = nextDouble(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spareGaussian = v * factor;
    hasSpare = true;
    return u * factor;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd2b74407b1ce6e93ull);
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    // Fold the stream id and the four state words through the
    // SplitMix64 finaliser; the parent state is only read. The
    // golden-ratio increment separates consecutive stream ids
    // before mixing so id 0 is as healthy as any other.
    std::uint64_t h =
        mix64(stream_id * 0x9e3779b97f4a7c15ull +
              0xd2b74407b1ce6e93ull);
    for (const std::uint64_t word : state)
        h = mix64(h ^ word);
    return Rng(h);
}

} // namespace fermihedral
