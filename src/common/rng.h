/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (simulated annealing, SYK
 * couplings, noise trajectories, measurement sampling) draw from an
 * explicitly seeded Rng instance so that every experiment is exactly
 * reproducible from its seed.
 *
 * Key invariants:
 *  - The output stream is a pure function of the constructor seed
 *    and the call sequence — no global state, no time-based
 *    seeding, identical across platforms.
 *  - nextBelow(bound) is uniform and unbiased (rejection sampling),
 *    and requires bound > 0.
 *  - split() derives a child whose stream is independent of the
 *    parent's subsequent outputs, for parallel trajectories.
 *  - fork(stream_id) derives an independent child stream WITHOUT
 *    advancing the parent: it is a pure function of the parent's
 *    current state and the stream id, so fork(0..N-1) yields N
 *    reproducible streams whatever order (or thread) they are used
 *    in. This is the primitive the parallel shot runner builds on.
 */

#ifndef FERMIHEDRAL_COMMON_RNG_H
#define FERMIHEDRAL_COMMON_RNG_H

#include <cstdint>

namespace fermihedral {

/**
 * xoshiro256** pseudo-random generator with convenience samplers.
 *
 * Small, fast, and with well-understood statistical quality; the state
 * is seeded through SplitMix64 so that any 64-bit seed (including 0)
 * produces a healthy stream.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) — bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInt(std::int64_t lo, std::int64_t hi);

    /** Uniform real in [0, 1). */
    double nextDouble();

    /** Uniform real in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Standard normal variate (Box-Muller, cached spare). */
    double nextGaussian();

    /** Bernoulli trial with success probability p. */
    bool nextBool(double p = 0.5);

    /** Derive an independent child generator (for parallel streams). */
    Rng split();

    /**
     * Derive child stream `stream_id` from the current state via
     * SplitMix64-style mixing. Unlike split(), the parent is left
     * untouched: its output sequence is the same whether or not
     * fork() was called. Distinct stream ids give statistically
     * independent streams; the same id always gives the same
     * stream until the parent itself advances.
     */
    Rng fork(std::uint64_t stream_id) const;

  private:
    std::uint64_t state[4];
    double spareGaussian = 0.0;
    bool hasSpare = false;
};

} // namespace fermihedral

#endif // FERMIHEDRAL_COMMON_RNG_H
