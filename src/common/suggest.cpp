#include "common/suggest.h"

#include <algorithm>
#include <numeric>

namespace fermihedral {

std::size_t
editDistance(std::string_view a, std::string_view b)
{
    // Single-row dynamic program; row[j] holds the distance between
    // a's processed prefix and b's first j characters.
    std::vector<std::size_t> row(b.size() + 1);
    std::iota(row.begin(), row.end(), std::size_t{0});
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diagonal = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t substitute =
                diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
            diagonal = row[j];
            row[j] = std::min({row[j] + 1,     // delete from a
                               row[j - 1] + 1, // insert into a
                               substitute});
        }
    }
    return row[b.size()];
}

std::optional<std::string>
suggestNearest(std::string_view name,
               const std::vector<std::string> &candidates,
               std::size_t max_distance)
{
    std::optional<std::string> best;
    std::size_t best_distance = max_distance + 1;
    for (const std::string &candidate : candidates) {
        const std::size_t distance = editDistance(name, candidate);
        if (distance < best_distance) {
            best_distance = distance;
            best = candidate;
        }
    }
    return best;
}

} // namespace fermihedral
