/**
 * @file
 * Name-suggestion helper for diagnostics: when the user passes an
 * unknown flag or strategy name, the error message proposes the
 * nearest registered name so typos are one glance to fix.
 *
 * Key invariants:
 *  - editDistance() is the exact Levenshtein distance (unit-cost
 *    insert/delete/substitute), symmetric in its arguments.
 *  - suggestNearest() returns a candidate only when its distance is
 *    <= max_distance; ties resolve to the earliest candidate, so
 *    suggestions are deterministic in registration order.
 */

#ifndef FERMIHEDRAL_COMMON_SUGGEST_H
#define FERMIHEDRAL_COMMON_SUGGEST_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fermihedral {

/** Exact Levenshtein distance between two strings. */
std::size_t editDistance(std::string_view a, std::string_view b);

/**
 * The candidate closest to `name` in edit distance, when that
 * distance is at most `max_distance`; std::nullopt otherwise.
 */
std::optional<std::string> suggestNearest(
    std::string_view name, const std::vector<std::string> &candidates,
    std::size_t max_distance = 2);

} // namespace fermihedral

#endif // FERMIHEDRAL_COMMON_SUGGEST_H
