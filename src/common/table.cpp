#include "common/table.h"

#include <cstdint>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace fermihedral {

Table::Table(std::vector<std::string> headers)
    : headers(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> row)
{
    require(row.size() == headers.size(),
            "table row has ", row.size(), " cells, expected ",
            headers.size());
    rows.push_back(std::move(row));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << "| " << std::left << std::setw(widths[c]) << row[c]
                << ' ';
        }
        oss << "|\n";
    };
    auto emit_rule = [&]() {
        for (std::size_t c = 0; c < widths.size(); ++c)
            oss << '+' << std::string(widths[c] + 2, '-');
        oss << "+\n";
    };

    emit_rule();
    emit_row(headers);
    emit_rule();
    for (const auto &row : rows)
        emit_row(row);
    emit_rule();
    return oss.str();
}

std::string
Table::renderCsv() const
{
    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            oss << (c ? "," : "") << row[c];
        oss << '\n';
    };
    emit(headers);
    for (const auto &row : rows)
        emit(row);
    return oss.str();
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
Table::num(std::int64_t value)
{
    return std::to_string(value);
}

std::string
Table::percent(double fraction, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision)
        << fraction * 100.0 << '%';
    return oss.str();
}

} // namespace fermihedral
