/**
 * @file
 * Console table rendering for the benchmark harnesses.
 *
 * Each bench binary reproduces a paper table or figure by printing an
 * aligned text table (and optionally CSV) of the same rows/series the
 * paper reports.
 *
 * Key invariants:
 *  - The header row fixes the column count; addRow() aborts on a
 *    row of any other width, so a rendered table is always
 *    rectangular.
 *  - render() and renderCsv() are const and produce the same cells
 *    in the same order — only the delimiters differ.
 */

#ifndef FERMIHEDRAL_COMMON_TABLE_H
#define FERMIHEDRAL_COMMON_TABLE_H

#include <string>
#include <vector>

namespace fermihedral {

/** An aligned console table with a header row. */
class Table
{
  public:
    /** @param headers Column titles, fixing the column count. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header column count. */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns. */
    std::string render() const;

    /** Render as CSV (no alignment padding). */
    std::string renderCsv() const;

    /** Format helper: fixed-precision double. */
    static std::string num(double value, int precision = 2);

    /** Format helper: integer. */
    static std::string num(std::int64_t value);

    /** Format helper: percentage with sign, e.g.\ "-5.78%". */
    static std::string percent(double fraction, int precision = 2);

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace fermihedral

#endif // FERMIHEDRAL_COMMON_TABLE_H
