#include "common/telemetry.h"

#include <algorithm>
#include <fstream>
#include <limits>

#include "common/json_writer.h"
#include "common/logging.h"
#include "common/timer.h"

namespace fermihedral::telemetry {

namespace {

/** fetch_add for atomic<double> via CAS (portable pre-C++20 TS). */
void
atomicAdd(std::atomic<double> &target, double delta)
{
    double expected = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(
        expected, expected + delta, std::memory_order_relaxed,
        std::memory_order_relaxed)) {
    }
}

/** Lower `target` to at most `value` (atomic min). */
void
atomicMin(std::atomic<double> &target, double value)
{
    double expected = target.load(std::memory_order_relaxed);
    while (expected > value &&
           !target.compare_exchange_weak(
               expected, value, std::memory_order_relaxed,
               std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<double> &target, double value)
{
    double expected = target.load(std::memory_order_relaxed);
    while (expected < value &&
           !target.compare_exchange_weak(
               expected, value, std::memory_order_relaxed,
               std::memory_order_relaxed)) {
    }
}

} // namespace

// --------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------

Histogram::Histogram(std::span<const double> bucket_bounds)
    : bounds(bucket_bounds.begin(), bucket_bounds.end()),
      minValue(std::numeric_limits<double>::infinity()),
      maxValue(-std::numeric_limits<double>::infinity())
{
    require(!bounds.empty(), "histogram needs at least one bound");
    for (std::size_t i = 1; i < bounds.size(); ++i) {
        require(bounds[i - 1] < bounds[i],
                "histogram bounds must be strictly increasing");
    }
    buckets = std::make_unique<std::atomic<std::uint64_t>[]>(
        bounds.size() + 1);
}

void
Histogram::record(double value)
{
    const auto it =
        std::lower_bound(bounds.begin(), bounds.end(), value);
    const std::size_t index =
        static_cast<std::size_t>(it - bounds.begin());
    buckets[index].fetch_add(1, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum, value);
    atomicMin(minValue, value);
    atomicMax(maxValue, value);
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot snap;
    snap.bounds = bounds;
    snap.buckets.resize(bounds.size() + 1);
    for (std::size_t i = 0; i <= bounds.size(); ++i) {
        snap.buckets[i] =
            buckets[i].load(std::memory_order_relaxed);
    }
    snap.count = count.load(std::memory_order_relaxed);
    snap.sum = sum.load(std::memory_order_relaxed);
    const double lo = minValue.load(std::memory_order_relaxed);
    const double hi = maxValue.load(std::memory_order_relaxed);
    snap.min = snap.count ? lo : 0.0;
    snap.max = snap.count ? hi : 0.0;
    return snap;
}

double
Histogram::Snapshot::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank of the requested percentile, 1-based (nearest-rank,
    // then interpolated across the covering bucket's width).
    const double rank =
        std::max(1.0, p / 100.0 * static_cast<double>(count));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        const std::uint64_t before = cumulative;
        cumulative += buckets[i];
        if (static_cast<double>(cumulative) < rank)
            continue;
        // The rank falls in bucket i: interpolate between its
        // lower and upper bound by the rank's position inside it.
        const double lower =
            i == 0 ? min
                   : std::max(min, bounds[i - 1]);
        const double upper =
            i < bounds.size() ? std::min(max, bounds[i]) : max;
        const double fraction =
            (rank - static_cast<double>(before)) /
            static_cast<double>(buckets[i]);
        const double estimate =
            lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
        return std::clamp(estimate, min, max);
    }
    return max;
}

void
Histogram::reset()
{
    for (std::size_t i = 0; i <= bounds.size(); ++i)
        buckets[i].store(0, std::memory_order_relaxed);
    count.store(0, std::memory_order_relaxed);
    sum.store(0.0, std::memory_order_relaxed);
    minValue.store(std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
    maxValue.store(-std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
}

std::span<const double>
Histogram::latencyBoundsSeconds()
{
    // Three log-spaced buckets per decade, 10 us .. 100 s: fine
    // enough for p50/p90/p99 on solve and service latencies, small
    // enough that a histogram costs ~200 bytes.
    static const double bounds[] = {
        1e-5,    2.15e-5, 4.64e-5, 1e-4,    2.15e-4, 4.64e-4,
        1e-3,    2.15e-3, 4.64e-3, 1e-2,    2.15e-2, 4.64e-2,
        1e-1,    2.15e-1, 4.64e-1, 1.0,     2.15,    4.64,
        10.0,    21.5,    46.4,    100.0};
    return bounds;
}

// --------------------------------------------------------------------
// MetricsRegistry
// --------------------------------------------------------------------

MetricsRegistry &
MetricsRegistry::global()
{
    // Leaked on purpose: worker threads and static-destruction
    // order must never race a registry teardown.
    static MetricsRegistry *instance = new MetricsRegistry();
    return *instance;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    const std::lock_guard<std::mutex> guard(mutex);
    const auto it = counters.find(name);
    if (it != counters.end())
        return *it->second;
    return *counters
                .emplace(std::string(name),
                         std::make_unique<Counter>())
                .first->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    const std::lock_guard<std::mutex> guard(mutex);
    const auto it = gauges.find(name);
    if (it != gauges.end())
        return *it->second;
    return *gauges
                .emplace(std::string(name),
                         std::make_unique<Gauge>())
                .first->second;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           std::span<const double> bounds)
{
    const std::lock_guard<std::mutex> guard(mutex);
    const auto it = histograms.find(name);
    if (it != histograms.end())
        return *it->second;
    if (bounds.empty())
        bounds = Histogram::latencyBoundsSeconds();
    return *histograms
                .emplace(std::string(name),
                         std::make_unique<Histogram>(bounds))
                .first->second;
}

std::string
MetricsRegistry::metricsJson() const
{
    const std::lock_guard<std::mutex> guard(mutex);
    JsonWriter json;
    json.beginObject();
    json.key("counters").beginObject();
    for (const auto &[name, counter] : counters)
        json.member(name, counter->get());
    json.endObject();
    json.key("gauges").beginObject();
    for (const auto &[name, gauge] : gauges)
        json.member(name, gauge->get());
    json.endObject();
    json.key("histograms").beginObject();
    for (const auto &[name, histogram] : histograms) {
        const Histogram::Snapshot snap = histogram->snapshot();
        json.key(name).beginObject();
        json.member("count", snap.count);
        json.member("sum", snap.sum);
        json.member("mean", snap.mean());
        json.member("min", snap.min);
        json.member("max", snap.max);
        json.member("p50", snap.p50());
        json.member("p90", snap.p90());
        json.member("p99", snap.p99());
        json.endObject();
    }
    json.endObject();
    json.endObject();
    return json.take();
}

bool
MetricsRegistry::writeMetricsJson(const std::string &path) const
{
    std::ofstream file(path, std::ios::trunc);
    if (!file) {
        warn("telemetry: cannot write metrics to '", path, "'");
        return false;
    }
    file << metricsJson() << '\n';
    return static_cast<bool>(file);
}

void
MetricsRegistry::reset()
{
    const std::lock_guard<std::mutex> guard(mutex);
    // Handles must stay valid: zero in place, never erase.
    for (auto &[name, counter] : counters)
        counter->reset();
    for (auto &[name, gauge] : gauges)
        gauge->reset();
    for (auto &[name, histogram] : histograms)
        histogram->reset();
}

// --------------------------------------------------------------------
// TraceRecorder
// --------------------------------------------------------------------

TraceRecorder::TraceRecorder() : epochNs(Timer::nowNs()) {}

TraceRecorder &
TraceRecorder::global()
{
    static TraceRecorder *instance = new TraceRecorder();
    return *instance;
}

void
TraceRecorder::setEnabled(bool enable)
{
    on.store(enable, std::memory_order_relaxed);
}

std::uint64_t
TraceRecorder::nowNs() const
{
    return Timer::nowNs() - epochNs;
}

std::uint32_t
TraceRecorder::currentThreadId()
{
    thread_local std::uint32_t cached = 0;
    thread_local TraceRecorder *cachedFor = nullptr;
    if (cachedFor != this) {
        const std::lock_guard<std::mutex> guard(mutex);
        cached = nextThreadId++;
        cachedFor = this;
    }
    return cached;
}

void
TraceRecorder::record(TraceEvent event)
{
    const std::lock_guard<std::mutex> guard(mutex);
    events.push_back(std::move(event));
}

void
TraceRecorder::clear()
{
    const std::lock_guard<std::mutex> guard(mutex);
    events.clear();
}

std::size_t
TraceRecorder::eventCount() const
{
    const std::lock_guard<std::mutex> guard(mutex);
    return events.size();
}

std::string
TraceRecorder::chromeTraceJson() const
{
    std::vector<TraceEvent> snapshot;
    {
        const std::lock_guard<std::mutex> guard(mutex);
        snapshot = events;
    }
    // Stable order (start time, then thread) so exports diff
    // cleanly; viewers accept any order.
    std::stable_sort(snapshot.begin(), snapshot.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.startNs != b.startNs)
                             return a.startNs < b.startNs;
                         return a.tid < b.tid;
                     });
    JsonWriter json;
    json.beginObject();
    json.member("displayTimeUnit", "ms");
    json.key("traceEvents").beginArray();
    for (const TraceEvent &event : snapshot) {
        json.beginObject();
        json.member("name", event.name);
        json.member("cat", "fermihedral");
        json.member("ph", "X");
        json.member("ts",
                    static_cast<double>(event.startNs) / 1000.0);
        json.member("dur",
                    static_cast<double>(event.durationNs) / 1000.0);
        json.member("pid", 1);
        json.member("tid",
                    static_cast<std::uint64_t>(event.tid));
        if (!event.args.empty()) {
            json.key("args");
            std::string object = "{";
            object += event.args;
            object += '}';
            json.rawValue(object);
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.take();
}

bool
TraceRecorder::writeChromeTrace(const std::string &path) const
{
    std::ofstream file(path, std::ios::trunc);
    if (!file) {
        warn("telemetry: cannot write trace to '", path, "'");
        return false;
    }
    file << chromeTraceJson() << '\n';
    return static_cast<bool>(file);
}

// --------------------------------------------------------------------
// TraceSpan
// --------------------------------------------------------------------

TraceSpan::TraceSpan(std::string_view span_name)
    : live(TraceRecorder::global().enabled())
{
    if (!live)
        return;
    name.assign(span_name);
    startNs = TraceRecorder::global().nowNs();
}

TraceSpan::~TraceSpan()
{
    if (!live)
        return;
    TraceRecorder &recorder = TraceRecorder::global();
    TraceEvent event;
    event.name = std::move(name);
    event.args = std::move(args);
    event.startNs = startNs;
    const std::uint64_t end = recorder.nowNs();
    event.durationNs = end > startNs ? end - startNs : 0;
    event.tid = recorder.currentThreadId();
    recorder.record(std::move(event));
}

void
TraceSpan::appendArgKey(std::string_view key)
{
    if (!args.empty())
        args += ',';
    args += '"';
    args += JsonWriter::escape(key);
    args += "\":";
}

void
TraceSpan::arg(std::string_view key, std::string_view text)
{
    if (!live)
        return;
    appendArgKey(key);
    args += '"';
    args += JsonWriter::escape(text);
    args += '"';
}

void
TraceSpan::arg(std::string_view key, std::uint64_t number)
{
    if (!live)
        return;
    appendArgKey(key);
    args += std::to_string(number);
}

void
TraceSpan::arg(std::string_view key, std::int64_t number)
{
    if (!live)
        return;
    appendArgKey(key);
    args += std::to_string(number);
}

void
TraceSpan::arg(std::string_view key, double number)
{
    if (!live)
        return;
    JsonWriter fragment;
    fragment.value(number);
    appendArgKey(key);
    args += fragment.str();
}

void
TraceSpan::arg(std::string_view key, bool boolean)
{
    if (!live)
        return;
    appendArgKey(key);
    args += boolean ? "true" : "false";
}

} // namespace fermihedral::telemetry
