/**
 * @file
 * Process-wide telemetry: a thread-safe metrics registry (named
 * counters, gauges and fixed-bucket histograms with percentile
 * extraction) plus a trace-span recorder exporting Chrome
 * trace_event JSON (loadable in Perfetto / chrome://tracing).
 *
 * Every layer of the stack reports through this one surface: the
 * CDCL solver and portfolio (conflicts, propagations, GC and
 * inprocessing spans, per-instance race timelines), the descent
 * loop (one span per totalizer bound), the simplifier, the
 * CompilerService (queue depth, latency percentiles, cache
 * counters) and the trajectory simulator. The --metrics-json and
 * --trace flags on the bench/example binaries (see
 * common/telemetry_flags.h) serialize it at exit.
 *
 * Key invariants:
 *  - The hot path is lock-free: Counter::add, Gauge::set and
 *    Histogram::record are relaxed atomic operations on storage
 *    allocated at registration. After a handle is obtained, no
 *    metric update ever allocates or takes a lock — registration
 *    (name lookup) is the only mutex-guarded step.
 *  - Tracing is off by default. A TraceSpan constructed while the
 *    recorder is disabled performs no clock read, no allocation
 *    and no synchronisation; enabling mid-run only affects spans
 *    constructed afterwards.
 *  - Handles returned by counter()/gauge()/histogram() are valid
 *    for the registry's lifetime (node-stable storage), and the
 *    same name always returns the same handle.
 *  - All timestamps come from the monotonic steady clock
 *    (common/timer.h): span timelines are immune to wall-clock
 *    adjustments and never go backwards.
 *  - metricsJson() snapshots are taken metric-by-metric with
 *    relaxed loads: totals are exact once writers are quiescent
 *    (the export points), merely approximate during concurrent
 *    hammering — never torn or corrupt.
 */

#ifndef FERMIHEDRAL_COMMON_TELEMETRY_H
#define FERMIHEDRAL_COMMON_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fermihedral::telemetry {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    add(std::uint64_t amount = 1)
    {
        count.fetch_add(amount, std::memory_order_relaxed);
    }

    std::uint64_t
    get() const
    {
        return count.load(std::memory_order_relaxed);
    }

    /** Zero the counter. Quiescent-world only (tests, benches). */
    void
    reset()
    {
        count.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> count{0};
};

/** Last-write-wins instantaneous value (queue depth, DB size). */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        current.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta)
    {
        current.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t
    get() const
    {
        return current.load(std::memory_order_relaxed);
    }

    /** Zero the gauge. Quiescent-world only (tests, benches). */
    void reset() { set(0); }

  private:
    std::atomic<std::int64_t> current{0};
};

/**
 * Fixed-bucket histogram. Bucket i counts samples <= bounds[i];
 * one extra overflow bucket counts everything above the last
 * bound. Percentiles interpolate linearly inside the bucket the
 * rank falls into, clamped to the observed min/max so single-
 * sample and overflow-heavy distributions report honest values.
 */
class Histogram
{
  public:
    /** @param bounds Strictly increasing upper bucket bounds. */
    explicit Histogram(std::span<const double> bounds);

    void record(double value);

    /** Consistent-enough copy of the atomic state (see file docs). */
    struct Snapshot
    {
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        std::vector<double> bounds;
        /** bounds.size() + 1 entries; last = overflow. */
        std::vector<std::uint64_t> buckets;

        /** Interpolated percentile, p in [0, 100]. 0 when empty. */
        double percentile(double p) const;
        double p50() const { return percentile(50.0); }
        double p90() const { return percentile(90.0); }
        double p99() const { return percentile(99.0); }
        double
        mean() const
        {
            return count ? sum / static_cast<double>(count) : 0.0;
        }
    };

    Snapshot snapshot() const;

    /** Zero all state (bounds kept). Quiescent-world only. */
    void reset();

    /**
     * Default latency bounds: log-spaced from 10 microseconds to
     * ~100 seconds, three buckets per decade.
     */
    static std::span<const double> latencyBoundsSeconds();

  private:
    std::vector<double> bounds;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> minValue;
    std::atomic<double> maxValue;
};

/**
 * The named-metric registry. Use MetricsRegistry::global() for the
 * process-wide instance; local instances exist for tests.
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry every subsystem reports into. */
    static MetricsRegistry &global();

    /** Find-or-create; the handle is stable for the registry life. */
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);

    /**
     * Find-or-create a histogram. `bounds` is consulted only on
     * creation (empty = latencyBoundsSeconds()); later calls with
     * the same name return the existing histogram unchanged.
     */
    Histogram &histogram(std::string_view name,
                         std::span<const double> bounds = {});

    /**
     * One JSON object: {"counters":{...},"gauges":{...},
     * "histograms":{name:{count,sum,mean,min,max,p50,p90,p99}}}.
     * Names are emitted sorted, so artifacts diff stably.
     */
    std::string metricsJson() const;

    /** Write metricsJson() to a file; warn + false on IO failure. */
    bool writeMetricsJson(const std::string &path) const;

    /** Zero every registered metric (tests and repeated benches). */
    void reset();

  private:
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>>
        gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms;
};

/** One completed span, ready for trace_event export. */
struct TraceEvent
{
    std::string name;
    /** Pre-rendered JSON object body for "args" ("" = none). */
    std::string args;
    std::uint64_t startNs = 0;
    std::uint64_t durationNs = 0;
    std::uint32_t tid = 0;
};

/**
 * Collects TraceEvents process-wide. Disabled by default; the
 * bench/example --trace flag (or a test) enables it.
 */
class TraceRecorder
{
  public:
    static TraceRecorder &global();

    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    void setEnabled(bool enable);

    /** Nanoseconds since this recorder's (steady-clock) epoch. */
    std::uint64_t nowNs() const;

    /** Small dense id for the calling thread (cached per thread). */
    std::uint32_t currentThreadId();

    /** Append one completed event (span destructors call this). */
    void record(TraceEvent event);

    /** Drop all recorded events. */
    void clear();

    /** Number of recorded events. */
    std::size_t eventCount() const;

    /**
     * The Chrome trace_event document:
     * {"traceEvents":[{"name","cat","ph":"X","ts","dur","pid",
     * "tid","args"},...]} with ts/dur in microseconds. Loadable
     * in Perfetto and chrome://tracing.
     */
    std::string chromeTraceJson() const;

    /** Write chromeTraceJson() to a file; warn + false on failure. */
    bool writeChromeTrace(const std::string &path) const;

  private:
    TraceRecorder();

    std::atomic<bool> on{false};
    /** Steady-clock ns at construction: the trace's t = 0. */
    std::uint64_t epochNs;

    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
    std::uint32_t nextThreadId = 0;
};

/**
 * RAII span: times a scope and records it into the global
 * TraceRecorder on destruction. When the recorder is disabled at
 * construction the span is inert — no clock read, no allocation.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(std::string_view name);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attach a key/value to the span's args (active spans only). */
    void arg(std::string_view key, std::string_view text);
    void arg(std::string_view key, const char *text)
    {
        arg(key, std::string_view(text));
    }
    void arg(std::string_view key, std::uint64_t number);
    void arg(std::string_view key, std::int64_t number);
    void arg(std::string_view key, int number)
    {
        arg(key, static_cast<std::int64_t>(number));
    }
    void arg(std::string_view key, double number);
    void arg(std::string_view key, bool boolean);

    bool active() const { return live; }

  private:
    void appendArgKey(std::string_view key);

    bool live;
    std::uint64_t startNs = 0;
    std::string name;
    std::string args;
};

} // namespace fermihedral::telemetry

#endif // FERMIHEDRAL_COMMON_TELEMETRY_H
