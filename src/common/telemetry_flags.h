/**
 * @file
 * The shared observability flags: every bench/example binary
 * registers --metrics-json, --trace and --progress with one
 * TelemetryFlags::add(flags) call (same overlay pattern as
 * bench::EngineFlags). After FlagSet::parse, arm() switches the
 * global TraceRecorder on when --trace was given; report() at the
 * end of main serializes the metrics registry and the Chrome trace
 * to the requested files.
 *
 * Key invariants:
 *  - With neither flag given, arm() and report() are no-ops and
 *    the binary runs with tracing disabled — the telemetry layer's
 *    zero-cost-when-off guarantee applies end to end.
 *  - report() never throws and never aborts the binary: IO
 *    failures warn and are reported through the return value so a
 *    bench run's results still print.
 */

#ifndef FERMIHEDRAL_COMMON_TELEMETRY_FLAGS_H
#define FERMIHEDRAL_COMMON_TELEMETRY_FLAGS_H

#include <string>

#include "common/flags.h"
#include "common/logging.h"
#include "common/telemetry.h"

namespace fermihedral::telemetry {

/** CLI overlay wiring the telemetry layer into a binary. */
struct TelemetryFlags
{
    const std::string *metricsJson = nullptr;
    const std::string *trace = nullptr;
    const bool *progress = nullptr;

    static TelemetryFlags
    add(FlagSet &flags)
    {
        TelemetryFlags telemetry;
        telemetry.metricsJson = flags.addString(
            "metrics-json", "",
            "write the metrics registry (counters/gauges/histogram "
            "percentiles) to this JSON file at exit");
        telemetry.trace = flags.addString(
            "trace", "",
            "record trace spans and write Chrome trace_event JSON "
            "(Perfetto / chrome://tracing) to this file at exit");
        telemetry.progress = flags.addBool(
            "progress", false,
            "print per-bound descent progress to stderr");
        storage() = telemetry;
        return telemetry;
    }

    /** Call once after FlagSet::parse: enables span recording. */
    void
    arm() const
    {
        if (trace && !trace->empty())
            TraceRecorder::global().setEnabled(true);
    }

    /**
     * Write the requested artifacts. Call at the end of main, once
     * the pool/service threads are quiescent. Returns false if any
     * requested write failed (a warning names the file).
     */
    bool
    report() const
    {
        bool ok = true;
        if (metricsJson && !metricsJson->empty()) {
            if (MetricsRegistry::global().writeMetricsJson(
                    *metricsJson)) {
                inform("wrote metrics to ", *metricsJson);
            } else {
                ok = false;
            }
        }
        if (trace && !trace->empty()) {
            if (TraceRecorder::global().writeChromeTrace(*trace)) {
                inform("wrote ",
                       TraceRecorder::global().eventCount(),
                       " trace events to ", *trace);
            } else {
                ok = false;
            }
        }
        return ok;
    }

    /** True when --progress was requested on an armed overlay. */
    bool
    progressRequested() const
    {
        return progress && *progress;
    }

    /** The overlay armed by add(), if any (one per binary). */
    static const TelemetryFlags *
    active()
    {
        return storage().metricsJson ? &storage() : nullptr;
    }

  private:
    static TelemetryFlags &
    storage()
    {
        static TelemetryFlags registered;
        return registered;
    }
};

} // namespace fermihedral::telemetry

#endif // FERMIHEDRAL_COMMON_TELEMETRY_FLAGS_H
