/**
 * @file
 * Wall-clock stopwatch used by the descent solver budgets and the
 * time-to-solution benchmarks (Figure 11).
 *
 * Key invariants:
 *  - Based on std::chrono::steady_clock, so elapsed readings are
 *    monotone and immune to system clock adjustments.
 *  - seconds() is const and may be polled repeatedly; only reset()
 *    restarts the epoch.
 */

#ifndef FERMIHEDRAL_COMMON_TIMER_H
#define FERMIHEDRAL_COMMON_TIMER_H

#include <chrono>

namespace fermihedral {

/** Simple steady-clock stopwatch. Starts running on construction. */
class Timer
{
  public:
    Timer() : start(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start = Clock::now(); }

    /** Elapsed wall-clock time in seconds. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    }

    /** Elapsed wall-clock time in milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start;
};

} // namespace fermihedral

#endif // FERMIHEDRAL_COMMON_TIMER_H
