/**
 * @file
 * Wall-clock stopwatch used by the descent solver budgets, the
 * time-to-solution benchmarks (Figure 11) and the telemetry span
 * recorder (common/telemetry.h).
 *
 * Key invariants:
 *  - Based on std::chrono::steady_clock — the project's single
 *    time source. Elapsed readings and nowNs() ticks are monotone
 *    and immune to system clock adjustments; nothing in the tree
 *    times anything off system_clock.
 *  - seconds()/elapsedNs() are const and may be polled repeatedly;
 *    only reset() restarts the epoch.
 *  - nowNs() readings from different threads share one epoch (the
 *    steady clock's), so cross-thread span timelines are directly
 *    comparable.
 */

#ifndef FERMIHEDRAL_COMMON_TIMER_H
#define FERMIHEDRAL_COMMON_TIMER_H

#include <chrono>
#include <cstdint>

namespace fermihedral {

/** Simple steady-clock stopwatch. Starts running on construction. */
class Timer
{
  public:
    Timer() : start(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start = Clock::now(); }

    /** Elapsed wall-clock time in seconds. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    }

    /** Elapsed wall-clock time in milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

    /** Elapsed wall-clock time in integer nanoseconds. */
    std::uint64_t
    elapsedNs() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start)
                .count());
    }

    /**
     * Monotonic nanoseconds since the steady clock's epoch: the
     * raw tick the span recorder timestamps events with.
     */
    static std::uint64_t
    nowNs()
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now().time_since_epoch())
                .count());
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start;
};

} // namespace fermihedral

#endif // FERMIHEDRAL_COMMON_TIMER_H
