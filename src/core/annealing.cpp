#include "core/annealing.h"

#include <bit>
#include <cmath>

#include "common/logging.h"

namespace fermihedral::core {

namespace {

/** Precomputed per-subset data for incremental energy updates. */
struct SubsetInfo
{
    std::vector<std::uint8_t> indices; // Hamiltonian Majorana ids
    std::uint32_t multiplicity = 0;
    std::size_t currentWeight = 0;
};

/** Pauli weight of a subset product under the given assignment. */
std::size_t
subsetWeight(const SubsetInfo &subset,
             const std::vector<std::uint32_t> &assignment,
             const std::vector<std::uint64_t> &x_masks,
             const std::vector<std::uint64_t> &z_masks)
{
    std::uint64_t x = 0, z = 0;
    for (const std::uint8_t index : subset.indices) {
        const std::uint32_t mapped =
            2 * assignment[index / 2] + index % 2;
        x ^= x_masks[mapped];
        z ^= z_masks[mapped];
    }
    return static_cast<std::size_t>(std::popcount(x | z));
}

} // namespace

AnnealingResult
annealPairing(const enc::FermionEncoding &base,
              const fermion::FermionHamiltonian &hamiltonian,
              const AnnealingOptions &options)
{
    require(base.modes == hamiltonian.modes(),
            "annealPairing: encoding/Hamiltonian mode mismatch");
    const std::size_t modes = base.modes;

    // Cache the encoding's symplectic masks for fast products.
    std::vector<std::uint64_t> x_masks(2 * modes), z_masks(2 * modes);
    for (std::size_t i = 0; i < 2 * modes; ++i) {
        x_masks[i] = base.majoranas[i].xMask();
        z_masks[i] = base.majoranas[i].zMask();
    }

    // Expand the Hamiltonian's Majorana-product structure.
    std::vector<SubsetInfo> subsets;
    std::vector<std::vector<std::uint32_t>> mode_subsets(modes);
    for (const auto &entry :
         fermion::majoranaStructure(hamiltonian)) {
        SubsetInfo info;
        info.multiplicity = entry.multiplicity;
        std::uint64_t remaining = entry.mask;
        while (remaining) {
            const int index = std::countr_zero(remaining);
            remaining &= remaining - 1;
            info.indices.push_back(static_cast<std::uint8_t>(index));
        }
        const auto id = static_cast<std::uint32_t>(subsets.size());
        for (const std::uint8_t index : info.indices) {
            auto &list = mode_subsets[index / 2];
            if (list.empty() || list.back() != id)
                list.push_back(id);
        }
        subsets.push_back(std::move(info));
    }

    std::vector<std::uint32_t> assignment(modes);
    for (std::size_t j = 0; j < modes; ++j)
        assignment[j] = static_cast<std::uint32_t>(j);

    std::size_t energy = 0;
    for (auto &subset : subsets) {
        subset.currentWeight =
            subsetWeight(subset, assignment, x_masks, z_masks);
        energy += subset.multiplicity * subset.currentWeight;
    }

    AnnealingResult result;
    result.initialCost = energy;
    result.assignment = assignment;
    result.finalCost = energy;

    if (modes < 2 || subsets.empty()) {
        result.encoding = base;
        return result;
    }

    Rng rng(options.seed);
    std::vector<std::uint32_t> best_assignment = assignment;
    std::size_t best_energy = energy;

    // Scratch for evaluating a proposal before committing it.
    std::vector<std::uint32_t> touched;
    std::vector<std::size_t> new_weights;
    std::vector<char> seen(subsets.size(), 0);

    double temperature = options.initialTemperature;
    while (temperature >= options.finalTemperature) {
        for (std::size_t iter = 0;
             iter < options.iterationsPerTemperature; ++iter) {
            const auto a = static_cast<std::size_t>(
                rng.nextBelow(modes));
            auto b = static_cast<std::size_t>(
                rng.nextBelow(modes - 1));
            if (b >= a)
                ++b;
            ++result.proposals;

            std::swap(assignment[a], assignment[b]);

            // Only subsets touching modes a or b change weight.
            touched.clear();
            new_weights.clear();
            for (const std::size_t mode : {a, b}) {
                for (const std::uint32_t id : mode_subsets[mode]) {
                    if (!seen[id]) {
                        seen[id] = 1;
                        touched.push_back(id);
                    }
                }
            }
            std::int64_t delta = 0;
            for (const std::uint32_t id : touched) {
                const std::size_t weight = subsetWeight(
                    subsets[id], assignment, x_masks, z_masks);
                new_weights.push_back(weight);
                delta += static_cast<std::int64_t>(
                             subsets[id].multiplicity) *
                         (static_cast<std::int64_t>(weight) -
                          static_cast<std::int64_t>(
                              subsets[id].currentWeight));
            }

            const bool accept =
                delta <= 0 ||
                rng.nextDouble() <
                    std::exp(-static_cast<double>(delta) /
                             temperature);
            if (accept) {
                ++result.accepted;
                energy = static_cast<std::size_t>(
                    static_cast<std::int64_t>(energy) + delta);
                for (std::size_t i = 0; i < touched.size(); ++i)
                    subsets[touched[i]].currentWeight =
                        new_weights[i];
                if (energy < best_energy) {
                    best_energy = energy;
                    best_assignment = assignment;
                }
            } else {
                std::swap(assignment[a], assignment[b]);
            }
            for (const std::uint32_t id : touched)
                seen[id] = 0;
        }
        temperature -= options.temperatureStep;
    }

    result.assignment = best_assignment;
    result.finalCost = best_energy;
    result.encoding.modes = modes;
    result.encoding.majoranas.resize(2 * modes);
    for (std::size_t j = 0; j < modes; ++j) {
        result.encoding.majoranas[2 * j] =
            base.majoranas[2 * best_assignment[j]];
        result.encoding.majoranas[2 * j + 1] =
            base.majoranas[2 * best_assignment[j] + 1];
    }
    return result;
}

} // namespace fermihedral::core
