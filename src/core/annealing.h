/**
 * @file
 * Algorithm 2: simulated-annealing assignment of Majorana operators
 * to creation/annihilation pairs (Section 4.2).
 *
 * Given a Hamiltonian-independent optimal encoding, the remaining
 * freedom is which Majorana pair implements which Fermionic mode.
 * The annealer takes the Hamiltonian Pauli weight (Eq. 14) as the
 * energy and proposes pair swaps, which preserve the vacuum
 * pairing property exactly as the paper argues.
 *
 * Key invariants:
 *  - Proposals only permute which Majorana pair serves which mode:
 *    the multiset of Pauli strings in the result equals the input's,
 *    so every validity property of `base` is preserved.
 *  - finalCost <= initialCost always (the best assignment seen is
 *    returned, not the last accepted one), and both are exact
 *    hamiltonianPauliWeight() values.
 *  - Runs are deterministic in AnnealingOptions::seed.
 */

#ifndef FERMIHEDRAL_CORE_ANNEALING_H
#define FERMIHEDRAL_CORE_ANNEALING_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "encodings/encoding.h"
#include "fermion/operators.h"

namespace fermihedral::core {

/** Annealing schedule parameters (paper's T0, T1, alpha, i). */
struct AnnealingOptions
{
    /** Initial temperature. */
    double initialTemperature = 40.0;
    /** Final temperature. */
    double finalTemperature = 0.5;
    /** Linear temperature decrement per outer step. */
    double temperatureStep = 0.5;
    /** Proposals per temperature. */
    std::size_t iterationsPerTemperature = 200;
    /** RNG seed (deterministic runs). */
    std::uint64_t seed = 0x5eed;
};

/** Result of an annealing run. */
struct AnnealingResult
{
    /** The re-paired encoding. */
    enc::FermionEncoding encoding;
    /** Mode -> original pair index permutation chosen. */
    std::vector<std::uint32_t> assignment;
    /** Hamiltonian Pauli weight before annealing. */
    std::size_t initialCost = 0;
    /** Hamiltonian Pauli weight after annealing. */
    std::size_t finalCost = 0;
    /** Total proposals evaluated. */
    std::size_t proposals = 0;
    /** Accepted proposals. */
    std::size_t accepted = 0;
};

/**
 * Run Algorithm 2: search over pair permutations of `base` that
 * minimise the Hamiltonian Pauli weight of `hamiltonian`.
 */
AnnealingResult annealPairing(
    const enc::FermionEncoding &base,
    const fermion::FermionHamiltonian &hamiltonian,
    const AnnealingOptions &options = {});

} // namespace fermihedral::core

#endif // FERMIHEDRAL_CORE_ANNEALING_H
