#include "core/descent_solver.h"

#include "common/logging.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "encodings/linear.h"
#include "encodings/ternary_tree.h"

namespace fermihedral::core {

DescentSolver::DescentSolver(std::size_t modes,
                             const DescentOptions &options)
    : modes(modes), options(options)
{
}

DescentSolver::DescentSolver(
    const fermion::FermionHamiltonian &hamiltonian,
    const DescentOptions &options)
    : modes(hamiltonian.modes()), options(options),
      structure(fermion::majoranaStructure(hamiltonian))
{
}

std::unique_ptr<sat::PortfolioSolver>
DescentSolver::makeSolver() const
{
    sat::PortfolioOptions portfolio;
    portfolio.threads = options.threads;
    portfolio.instances = options.portfolioInstances;
    portfolio.deterministic = options.deterministic;
    portfolio.preprocess = options.preprocess;
    portfolio.simplify.timeBudgetSeconds =
        options.preprocessBudgetSeconds;
    portfolio.preprocessMaxClauses = options.preprocessMaxClauses;
    return std::make_unique<sat::PortfolioSolver>(portfolio);
}

void
DescentSolver::afterStep(std::size_t sat_calls)
{
    // Carry-over is the default: the bound only tightens, so every
    // learnt clause stays sound. Dropping them here isolates each
    // step (the measurement baseline, and a debugging aid).
    if (!options.carryLearnts)
        solver->clearLearnts();
    if (options.inprocess && options.inprocessInterval > 0 &&
        sat_calls % options.inprocessInterval == 0) {
        // Difficulty gate: maintenance is only worth its wall-clock
        // once the steps actually produce conflict-driven clauses.
        const std::size_t conflicts =
            solver->portfolioStats().aggregate.conflicts;
        if (conflicts - inprocessedConflicts >=
            options.inprocessMinConflicts) {
            solver->inprocess();
            inprocessedConflicts = conflicts;
        }
    }
}

std::size_t
DescentSolver::baselineCost(const enc::FermionEncoding &bk) const
{
    if (structure.empty())
        return bk.totalWeight();
    std::size_t total = 0;
    for (const auto &subset : structure) {
        total += subset.multiplicity *
                 enc::majoranaProduct(bk, subset.mask).weight();
    }
    return total;
}

DescentResult
DescentSolver::solve()
{
    Timer total_timer;
    telemetry::TraceSpan run_span("descent.run");
    if (run_span.active())
        run_span.arg("modes", modes);
    DescentResult result;

    const enc::FermionEncoding bk = enc::bravyiKitaev(modes);
    result.baselineCost = baselineCost(bk);

    // Start from the cheapest encoding that satisfies the active
    // constraints. BK always does; the ternary tree lacks the X/Y
    // vacuum pairing, so it only qualifies when that (optional,
    // Sec. 3.1) constraint is relaxed.
    enc::FermionEncoding start = bk;
    std::size_t start_cost = result.baselineCost;
    if (!options.vacuumPreservation) {
        const enc::FermionEncoding tt = enc::ternaryTree(modes);
        const std::size_t tt_cost = baselineCost(tt);
        if (tt_cost < start_cost) {
            start = tt;
            start_cost = tt_cost;
        }
    }
    if (options.seedEncoding &&
        options.seedEncoding->modes == modes) {
        const auto &seed = *options.seedEncoding;
        const auto validation = enc::validateEncoding(seed);
        const bool feasible =
            validation.valid() &&
            (!options.vacuumPreservation || validation.xyPairing);
        const std::size_t seed_cost = baselineCost(seed);
        if (feasible && seed_cost < start_cost) {
            start = seed;
            start_cost = seed_cost;
        }
    }
    const std::size_t w0 =
        options.initialBound.value_or(start_cost);

    // The starting encoding is itself feasible at cost w0, so the
    // descent can begin by asking for strictly less.
    result.encoding = start;
    result.cost = start_cost;

    // Degenerate-budget / pre-cancelled fast path: the start
    // encoding is already the answer, so skip solver and model
    // construction entirely. This keeps a zero-deadline request
    // deterministic (and cheap) instead of racing the construction
    // against the clock.
    const auto stop_requested = [this] {
        return options.stopFlag &&
               options.stopFlag->load(std::memory_order_relaxed);
    };
    if (start_cost > 0 &&
        (stop_requested() || options.totalTimeoutSeconds <= 0.0)) {
        result.termination = stop_requested()
                                 ? DescentTermination::Cancelled
                                 : DescentTermination::BudgetExhausted;
        if (run_span.active()) {
            run_span.arg("cost", result.cost);
            run_span.arg("sat_calls", result.satCalls);
            run_span.arg("proved_optimal", result.provedOptimal);
        }
        lastResult = result;
        return result;
    }

    Timer construct_timer;
    solver = makeSolver();
    inprocessedConflicts = 0;
    EncodingModelOptions model_options;
    model_options.modes = modes;
    model_options.algebraicIndependence =
        options.algebraicIndependence;
    model_options.vacuumPreservation = options.vacuumPreservation;
    model_options.hamiltonianStructure = structure;
    model_options.costCap = std::max<std::size_t>(w0, 1);
    model = std::make_unique<EncodingModel>(*solver, model_options);
    if (options.warmStart)
        model->warmStart(start);
    result.constructSeconds = construct_timer.seconds();
    result.numVars = solver->numVars();
    result.numClauses = solver->numClauses();

    // Descent loop (Algorithm 1): each round permanently bounds the
    // cost one below the best known solution.
    std::size_t best = std::min(w0, start_cost);
    auto &step_seconds = telemetry::MetricsRegistry::global()
                             .histogram("descent.step_seconds");
    Timer solve_timer;
    while (best > 0) {
        if (stop_requested()) {
            result.termination = DescentTermination::Cancelled;
            break;
        }
        const double elapsed = solve_timer.seconds();
        const double remaining =
            options.totalTimeoutSeconds - elapsed;
        if (remaining <= 0) {
            result.termination =
                DescentTermination::BudgetExhausted;
            break;
        }
        const std::size_t asked = best - 1;
        telemetry::TraceSpan span("descent.bound");
        if (span.active())
            span.arg("bound", asked);
        model->boundCostAtMost(asked);

        sat::Budget budget;
        budget.maxSeconds =
            std::min(options.stepTimeoutSeconds, remaining);
        budget.stopFlag = options.stopFlag;
        const Timer step_timer;
        const sat::SolveStatus status = solver->solve({}, budget);
        ++result.satCalls;
        step_seconds.record(step_timer.seconds());

        bool stop = false;
        if (status == sat::SolveStatus::Sat) {
            const enc::FermionEncoding candidate = model->decode();
            const std::size_t cost = model->costOf(candidate);
            require(cost < best, "SAT model violated cost bound: ",
                    cost, " >= ", best);
            result.encoding = candidate;
            result.cost = cost;
            best = cost;
            result.trajectory.emplace_back(cost,
                                           total_timer.seconds());
            afterStep(result.satCalls);
        } else if (status == sat::SolveStatus::Unsat) {
            result.provedOptimal = true;
            stop = true;
        } else {
            // Budget expired without an answer — distinguish the
            // caller's stop flag from a plain timeout so the
            // serving layer can report Cancelled vs best-so-far.
            result.termination =
                stop_requested()
                    ? DescentTermination::Cancelled
                    : DescentTermination::BudgetExhausted;
            stop = true;
        }

        if (span.active()) {
            span.arg("status",
                     status == sat::SolveStatus::Sat
                         ? "sat"
                         : status == sat::SolveStatus::Unsat
                               ? "unsat"
                               : "unknown");
            span.arg("best_cost", best);
            span.arg(
                "conflicts",
                solver->portfolioStats().aggregate.conflicts);
        }
        if (options.progress) {
            DescentProgress report;
            report.bound = asked;
            report.bestCost = result.cost;
            report.satCalls = result.satCalls;
            report.elapsedSeconds = solve_timer.seconds();
            report.status = status;
            report.conflicts =
                solver->portfolioStats().aggregate.conflicts;
            options.progress(report);
        }
        if (stop)
            break;
    }
    if (best == 0)
        result.provedOptimal = true;
    result.solveSeconds = solve_timer.seconds();
    result.satStats = solver->portfolioStats();
    if (run_span.active()) {
        run_span.arg("cost", result.cost);
        run_span.arg("sat_calls", result.satCalls);
        run_span.arg("proved_optimal", result.provedOptimal);
    }
    lastResult = result;
    return result;
}

std::vector<enc::FermionEncoding>
DescentSolver::enumerateOptimal(std::size_t count,
                                double timeout_seconds)
{
    // Calling out of order is a user error (the caller skipped a
    // documented step), not a library bug: report it as a fatal
    // diagnostic like FlagSet does for malformed flag values.
    if (!lastResult.has_value())
        fatal("DescentSolver::enumerateOptimal() requires a "
              "completed solve() first (documented precondition)");
    std::vector<enc::FermionEncoding> encodings;
    if (lastResult->cost == 0 || !model)
        return encodings;

    // Relax the bound back to the optimum (the descent left a bound
    // of best - 1 asserted, so re-solve at exactly `cost` using the
    // assumption-free model with a fresh solver would be costly;
    // instead rebuild once at the optimal bound).
    Timer timer;
    solver = makeSolver();
    inprocessedConflicts = 0;
    EncodingModelOptions model_options;
    model_options.modes = modes;
    model_options.algebraicIndependence =
        options.algebraicIndependence;
    model_options.vacuumPreservation = options.vacuumPreservation;
    model_options.hamiltonianStructure = structure;
    model_options.costCap =
        std::max<std::size_t>(lastResult->cost, 1);
    model = std::make_unique<EncodingModel>(*solver, model_options);
    model->boundCostAtMost(lastResult->cost);
    if (options.warmStart)
        model->warmStart(lastResult->encoding);

    while (encodings.size() < count) {
        const double remaining = timeout_seconds - timer.seconds();
        if (remaining <= 0)
            break;
        sat::Budget budget;
        budget.maxSeconds = remaining;
        if (solver->solve({}, budget) != sat::SolveStatus::Sat)
            break;
        encodings.push_back(model->decode());
        model->blockCurrentSolution();
    }
    return encodings;
}

} // namespace fermihedral::core
