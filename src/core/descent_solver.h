/**
 * @file
 * Algorithm 1: descend on the Pauli-weight bound with a SAT solver.
 *
 * The solver starts from the Bravyi-Kitaev cost (the paper's w0),
 * warm-starts the CDCL phases at the BK solution, and repeatedly
 * asks for an encoding strictly cheaper than the best found so far,
 * tightening the totalizer bound by one unit clause per round. The
 * loop ends with a proof of optimality (UNSAT) or when the per-step
 * or total budget expires (the paper's timeout termination).
 *
 * Three configurations correspond to the paper's experiments:
 *  - Full SAT: all constraints, Ham.-independent or -dependent cost;
 *  - SAT w/o Alg.: algebraicIndependence = false (Sec. 4.1);
 *  - SAT + Anl.: Ham.-independent solve here, then the annealing
 *    pairing of Algorithm 2 (annealing.h).
 *
 * Key invariants:
 *  - solve() always returns a valid encoding: the Bravyi-Kitaev
 *    baseline is feasible by construction, so even a zero budget
 *    yields DescentResult::encoding with cost == baselineCost.
 *  - result.cost is exact under the run's objective and equals
 *    costOf(result.encoding); provedOptimal is set only on a true
 *    UNSAT at cost - 1 (never on a timeout).
 *  - The cost trajectory is strictly decreasing: each SAT model
 *    accepted during descent is strictly cheaper than the last.
 *  - enumerateOptimal() may only be called after solve(); calling
 *    it first is a fatal diagnostic (FatalError). The returned
 *    encodings are pairwise distinct operator assignments at
 *    cost <= the best found.
 */

#ifndef FERMIHEDRAL_CORE_DESCENT_SOLVER_H
#define FERMIHEDRAL_CORE_DESCENT_SOLVER_H

#include <atomic>
#include <functional>
#include <optional>
#include <vector>

#include "core/encoding_model.h"
#include "encodings/encoding.h"
#include "fermion/operators.h"
#include "sat/portfolio.h"

namespace fermihedral::core {

/**
 * One per-bound progress report, delivered after every SAT step of
 * the descent loop (improving models, the final UNSAT refutation
 * and budget-expired steps alike). Successive reports have strictly
 * decreasing `bound` and non-decreasing `elapsedSeconds`.
 */
struct DescentProgress
{
    /** The bound this step asked for (best - 1). */
    std::size_t bound = 0;

    /** Cheapest feasible cost known after the step. */
    std::size_t bestCost = 0;

    /** SAT calls made so far, this step included. */
    std::size_t satCalls = 0;

    /** Wall-clock since solve() started (monotonic clock). */
    double elapsedSeconds = 0.0;

    /** The step's answer: Sat = improved, Unsat = proved optimal. */
    sat::SolveStatus status = sat::SolveStatus::Unknown;

    /** Aggregate solver conflicts across the run so far. */
    std::uint64_t conflicts = 0;
};

/** Why solve() stopped descending. */
enum class DescentTermination
{
    /** Optimality proved (UNSAT at best - 1, or the bound hit 0). */
    Completed,
    /** The step/total wall budget expired (anytime answer). */
    BudgetExhausted,
    /** The caller's stop flag was raised mid-descent. */
    Cancelled,
};

/** Options for one descent run. */
struct DescentOptions
{
    /** Keep the power-set algebraic independence clauses. */
    bool algebraicIndependence = true;

    /** Keep the vacuum X/Y-pairing clauses. */
    bool vacuumPreservation = true;

    /** Initialise solver phases from the baseline encoding. */
    bool warmStart = true;

    /** Wall-clock budget for each individual SAT call (seconds). */
    double stepTimeoutSeconds = 30.0;

    /** Wall-clock budget for the whole descent (seconds). */
    double totalTimeoutSeconds = 300.0;

    /** Threads racing each SAT step (0 = hardware concurrency). */
    std::size_t threads = 1;

    /**
     * Diversified solver instances in the portfolio (0 = one per
     * thread). With more instances than threads the pool
     * multiplexes them; instance 0 always searches like the plain
     * solver did.
     */
    std::size_t portfolioInstances = 0;

    /**
     * Fixed winner arbitration (lowest decisive instance index, no
     * cancellation, no clause sharing): descent results are then
     * bit-identical for every thread count as long as no step
     * times out. Racing mode (false) is faster — first decisive
     * instance wins and cancels the rest, learnt clauses are
     * shared — but the tie-break between equally-cheap encodings
     * may differ run to run.
     */
    bool deterministic = true;

    /** Simplify the clause database before the first SAT call. */
    bool preprocess = true;

    /**
     * Wall-clock cap on that upfront simplification run
     * (<= 0 = unlimited). Preprocessing pays for itself many times
     * over during the UNSAT proving rounds, but the paper's
     * time-to-best clock starts before the first model: without a
     * cap the simplifier can spend longer on a dense 4^N-clause
     * instance than the whole improving phase takes.
     */
    double preprocessBudgetSeconds = 0.05;

    /**
     * Skip the upfront pass entirely for instances staged with
     * more than this many clauses (0 = no ceiling). On
     * totalizer-dominated instances past a few thousand clauses
     * the occurrence index alone outweighs the improving phase;
     * the gated inprocessing recovers the simplification once the
     * proving rounds make it worthwhile.
     */
    std::size_t preprocessMaxClauses = 4000;

    /**
     * Keep each instance's learnt clauses across the descent's
     * bound-tightening steps. The totalizer bound only ever
     * tightens (one permanent unit clause per round), so clauses
     * learnt at a looser bound remain sound at every tighter one
     * and the next step starts from everything the last one
     * derived. Off = Solver::clearLearnts() after every SAT call,
     * the restart-from-scratch behaviour used to measure what
     * carry-over buys (DescentResult::satStats counts conflicts).
     */
    bool carryLearnts = true;

    /**
     * Inprocess the clause databases between descent steps
     * (subsumption + vivification, Solver::inprocess): each
     * permanent bound unit lets the simplifier strip satisfied
     * clauses and shorten the totalizer ladder before the next,
     * harder SAT call.
     */
    bool inprocess = true;

    /** Run inprocessing every this-many SAT steps (>= 1). */
    std::size_t inprocessInterval = 3;

    /**
     * Skip inprocessing while the search is easy: maintenance only
     * runs once at least this many conflicts accumulated since the
     * last one. Early descent steps are often solved almost purely
     * by propagation, and subsumption+vivification over a database
     * that produced no learnt clauses is pure overhead on the
     * time-to-best clock.
     */
    std::size_t inprocessMinConflicts = 2000;

    /**
     * Cooperative cancellation: when non-null and set, the descent
     * stops at the next SAT budget poll and solve() returns its
     * best-so-far result with DescentTermination::Cancelled. The
     * flag is composed into every sat::Budget the loop issues, so
     * it reaches both portfolio arbitration modes. Checked with
     * relaxed loads only — attaching a never-fired flag does not
     * perturb deterministic-mode bit-identity.
     */
    const std::atomic<bool> *stopFlag = nullptr;

    /** Override the initial bound (default: Bravyi-Kitaev cost). */
    std::optional<std::size_t> initialBound;

    /**
     * Extra starting candidate (e.g.\ a SAT+Anl. solution for the
     * Hamiltonian-dependent search). Used as warm start and initial
     * bound when it satisfies the active constraints and costs less
     * than the baseline.
     */
    std::optional<enc::FermionEncoding> seedEncoding;

    /**
     * Called after every SAT step with the descent's state (see
     * DescentProgress). Runs on the descent thread; an execution
     * observer only — it cannot steer the search, and it must not
     * re-enter the solver. Empty = no reports.
     */
    std::function<void(const DescentProgress &)> progress;
};

/** Result of a descent run. */
struct DescentResult
{
    /** Best encoding found (the baseline when SAT never improved). */
    enc::FermionEncoding encoding;

    /** Cost of `encoding` under the run's objective. */
    std::size_t cost = 0;

    /** Cost of the Bravyi-Kitaev baseline for reference. */
    std::size_t baselineCost = 0;

    /** The final decrement was refuted: `cost` is proved optimal. */
    bool provedOptimal = false;

    /** Why the descent stopped (budget vs cancel vs proof). */
    DescentTermination termination = DescentTermination::Completed;

    /** Number of SAT solve() calls made. */
    std::size_t satCalls = 0;

    /** Wall-clock split between building and solving the model. */
    double constructSeconds = 0.0;
    double solveSeconds = 0.0;

    /** Variable/clause counts of the constructed instance. */
    std::size_t numVars = 0;
    std::size_t numClauses = 0;

    /** (cost, elapsed seconds) after each improving model. */
    std::vector<std::pair<std::size_t, double>> trajectory;

    /**
     * SAT-engine counters for the whole run: per-instance search
     * work (propagations/conflicts/learnt literals), preprocessing
     * effect (eliminated variables, subsumed clauses, simplified
     * instance size) and portfolio arbitration outcomes.
     */
    sat::PortfolioStats satStats;
};

/** Searches optimal encodings for one mode count. */
class DescentSolver
{
  public:
    /** Hamiltonian-independent objective (Sec. 3.6). */
    DescentSolver(std::size_t modes, const DescentOptions &options);

    /** Hamiltonian-dependent objective (Sec. 3.7). */
    DescentSolver(const fermion::FermionHamiltonian &hamiltonian,
                  const DescentOptions &options);

    /** Run Algorithm 1. */
    DescentResult solve();

    /**
     * After solve(), enumerate up to `count` further distinct
     * encodings at cost <= the best found (used for Figure 4's
     * sampling of optimal encodings). Returns fewer when the space
     * is exhausted or the budget expires.
     */
    std::vector<enc::FermionEncoding> enumerateOptimal(
        std::size_t count, double timeout_seconds);

  private:
    std::size_t modes;
    DescentOptions options;
    std::vector<fermion::WeightedSubset> structure;

    std::unique_ptr<sat::PortfolioSolver> solver;
    std::unique_ptr<EncodingModel> model;
    std::optional<DescentResult> lastResult;

    /** Conflict count at the last inprocessing run (gate state). */
    std::size_t inprocessedConflicts = 0;

    std::unique_ptr<sat::PortfolioSolver> makeSolver() const;

    /** Carry-over / inprocessing maintenance after a SAT step. */
    void afterStep(std::size_t sat_calls);

    std::size_t baselineCost(const enc::FermionEncoding &bk) const;
};

} // namespace fermihedral::core

#endif // FERMIHEDRAL_CORE_DESCENT_SOLVER_H
