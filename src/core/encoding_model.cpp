#include "core/encoding_model.h"

#include <bit>

#include "common/logging.h"

namespace fermihedral::core {

using sat::Lit;
using sat::mkLit;

EncodingModel::EncodingModel(sat::SolverBase &solver,
                             const EncodingModelOptions &options)
    : solver(solver), formula(solver), options(options)
{
    require(options.modes >= 1 && options.modes <= 32,
            "EncodingModel supports 1..32 modes");
    require(options.costCap >= 1, "costCap must be positive");
    buildVariables();
    buildAnticommutativity();
    if (options.algebraicIndependence)
        buildAlgebraicIndependence();
    if (options.vacuumPreservation)
        buildVacuumPreservation();
    if (options.hamiltonianStructure.empty())
        buildIndependentCost();
    else
        buildHamiltonianCost();
    totalizer = std::make_unique<sat::Totalizer>(
        solver, costInputs, options.costCap);
    freezeInterface();
}

void
EncodingModel::freezeInterface()
{
    // The descent loop keeps talking to these variables after the
    // first solve: decode()/warmStart()/blockCurrentSolution() use
    // the operator bits, boundCostAtMost()/costAtMostAssumption()
    // the totalizer outputs. A preprocessing solver must therefore
    // never eliminate them; everything else (Tseitin auxiliaries,
    // totalizer internals) is fair game.
    for (const auto &per_string : vars) {
        for (const auto &[b1, b2] : per_string) {
            solver.freeze(b1);
            solver.freeze(b2);
        }
    }
    for (const sat::Lit lit : totalizer->outputLits())
        solver.freeze(sat::litVar(lit));
}

void
EncodingModel::buildVariables()
{
    const std::size_t strings = 2 * options.modes;
    const std::size_t qubits = options.modes;
    vars.resize(strings);
    xLit.resize(strings);
    weightLit.resize(strings);
    for (std::size_t s = 0; s < strings; ++s) {
        vars[s].resize(qubits);
        xLit[s].resize(qubits);
        weightLit[s].resize(qubits);
        for (std::size_t q = 0; q < qubits; ++q) {
            const sat::Var b1 = solver.newVar();
            const sat::Var b2 = solver.newVar();
            vars[s][q] = {b1, b2};
            // Symplectic x bit: set for X=(0,1) and Y=(1,0).
            xLit[s][q] = formula.mkXor(mkLit(b1), mkLit(b2));
            // Weight / non-identity bit: b1 or b2.
            weightLit[s][q] = formula.mkOr({mkLit(b1), mkLit(b2)});
        }
    }
}

Lit
EncodingModel::bit1(std::size_t s, std::size_t q) const
{
    return mkLit(vars[s][q].first);
}

Lit
EncodingModel::bit2(std::size_t s, std::size_t q) const
{
    return mkLit(vars[s][q].second);
}

void
EncodingModel::buildAnticommutativity()
{
    // Two operators anticommute iff (x1 & z2) xor (z1 & x2) with
    // z = bit1 in the paper's encoding. Two strings anticommute iff
    // the xor over all qubits of those per-qubit bits is odd, so
    // each pair contributes one parity chain over 2N and-terms.
    const std::size_t strings = 2 * options.modes;
    const std::size_t qubits = options.modes;
    std::vector<Lit> parity_inputs;
    parity_inputs.reserve(2 * qubits);
    for (std::size_t s = 0; s < strings; ++s) {
        for (std::size_t t = s + 1; t < strings; ++t) {
            parity_inputs.clear();
            for (std::size_t q = 0; q < qubits; ++q) {
                const Lit z_s = bit1(s, q);
                const Lit z_t = bit1(t, q);
                parity_inputs.push_back(
                    formula.mkAnd({xLit[s][q], z_t}));
                parity_inputs.push_back(
                    formula.mkAnd({z_s, xLit[t][q]}));
            }
            formula.assertXorEquals(parity_inputs, true);
        }
    }
}

void
EncodingModel::buildAlgebraicIndependence()
{
    // Bit-sequence form: 2N bits per string (bit1, bit2 per qubit).
    // For every non-empty subset of the 2N strings, the xor of the
    // member bit sequences must be non-zero. Subset xors are formed
    // by dynamic programming: xor(S) = xor(S minus lowest) xor
    // bits(lowest), costing one variable per (subset, position).
    const std::size_t strings = 2 * options.modes;
    const std::size_t positions = 2 * options.modes;
    require(strings <= 20,
            "algebraic independence clauses are exponential; "
            "limited to 10 modes (got ",
            options.modes, ") - drop the constraint instead");

    auto bit_at = [this](std::size_t s, std::size_t p) {
        return p % 2 == 0 ? bit1(s, p / 2) : bit2(s, p / 2);
    };

    const std::size_t subset_count = std::size_t{1} << strings;
    // xorBits[mask] holds the per-position xor literals of `mask`.
    std::vector<std::vector<Lit>> xor_bits(subset_count);
    std::vector<Lit> clause(positions);
    for (std::size_t mask = 1; mask < subset_count; ++mask) {
        const auto low =
            static_cast<std::size_t>(std::countr_zero(mask));
        const std::size_t rest = mask & (mask - 1);
        auto &bits = xor_bits[mask];
        bits.resize(positions);
        for (std::size_t p = 0; p < positions; ++p) {
            bits[p] = rest == 0
                          ? bit_at(low, p)
                          : formula.mkXor(xor_bits[rest][p],
                                          bit_at(low, p));
        }
        // Not all positions may be zero: at least one xor bit set.
        for (std::size_t p = 0; p < positions; ++p)
            clause[p] = bits[p];
        formula.addClause(clause);
        // Free memory of masks that can no longer be extended from:
        // DP only ever reads mask & (mask - 1), i.e. prefixes, so
        // nothing can be freed safely mid-stream; rely on scope.
    }
}

void
EncodingModel::buildVacuumPreservation()
{
    // For each pair (2j, 2j+1), some qubit holds X on the even
    // string and Y on the odd string: pair = !b1 & b2 on the even
    // and b1 & !b2 on the odd (paper's Sec. 3.5).
    const std::size_t qubits = options.modes;
    std::vector<Lit> any_pair(qubits);
    for (std::size_t j = 0; j < options.modes; ++j) {
        const std::size_t even = 2 * j, odd = 2 * j + 1;
        for (std::size_t q = 0; q < qubits; ++q) {
            any_pair[q] = formula.mkAnd(
                {~bit1(even, q), bit2(even, q), bit1(odd, q),
                 ~bit2(odd, q)});
        }
        formula.addClause(any_pair);
    }
}

void
EncodingModel::buildIndependentCost()
{
    for (const auto &per_string : weightLit) {
        for (const Lit lit : per_string)
            costInputs.push_back(lit);
    }
}

void
EncodingModel::buildHamiltonianCost()
{
    // For every expanded Majorana product (Eq. 14): per qubit, the
    // product's operator bits are the xors of the member strings'
    // bits; the product contributes weight on a qubit when either
    // xor is set. Each distinct subset is encoded once and its
    // weight literal replicated `multiplicity` times.
    const std::size_t qubits = options.modes;
    std::vector<Lit> b1_inputs, b2_inputs;
    for (const auto &subset : options.hamiltonianStructure) {
        require(subset.mask != 0, "empty Hamiltonian subset");
        for (std::size_t q = 0; q < qubits; ++q) {
            b1_inputs.clear();
            b2_inputs.clear();
            std::uint64_t remaining = subset.mask;
            while (remaining) {
                const int s = std::countr_zero(remaining);
                remaining &= remaining - 1;
                b1_inputs.push_back(bit1(s, q));
                b2_inputs.push_back(bit2(s, q));
            }
            const Lit pb1 = formula.mkXorChain(b1_inputs);
            const Lit pb2 = formula.mkXorChain(b2_inputs);
            const Lit weight = formula.mkOr({pb1, pb2});
            for (std::uint32_t m = 0; m < subset.multiplicity; ++m)
                costInputs.push_back(weight);
        }
    }
    require(!costInputs.empty(),
            "Hamiltonian structure produced no cost bits");
}

void
EncodingModel::boundCostAtMost(std::size_t bound)
{
    totalizer->boundAtMost(bound);
}

Lit
EncodingModel::costAtMostAssumption(std::size_t bound) const
{
    require(bound + 1 <= totalizer->width() ||
                bound >= costInputs.size(),
            "cost bound ", bound, " not expressible (cap ",
            options.costCap, ")");
    if (bound >= costInputs.size())
        return sat::litUndef;
    return ~totalizer->atLeast(bound + 1);
}

pauli::PauliOp
EncodingModel::decodeOp(std::size_t s, std::size_t q) const
{
    const bool b1 = solver.modelValue(bit1(s, q)) == sat::LBool::True;
    const bool b2 = solver.modelValue(bit2(s, q)) == sat::LBool::True;
    // Paper's Eq. 7: I=(0,0), X=(0,1), Y=(1,0), Z=(1,1).
    if (!b1 && !b2)
        return pauli::PauliOp::I;
    if (!b1 && b2)
        return pauli::PauliOp::X;
    if (b1 && !b2)
        return pauli::PauliOp::Y;
    return pauli::PauliOp::Z;
}

enc::FermionEncoding
EncodingModel::decode() const
{
    enc::FermionEncoding encoding;
    encoding.modes = options.modes;
    encoding.majoranas.reserve(2 * options.modes);
    for (std::size_t s = 0; s < 2 * options.modes; ++s) {
        pauli::PauliString string(options.modes);
        for (std::size_t q = 0; q < options.modes; ++q)
            string.setOp(q, decodeOp(s, q));
        encoding.majoranas.push_back(string);
    }
    return encoding;
}

std::size_t
EncodingModel::costOf(const enc::FermionEncoding &encoding) const
{
    if (options.hamiltonianStructure.empty())
        return encoding.totalWeight();
    std::size_t total = 0;
    for (const auto &subset : options.hamiltonianStructure) {
        total += subset.multiplicity *
                 enc::majoranaProduct(encoding, subset.mask).weight();
    }
    return total;
}

void
EncodingModel::warmStart(const enc::FermionEncoding &encoding)
{
    require(encoding.modes == options.modes,
            "warmStart encoding has wrong mode count");
    for (std::size_t s = 0; s < 2 * options.modes; ++s) {
        for (std::size_t q = 0; q < options.modes; ++q) {
            const pauli::PauliOp op = encoding.majoranas[s].op(q);
            // Invert Eq. 7.
            const bool b1 = op == pauli::PauliOp::Y ||
                            op == pauli::PauliOp::Z;
            const bool b2 = op == pauli::PauliOp::X ||
                            op == pauli::PauliOp::Z;
            solver.setPolarity(vars[s][q].first, b1);
            solver.setPolarity(vars[s][q].second, b2);
            // Prefer deciding operator bits over Tseitin
            // auxiliaries: every auxiliary is then fixed by unit
            // propagation, so the first descent step essentially
            // walks the warm-start assignment.
            solver.boostActivity(vars[s][q].first, 1.0);
            solver.boostActivity(vars[s][q].second, 1.0);
        }
    }
}

void
EncodingModel::blockCurrentSolution()
{
    std::vector<Lit> clause;
    clause.reserve(4 * options.modes * options.modes);
    for (std::size_t s = 0; s < 2 * options.modes; ++s) {
        for (std::size_t q = 0; q < options.modes; ++q) {
            for (const sat::Var var :
                 {vars[s][q].first, vars[s][q].second}) {
                const bool value =
                    solver.modelValue(var) == sat::LBool::True;
                clause.push_back(mkLit(var, value));
            }
        }
    }
    formula.addClause(clause);
}

} // namespace fermihedral::core
