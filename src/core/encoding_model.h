/**
 * @file
 * The SAT model of the Fermion-to-qubit encoding problem (Sec. 3).
 *
 * Boolean variables follow the paper's Eq. 7: each Pauli operator of
 * each Majorana string is a (bit1, bit2) pair with
 *   I = (0,0),  X = (0,1),  Y = (1,0),  Z = (1,1).
 *
 * Constraints generated:
 *  - Anticommutativity (Sec. 3.3): for every string pair an odd
 *    number of per-qubit anticommuting positions, via the symplectic
 *    identity acomm = (x1 & z2) xor (z1 & x2) with x = b1 xor b2 and
 *    z = b1, asserted as one parity chain per pair.
 *  - Algebraic independence (Sec. 3.4): for every non-empty subset
 *    of strings, the xor of their bit sequences is non-zero. Subset
 *    xors are built by dynamic programming over the power set so
 *    each subset costs one fresh variable per bit position.
 *  - Vacuum-state preservation (Sec. 3.5): each Majorana pair
 *    (2j, 2j+1) has an (X, Y) column on some qubit.
 *  - Pauli-weight objective (Secs. 3.6/3.7): per-operator weight
 *    bits (Hamiltonian-independent) or per-expanded-product weight
 *    bits (Hamiltonian-dependent) feed a capped totalizer, so the
 *    descent of Algorithm 1 tightens the bound by unit clauses.
 *
 * Key invariants:
 *  - All constraints are built into the solver by the constructor;
 *    afterwards the model only reads literals, asserts bounds and
 *    decodes. The solver must outlive the model. Any SolverBase
 *    works: the plain CDCL engine or the preprocessing portfolio.
 *  - The model's interface variables — every operator bit and
 *    every totalizer output — are freeze()d on the solver, so a
 *    preprocessing solver keeps them addressable for the descent
 *    loop's later bounds, assumptions, blocking clauses and
 *    decode() reads.
 *  - decode() requires the solver to hold a satisfying model; the
 *    decoded encoding then satisfies every enabled constraint and
 *    costOf(decode()) is the exact objective the totalizer counted.
 *  - boundCostAtMost()/costAtMostAssumption() require
 *    bound <= options.costCap (the unary counter's width).
 *  - Bounds only ever tighten: boundCostAtMost(k) adds a permanent
 *    unit clause, so a later looser bound cannot be expressed on
 *    the same model instance.
 */

#ifndef FERMIHEDRAL_CORE_ENCODING_MODEL_H
#define FERMIHEDRAL_CORE_ENCODING_MODEL_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "encodings/encoding.h"
#include "fermion/operators.h"
#include "sat/formula.h"
#include "sat/solver_base.h"
#include "sat/totalizer.h"

namespace fermihedral::core {

/** Configuration of the SAT model. */
struct EncodingModelOptions
{
    /** Number of Fermionic modes N (and qubits). */
    std::size_t modes = 0;

    /** Emit the power-set algebraic independence clauses. */
    bool algebraicIndependence = true;

    /** Emit the X/Y-pair vacuum preservation clauses. */
    bool vacuumPreservation = true;

    /**
     * When non-empty, optimize the Hamiltonian-dependent weight of
     * these Majorana-product subsets (Sec. 3.7); otherwise the
     * Hamiltonian-independent total operator weight (Sec. 3.6).
     */
    std::vector<fermion::WeightedSubset> hamiltonianStructure;

    /**
     * Cap for the totalizer counter: the largest cost bound the
     * model will ever need to express (Algorithm 1 starts here).
     */
    std::size_t costCap = 0;
};

/** The constraint system for one encoding search. */
class EncodingModel
{
  public:
    /** Build all constraints into the given solver. */
    EncodingModel(sat::SolverBase &solver,
                  const EncodingModelOptions &options);

    /** bit1 literal of string s, qubit q (paper's E(sigma).1). */
    sat::Lit bit1(std::size_t s, std::size_t q) const;

    /** bit2 literal of string s, qubit q (paper's E(sigma).2). */
    sat::Lit bit2(std::size_t s, std::size_t q) const;

    /** Add a permanent clause enforcing cost <= bound. */
    void boundCostAtMost(std::size_t bound);

    /** Assumption literal for one solve with cost <= bound. */
    sat::Lit costAtMostAssumption(std::size_t bound) const;

    /** Decode the solver's current model into an encoding. */
    enc::FermionEncoding decode() const;

    /** Cost of a decoded encoding under this model's objective. */
    std::size_t costOf(const enc::FermionEncoding &encoding) const;

    /**
     * Initialise the solver's saved phases from a known-feasible
     * encoding (e.g.\ Bravyi-Kitaev) so search starts near it.
     */
    void warmStart(const enc::FermionEncoding &encoding);

    /**
     * Forbid the exact operator assignment of the current model
     * (used to enumerate distinct optimal encodings for Fig. 4).
     */
    void blockCurrentSolution();

    std::size_t numCostInputs() const { return costInputs.size(); }

  private:
    sat::SolverBase &solver;
    sat::Formula formula;
    EncodingModelOptions options;

    /** vars[s][q] = (bit1 var, bit2 var). */
    std::vector<std::vector<std::pair<sat::Var, sat::Var>>> vars;

    /** Per-(s, q) shared x = bit1 xor bit2 literal. */
    std::vector<std::vector<sat::Lit>> xLit;

    /** Per-(s, q) shared non-identity (= weight) literal. */
    std::vector<std::vector<sat::Lit>> weightLit;

    std::vector<sat::Lit> costInputs;
    std::unique_ptr<sat::Totalizer> totalizer;

    void buildVariables();
    void freezeInterface();
    void buildAnticommutativity();
    void buildAlgebraicIndependence();
    void buildVacuumPreservation();
    void buildIndependentCost();
    void buildHamiltonianCost();

    pauli::PauliOp decodeOp(std::size_t s, std::size_t q) const;
};

} // namespace fermihedral::core

#endif // FERMIHEDRAL_CORE_ENCODING_MODEL_H
