#include "encodings/encoding.h"

#include <bit>
#include <complex>
#include <sstream>

#include "common/gf2.h"
#include "common/logging.h"

namespace fermihedral::enc {

std::size_t
FermionEncoding::totalWeight() const
{
    std::size_t total = 0;
    for (const auto &majorana : majoranas)
        total += majorana.weight();
    return total;
}

double
FermionEncoding::weightPerOperator() const
{
    require(!majoranas.empty(), "weightPerOperator of empty encoding");
    return static_cast<double>(totalWeight()) /
           static_cast<double>(majoranas.size());
}

pauli::PauliString
majoranaProduct(const FermionEncoding &encoding, std::uint64_t mask)
{
    pauli::PauliString product(encoding.numQubits());
    std::uint64_t remaining = mask;
    while (remaining) {
        const int index = std::countr_zero(remaining);
        remaining &= remaining - 1;
        require(static_cast<std::size_t>(index) <
                    encoding.majoranas.size(),
                "majoranaProduct mask exceeds operator count");
        product = product * encoding.majoranas[index];
    }
    return product;
}

pauli::PauliSum
mapToQubits(const fermion::FermionHamiltonian &hamiltonian,
            const FermionEncoding &encoding)
{
    require(encoding.modes == hamiltonian.modes(),
            "encoding is for ", encoding.modes,
            " modes but Hamiltonian has ", hamiltonian.modes());
    pauli::PauliSum sum(encoding.numQubits());

    for (const auto &term : hamiltonian.fermionTerms()) {
        for (const auto &mono : fermion::expandFermionTerm(term)) {
            const auto product = majoranaProduct(encoding, mono.mask);
            sum.add(mono.coefficient, product);
        }
    }
    for (const auto &term : hamiltonian.majoranaTerms()) {
        const auto [mask, sign] =
            fermion::reduceMajoranaSequence(term.indices);
        const auto product = majoranaProduct(encoding, mask);
        sum.add(term.coefficient * double(sign), product);
    }
    sum.simplify();
    return sum;
}

std::size_t
hamiltonianPauliWeight(
    const fermion::FermionHamiltonian &hamiltonian,
    const FermionEncoding &encoding)
{
    std::size_t total = 0;
    for (const auto &subset : fermion::majoranaStructure(hamiltonian))
        total += subset.multiplicity *
                 majoranaProduct(encoding, subset.mask).weight();
    return total;
}

EncodingValidation
validateEncoding(const FermionEncoding &encoding)
{
    EncodingValidation result;
    const auto &majoranas = encoding.majoranas;
    const std::size_t count = majoranas.size();
    std::ostringstream detail;

    if (count != 2 * encoding.modes || count == 0) {
        result.detail = "wrong number of Majorana strings";
        return result;
    }

    // Anticommutativity: every distinct pair must anticommute.
    result.anticommutativity = true;
    for (std::size_t i = 0; i < count && result.anticommutativity;
         ++i) {
        for (std::size_t j = i + 1; j < count; ++j) {
            if (!majoranas[i].anticommutesWith(majoranas[j])) {
                result.anticommutativity = false;
                detail << "strings " << i << " and " << j
                       << " commute; ";
                break;
            }
        }
    }

    // Algebraic independence: a subset multiplies to the identity
    // (up to phase) exactly when the symplectic vectors xor to zero,
    // so independence is a GF(2) rank condition.
    const std::size_t qubits = encoding.numQubits();
    BitMatrix symplectic(count, 2 * qubits);
    for (std::size_t i = 0; i < count; ++i) {
        for (std::size_t q = 0; q < qubits; ++q) {
            symplectic.set(i, 2 * q,
                           (majoranas[i].xMask() >> q) & 1);
            symplectic.set(i, 2 * q + 1,
                           (majoranas[i].zMask() >> q) & 1);
        }
    }
    result.algebraicIndependence = symplectic.rank() == count;
    if (!result.algebraicIndependence)
        detail << "strings are algebraically dependent; ";

    // Vacuum preservation, exact: a_j |0> = 0 requires the images of
    // gamma_{2j} and i gamma_{2j+1} on |0...0> to cancel.
    result.vacuumPreserving = true;
    for (std::size_t j = 0; j < encoding.modes; ++j) {
        const auto even = majoranas[2 * j].applyToBasis(0);
        const auto odd = majoranas[2 * j + 1].applyToBasis(0);
        const std::complex<double> sum =
            even.amplitude() +
            std::complex<double>(0.0, 1.0) * odd.amplitude();
        if (even.bits != odd.bits || std::abs(sum) > 1e-12) {
            result.vacuumPreserving = false;
            detail << "a_" << j << " |vac> != 0; ";
            break;
        }
    }

    // The paper's relaxed pairing condition: some qubit holds an
    // (X, Y) pair across each (even, odd) Majorana pair.
    result.xyPairing = true;
    for (std::size_t j = 0; j < encoding.modes; ++j) {
        bool found = false;
        for (std::size_t q = 0; q < qubits && !found; ++q) {
            found = majoranas[2 * j].op(q) == pauli::PauliOp::X &&
                    majoranas[2 * j + 1].op(q) == pauli::PauliOp::Y;
        }
        if (!found) {
            result.xyPairing = false;
            detail << "pair " << j << " lacks an X/Y column; ";
            break;
        }
    }

    result.detail = detail.str();
    return result;
}

} // namespace fermihedral::enc
