/**
 * @file
 * The Fermion-to-qubit encoding value type, the Hamiltonian mapper,
 * and the exact validator for the paper's four constraints
 * (Section 3.1).
 *
 * Key invariants:
 *  - A well-formed FermionEncoding has majoranas.size() == 2 * modes
 *    and every string on the same qubit count; majoranas[2j] and
 *    majoranas[2j+1] realise mode j under the fixed pairing
 *    convention below.
 *  - validateEncoding() checks the constraints exactly (no
 *    sampling): anticommutativity pairwise, algebraic independence
 *    as a GF(2) rank condition, vacuum preservation by applying
 *    a_j to |0...0>.
 *  - mapToQubits() of a Hermitian Hamiltonian through a valid
 *    encoding yields numerically real coefficients, and its
 *    spectrum matches the Fock-space ground truth (fermion/fock.h).
 */

#ifndef FERMIHEDRAL_ENCODINGS_ENCODING_H
#define FERMIHEDRAL_ENCODINGS_ENCODING_H

#include <string>
#include <vector>

#include "fermion/operators.h"
#include "pauli/pauli_string.h"
#include "pauli/pauli_sum.h"

namespace fermihedral::enc {

/**
 * A Fermion-to-qubit encoding: 2N phase-carrying Pauli strings for
 * the Majorana operators of N modes, with the pairing convention
 *
 *   a_j      = (majoranas[2j] + i majoranas[2j+1]) / 2
 *   a^dag_j  = (majoranas[2j] - i majoranas[2j+1]) / 2
 */
struct FermionEncoding
{
    std::size_t modes = 0;
    std::vector<pauli::PauliString> majoranas;

    /** Number of qubits the Majorana strings act on. */
    std::size_t numQubits() const
    {
        return majoranas.empty() ? 0 : majoranas[0].numQubits();
    }

    /** Sum of the Pauli weights of all 2N Majorana strings. */
    std::size_t totalWeight() const;

    /** totalWeight() / (2N): the per-operator metric of Figs. 6/7. */
    double weightPerOperator() const;
};

/**
 * Pauli string of the ordered product of the Majorana operators
 * selected by `mask` (ascending index order, phases tracked).
 */
pauli::PauliString majoranaProduct(const FermionEncoding &encoding,
                                   std::uint64_t mask);

/**
 * Encode a Fermionic Hamiltonian into a qubit PauliSum through the
 * given encoding. The result is simplified; for a valid encoding of
 * a Hermitian Hamiltonian all coefficients are real.
 */
pauli::PauliSum mapToQubits(
    const fermion::FermionHamiltonian &hamiltonian,
    const FermionEncoding &encoding);

/**
 * The Hamiltonian-dependent total Pauli weight of an encoding:
 * Eq. 14's sum of the weights of every expanded Majorana product.
 * This is the metric reported in Tables 4 and 5 and the annealing
 * energy of Algorithm 2.
 */
std::size_t hamiltonianPauliWeight(
    const fermion::FermionHamiltonian &hamiltonian,
    const FermionEncoding &encoding);

/** Outcome of validateEncoding. */
struct EncodingValidation
{
    /** Every pair of distinct Majorana strings anticommutes. */
    bool anticommutativity = false;
    /** No subset of strings multiplies to the identity (GF(2)). */
    bool algebraicIndependence = false;
    /** a_j |0...0> = 0 exactly, for every mode j. */
    bool vacuumPreserving = false;
    /** The paper's relaxed Sec. 3.5 check: an X/Y pair exists. */
    bool xyPairing = false;
    /** First failure found, for diagnostics. */
    std::string detail;

    /** All of the mandatory constraints hold. */
    bool
    valid() const
    {
        return anticommutativity && algebraicIndependence;
    }
};

/** Exactly check the Section 3.1 constraints on an encoding. */
EncodingValidation validateEncoding(const FermionEncoding &encoding);

} // namespace fermihedral::enc

#endif // FERMIHEDRAL_ENCODINGS_ENCODING_H
