#include "encodings/linear.h"

#include <bit>

#include "common/logging.h"

namespace fermihedral::enc {

namespace {

/** Support of the GF(2) row vector (rows [0, limit) of inv) summed. */
std::uint64_t
prefixRowSupport(const BitMatrix &inv, std::size_t limit)
{
    std::uint64_t mask = 0;
    for (std::size_t q = 0; q < inv.cols(); ++q) {
        std::size_t parity = 0;
        for (std::size_t i = 0; i < limit; ++i)
            parity ^= inv.get(i, q) ? 1u : 0u;
        if (parity)
            mask |= std::uint64_t{1} << q;
    }
    return mask;
}

/** Support of column j of A as a bit mask. */
std::uint64_t
columnSupport(const BitMatrix &a, std::size_t j)
{
    std::uint64_t mask = 0;
    for (std::size_t r = 0; r < a.rows(); ++r) {
        if (a.get(r, j))
            mask |= std::uint64_t{1} << r;
    }
    return mask;
}

/**
 * Build a Majorana string from its x/z supports, with the global
 * phase chosen so the string equals the target operator exactly.
 * A bare (phase-0) string acts on a basis state with an extra
 * factor i^{|Sx & Sz|}; the target carries i^{target_i_power}.
 */
pauli::PauliString
majoranaString(std::size_t qubits, std::uint64_t x_mask,
               std::uint64_t z_mask, int target_i_power)
{
    const int y_count = std::popcount(x_mask & z_mask);
    return pauli::PauliString::fromMasks(
        qubits, x_mask, z_mask, target_i_power - y_count);
}

} // namespace

FermionEncoding
linearEncoding(const BitMatrix &a)
{
    const std::size_t n = a.rows();
    require(n >= 1 && n <= 64, "linearEncoding supports 1..64 modes");
    require(a.cols() == n, "linearEncoding needs a square matrix");
    const auto inverse = a.inverse();
    require(inverse.has_value(),
            "linearEncoding matrix is singular over GF(2)");

    FermionEncoding encoding;
    encoding.modes = n;
    encoding.majoranas.reserve(2 * n);
    for (std::size_t j = 0; j < n; ++j) {
        const std::uint64_t flips = columnSupport(a, j);
        const std::uint64_t z_even = prefixRowSupport(*inverse, j);
        const std::uint64_t z_odd = prefixRowSupport(*inverse, j + 1);
        // gamma[2j] = (-1)^{<z_even, x>} * flip: no i factor.
        encoding.majoranas.push_back(
            majoranaString(n, flips, z_even, 0));
        // gamma[2j+1] = i * (-1)^{<z_odd, x>} * flip.
        encoding.majoranas.push_back(
            majoranaString(n, flips, z_odd, 1));
    }
    return encoding;
}

FermionEncoding
jordanWigner(std::size_t modes)
{
    return linearEncoding(BitMatrix::identity(modes));
}

BitMatrix
fenwickMatrix(std::size_t modes)
{
    // Row q covers the binary-indexed-tree interval
    // [q + 1 - lowbit(q + 1), q] (0-indexed modes).
    BitMatrix a(modes, modes);
    for (std::size_t q = 0; q < modes; ++q) {
        const std::size_t one_based = q + 1;
        const std::size_t lowbit = one_based & (~one_based + 1);
        for (std::size_t i = one_based - lowbit; i <= q; ++i)
            a.set(q, i, true);
    }
    return a;
}

FermionEncoding
bravyiKitaev(std::size_t modes)
{
    return linearEncoding(fenwickMatrix(modes));
}

FermionEncoding
parity(std::size_t modes)
{
    BitMatrix a(modes, modes);
    for (std::size_t q = 0; q < modes; ++q) {
        for (std::size_t i = 0; i <= q; ++i)
            a.set(q, i, true);
    }
    return linearEncoding(a);
}

} // namespace fermihedral::enc
