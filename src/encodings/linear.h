/**
 * @file
 * Linear Fermion-to-qubit encodings and the standard baselines.
 *
 * Jordan-Wigner, Bravyi-Kitaev and Parity are all "linear"
 * encodings: the qubit basis state stores x = A n (mod 2) for an
 * invertible GF(2) matrix A applied to the occupation vector n.
 * Given A, the Majorana strings follow mechanically:
 *
 *   gamma[2j]   flips the qubits in column j of A and applies the
 *               Jordan-Wigner sign (-1)^{n_0 + ... + n_{j-1}}, whose
 *               qubit-side support is row vector [0..j) * A^{-1};
 *   gamma[2j+1] is the same with the prefix extended through j.
 *
 * The global phase is fixed so the string equals the Majorana
 * operator exactly (not only up to sign), which the Fock-space
 * cross-check tests rely on.
 *
 *   - Jordan-Wigner:  A = I
 *   - Parity:         A = lower-triangular all-ones (prefix sums)
 *   - Bravyi-Kitaev:  A = the Fenwick-tree (binary indexed tree)
 *                     partial-sum matrix, giving the O(log N)
 *                     operator weight of the paper's baseline.
 *
 * Key invariants:
 *  - linearEncoding() requires an invertible square A and returns a
 *    fully valid encoding: anticommuting, algebraically
 *    independent, vacuum-preserving (a_j |0...0> = 0) — all four
 *    Section 3.1 constraints hold by construction.
 *  - Tracked phases are exact: mapToQubits() through these
 *    encodings reproduces the Fock-space matrix identically, not
 *    just up to per-operator signs.
 */

#ifndef FERMIHEDRAL_ENCODINGS_LINEAR_H
#define FERMIHEDRAL_ENCODINGS_LINEAR_H

#include "common/gf2.h"
#include "encodings/encoding.h"

namespace fermihedral::enc {

/**
 * Build the encoding defined by qubit state = A * occupation.
 *
 * @param a Invertible N x N GF(2) matrix.
 */
FermionEncoding linearEncoding(const BitMatrix &a);

/** The Jordan-Wigner transformation (paper baseline [17]). */
FermionEncoding jordanWigner(std::size_t modes);

/** The Bravyi-Kitaev transformation (paper baseline [4]). */
FermionEncoding bravyiKitaev(std::size_t modes);

/** The parity transformation (related work [3]). */
FermionEncoding parity(std::size_t modes);

/** The Fenwick-tree matrix used by bravyiKitaev(). */
BitMatrix fenwickMatrix(std::size_t modes);

} // namespace fermihedral::enc

#endif // FERMIHEDRAL_ENCODINGS_LINEAR_H
