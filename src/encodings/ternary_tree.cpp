#include "encodings/ternary_tree.h"

#include "common/logging.h"

namespace fermihedral::enc {

namespace {

/**
 * Depth-first walk of the implicit balanced ternary tree: node i has
 * children 3i+1, 3i+2, 3i+3 while they are < N. Each missing child
 * terminates a root-to-leaf path and emits one string.
 */
void
walk(std::size_t node, std::size_t modes, pauli::PauliString &path,
     std::vector<pauli::PauliString> &out)
{
    static constexpr pauli::PauliOp branchOps[3] = {
        pauli::PauliOp::X, pauli::PauliOp::Y, pauli::PauliOp::Z};
    for (int branch = 0; branch < 3; ++branch) {
        path.setOp(node, branchOps[branch]);
        const std::size_t child = 3 * node + branch + 1;
        if (child < modes)
            walk(child, modes, path, out);
        else
            out.push_back(path);
        path.setOp(node, pauli::PauliOp::I);
    }
}

} // namespace

FermionEncoding
ternaryTree(std::size_t modes)
{
    require(modes >= 1 && modes <= 64,
            "ternaryTree supports 1..64 modes");
    std::vector<pauli::PauliString> paths;
    paths.reserve(2 * modes + 1);
    pauli::PauliString scratch(modes);
    walk(0, modes, scratch, paths);
    require(paths.size() == 2 * modes + 1,
            "ternary tree produced ", paths.size(),
            " paths, expected ", 2 * modes + 1);

    // Drop the all-Z spine (the last path in DFS order).
    paths.pop_back();

    FermionEncoding encoding;
    encoding.modes = modes;
    encoding.majoranas = std::move(paths);
    return encoding;
}

} // namespace fermihedral::enc
