/**
 * @file
 * Ternary-tree Fermion-to-qubit encoding (Jiang et al., Quantum 4,
 * 276 (2020)) — the other asymptotically optimal baseline cited by
 * the paper (related work [15, 22]).
 *
 * The N qubits form a balanced ternary tree; each root-to-leaf path
 * yields a Pauli string by picking X, Y or Z at every internal node
 * according to the branch taken. The 2N+1 path strings pairwise
 * anticommute and are algebraically independent; dropping one leaves
 * 2N Majorana operators with O(log3 N) weight each.
 *
 * Key invariants:
 *  - The returned encoding always satisfies anticommutativity and
 *    algebraic independence; vacuum preservation generally does NOT
 *    hold (see ternaryTree() below), so it serves as a
 *    weight-comparison baseline, not a simulation encoding.
 *  - Construction is deterministic: same mode count, same strings.
 */

#ifndef FERMIHEDRAL_ENCODINGS_TERNARY_TREE_H
#define FERMIHEDRAL_ENCODINGS_TERNARY_TREE_H

#include "encodings/encoding.h"

namespace fermihedral::enc {

/**
 * The balanced ternary-tree encoding on `modes` modes.
 *
 * The dropped path is the all-Z spine, and the remaining strings are
 * paired consecutively. The pairing does not generally map the Fock
 * vacuum to |0...0>; validateEncoding() reports this, and the
 * encoding is used for weight comparisons only.
 */
FermionEncoding ternaryTree(std::size_t modes);

} // namespace fermihedral::enc

#endif // FERMIHEDRAL_ENCODINGS_TERNARY_TREE_H
