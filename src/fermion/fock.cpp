#include "fermion/fock.h"

#include <bit>

#include "common/logging.h"

namespace fermihedral::fermion {

namespace {

/** Parity of the occupations below `mode`: the Jordan-Wigner sign. */
double
prefixSign(std::uint64_t bits, std::uint32_t mode)
{
    const std::uint64_t below = bits &
        ((std::uint64_t{1} << mode) - 1);
    return (std::popcount(below) % 2 == 0) ? 1.0 : -1.0;
}

} // namespace

std::optional<FockImage>
applyFermionOps(std::span<const FermionOp> ops, std::uint64_t bits)
{
    // ops[0] is the leftmost factor, so it acts last.
    double sign = 1.0;
    for (std::size_t i = ops.size(); i-- > 0;) {
        const FermionOp &op = ops[i];
        const std::uint64_t mask = std::uint64_t{1} << op.mode;
        const bool occupied = bits & mask;
        if (op.creation == occupied)
            return std::nullopt; // a|0> = 0 or a^dag|1> = 0
        sign *= prefixSign(bits, op.mode);
        bits ^= mask;
    }
    return FockImage{bits, sign};
}

MajoranaImage
applyMajoranaOps(std::span<const std::uint32_t> indices,
                 std::uint64_t bits)
{
    std::complex<double> amplitude(1.0, 0.0);
    for (std::size_t i = indices.size(); i-- > 0;) {
        const std::uint32_t index = indices[i];
        const std::uint32_t mode = index / 2;
        const std::uint64_t mask = std::uint64_t{1} << mode;
        const bool occupied = bits & mask;
        const double jw = prefixSign(bits, mode);
        if (index % 2 == 0) {
            // gamma[2j] = a_j + a^dag_j: flips with the JW sign.
            amplitude *= jw;
        } else {
            // gamma[2j+1] = i (a^dag_j - a_j):
            //   on |0>: +i * jw, on |1>: -i * jw.
            amplitude *= std::complex<double>(
                0.0, occupied ? -jw : jw);
        }
        bits ^= mask;
    }
    return MajoranaImage{bits, amplitude};
}

std::vector<std::complex<double>>
fockMatrix(const FermionHamiltonian &hamiltonian)
{
    const std::size_t modes = hamiltonian.modes();
    require(modes <= 14, "fockMatrix limited to 14 modes (dense)");
    const std::size_t dim = std::size_t{1} << modes;
    std::vector<std::complex<double>> matrix(dim * dim,
                                             {0.0, 0.0});

    for (std::uint64_t col = 0; col < dim; ++col) {
        for (const FermionTerm &term : hamiltonian.fermionTerms()) {
            const auto image = applyFermionOps(term.ops, col);
            if (image) {
                matrix[image->bits * dim + col] +=
                    term.coefficient * image->sign;
            }
        }
        for (const MajoranaTerm &term : hamiltonian.majoranaTerms()) {
            const auto image = applyMajoranaOps(term.indices, col);
            matrix[image.bits * dim + col] +=
                term.coefficient * image.amplitude;
        }
    }
    return matrix;
}

} // namespace fermihedral::fermion
