/**
 * @file
 * Exact Fock-space representation of Fermionic Hamiltonians.
 *
 * Builds the dense 2^N x 2^N matrix of a FermionHamiltonian on the
 * occupation-number basis |n_{N-1} ... n_0> with the standard sign
 * convention a^dag_j |...0_j...> = (-1)^{sum_{i<j} n_i} |...1_j...>.
 *
 * This is the encoding-independent ground truth: any valid
 * Fermion-to-qubit encoding must map the Hamiltonian to a qubit
 * operator with exactly this spectrum, which the integration tests
 * verify.
 *
 * Key invariants:
 *  - applyFermionOps() applies operators right-to-left (ops[0]
 *    acts last) and returns nullopt exactly when the product
 *    annihilates the state; signs are the exact Fermionic parity
 *    factors.
 *  - applyMajoranaOps() never returns a zero image (Majorana
 *    operators are unitary); the amplitude is always a power of i
 *    times +/-1.
 *  - Matrices are row-major with the column as the input state, on
 *    the basis |n_{N-1} ... n_0> with mode 0 least significant.
 */

#ifndef FERMIHEDRAL_FERMION_FOCK_H
#define FERMIHEDRAL_FERMION_FOCK_H

#include <complex>
#include <cstdint>
#include <optional>
#include <vector>

#include "fermion/operators.h"

namespace fermihedral::fermion {

/** Image of a basis state under an operator product (or zero). */
struct FockImage
{
    std::uint64_t bits;
    double sign;
};

/**
 * Apply a product of creation/annihilation operators to the Fock
 * basis state |bits>. Returns std::nullopt when the result is zero
 * (e.g.\ annihilating an empty mode).
 */
std::optional<FockImage>
applyFermionOps(std::span<const FermionOp> ops, std::uint64_t bits);

/**
 * Apply a product of Majorana operators to |bits>.
 * Majorana images are never zero; the amplitude is i^k * sign,
 * returned as a complex factor.
 */
struct MajoranaImage
{
    std::uint64_t bits;
    std::complex<double> amplitude;
};

MajoranaImage
applyMajoranaOps(std::span<const std::uint32_t> indices,
                 std::uint64_t bits);

/**
 * Dense matrix of the Hamiltonian on the 2^modes Fock basis,
 * row-major: element (row, col) at index row * dim + col, where
 * column is the input state.
 */
std::vector<std::complex<double>>
fockMatrix(const FermionHamiltonian &hamiltonian);

} // namespace fermihedral::fermion

#endif // FERMIHEDRAL_FERMION_FOCK_H
