#include "fermion/models.h"

#include <cmath>

#include "common/logging.h"

namespace fermihedral::fermion {

namespace {

/** Spin-orbital index for (orbital, spin). */
std::uint32_t
spinOrbital(std::size_t orbital, std::size_t spin)
{
    return static_cast<std::uint32_t>(2 * orbital + spin);
}

} // namespace

ElectronicIntegrals::ElectronicIntegrals(std::size_t orbitals)
    : numOrbitals(orbitals),
      one(orbitals * orbitals, 0.0),
      two(orbitals * orbitals * orbitals * orbitals, 0.0)
{
    require(orbitals >= 1 && orbitals <= 16,
            "ElectronicIntegrals supports 1..16 orbitals");
}

double &
ElectronicIntegrals::h1(std::size_t p, std::size_t q)
{
    return one[p * numOrbitals + q];
}

double
ElectronicIntegrals::h1(std::size_t p, std::size_t q) const
{
    return one[p * numOrbitals + q];
}

double &
ElectronicIntegrals::h2(std::size_t p, std::size_t q, std::size_t r,
                        std::size_t s)
{
    const std::size_t n = numOrbitals;
    return two[((p * n + q) * n + r) * n + s];
}

double
ElectronicIntegrals::h2(std::size_t p, std::size_t q, std::size_t r,
                        std::size_t s) const
{
    const std::size_t n = numOrbitals;
    return two[((p * n + q) * n + r) * n + s];
}

FermionHamiltonian
ElectronicIntegrals::toHamiltonian(double epsilon) const
{
    FermionHamiltonian hamiltonian(2 * numOrbitals);

    // One-body part: sum_pq h_pq a^dag_{p s} a_{q s}.
    for (std::size_t p = 0; p < numOrbitals; ++p) {
        for (std::size_t q = 0; q < numOrbitals; ++q) {
            if (std::abs(h1(p, q)) <= epsilon)
                continue;
            for (std::size_t spin = 0; spin < 2; ++spin) {
                hamiltonian.addFermionTerm(
                    h1(p, q),
                    {create(spinOrbital(p, spin)),
                     annihilate(spinOrbital(q, spin))});
            }
        }
    }

    // Two-body part (chemist notation):
    //   1/2 (pq|rs) a^dag_{p s1} a^dag_{r s2} a_{s s2} a_{q s1}.
    for (std::size_t p = 0; p < numOrbitals; ++p) {
        for (std::size_t q = 0; q < numOrbitals; ++q) {
            for (std::size_t r = 0; r < numOrbitals; ++r) {
                for (std::size_t s = 0; s < numOrbitals; ++s) {
                    const double g = h2(p, q, r, s);
                    if (std::abs(g) <= epsilon)
                        continue;
                    for (std::size_t s1 = 0; s1 < 2; ++s1) {
                        for (std::size_t s2 = 0; s2 < 2; ++s2) {
                            const auto i = spinOrbital(p, s1);
                            const auto j = spinOrbital(r, s2);
                            const auto k = spinOrbital(s, s2);
                            const auto l = spinOrbital(q, s1);
                            if (i == j || k == l)
                                continue; // Pauli exclusion
                            hamiltonian.addFermionTerm(
                                0.5 * g,
                                {create(i), create(j),
                                 annihilate(k), annihilate(l)});
                        }
                    }
                }
            }
        }
    }
    return hamiltonian;
}

ElectronicIntegrals
h2Sto3gIntegrals()
{
    // Whitfield, Biamonte & Aspuru-Guzik (2011), H2/STO-3G at
    // R = 0.7414 A. Orbital 0 = bonding (g), orbital 1 =
    // antibonding (u); all values in Hartree.
    ElectronicIntegrals integrals(2);
    integrals.h1(0, 0) = -1.252477;
    integrals.h1(1, 1) = -0.475934;
    integrals.h2(0, 0, 0, 0) = 0.674493; // (00|00)
    integrals.h2(1, 1, 1, 1) = 0.697397; // (11|11)
    // Coulomb (00|11) = (11|00).
    integrals.h2(0, 0, 1, 1) = 0.663472;
    integrals.h2(1, 1, 0, 0) = 0.663472;
    // Exchange (01|01) with full 8-fold symmetry.
    integrals.h2(0, 1, 0, 1) = 0.181287;
    integrals.h2(0, 1, 1, 0) = 0.181287;
    integrals.h2(1, 0, 0, 1) = 0.181287;
    integrals.h2(1, 0, 1, 0) = 0.181287;
    return integrals;
}

double
h2Sto3gNuclearRepulsion()
{
    return 0.713754;
}

FermionHamiltonian
syntheticElectronicStructure(std::size_t modes, Rng &rng)
{
    require(modes % 2 == 0,
            "electronic structure needs an even mode count");
    const std::size_t orbitals = modes / 2;
    ElectronicIntegrals integrals(orbitals);
    for (std::size_t p = 0; p < orbitals; ++p) {
        for (std::size_t q = p; q < orbitals; ++q) {
            const double value = rng.nextDouble(-1.0, 1.0);
            integrals.h1(p, q) = value;
            integrals.h1(q, p) = value;
        }
    }
    // Dense two-electron tensor with the real-orbital 8-fold
    // symmetry: (pq|rs) = (qp|rs) = (pq|sr) = (rs|pq) = ...
    for (std::size_t p = 0; p < orbitals; ++p) {
        for (std::size_t q = 0; q <= p; ++q) {
            for (std::size_t r = 0; r <= p; ++r) {
                for (std::size_t s = 0; s <= r; ++s) {
                    if (p == r && s > q)
                        continue;
                    const double value = rng.nextDouble(-0.5, 0.5);
                    const std::size_t idx[8][4] = {
                        {p, q, r, s}, {q, p, r, s}, {p, q, s, r},
                        {q, p, s, r}, {r, s, p, q}, {s, r, p, q},
                        {r, s, q, p}, {s, r, q, p},
                    };
                    for (const auto &ix : idx) {
                        integrals.h2(ix[0], ix[1], ix[2], ix[3]) =
                            value;
                    }
                }
            }
        }
    }
    return integrals.toHamiltonian();
}

FermionHamiltonian
fermiHubbard(
    std::size_t sites,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>> &edges,
    double t, double u)
{
    FermionHamiltonian hamiltonian(2 * sites);
    for (const auto &[a, b] : edges) {
        require(a < sites && b < sites && a != b,
                "invalid Hubbard edge (", a, ", ", b, ")");
        for (std::uint32_t spin = 0; spin < 2; ++spin) {
            const auto i = spinOrbital(a, spin);
            const auto j = spinOrbital(b, spin);
            hamiltonian.addFermionTerm(-t,
                                       {create(i), annihilate(j)});
            hamiltonian.addFermionTerm(-t,
                                       {create(j), annihilate(i)});
        }
    }
    for (std::uint32_t site = 0; site < sites; ++site) {
        const auto up = spinOrbital(site, 0);
        const auto down = spinOrbital(site, 1);
        hamiltonian.addFermionTerm(
            u, {create(up), annihilate(up), create(down),
                annihilate(down)});
    }
    return hamiltonian;
}

FermionHamiltonian
fermiHubbard1D(std::size_t sites, double t, double u)
{
    require(sites >= 2, "fermiHubbard1D needs at least 2 sites");
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    for (std::uint32_t s = 0; s < sites; ++s) {
        const auto next = static_cast<std::uint32_t>((s + 1) % sites);
        // A 2-site ring would duplicate the single edge; skip the
        // wrap-around duplicate.
        if (sites == 2 && s == 1)
            break;
        edges.emplace_back(s, next);
    }
    return fermiHubbard(sites, edges, t, u);
}

FermionHamiltonian
fermiHubbard2x2(double t, double u)
{
    // Sites laid out 0 1 / 2 3; periodic wrap-around edges coincide
    // with the direct ones on a 2x2 torus, so each pair appears once.
    const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges =
        {{0, 1}, {2, 3}, {0, 2}, {1, 3}};
    return fermiHubbard(4, edges, t, u);
}

FermionHamiltonian
sykModel(std::size_t modes, Rng &rng, double j)
{
    FermionHamiltonian hamiltonian(modes);
    const std::size_t m = 2 * modes;
    const double variance = 6.0 * j * j /
                            (static_cast<double>(m) * m * m);
    const double sigma = std::sqrt(variance);
    for (std::uint32_t a = 0; a < m; ++a) {
        for (std::uint32_t b = a + 1; b < m; ++b) {
            for (std::uint32_t c = b + 1; c < m; ++c) {
                for (std::uint32_t d = c + 1; d < m; ++d) {
                    const double g = sigma * rng.nextGaussian();
                    hamiltonian.addMajoranaTerm(g, {a, b, c, d});
                }
            }
        }
    }
    return hamiltonian;
}

} // namespace fermihedral::fermion
