/**
 * @file
 * The three benchmark Hamiltonian families of the paper (Figure 5):
 * molecular electronic structure, the Fermi-Hubbard model with
 * periodic boundary conditions, and the four-body SYK model.
 *
 * Key invariants:
 *  - Every builder returns a Hermitian FermionHamiltonian: mapping
 *    through a valid encoding yields real Pauli coefficients.
 *  - Spin-orbital ordering is fixed as mode(site/orbital, spin) =
 *    2 * index + spin throughout the module.
 *  - The random families (synthetic integrals, SYK couplings) are
 *    deterministic in the supplied Rng, so benchmark rows are
 *    reproducible from their seeds.
 */

#ifndef FERMIHEDRAL_FERMION_MODELS_H
#define FERMIHEDRAL_FERMION_MODELS_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "fermion/operators.h"

namespace fermihedral::fermion {

/**
 * Molecular electronic structure Hamiltonian from spatial-orbital
 * integrals (chemist notation):
 *
 *   H = sum_pq h_pq sum_s  a^dag_{p s} a_{q s}
 *     + 1/2 sum_pqrs (pq|rs) sum_{s,t} a^dag_{p s} a^dag_{r t}
 *                                      a_{s t} a_{q s}
 *
 * where in the last product the annihilators are a_{s,t} (orbital s,
 * spin t) and a_{q,s} (orbital q, spin s).
 * Spin-orbital ordering: mode(p, spin) = 2 p + spin.
 */
class ElectronicIntegrals
{
  public:
    /** Zeroed integrals for `orbitals` spatial orbitals. */
    explicit ElectronicIntegrals(std::size_t orbitals);

    std::size_t orbitals() const { return numOrbitals; }

    /** One-electron integral h_pq (symmetric). */
    double &h1(std::size_t p, std::size_t q);
    double h1(std::size_t p, std::size_t q) const;

    /** Two-electron integral (pq|rs), chemist notation. */
    double &h2(std::size_t p, std::size_t q, std::size_t r,
               std::size_t s);
    double h2(std::size_t p, std::size_t q, std::size_t r,
              std::size_t s) const;

    /** Assemble the spin-orbital FermionHamiltonian (2x orbitals). */
    FermionHamiltonian toHamiltonian(double epsilon = 1e-12) const;

  private:
    std::size_t numOrbitals;
    std::vector<double> one;
    std::vector<double> two;
};

/**
 * The H2 molecule in the STO-3G basis at the equilibrium bond
 * length 0.7414 Angstrom, using the published integrals
 * (Whitfield, Biamonte & Aspuru-Guzik 2011). Four spin orbitals.
 */
ElectronicIntegrals h2Sto3gIntegrals();

/** Nuclear repulsion energy matching h2Sto3gIntegrals(), Hartree. */
double h2Sto3gNuclearRepulsion();

/**
 * Synthetic dense electronic-structure integrals for scaling
 * studies: random symmetric h_pq and 8-fold-symmetric (pq|rs),
 * deterministic in the seed. `modes` must be even (2 per orbital).
 */
FermionHamiltonian syntheticElectronicStructure(std::size_t modes,
                                                Rng &rng);

/**
 * Fermi-Hubbard model on an explicit edge list:
 *
 *   H = -t sum_{(i,j) in edges, s} (a^dag_{i s} a_{j s} + h.c.)
 *     + U sum_i n_{i up} n_{i down}
 *
 * Site/spin ordering: mode(site, spin) = 2 site + spin.
 */
FermionHamiltonian fermiHubbard(
    std::size_t sites,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>> &edges,
    double t, double u);

/** 1-D Fermi-Hubbard ring (periodic boundary), N = 2 * sites. */
FermionHamiltonian fermiHubbard1D(std::size_t sites, double t,
                                  double u);

/** 2x2 Fermi-Hubbard square lattice (periodic), 8 modes. */
FermionHamiltonian fermiHubbard2x2(double t, double u);

/**
 * Four-body SYK model over the 2N Majorana operators of `modes`
 * modes: H = sum_{i<j<k<l} g_ijkl gamma_i gamma_j gamma_k gamma_l
 * with Gaussian couplings of variance 3! J^2 / (2N)^3.
 */
FermionHamiltonian sykModel(std::size_t modes, Rng &rng,
                            double j = 1.0);

} // namespace fermihedral::fermion

#endif // FERMIHEDRAL_FERMION_MODELS_H
