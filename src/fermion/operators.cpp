#include "fermion/operators.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace fermihedral::fermion {

FermionHamiltonian::FermionHamiltonian(std::size_t modes)
    : numModes(modes)
{
    require(modes >= 1 && modes <= 32,
            "FermionHamiltonian supports 1..32 modes, got ", modes);
}

void
FermionHamiltonian::addFermionTerm(double coefficient,
                                   std::vector<FermionOp> ops)
{
    for (const FermionOp &op : ops) {
        require(op.mode < numModes, "fermion term references mode ",
                op.mode, " outside 0..", numModes - 1);
    }
    acTerms.push_back(FermionTerm{coefficient, std::move(ops)});
}

void
FermionHamiltonian::addMajoranaTerm(double coefficient,
                                    std::vector<std::uint32_t> indices)
{
    for (const std::uint32_t index : indices) {
        require(index < majoranaCount(),
                "majorana term references operator ", index,
                " outside 0..", majoranaCount() - 1);
    }
    mjTerms.push_back(MajoranaTerm{coefficient, std::move(indices)});
}

std::pair<std::uint64_t, int>
reduceMajoranaSequence(std::span<const std::uint32_t> indices)
{
    // Sign = (-1)^inversions; equal elements commute through each
    // other with no extra inversions and then cancel pairwise.
    static thread_local std::vector<std::uint32_t> work;
    work.assign(indices.begin(), indices.end());
    std::size_t inversions = 0;
    for (std::size_t i = 1; i < work.size(); ++i) {
        const std::uint32_t key = work[i];
        std::size_t j = i;
        while (j > 0 && work[j - 1] > key) {
            work[j] = work[j - 1];
            --j;
            ++inversions;
        }
        work[j] = key;
    }
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < work.size();) {
        if (i + 1 < work.size() && work[i] == work[i + 1]) {
            i += 2; // gamma^2 = I
        } else {
            mask |= std::uint64_t{1} << work[i];
            ++i;
        }
    }
    return {mask, (inversions % 2 == 0) ? 1 : -1};
}

std::vector<MajoranaMonomial>
expandFermionTerm(const FermionTerm &term)
{
    const std::size_t k = term.ops.size();
    require(k <= 16, "fermion term with more than 16 operators");
    std::vector<MajoranaMonomial> monomials;
    monomials.reserve(std::size_t{1} << k);

    std::vector<std::uint32_t> sequence(k);
    for (std::uint64_t choice = 0; choice < (std::uint64_t{1} << k);
         ++choice) {
        // Bit c of `choice` selects gamma[2j] (0) or gamma[2j+1] (1)
        // for the c-th operator in the product.
        std::complex<double> factor(term.coefficient, 0.0);
        for (std::size_t c = 0; c < k; ++c) {
            const FermionOp &op = term.ops[c];
            const bool odd = (choice >> c) & 1;
            sequence[c] = 2 * op.mode + (odd ? 1 : 0);
            factor *= 0.5;
            if (odd) {
                // a_j:     + i/2 * gamma[2j+1]
                // a^dag_j: - i/2 * gamma[2j+1]
                factor *= std::complex<double>(
                    0.0, op.creation ? -1.0 : 1.0);
            }
        }
        const auto [mask, sign] = reduceMajoranaSequence(sequence);
        monomials.push_back(
            MajoranaMonomial{mask, factor * double(sign)});
    }
    return monomials;
}

std::vector<WeightedSubset>
majoranaStructure(const FermionHamiltonian &hamiltonian)
{
    std::map<std::uint64_t, std::uint32_t> counts;
    for (const FermionTerm &term : hamiltonian.fermionTerms()) {
        for (const MajoranaMonomial &mono : expandFermionTerm(term)) {
            if (mono.mask != 0)
                ++counts[mono.mask];
        }
    }
    for (const MajoranaTerm &term : hamiltonian.majoranaTerms()) {
        const auto [mask, sign] =
            reduceMajoranaSequence(term.indices);
        (void)sign;
        if (mask != 0)
            ++counts[mask];
    }
    std::vector<WeightedSubset> result;
    result.reserve(counts.size());
    for (const auto &[mask, multiplicity] : counts)
        result.push_back(WeightedSubset{mask, multiplicity});
    return result;
}

} // namespace fermihedral::fermion
