/**
 * @file
 * Second-quantized Fermionic operators and Hamiltonians.
 *
 * A FermionHamiltonian is a sum of products of creation/annihilation
 * operators ("ac" terms) and/or direct Majorana-operator products
 * ("mj" terms, used by the SYK model) — mirroring the two input
 * formats of the original artifact.
 *
 * Majorana convention (0-indexed version of the paper's Eq. 12):
 *   gamma[2j]   = a_j + a^dag_j
 *   gamma[2j+1] = i (a^dag_j - a_j)
 * so a_j = (gamma[2j] + i gamma[2j+1]) / 2.
 *
 * Key invariants:
 *  - FermionHamiltonian is an inert container: terms are stored as
 *    given (no normal ordering, no merging); all algebra happens in
 *    the free functions below.
 *  - reduceMajoranaSequence() is canonical: the returned mask lists
 *    each surviving index once, the sign accounts exactly for the
 *    anticommutation swaps and gamma^2 = I eliminations.
 *  - expandFermionTerm() of a k-operator term yields exactly 2^k
 *    monomials before reduction, each with |coefficient| =
 *    |term.coefficient| / 2^k.
 *  - majoranaStructure() merges equal subsets, never emits the
 *    empty mask, and its multiplicities count every expanded
 *    product of the Hamiltonian — it is the exact Eq. 14 cost
 *    structure shared by the SAT objective and the annealer.
 */

#ifndef FERMIHEDRAL_FERMION_OPERATORS_H
#define FERMIHEDRAL_FERMION_OPERATORS_H

#include <complex>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace fermihedral::fermion {

/** One creation or annihilation operator on a Fermionic mode. */
struct FermionOp
{
    std::uint32_t mode;
    bool creation;
};

/** Shorthand for a creation operator a^dag_mode. */
constexpr FermionOp
create(std::uint32_t mode)
{
    return FermionOp{mode, true};
}

/** Shorthand for an annihilation operator a_mode. */
constexpr FermionOp
annihilate(std::uint32_t mode)
{
    return FermionOp{mode, false};
}

/** A weighted product of creation/annihilation operators. */
struct FermionTerm
{
    double coefficient;
    /** Applied right-to-left: ops[0] acts last (leftmost factor). */
    std::vector<FermionOp> ops;
};

/** A weighted product of Majorana operators (SYK-style term). */
struct MajoranaTerm
{
    double coefficient;
    /** Majorana indices, leftmost factor first. */
    std::vector<std::uint32_t> indices;
};

/**
 * A reduced Majorana monomial: a subset of the 2N Majorana
 * operators (bit i set means gamma_i participates, in increasing
 * index order) with a complex prefactor.
 */
struct MajoranaMonomial
{
    std::uint64_t mask;
    std::complex<double> coefficient;
};

/** A Majorana-operator subset with its occurrence count (Eq. 14). */
struct WeightedSubset
{
    std::uint64_t mask;
    std::uint32_t multiplicity;
};

/** A second-quantized Hamiltonian on a fixed number of modes. */
class FermionHamiltonian
{
  public:
    /** Empty Hamiltonian on `modes` Fermionic modes. */
    explicit FermionHamiltonian(std::size_t modes);

    std::size_t modes() const { return numModes; }

    /** Number of Majorana operators (2 * modes). */
    std::size_t majoranaCount() const { return 2 * numModes; }

    /** Append coefficient * ops[0] * ops[1] * ... */
    void addFermionTerm(double coefficient,
                        std::vector<FermionOp> ops);

    /** Append coefficient * gamma_{i0} * gamma_{i1} * ... */
    void addMajoranaTerm(double coefficient,
                         std::vector<std::uint32_t> indices);

    const std::vector<FermionTerm> &fermionTerms() const
    {
        return acTerms;
    }
    const std::vector<MajoranaTerm> &majoranaTerms() const
    {
        return mjTerms;
    }

    /** Total number of stored terms of both kinds. */
    std::size_t termCount() const
    {
        return acTerms.size() + mjTerms.size();
    }

  private:
    std::size_t numModes;
    std::vector<FermionTerm> acTerms;
    std::vector<MajoranaTerm> mjTerms;
};

/**
 * Reduce an ordered Majorana index sequence to canonical form using
 * gamma_a gamma_b = -gamma_b gamma_a (a != b) and gamma_a^2 = I.
 *
 * @return The index subset mask and the sign (+1 or -1).
 */
std::pair<std::uint64_t, int>
reduceMajoranaSequence(std::span<const std::uint32_t> indices);

/**
 * Expand one fermionic term into its 2^k reduced Majorana monomials
 * by substituting a_j and a^dag_j with their Majorana combinations.
 */
std::vector<MajoranaMonomial> expandFermionTerm(
    const FermionTerm &term);

/**
 * The Majorana-product index structure of the whole Hamiltonian:
 * every expanded product contributes its (reduced) index subset,
 * and equal subsets are merged with a multiplicity count. This is
 * the cost structure consumed by the Hamiltonian-dependent weight
 * constraint (Section 3.7) and the annealing energy (Algorithm 2).
 *
 * The empty subset (identity products) is omitted: it never
 * contributes Pauli weight.
 */
std::vector<WeightedSubset> majoranaStructure(
    const FermionHamiltonian &hamiltonian);

} // namespace fermihedral::fermion

#endif // FERMIHEDRAL_FERMION_OPERATORS_H
