#include "hw/routed_cost.h"

#include <bit>
#include <numeric>

#include "common/logging.h"

namespace fermihedral::hw {

namespace {

/** Support qubits (non-identity positions) of a string. */
std::vector<std::uint32_t>
support(const pauli::PauliString &string)
{
    std::vector<std::uint32_t> qubits;
    std::uint64_t mask = string.xMask() | string.zMask();
    while (mask) {
        qubits.push_back(static_cast<std::uint32_t>(
            std::countr_zero(mask)));
        mask &= mask - 1;
    }
    return qubits;
}

/** Cost of one ladder link spanning `hops` topology edges. */
std::size_t
linkCost(std::uint32_t hops)
{
    return 2 + 3 * static_cast<std::size_t>(hops - 1);
}

} // namespace

std::size_t
routedStringCost(const pauli::PauliString &string,
                 const Topology &topology)
{
    const auto qubits = support(string);
    if (qubits.size() <= 1)
        return 0;
    require(string.numQubits() <= topology.numQubits(),
            "routedStringCost: string on ", string.numQubits(),
            " qubits exceeds the ", topology.numQubits(),
            "-qubit topology");

    // Greedy nearest-neighbour chain from the lowest support
    // qubit; ties resolve to the lowest index, so the estimate is
    // deterministic.
    std::vector<bool> visited(qubits.size(), false);
    visited[0] = true;
    std::uint32_t at = qubits[0];
    std::size_t cost = 0;
    for (std::size_t step = 1; step < qubits.size(); ++step) {
        std::size_t best = SIZE_MAX;
        std::uint32_t best_d = Topology::kUnreachable;
        for (std::size_t i = 0; i < qubits.size(); ++i) {
            if (visited[i])
                continue;
            const std::uint32_t d =
                topology.distance(at, qubits[i]);
            if (d < best_d) {
                best_d = d;
                best = i;
            }
        }
        require(best_d != Topology::kUnreachable,
                "routedStringCost on a disconnected topology");
        visited[best] = true;
        at = qubits[best];
        cost += linkCost(best_d);
    }
    return cost;
}

std::size_t
routedCostEstimate(const enc::FermionEncoding &encoding,
                   const Topology &topology)
{
    std::size_t total = 0;
    for (const auto &majorana : encoding.majoranas)
        total += routedStringCost(majorana, topology);
    return total;
}

std::size_t
routedCostEstimate(const fermion::FermionHamiltonian &hamiltonian,
                   const enc::FermionEncoding &encoding,
                   const Topology &topology)
{
    std::size_t total = 0;
    for (const auto &subset :
         fermion::majoranaStructure(hamiltonian))
        total += subset.multiplicity *
                 routedStringCost(
                     enc::majoranaProduct(encoding, subset.mask),
                     topology);
    return total;
}

pauli::PauliString
permuteQubits(const pauli::PauliString &string,
              const std::vector<std::uint32_t> &permutation)
{
    require(permutation.size() >= string.numQubits(),
            "permuteQubits: permutation narrower than the string");
    std::uint64_t x = 0, z = 0;
    for (std::size_t q = 0; q < string.numQubits(); ++q) {
        if ((string.xMask() >> q) & 1)
            x |= std::uint64_t(1) << permutation[q];
        if ((string.zMask() >> q) & 1)
            z |= std::uint64_t(1) << permutation[q];
    }
    return pauli::PauliString::fromMasks(string.numQubits(), x, z,
                                         string.phaseExp());
}

enc::FermionEncoding
optimizePlacement(const enc::FermionEncoding &encoding,
                  const Topology &topology,
                  const fermion::FermionHamiltonian *hamiltonian)
{
    const std::size_t qubits = encoding.numQubits();
    require(qubits <= topology.numQubits(),
            "optimizePlacement: encoding on ", qubits,
            " qubits exceeds the ", topology.numQubits(),
            "-qubit topology");

    // Score strings with multiplicities. Relabelling the encoding's
    // qubits relabels every Majorana product identically, so these
    // stay valid as the permutation evolves.
    std::vector<std::pair<pauli::PauliString, std::size_t>> scored;
    if (hamiltonian) {
        for (const auto &subset :
             fermion::majoranaStructure(*hamiltonian))
            scored.emplace_back(
                enc::majoranaProduct(encoding, subset.mask),
                subset.multiplicity);
    } else {
        for (const auto &majorana : encoding.majoranas)
            scored.emplace_back(majorana, 1);
    }

    std::vector<std::uint32_t> perm(qubits);
    std::iota(perm.begin(), perm.end(), 0);
    const auto cost = [&](const std::vector<std::uint32_t> &p) {
        std::size_t total = 0;
        for (const auto &[string, multiplicity] : scored)
            total += multiplicity *
                     routedStringCost(permuteQubits(string, p),
                                      topology);
        return total;
    };

    // Best-improvement transposition descent: O(q^2) candidate
    // swaps per pass, strictly decreasing, so it terminates.
    std::size_t current = cost(perm);
    while (true) {
        std::size_t best_cost = current;
        std::size_t best_i = 0, best_j = 0;
        for (std::size_t i = 0; i < qubits; ++i) {
            for (std::size_t j = i + 1; j < qubits; ++j) {
                std::swap(perm[i], perm[j]);
                const std::size_t candidate = cost(perm);
                std::swap(perm[i], perm[j]);
                if (candidate < best_cost) {
                    best_cost = candidate;
                    best_i = i;
                    best_j = j;
                }
            }
        }
        if (best_cost == current)
            break;
        std::swap(perm[best_i], perm[best_j]);
        current = best_cost;
    }

    enc::FermionEncoding placed;
    placed.modes = encoding.modes;
    placed.majoranas.reserve(encoding.majoranas.size());
    for (const auto &majorana : encoding.majoranas)
        placed.majoranas.push_back(permuteQubits(majorana, perm));
    return placed;
}

} // namespace fermihedral::hw
