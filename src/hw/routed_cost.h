/**
 * @file
 * Fast routed-cost estimation: the connectivity-aware objective the
 * api's routed-cost strategies minimise. Rather than routing a full
 * circuit per candidate (hw/router.h is for final measurement, not
 * inner loops), the estimator charges each Pauli string the
 * two-qubit cost of a CNOT ladder chained greedily through its
 * support under the topology's distance metric: adjacent links cost
 * 2 CNOTs (the Fig. 3 up/down ladder), and every extra hop costs a
 * SWAP's 3 CNOTs.
 *
 * Key invariants:
 *  - routedStringCost() depends only on the string's support set
 *    and the distance matrix — never on phases or rotation angles —
 *    and is 0 for strings of weight <= 1.
 *  - On an all-to-all topology the estimate is exactly
 *    2 * (weight - 1) per string, so the routed objective collapses
 *    to a monotone function of Pauli weight and the strategies
 *    reproduce the unconstrained ranking.
 *  - The Hamiltonian overload is a pure function of the Eq. 14
 *    Majorana subset structure (masks + multiplicities), mirroring
 *    enc::hamiltonianPauliWeight — which is what lets the service
 *    cache key keep hashing structure only.
 *  - optimizePlacement() permutes qubit labels only: the result is
 *    always a valid encoding (anticommutativity, independence and
 *    vacuum preservation are permutation-invariant) and its
 *    estimate is <= the input's.
 */

#ifndef FERMIHEDRAL_HW_ROUTED_COST_H
#define FERMIHEDRAL_HW_ROUTED_COST_H

#include "encodings/encoding.h"
#include "fermion/operators.h"
#include "hw/topology.h"
#include "pauli/pauli_string.h"

namespace fermihedral::hw {

/**
 * Estimated two-qubit gate cost of one exp(i theta P) block for
 * `string` on `topology`: a greedy nearest-neighbour chain over the
 * support, 2 CNOTs per link plus 3 per extra hop.
 */
std::size_t routedStringCost(const pauli::PauliString &string,
                             const Topology &topology);

/** Sum of routedStringCost over the encoding's Majorana strings. */
std::size_t routedCostEstimate(const enc::FermionEncoding &encoding,
                               const Topology &topology);

/**
 * Hamiltonian-dependent estimate: the Eq. 14 sum with
 * routedStringCost in place of Pauli weight (each Majorana subset
 * product weighted by its multiplicity).
 */
std::size_t routedCostEstimate(
    const fermion::FermionHamiltonian &hamiltonian,
    const enc::FermionEncoding &encoding, const Topology &topology);

/** `string` with qubit q relabelled to permutation[q]. */
pauli::PauliString permuteQubits(
    const pauli::PauliString &string,
    const std::vector<std::uint32_t> &permutation);

/**
 * Greedy qubit-relabelling descent: repeatedly applies the label
 * transposition that most reduces the routed-cost estimate (under
 * the Hamiltonian structure when one is given) until none helps.
 * The topology must be at least as wide as the encoding (fatal
 * otherwise). Deterministic; never returns a worse estimate.
 */
enc::FermionEncoding optimizePlacement(
    const enc::FermionEncoding &encoding, const Topology &topology,
    const fermion::FermionHamiltonian *hamiltonian = nullptr);

} // namespace fermihedral::hw

#endif // FERMIHEDRAL_HW_ROUTED_COST_H
