#include "hw/router.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "common/telemetry.h"

namespace fermihedral::hw {

namespace {

/** Counter handles resolved once (same idiom as ServiceMetrics). */
struct RouterMetrics
{
    telemetry::Counter &swaps;
    telemetry::Counter &depth;

    static const RouterMetrics &
    get()
    {
        auto &registry = telemetry::MetricsRegistry::global();
        static const RouterMetrics metrics{
            registry.counter("hw.routed.swaps"),
            registry.counter("hw.routed.depth"),
        };
        return metrics;
    }
};

/**
 * The mutable routing state: wire w sits on physical qubit
 * layout[w]; pos is the inverse permutation. Every physical qubit
 * always holds exactly one wire (wires beyond the logical width
 * are idle ancillas), so SWAPs are total permutation updates.
 */
struct Layout
{
    std::vector<std::uint32_t> layout;
    std::vector<std::uint32_t> pos;

    explicit Layout(std::size_t qubits)
        : layout(qubits), pos(qubits)
    {
        std::iota(layout.begin(), layout.end(), 0);
        std::iota(pos.begin(), pos.end(), 0);
    }

    void
    swapPhysical(std::uint32_t a, std::uint32_t b)
    {
        const std::uint32_t wire_a = pos[a];
        const std::uint32_t wire_b = pos[b];
        std::swap(pos[a], pos[b]);
        layout[wire_a] = b;
        layout[wire_b] = a;
    }
};

/**
 * Lookahead score of a candidate placement: the current gate's
 * endpoint distance plus geometrically-decaying distances of the
 * next few CNOTs. Scaled integers keep the comparison exact (and
 * therefore deterministic across platforms).
 */
std::uint64_t
placementScore(const Layout &state, const Topology &topology,
               const std::vector<const circuit::Gate *> &upcoming,
               std::size_t lookahead)
{
    // decay 1/2 per step, fixed point with 16 fractional bits.
    std::uint64_t score = 0;
    std::uint64_t weight = std::uint64_t(1) << 16;
    const std::size_t horizon =
        std::min(lookahead + 1, upcoming.size());
    for (std::size_t i = 0; i < horizon; ++i) {
        const auto &gate = *upcoming[i];
        const std::uint32_t d = topology.distance(
            state.layout[gate.qubit0], state.layout[gate.qubit1]);
        score += weight * d;
        weight >>= 1;
        if (weight == 0)
            break;
    }
    return score;
}

} // namespace

RoutedCircuit
routeCircuit(const circuit::Circuit &logical,
             const Topology &topology, const RouterOptions &options)
{
    const std::size_t qubits = topology.numQubits();
    require(topology.connected(),
            "routeCircuit needs a connected topology");
    require(logical.numQubits() <= qubits, "circuit has ",
            logical.numQubits(), " qubits but the topology only ",
            qubits);

    telemetry::TraceSpan span("hw.route");
    span.arg("qubits", std::uint64_t(qubits));
    span.arg("gates", std::uint64_t(logical.size()));

    RoutedCircuit routed;
    routed.physical = circuit::Circuit(qubits);
    Layout state(qubits);
    routed.initialLayout = state.layout;
    Rng rng(options.seed);

    // Upcoming CNOTs per gate position, for the lookahead window.
    const auto &gates = logical.gates();
    std::vector<const circuit::Gate *> upcoming;
    std::vector<std::size_t> next_cnot(gates.size() + 1);
    next_cnot[gates.size()] = gates.size();
    for (std::size_t i = gates.size(); i-- > 0;)
        next_cnot[i] = isTwoQubit(gates[i].kind) ? i
                                                 : next_cnot[i + 1];

    const auto emitSwap = [&](std::uint32_t a, std::uint32_t b) {
        routed.physical.addCnot(a, b);
        routed.physical.addCnot(b, a);
        routed.physical.addCnot(a, b);
        state.swapPhysical(a, b);
        ++routed.stats.swaps;
    };

    for (std::size_t i = 0; i < gates.size(); ++i) {
        const auto &gate = gates[i];
        if (!isTwoQubit(gate.kind)) {
            routed.physical.add(gate.kind,
                                state.layout[gate.qubit0],
                                gate.angle);
            continue;
        }

        // Collect the lookahead window starting at this CNOT.
        upcoming.clear();
        for (std::size_t j = i;
             j < gates.size() &&
             upcoming.size() <= options.lookahead;
             j = next_cnot[j + 1])
            upcoming.push_back(&gates[j]);

        while (true) {
            const std::uint32_t pc = state.layout[gate.qubit0];
            const std::uint32_t pt = state.layout[gate.qubit1];
            const std::uint32_t d = topology.distance(pc, pt);
            if (d <= 1)
                break;

            // Candidates: swaps on an edge touching either
            // endpoint that strictly shorten this CNOT. At least
            // one always exists (the next hop of a shortest path),
            // which is what bounds the loop.
            struct Candidate
            {
                std::uint32_t a, b;
                std::uint64_t score;
            };
            std::vector<Candidate> best;
            std::uint64_t best_score = UINT64_MAX;
            const auto consider = [&](std::uint32_t from,
                                      std::uint32_t to) {
                state.swapPhysical(from, to);
                const std::uint32_t d_new = topology.distance(
                    state.layout[gate.qubit0],
                    state.layout[gate.qubit1]);
                if (d_new < d) {
                    const std::uint64_t score = placementScore(
                        state, topology, upcoming,
                        options.lookahead);
                    if (score < best_score) {
                        best.clear();
                        best_score = score;
                    }
                    if (score == best_score)
                        best.push_back({from, to, score});
                }
                state.swapPhysical(from, to); // undo
            };
            for (const std::uint32_t nb : topology.neighbors(pc))
                consider(pc, nb);
            for (const std::uint32_t nb : topology.neighbors(pt))
                if (nb != pc)
                    consider(pt, nb);
            require(!best.empty(),
                    "router found no distance-decreasing swap");
            const Candidate &chosen =
                best.size() == 1
                    ? best.front()
                    : best[rng.nextBelow(best.size())];
            emitSwap(chosen.a, chosen.b);
        }
        routed.physical.addCnot(state.layout[gate.qubit0],
                                state.layout[gate.qubit1]);
    }

    routed.finalLayout = state.layout;
    const auto costs = routed.physical.costs();
    routed.stats.twoQubitGates = costs.cnotGates;
    routed.stats.singleQubitGates = costs.singleQubitGates;
    routed.stats.depth = costs.depth;

    span.arg("swaps", std::uint64_t(routed.stats.swaps));
    span.arg("depth", std::uint64_t(routed.stats.depth));
    const auto &metrics = RouterMetrics::get();
    metrics.swaps.add(routed.stats.swaps);
    metrics.depth.add(routed.stats.depth);
    return routed;
}

} // namespace fermihedral::hw
