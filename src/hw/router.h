/**
 * @file
 * Deterministic SWAP routing: lower a logical circuit::Circuit onto
 * a hw::Topology so that every CNOT acts on an edge. The pass walks
 * the gate list in order, tracks the wire->physical-qubit layout,
 * and when a CNOT's endpoints are not adjacent inserts SWAPs
 * (3 CNOTs each) chosen by a greedy distance-decreasing rule with
 * a lookahead score over the upcoming two-qubit gates.
 *
 * Key invariants:
 *  - The routed circuit implements the same unitary as the input up
 *    to the final wire permutation: reading physical qubit
 *    finalLayout[w] at the end is reading logical wire w (the
 *    router fuzz test proves this against the statevector
 *    simulator).
 *  - Every CNOT in the routed circuit (including SWAP expansions)
 *    acts on a topology edge.
 *  - Routing is deterministic: equal (circuit, topology, options)
 *    always produce identical gate lists; `seed` only steers
 *    tie-breaks between equally-scored SWAP candidates.
 *  - Every inserted SWAP strictly decreases the current CNOT's
 *    endpoint distance, so routing always terminates and
 *    stats.twoQubitGates == input CNOTs + 3 * stats.swaps.
 */

#ifndef FERMIHEDRAL_HW_ROUTER_H
#define FERMIHEDRAL_HW_ROUTER_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "hw/topology.h"

namespace fermihedral::hw {

/** Tuning knobs for routeCircuit. */
struct RouterOptions
{
    /** Upcoming two-qubit gates scored when ranking a SWAP. */
    std::size_t lookahead = 8;

    /** Tie-break seed between equally-scored SWAP candidates. */
    std::uint64_t seed = 0;
};

/** Cost metrics of a routed circuit. */
struct RoutedStats
{
    /** SWAPs inserted (each expands to 3 CNOTs). */
    std::size_t swaps = 0;
    /** CNOTs in the routed circuit (originals + SWAP expansion). */
    std::size_t twoQubitGates = 0;
    std::size_t singleQubitGates = 0;
    /** ASAP depth of the routed circuit. */
    std::size_t depth = 0;
};

/** The routed circuit plus the wire permutation it ends in. */
struct RoutedCircuit
{
    /** Gate list over topology.numQubits() physical qubits. */
    circuit::Circuit physical;

    /**
     * initialLayout[w] / finalLayout[w]: the physical qubit holding
     * wire w before / after the circuit. Wires beyond the logical
     * width are idle ancillas the SWAPs may still move. The initial
     * layout is the identity.
     */
    std::vector<std::uint32_t> initialLayout;
    std::vector<std::uint32_t> finalLayout;

    RoutedStats stats;
};

/**
 * Route `logical` onto `topology`. The topology must be connected
 * and at least as wide as the circuit (fatal otherwise). Emits the
 * hw.route trace span and moves the hw.routed.* counters.
 */
RoutedCircuit routeCircuit(const circuit::Circuit &logical,
                           const Topology &topology,
                           const RouterOptions &options = {});

} // namespace fermihedral::hw

#endif // FERMIHEDRAL_HW_ROUTER_H
