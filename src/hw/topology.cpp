#include "hw/topology.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "common/logging.h"
#include "common/suggest.h"

namespace fermihedral::hw {

namespace {

constexpr const char *kTopologyHeader = "fermihedral-topology v1";

/** Strict decimal parse; nullopt on anything else. */
std::optional<std::size_t>
parseCount(std::string_view text)
{
    if (text.empty() || text.size() > 9)
        return std::nullopt;
    std::size_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return std::nullopt;
        value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    return value;
}

void
canonicalize(
    std::vector<std::pair<std::uint32_t, std::uint32_t>> &edges)
{
    for (auto &[a, b] : edges)
        if (a > b)
            std::swap(a, b);
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()),
                edges.end());
}

bool
specFail(std::string *error, std::string message)
{
    if (error)
        *error = std::move(message);
    return false;
}

} // namespace

void
Topology::computeDistances()
{
    adjacency.assign(n, {});
    for (const auto &[a, b] : edgeList) {
        adjacency[a].push_back(b);
        adjacency[b].push_back(a);
    }
    for (auto &list : adjacency)
        std::sort(list.begin(), list.end());

    dist.assign(n * n, kUnreachable);
    std::deque<std::uint32_t> frontier;
    for (std::uint32_t source = 0; source < n; ++source) {
        std::uint32_t *row = dist.data() + source * n;
        row[source] = 0;
        frontier.clear();
        frontier.push_back(source);
        while (!frontier.empty()) {
            const std::uint32_t at = frontier.front();
            frontier.pop_front();
            for (const std::uint32_t next : adjacency[at]) {
                if (row[next] != kUnreachable)
                    continue;
                row[next] = row[at] + 1;
                frontier.push_back(next);
            }
        }
    }
}

Topology
Topology::fromEdges(
    std::size_t qubits,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges,
    std::string name)
{
    require(qubits >= 1, "Topology needs at least one qubit");
    require(qubits <= kMaxQubits, "Topology exceeds the ",
            kMaxQubits, "-qubit ceiling");
    for (const auto &[a, b] : edges) {
        require(a < qubits && b < qubits, "Topology edge (", a,
                ", ", b, ") out of range for ", qubits, " qubits");
        require(a != b, "Topology self loop on qubit ", a);
    }
    canonicalize(edges);
    Topology topology;
    topology.n = qubits;
    topology.edgeList = std::move(edges);
    topology.computeDistances();
    topology.specName =
        name.empty() ? topology.edgesSpec() : std::move(name);
    return topology;
}

Topology
Topology::linear(std::size_t n)
{
    require(n >= 1, "linear topology needs at least one qubit");
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    for (std::uint32_t i = 0; i + 1 < n; ++i)
        edges.push_back({i, i + 1});
    return fromEdges(n, std::move(edges),
                     "linear:" + std::to_string(n));
}

Topology
Topology::grid(std::size_t width, std::size_t height)
{
    require(width >= 1 && height >= 1,
            "grid topology needs positive dimensions");
    const auto at = [width](std::size_t x, std::size_t y) {
        return static_cast<std::uint32_t>(y * width + x);
    };
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
            if (x + 1 < width)
                edges.push_back({at(x, y), at(x + 1, y)});
            if (y + 1 < height)
                edges.push_back({at(x, y), at(x, y + 1)});
        }
    }
    return fromEdges(width * height, std::move(edges),
                     "grid:" + std::to_string(width) + "x" +
                         std::to_string(height));
}

Topology
Topology::heavyHex(std::size_t cells)
{
    require(cells >= 1, "heavy-hex topology needs >= 1 cell");
    // A chain of `cells` hexagons is two parallel rails with a
    // vertical edge at every other rail position; subdividing
    // every edge interleaves bridge qubits into the rails (rail
    // length 4c+1) and puts one bridge on each vertical (c+1 of
    // them): 9c+3 qubits total, heavyHex(1) = the 12-qubit heavy
    // hexagon.
    const std::size_t rail = 4 * cells + 1;
    const auto top = [](std::size_t i) {
        return static_cast<std::uint32_t>(i);
    };
    const auto bottom = [rail](std::size_t i) {
        return static_cast<std::uint32_t>(rail + i);
    };
    const auto bridge = [rail](std::size_t j) {
        return static_cast<std::uint32_t>(2 * rail + j);
    };
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    for (std::size_t i = 0; i + 1 < rail; ++i) {
        edges.push_back({top(i), top(i + 1)});
        edges.push_back({bottom(i), bottom(i + 1)});
    }
    for (std::size_t j = 0; j <= cells; ++j) {
        edges.push_back({top(4 * j), bridge(j)});
        edges.push_back({bridge(j), bottom(4 * j)});
    }
    return fromEdges(2 * rail + cells + 1, std::move(edges),
                     "heavy-hex:" + std::to_string(cells));
}

Topology
Topology::allToAll(std::size_t n)
{
    require(n >= 1, "all-to-all topology needs at least one qubit");
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    for (std::uint32_t a = 0; a < n; ++a)
        for (std::uint32_t b = a + 1; b < n; ++b)
            edges.push_back({a, b});
    return fromEdges(n, std::move(edges),
                     "all-to-all:" + std::to_string(n));
}

const std::vector<std::uint32_t> &
Topology::neighbors(std::uint32_t qubit) const
{
    require(qubit < n, "neighbors(", qubit, ") out of range");
    return adjacency[qubit];
}

bool
Topology::hasEdge(std::uint32_t a, std::uint32_t b) const
{
    return a < n && b < n && a != b && distance(a, b) == 1;
}

std::uint32_t
Topology::distance(std::uint32_t a, std::uint32_t b) const
{
    require(a < n && b < n, "distance(", a, ", ", b,
            ") out of range for ", n, " qubits");
    return dist[static_cast<std::size_t>(a) * n + b];
}

bool
Topology::connected() const
{
    if (n == 0)
        return false;
    for (std::uint32_t q = 0; q < n; ++q)
        if (dist[q] == kUnreachable)
            return false;
    return true;
}

std::uint32_t
Topology::diameter() const
{
    std::uint32_t widest = 0;
    for (const std::uint32_t d : dist)
        if (d != kUnreachable)
            widest = std::max(widest, d);
    return widest;
}

std::string
Topology::edgesSpec() const
{
    std::ostringstream out;
    out << "edges:" << n << ':';
    bool first = true;
    for (const auto &[a, b] : edgeList) {
        out << (first ? "" : ",") << a << '-' << b;
        first = false;
    }
    return out.str();
}

std::optional<Topology>
Topology::tryParseSpec(std::string_view spec, std::string *error)
{
    const auto reject = [&](std::string_view detail) {
        specFail(error, "malformed topology spec '" +
                            std::string(spec) + "': " +
                            std::string(detail));
        return std::nullopt;
    };

    const std::size_t colon = spec.find(':');
    const std::string_view family = spec.substr(0, colon);
    const std::string_view args =
        colon == std::string_view::npos ? std::string_view{}
                                        : spec.substr(colon + 1);

    const auto checkQubits = [&](std::size_t qubits) {
        return qubits >= 1 && qubits <= kMaxQubits;
    };

    if (family == "linear" || family == "all-to-all") {
        const auto count = parseCount(args);
        if (!count || !checkQubits(*count))
            return reject("expected " + std::string(family) +
                          ":<qubits 1.." +
                          std::to_string(kMaxQubits) + ">");
        return family == "linear" ? linear(*count)
                                  : allToAll(*count);
    }
    if (family == "grid") {
        const std::size_t x = args.find('x');
        if (x == std::string_view::npos)
            return reject("expected grid:<width>x<height>");
        const auto width = parseCount(args.substr(0, x));
        const auto height = parseCount(args.substr(x + 1));
        if (!width || !height || *width == 0 || *height == 0 ||
            !checkQubits(*width * *height))
            return reject("expected grid:<width>x<height>");
        return grid(*width, *height);
    }
    if (family == "heavy-hex") {
        const auto cells = parseCount(args);
        if (!cells || *cells == 0 ||
            !checkQubits(9 * *cells + 3))
            return reject("expected heavy-hex:<cells >= 1>");
        return heavyHex(*cells);
    }
    if (family == "edges") {
        const std::size_t colon2 = args.find(':');
        const auto qubits = parseCount(args.substr(0, colon2));
        if (colon2 == std::string_view::npos || !qubits ||
            !checkQubits(*qubits))
            return reject("expected edges:<qubits>:a-b,c-d,...");
        std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
        std::string_view list = args.substr(colon2 + 1);
        while (!list.empty()) {
            const std::size_t comma = list.find(',');
            const std::string_view item = list.substr(0, comma);
            list = comma == std::string_view::npos
                       ? std::string_view{}
                       : list.substr(comma + 1);
            const std::size_t dash = item.find('-');
            if (dash == std::string_view::npos)
                return reject("expected edge '<a>-<b>', got '" +
                              std::string(item) + "'");
            const auto a = parseCount(item.substr(0, dash));
            const auto b = parseCount(item.substr(dash + 1));
            if (!a || !b || *a >= *qubits || *b >= *qubits ||
                *a == *b)
                return reject("bad edge '" + std::string(item) +
                              "' for " + std::to_string(*qubits) +
                              " qubits");
            edges.push_back({static_cast<std::uint32_t>(*a),
                             static_cast<std::uint32_t>(*b)});
        }
        return fromEdges(*qubits, std::move(edges));
    }

    static const std::vector<std::string> families = {
        "linear", "grid", "heavy-hex", "all-to-all", "edges"};
    if (const auto nearest = suggestNearest(family, families))
        return reject("unknown family '" + std::string(family) +
                      "' (did you mean '" + *nearest + "'?)");
    return reject("unknown family '" + std::string(family) +
                  "' (linear, grid, heavy-hex, all-to-all, edges)");
}

Topology
Topology::parseSpec(std::string_view spec)
{
    std::string error;
    auto topology = tryParseSpec(spec, &error);
    if (!topology)
        fatal(error);
    return *std::move(topology);
}

std::string
Topology::serialize() const
{
    std::ostringstream out;
    out << kTopologyHeader << '\n'
        << "qubits " << n << '\n'
        << "edges " << edgeList.size() << '\n';
    for (const auto &[a, b] : edgeList)
        out << a << ' ' << b << '\n';
    return out.str();
}

std::optional<Topology>
Topology::tryParse(std::string_view text)
{
    // A hand-rolled line cursor (same silent-failure contract as
    // api/serialize.cpp's Reader): corrupted bytes reject, never
    // throw.
    std::size_t pos = 0;
    const auto takeLine = [&]() -> std::optional<std::string_view> {
        if (pos >= text.size())
            return std::nullopt;
        const std::size_t eol = text.find('\n', pos);
        const std::size_t end =
            eol == std::string_view::npos ? text.size() : eol;
        const std::string_view line = text.substr(pos, end - pos);
        pos = eol == std::string_view::npos ? text.size() : eol + 1;
        return line;
    };
    const auto takeField =
        [&](std::string_view key) -> std::optional<std::size_t> {
        const auto line = takeLine();
        if (!line || line->size() < key.size() + 2 ||
            line->substr(0, key.size()) != key ||
            (*line)[key.size()] != ' ')
            return std::nullopt;
        return parseCount(line->substr(key.size() + 1));
    };

    if (takeLine() != std::optional<std::string_view>(
                          kTopologyHeader))
        return std::nullopt;
    const auto qubits = takeField("qubits");
    const auto count = takeField("edges");
    if (!qubits || !count || *qubits < 1 || *qubits > kMaxQubits)
        return std::nullopt;

    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(*count);
    for (std::size_t i = 0; i < *count; ++i) {
        const auto line = takeLine();
        if (!line)
            return std::nullopt;
        const std::size_t space = line->find(' ');
        if (space == std::string_view::npos)
            return std::nullopt;
        const auto a = parseCount(line->substr(0, space));
        const auto b = parseCount(line->substr(space + 1));
        if (!a || !b || *a >= *qubits || *b >= *qubits || *a == *b)
            return std::nullopt;
        edges.push_back({static_cast<std::uint32_t>(*a),
                         static_cast<std::uint32_t>(*b)});
    }
    if (pos < text.size())
        return std::nullopt;
    // Reject rather than collapse duplicates: a doubled line in a
    // stored file means the file is not what serialize() wrote.
    auto sorted = edges;
    canonicalize(sorted);
    if (sorted.size() != edges.size())
        return std::nullopt;
    return fromEdges(*qubits, std::move(edges));
}

Topology
Topology::parse(std::string_view text)
{
    auto topology = tryParse(text);
    if (!topology)
        fatal("malformed serialized topology (expected the '",
              kTopologyHeader, "' format)");
    return *std::move(topology);
}

} // namespace fermihedral::hw
