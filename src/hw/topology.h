/**
 * @file
 * Hardware qubit-connectivity topologies: the value type the
 * hardware-aware layer (hw/router.h, hw/routed_cost.h and the
 * api's routed-cost objective) shares. A Topology is an undirected
 * simple graph over physical qubits with an all-pairs shortest-path
 * distance matrix precomputed at construction, so routing and cost
 * estimation never re-run BFS in their inner loops.
 *
 * Construction surfaces:
 *  - named builders: linear(n), grid(w, h), heavyHex(cells),
 *    allToAll(n) and the general fromEdges();
 *  - one-line specs ("grid:2x4", "heavy-hex:2", "linear:8",
 *    "all-to-all:6", "edges:5:0-1,1-2,...") — the form that rides
 *    CLI flags and the daemon wire format;
 *  - an edge-list text document (serialize()/tryParse()) for
 *    --topology-file.
 *
 * Key invariants:
 *  - edges() is canonical: every pair (a, b) has a < b, the list is
 *    sorted and duplicate-free, no self loops, and every endpoint
 *    is < numQubits(). Two topologies with equal qubit counts and
 *    equal edges() compare equal regardless of how they were built.
 *  - distance(a, b) is the exact BFS hop count (kUnreachable when
 *    disconnected), symmetric, zero exactly on the diagonal, and 1
 *    exactly on edges.
 *  - tryParse()/tryParseSpec() reject malformed input with a
 *    diagnostic instead of crashing — they guard peer bytes and
 *    operator typos; the builders fatal on programmer error.
 *  - spec() round-trips: tryParseSpec(t.spec()) reproduces an equal
 *    topology for every constructible t, which is what lets a spec
 *    string stand in for the full graph on the wire and in cache
 *    keys.
 */

#ifndef FERMIHEDRAL_HW_TOPOLOGY_H
#define FERMIHEDRAL_HW_TOPOLOGY_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fermihedral::hw {

/** An undirected physical-qubit connectivity graph. */
class Topology
{
  public:
    /** Distance value reported between disconnected qubits. */
    static constexpr std::uint32_t kUnreachable = UINT32_MAX;

    /** Qubit-count ceiling (the distance matrix is dense). */
    static constexpr std::size_t kMaxQubits = 1024;

    /** Empty topology (0 qubits); usable only as a placeholder. */
    Topology() = default;

    // --- named builders (fatal on invalid parameters) -----------
    /** Path 0-1-...-(n-1). */
    static Topology linear(std::size_t n);

    /** width x height lattice, qubit index = y * width + x. */
    static Topology grid(std::size_t width, std::size_t height);

    /**
     * IBM-style heavy-hex chain: `cells` hexagons in a row sharing
     * vertical edges, then every edge subdivided by a bridge qubit.
     * heavyHex(1) is the 12-qubit heavy hexagon; each further cell
     * adds 9 qubits. Layout: top rail (indices 0..4c), bottom rail
     * (4c+1..8c+1), then the c+1 vertical bridge qubits.
     */
    static Topology heavyHex(std::size_t cells);

    /** Complete graph on n qubits (the all-to-all baseline). */
    static Topology allToAll(std::size_t n);

    /**
     * General constructor from an edge list. Fatal on out-of-range
     * endpoints or self loops; duplicate edges collapse. `name`
     * becomes spec() when non-empty.
     */
    static Topology fromEdges(
        std::size_t qubits,
        std::vector<std::pair<std::uint32_t, std::uint32_t>> edges,
        std::string name = "");

    // --- one-line specs -----------------------------------------
    /**
     * Parse "family:args" ("linear:8", "grid:2x4", "heavy-hex:2",
     * "all-to-all:6", "edges:<qubits>:a-b,c-d,..."). On failure
     * returns nullopt and, when `error` is non-null, a one-line
     * diagnostic — unknown families get a did-you-mean suggestion.
     */
    static std::optional<Topology> tryParseSpec(
        std::string_view spec, std::string *error = nullptr);

    /** tryParseSpec with failures as fatal diagnostics. */
    static Topology parseSpec(std::string_view spec);

    /**
     * The one-line spec this topology round-trips through: the
     * builder spec when built by name, the "edges:..." form
     * otherwise.
     */
    const std::string &spec() const { return specName; }

    /** The structural "edges:<qubits>:a-b,..." form (name-free). */
    std::string edgesSpec() const;

    // --- edge-list text document --------------------------------
    /** Serialize to the "fermihedral-topology v1" text format. */
    std::string serialize() const;

    /**
     * Parse a serialized document; nullopt on any corruption
     * (bad header, count mismatch, out-of-range endpoints, self
     * loops, duplicates, trailing bytes).
     */
    static std::optional<Topology> tryParse(std::string_view text);

    /** tryParse with malformed input as a fatal diagnostic. */
    static Topology parse(std::string_view text);

    // --- graph queries ------------------------------------------
    std::size_t numQubits() const { return n; }

    const std::vector<std::pair<std::uint32_t, std::uint32_t>> &
    edges() const
    {
        return edgeList;
    }

    const std::vector<std::uint32_t> &
    neighbors(std::uint32_t qubit) const;

    bool hasEdge(std::uint32_t a, std::uint32_t b) const;

    /** BFS hop distance; kUnreachable when disconnected. */
    std::uint32_t distance(std::uint32_t a, std::uint32_t b) const;

    /** Every qubit reachable from every other. */
    bool connected() const;

    /** Largest distance between any connected pair. */
    std::uint32_t diameter() const;

    bool operator==(const Topology &other) const
    {
        return n == other.n && edgeList == other.edgeList;
    }

  private:
    std::size_t n = 0;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edgeList;
    std::vector<std::vector<std::uint32_t>> adjacency;
    /** Row-major n x n matrix of BFS distances. */
    std::vector<std::uint32_t> dist;
    std::string specName;

    void computeDistances();
};

} // namespace fermihedral::hw

#endif // FERMIHEDRAL_HW_TOPOLOGY_H
