/**
 * @file
 * The shared hardware-topology flags: benches and examples register
 * --topology / --topology-file with one TopologyFlags::add(flags)
 * call (same overlay pattern as telemetry::TelemetryFlags and
 * bench::EngineFlags). resolve() turns whichever flag was given
 * into a hw::Topology, with the registry-style did-you-mean
 * diagnostic on unknown family names.
 *
 * Key invariants:
 *  - With neither flag given, resolve() returns nullopt and the
 *    binary behaves exactly as before the flags existed (the
 *    implicit all-to-all assumption).
 *  - Giving both flags, an unparseable spec, or an unreadable /
 *    corrupted file is a fatal diagnostic at flag-resolution time,
 *    never a silently ignored topology.
 */

#ifndef FERMIHEDRAL_HW_TOPOLOGY_FLAGS_H
#define FERMIHEDRAL_HW_TOPOLOGY_FLAGS_H

#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "common/flags.h"
#include "common/logging.h"
#include "hw/topology.h"

namespace fermihedral::hw {

/** CLI overlay wiring a hardware topology into a binary. */
struct TopologyFlags
{
    const std::string *spec = nullptr;
    const std::string *file = nullptr;

    static TopologyFlags
    add(FlagSet &flags)
    {
        TopologyFlags topology;
        topology.spec = flags.addString(
            "topology", "",
            "hardware connectivity as NAME[:ARGS] (linear:N, "
            "grid:WxH, heavy-hex:CELLS, all-to-all:N, "
            "edges:N:a-b,...); empty = all-to-all/unconstrained");
        topology.file = flags.addString(
            "topology-file", "",
            "read the connectivity from a fermihedral-topology v1 "
            "edge-list file instead");
        storage() = topology;
        return topology;
    }

    /** The topology the flags name; nullopt when neither given. */
    std::optional<Topology>
    resolve() const
    {
        const bool have_spec = spec && !spec->empty();
        const bool have_file = file && !file->empty();
        if (have_spec && have_file)
            fatal("--topology and --topology-file are exclusive");
        if (have_spec)
            return Topology::parseSpec(*spec);
        if (have_file) {
            std::ifstream in(*file);
            if (!in)
                fatal("cannot read topology file '", *file, "'");
            std::ostringstream text;
            text << in.rdbuf();
            return Topology::parse(text.str());
        }
        return std::nullopt;
    }

    /** The overlay armed by add(), if any (one per binary). */
    static const TopologyFlags *
    active()
    {
        return storage().spec ? &storage() : nullptr;
    }

  private:
    static TopologyFlags &
    storage()
    {
        static TopologyFlags registered;
        return registered;
    }
};

} // namespace fermihedral::hw

#endif // FERMIHEDRAL_HW_TOPOLOGY_FLAGS_H
