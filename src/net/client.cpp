#include "net/client.h"

#include "api/serialize.h"
#include "common/logging.h"
#include "net/socket.h"

namespace fermihedral::net {

EncodingClient
EncodingClient::overTcp(const std::string &host,
                        std::uint16_t port)
{
    return EncodingClient(connectTcp(host, port));
}

EncodingClient
EncodingClient::overUnix(const std::string &path)
{
    return EncodingClient(connectUnix(path));
}

EncodingClient::EncodingClient(int fd) : fd(fd)
{
    handshake();
}

EncodingClient::EncodingClient(EncodingClient &&other) noexcept
    : fd(other.fd), decoder(std::move(other.decoder)),
      queued(std::move(other.queued)),
      serverBanner(std::move(other.serverBanner)),
      negotiated(other.negotiated),
      nextInternalId(other.nextInternalId)
{
    other.fd = -1;
}

EncodingClient::~EncodingClient()
{
    closeFd(fd);
}

void
EncodingClient::handshake()
{
    Frame hello;
    hello.type = MessageType::Hello;
    hello.requestId = 0;
    hello.payload = encodeHelloPayload(kProtocolVersion);
    writeAll(encodeFrame(hello));

    const auto reply = readMessage();
    if (!reply)
        fatal("daemon closed the connection during the handshake");
    if (reply->type == MessageType::Error)
        fatal("daemon rejected the handshake: ", reply->payload);
    if (reply->type != MessageType::Welcome)
        fatal("handshake expected WELCOME, got ",
              messageTypeName(reply->type));
    const auto welcome = decodeWelcomePayload(reply->payload);
    if (!welcome)
        fatal("malformed WELCOME payload from the daemon");
    negotiated = welcome->version;
    serverBanner = welcome->banner;
}

void
EncodingClient::writeAll(std::string_view bytes)
{
    while (!bytes.empty()) {
        bool would_block = false;
        const long n = writeSome(fd, bytes.data(), bytes.size(),
                                 &would_block);
        // The fd is blocking, so would_block cannot happen; any
        // non-positive return is a dead connection.
        if (n <= 0)
            fatal("cannot write to the daemon (connection lost)");
        bytes.remove_prefix(static_cast<std::size_t>(n));
    }
}

std::optional<Frame>
EncodingClient::readMessage()
{
    if (!queued.empty()) {
        Frame frame = std::move(queued.front());
        queued.pop_front();
        return frame;
    }
    Frame frame;
    for (;;) {
        if (decoder.next(frame))
            return frame;
        if (!decoder.error().empty())
            fatal("malformed frame from the daemon: ",
                  decoder.error());
        char buffer[64 * 1024];
        bool would_block = false;
        const long n =
            readSome(fd, buffer, sizeof buffer, &would_block);
        if (n <= 0) {
            if (decoder.buffered() != 0)
                fatal("daemon closed mid-frame");
            return std::nullopt;
        }
        decoder.feed(std::string_view(
            buffer, static_cast<std::size_t>(n)));
    }
}

Frame
EncodingClient::awaitReply(std::uint64_t id, MessageType type)
{
    for (;;) {
        auto frame = readMessage();
        if (!frame)
            fatal("daemon closed before answering request ", id);
        if (frame->type == MessageType::Error)
            fatal("daemon protocol error: ", frame->payload);
        if (frame->requestId == id && frame->type == type)
            return *std::move(frame);
        // Someone else's pipelined response: keep it for the
        // caller's own readMessage() loop.
        queued.push_back(*std::move(frame));
    }
}

void
EncodingClient::sendCompile(std::uint64_t id,
                            const api::RequestSpec &spec)
{
    Frame frame;
    frame.type = MessageType::Compile;
    frame.requestId = id;
    frame.payload = api::serializeRequestSpec(spec);
    writeAll(encodeFrame(frame));
}

void
EncodingClient::sendCancel(std::uint64_t id)
{
    Frame frame;
    frame.type = MessageType::Cancel;
    frame.requestId = id;
    writeAll(encodeFrame(frame));
}

void
EncodingClient::sendMetricsRequest(std::uint64_t id)
{
    Frame frame;
    frame.type = MessageType::Metrics;
    frame.requestId = id;
    writeAll(encodeFrame(frame));
}

void
EncodingClient::sendPing(std::uint64_t id,
                         std::string_view payload)
{
    Frame frame;
    frame.type = MessageType::Ping;
    frame.requestId = id;
    frame.payload = std::string(payload);
    writeAll(encodeFrame(frame));
}

void
EncodingClient::sendRaw(std::string_view bytes)
{
    writeAll(bytes);
}

CompileReply
EncodingClient::decodeReply(const Frame &frame)
{
    if (frame.type != MessageType::Result)
        fatal("expected a RESULT frame, got ",
              messageTypeName(frame.type));
    const auto payload = decodeResultPayload(frame.payload);
    if (!payload)
        fatal("malformed RESULT payload for request ",
              frame.requestId);
    CompileReply reply;
    reply.requestId = frame.requestId;
    reply.status = payload->status;
    reply.message = payload->message;
    reply.resultText = payload->resultText;
    return reply;
}

CompileReply
EncodingClient::compile(std::uint64_t id,
                        const api::RequestSpec &spec)
{
    sendCompile(id, spec);
    return decodeReply(awaitReply(id, MessageType::Result));
}

std::string
EncodingClient::metrics()
{
    const std::uint64_t id = nextInternalId++;
    sendMetricsRequest(id);
    return awaitReply(id, MessageType::MetricsResult).payload;
}

} // namespace fermihedral::net
