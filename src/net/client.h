/**
 * @file
 * EncodingClient: a blocking client for the fermihedrald wire
 * protocol (docs/PROTOCOL.md), used by tools/fermihedral_client,
 * the daemon tests, and anything that wants an encoding from a
 * running daemon without linking the SAT engine into its process.
 *
 * The client is deliberately synchronous — one fd, blocking reads,
 * FrameDecoder for reassembly — because pipelining on the wire
 * needs no client-side event loop: send any number of COMPILE
 * frames with distinct ids, then readMessage() responses as the
 * daemon completes them, in whatever order they finish.
 *
 * Key invariants:
 *  - The constructor completes the HELLO/WELCOME handshake; a
 *    version the server rejects (ERROR reply) or a malformed
 *    handshake is fatal, so a constructed client is always ready
 *    to send.
 *  - readMessage() returns frames exactly as received — no
 *    reordering, no filtering; nullopt means orderly server close.
 *    A malformed byte stream is fatal (the transport is broken,
 *    not the request).
 *  - compile()/metrics() are conveniences that tolerate
 *    interleaved unrelated frames by queueing them for later
 *    readMessage() calls — mixing the conveniences with manual
 *    pipelining stays correct.
 */

#ifndef FERMIHEDRAL_NET_CLIENT_H
#define FERMIHEDRAL_NET_CLIENT_H

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "api/model_spec.h"
#include "net/frame.h"

namespace fermihedral::net {

/** A finished compile as seen over the wire. */
struct CompileReply
{
    std::uint64_t requestId = 0;
    api::ResultStatus status = api::ResultStatus::Error;
    /** statusMessage text from the daemon. */
    std::string message;
    /** Serialized CompilationResult (empty for Shed/Error). */
    std::string resultText;
};

/** Blocking protocol client (see file docs). */
class EncodingClient
{
  public:
    /** Connect + handshake over TCP (numeric IPv4 host). */
    static EncodingClient overTcp(const std::string &host,
                                  std::uint16_t port);

    /** Connect + handshake over a unix-domain socket. */
    static EncodingClient overUnix(const std::string &path);

    ~EncodingClient();
    EncodingClient(EncodingClient &&other) noexcept;
    EncodingClient &operator=(EncodingClient &&) = delete;
    EncodingClient(const EncodingClient &) = delete;
    EncodingClient &operator=(const EncodingClient &) = delete;

    /** Server banner from the WELCOME frame. */
    const std::string &banner() const { return serverBanner; }

    /** Negotiated protocol version. */
    std::uint32_t version() const { return negotiated; }

    // --- pipelined sends -------------------------------------
    void sendCompile(std::uint64_t id,
                     const api::RequestSpec &spec);
    void sendCancel(std::uint64_t id);
    void sendMetricsRequest(std::uint64_t id);
    void sendPing(std::uint64_t id, std::string_view payload);

    /** Raw bytes straight onto the socket (protocol tests). */
    void sendRaw(std::string_view bytes);

    /**
     * Block for the next server frame. nullopt on orderly close;
     * fatal on a malformed stream.
     */
    std::optional<Frame> readMessage();

    /** Decode a RESULT frame into a CompileReply (fatal if not). */
    static CompileReply decodeReply(const Frame &frame);

    // --- blocking conveniences -------------------------------
    /** Send one compile and block for its RESULT. */
    CompileReply compile(std::uint64_t id,
                         const api::RequestSpec &spec);

    /** Fetch the daemon's metrics JSON document. */
    std::string metrics();

  private:
    explicit EncodingClient(int fd);

    void handshake();
    void writeAll(std::string_view bytes);

    /** readMessage() that skips/queues frames until `id` answers. */
    Frame awaitReply(std::uint64_t id, MessageType type);

    int fd = -1;
    FrameDecoder decoder;
    /** Frames received while waiting for a specific reply. */
    std::deque<Frame> queued;
    std::string serverBanner;
    std::uint32_t negotiated = 0;
    std::uint64_t nextInternalId = (1ull << 62);
};

} // namespace fermihedral::net

#endif // FERMIHEDRAL_NET_CLIENT_H
