#include "net/connection.h"

namespace fermihedral::net {

Connection::Connection(ConnectionHandler &handler,
                       std::string banner)
    : handler(handler), banner(std::move(banner))
{
}

void
Connection::feed(std::string_view bytes)
{
    if (closing)
        return;
    decoder.feed(bytes);
    Frame frame;
    while (!closing && decoder.next(frame))
        handleFrame(std::move(frame));
    if (!closing && !decoder.error().empty())
        protocolError(0, decoder.error());
}

void
Connection::handleFrame(Frame &&frame)
{
    if (state == State::AwaitHello) {
        if (frame.type != MessageType::Hello) {
            protocolError(frame.requestId,
                          std::string("expected HELLO, got ") +
                              messageTypeName(frame.type));
            return;
        }
        const auto client_version =
            decodeHelloPayload(frame.payload);
        if (!client_version) {
            protocolError(0, "malformed HELLO payload");
            return;
        }
        if (*client_version < kMinProtocolVersion) {
            protocolError(
                0, "unsupported protocol version " +
                       std::to_string(*client_version) +
                       " (this server speaks " +
                       std::to_string(kMinProtocolVersion) + ".." +
                       std::to_string(kProtocolVersion) + ")");
            return;
        }
        version = std::min(*client_version, kProtocolVersion);
        send({MessageType::Welcome, 0,
              encodeWelcomePayload(version, banner)});
        state = State::Serving;
        return;
    }

    switch (frame.type) {
      case MessageType::Compile:
          if (frame.requestId == 0) {
              protocolError(0, "COMPILE with request id 0");
              return;
          }
          if (!inflightIds.insert(frame.requestId).second) {
              protocolError(frame.requestId,
                            "request id already in flight");
              return;
          }
          handler.onCompile(frame.requestId,
                            std::move(frame.payload));
          return;
      case MessageType::Cancel:
          // Cancelling an id that already completed (or never
          // existed) is an inherent race, not an error: no-op.
          if (inflightIds.count(frame.requestId))
              handler.onCancel(frame.requestId);
          return;
      case MessageType::Metrics:
          send({MessageType::MetricsResult, frame.requestId,
                handler.onMetrics()});
          return;
      case MessageType::Ping:
          send({MessageType::Pong, frame.requestId,
                std::move(frame.payload)});
          return;
      case MessageType::Hello:
          protocolError(0, "repeated HELLO");
          return;
      case MessageType::Welcome:
      case MessageType::Result:
      case MessageType::MetricsResult:
      case MessageType::Pong:
      case MessageType::Error:
          protocolError(frame.requestId,
                        std::string("server-only message type ") +
                            messageTypeName(frame.type));
          return;
    }
    protocolError(frame.requestId, "unhandled message type");
}

void
Connection::completeCompile(std::uint64_t id,
                            api::ResultStatus status,
                            std::string_view message,
                            std::string_view result_text)
{
    if (inflightIds.erase(id) == 0)
        return;
    if (closing)
        return;
    send({MessageType::Result, id,
          encodeResultPayload(status, message, result_text)});
}

void
Connection::consumeOutput(std::size_t n)
{
    output.erase(0, n);
}

void
Connection::protocolError(std::uint64_t id,
                          std::string_view message)
{
    send({MessageType::Error, id, std::string(message)});
    state = State::Closing;
    closing = true;
}

void
Connection::send(const Frame &frame)
{
    output += encodeFrame(frame);
}

} // namespace fermihedral::net
