/**
 * @file
 * The per-connection protocol state machine of the encoding
 * service. A Connection owns no socket: bytes from the peer go in
 * through feed(), bytes for the peer come out through
 * pendingOutput()/consumeOutput() — which is what makes partial
 * reads, short writes and the whole state machine unit-testable
 * without a file descriptor (tests/test_net_frame.cpp). The event
 * loop (net/server.h) moves bytes between this object and the fd.
 *
 * Lifecycle: AwaitHello -> Serving -> Closing. The first frame
 * must be HELLO (version negotiation, docs/PROTOCOL.md); after the
 * WELCOME reply the connection serves pipelined COMPILE / CANCEL /
 * METRICS / PING traffic. Responses are queued by completeCompile()
 * in completion order, not submission order — out-of-order
 * responses keyed by request id are the point of pipelining.
 *
 * Key invariants:
 *  - feed() never throws and never blocks: every protocol
 *    violation (malformed frame, bad handshake, duplicate
 *    in-flight id, server-only message type) queues one ERROR
 *    frame and moves to Closing; the caller closes the socket once
 *    the output drains (shouldClose() && !hasOutput()).
 *  - Request ids are tracked while in flight: completeCompile()
 *    for an id that is not in flight is a no-op (the request was
 *    answered as a protocol error, or raced a close), so the
 *    handler may always complete without re-checking liveness.
 *  - Output is a single FIFO byte queue; consumeOutput(n) with any
 *    n <= size is legal, so a transport that writes one byte at a
 *    time still emits exactly the queued frames.
 */

#ifndef FERMIHEDRAL_NET_CONNECTION_H
#define FERMIHEDRAL_NET_CONNECTION_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>

#include "net/frame.h"

namespace fermihedral::net {

/** What a Connection asks of the daemon behind it. */
class ConnectionHandler
{
  public:
    virtual ~ConnectionHandler() = default;

    /**
     * A COMPILE frame arrived: start compiling `request_text` (the
     * versioned api::RequestSpec rendering) and eventually call
     * Connection::completeCompile(id, ...). May complete
     * synchronously (warm cache) or much later (SAT search).
     */
    virtual void onCompile(std::uint64_t id,
                           std::string request_text) = 0;

    /** A CANCEL frame arrived for an id still in flight. */
    virtual void onCancel(std::uint64_t id) = 0;

    /** A METRICS frame arrived; return the metrics JSON document. */
    virtual std::string onMetrics() = 0;
};

/** Protocol state machine for one peer (see file docs). */
class Connection
{
  public:
    /** @param banner Server identification echoed in WELCOME. */
    Connection(ConnectionHandler &handler, std::string banner);

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    // --- input path ------------------------------------------
    /** Process bytes read from the peer. */
    void feed(std::string_view bytes);

    // --- completion path -------------------------------------
    /**
     * Queue the RESULT frame for an in-flight compile. No-op when
     * `id` is not in flight (already failed or connection racing
     * shutdown). `result_text` is empty for Shed/Error results.
     */
    void completeCompile(std::uint64_t id,
                         api::ResultStatus status,
                         std::string_view message,
                         std::string_view result_text);

    // --- output path -----------------------------------------
    /** Bytes waiting to be written to the peer. */
    std::string_view pendingOutput() const { return output; }

    bool hasOutput() const { return !output.empty(); }

    /** Drop the first n output bytes (they were written). */
    void consumeOutput(std::size_t n);

    // --- lifecycle -------------------------------------------
    /**
     * The connection hit a fatal protocol error (or the peer was
     * told ERROR); close the socket once output is drained.
     */
    bool shouldClose() const { return closing; }

    /** True while `id` awaits its RESULT frame. */
    bool inFlight(std::uint64_t id) const
    {
        return inflightIds.count(id) != 0;
    }

    std::size_t inFlightCount() const { return inflightIds.size(); }

    /** Negotiated protocol version (0 before the handshake). */
    std::uint32_t negotiatedVersion() const { return version; }

  private:
    enum class State { AwaitHello, Serving, Closing };

    void handleFrame(Frame &&frame);

    /** Queue ERROR (request id `id`) and move to Closing. */
    void protocolError(std::uint64_t id, std::string_view message);

    void send(const Frame &frame);

    ConnectionHandler &handler;
    std::string banner;
    FrameDecoder decoder;
    std::string output;
    std::unordered_set<std::uint64_t> inflightIds;
    State state = State::AwaitHello;
    bool closing = false;
    std::uint32_t version = 0;
};

} // namespace fermihedral::net

#endif // FERMIHEDRAL_NET_CONNECTION_H
