#include "net/event_loop.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <unistd.h>

#include "common/logging.h"
#include "net/socket.h"

namespace fermihedral::net {

EventLoop::EventLoop()
{
    int fds[2];
    if (::pipe(fds) != 0)
        fatal("cannot create event-loop wake pipe: ",
              std::strerror(errno));
    wakeRead = fds[0];
    wakeWrite = fds[1];
    setNonBlocking(wakeRead);
    setNonBlocking(wakeWrite);
}

EventLoop::~EventLoop()
{
    closeFd(wakeRead);
    closeFd(wakeWrite);
}

std::vector<Event>
EventLoop::poll(const std::vector<Interest> &interests,
                int timeout_ms)
{
    std::vector<pollfd> fds;
    fds.reserve(interests.size() + 1);
    fds.push_back(pollfd{wakeRead, POLLIN, 0});
    for (const Interest &interest : interests) {
        short events = 0;
        if (interest.read)
            events |= POLLIN;
        if (interest.write)
            events |= POLLOUT;
        fds.push_back(pollfd{interest.fd, events, 0});
    }

    int rc;
    do {
        rc = ::poll(fds.data(), fds.size(), timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0)
        fatal("poll() failed: ", std::strerror(errno));

    std::vector<Event> events;
    if (rc == 0)
        return events;

    // Drain the wake pipe: wake() calls between polls collapse
    // into one early return.
    if (fds[0].revents & POLLIN) {
        char sink[64];
        bool would_block = false;
        while (readSome(wakeRead, sink, sizeof sink,
                        &would_block) > 0) {
        }
    }

    for (std::size_t i = 1; i < fds.size(); ++i) {
        const pollfd &entry = fds[i];
        if (entry.revents == 0)
            continue;
        Event event;
        event.fd = entry.fd;
        // POLLHUP/POLLERR/POLLNVAL surface as readable: the
        // owner's next read() observes close/error directly.
        event.readable = (entry.revents &
                          (POLLIN | POLLHUP | POLLERR |
                           POLLNVAL)) != 0;
        event.writable = (entry.revents & POLLOUT) != 0;
        events.push_back(event);
    }
    return events;
}

void
EventLoop::wake()
{
    const char byte = 1;
    // A full pipe already guarantees a pending wakeup; EAGAIN is
    // success for our purposes.
    [[maybe_unused]] const ssize_t rc =
        ::write(wakeWrite, &byte, 1);
}

} // namespace fermihedral::net
