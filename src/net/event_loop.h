/**
 * @file
 * A minimal poll(2)-based readiness loop for the daemon. The owner
 * declares, each iteration, which fds it cares about and for what
 * (Interest), and gets back the subset that became ready (Event).
 * poll(2) rather than epoll keeps it portable across the POSIX
 * systems the toolchain targets; the daemon's fd counts (tens of
 * connections) are far below where epoll's O(ready) scan wins.
 *
 * A self-pipe provides cross-thread wakeup: wake() may be called
 * from any thread (it is async-signal-safe — one write() on the
 * pipe) and makes the current or next poll() return immediately;
 * the loop drains the pipe internally, so spurious wakeups are
 * cheap and wake() never blocks on a full pipe.
 *
 * Key invariants:
 *  - poll() only reports fds listed in the interests of that call;
 *    the wake pipe is managed internally and never leaks into the
 *    returned events.
 *  - wake() is level-collapsing: any number of calls between two
 *    poll()s causes at most one early return.
 *  - Hang-up and error conditions on a watched fd are reported as
 *    `readable` so the owner discovers them through a read() that
 *    returns 0/-1 — one error path, not two.
 */

#ifndef FERMIHEDRAL_NET_EVENT_LOOP_H
#define FERMIHEDRAL_NET_EVENT_LOOP_H

#include <vector>

namespace fermihedral::net {

/** What the owner wants to hear about an fd. */
struct Interest
{
    int fd = -1;
    bool read = false;
    bool write = false;
};

/** What happened to an fd during one poll(). */
struct Event
{
    int fd = -1;
    bool readable = false;
    bool writable = false;
};

/** The poll(2) loop core (see file docs). */
class EventLoop
{
  public:
    EventLoop();
    ~EventLoop();

    EventLoop(const EventLoop &) = delete;
    EventLoop &operator=(const EventLoop &) = delete;

    /**
     * Wait up to timeout_ms (-1 = indefinitely) for readiness on
     * the interests or a wake(). Returns the ready events
     * (possibly empty on timeout or wakeup).
     */
    std::vector<Event> poll(const std::vector<Interest> &interests,
                            int timeout_ms);

    /** Make the current/next poll() return now. Any thread. */
    void wake();

  private:
    int wakeRead = -1;
    int wakeWrite = -1;
};

} // namespace fermihedral::net

#endif // FERMIHEDRAL_NET_EVENT_LOOP_H
