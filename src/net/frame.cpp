#include "net/frame.h"

#include "common/logging.h"

namespace fermihedral::net {

namespace {

void
putU16(std::string &out, std::uint16_t value)
{
    out.push_back(static_cast<char>(value & 0xff));
    out.push_back(static_cast<char>((value >> 8) & 0xff));
}

void
putU32(std::string &out, std::uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<char>((value >> shift) & 0xff));
}

void
putU64(std::string &out, std::uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>((value >> shift) & 0xff));
}

std::uint16_t
getU16(std::string_view bytes)
{
    const auto b = [&](std::size_t i) {
        return static_cast<std::uint16_t>(
            static_cast<unsigned char>(bytes[i]));
    };
    return static_cast<std::uint16_t>(b(0) | (b(1) << 8));
}

std::uint32_t
getU32(std::string_view bytes)
{
    std::uint32_t value = 0;
    for (int i = 3; i >= 0; --i)
        value = (value << 8) |
                static_cast<unsigned char>(bytes[std::size_t(i)]);
    return value;
}

std::uint64_t
getU64(std::string_view bytes)
{
    std::uint64_t value = 0;
    for (int i = 7; i >= 0; --i)
        value = (value << 8) |
                static_cast<unsigned char>(bytes[std::size_t(i)]);
    return value;
}

} // namespace

bool
isKnownMessageType(std::uint8_t byte)
{
    switch (static_cast<MessageType>(byte)) {
      case MessageType::Hello:
      case MessageType::Welcome:
      case MessageType::Compile:
      case MessageType::Result:
      case MessageType::Cancel:
      case MessageType::Metrics:
      case MessageType::MetricsResult:
      case MessageType::Ping:
      case MessageType::Pong:
      case MessageType::Error: return true;
    }
    return false;
}

const char *
messageTypeName(MessageType type)
{
    switch (type) {
      case MessageType::Hello: return "HELLO";
      case MessageType::Welcome: return "WELCOME";
      case MessageType::Compile: return "COMPILE";
      case MessageType::Result: return "RESULT";
      case MessageType::Cancel: return "CANCEL";
      case MessageType::Metrics: return "METRICS";
      case MessageType::MetricsResult: return "METRICS_RESULT";
      case MessageType::Ping: return "PING";
      case MessageType::Pong: return "PONG";
      case MessageType::Error: return "ERROR";
    }
    return "unknown";
}

std::uint8_t
statusToCode(api::ResultStatus status)
{
    switch (status) {
      case api::ResultStatus::Ok: return kStatusOk;
      case api::ResultStatus::DeadlineExceeded:
          return kStatusDeadlineExceeded;
      case api::ResultStatus::Cancelled: return kStatusCancelled;
      case api::ResultStatus::Shed: return kStatusShed;
      case api::ResultStatus::Error: return kStatusError;
    }
    panic("unhandled ResultStatus value ",
          static_cast<int>(status));
}

std::optional<api::ResultStatus>
statusFromCode(std::uint8_t code)
{
    switch (code) {
      case kStatusOk: return api::ResultStatus::Ok;
      case kStatusDeadlineExceeded:
          return api::ResultStatus::DeadlineExceeded;
      case kStatusCancelled: return api::ResultStatus::Cancelled;
      case kStatusShed: return api::ResultStatus::Shed;
      case kStatusError: return api::ResultStatus::Error;
    }
    return std::nullopt;
}

std::string
encodeFrame(const Frame &frame)
{
    require(frame.payload.size() <= kMaxPayloadBytes,
            "frame payload of ", frame.payload.size(),
            " bytes exceeds kMaxPayloadBytes");
    std::string out;
    out.reserve(kHeaderBytes + frame.payload.size());
    putU32(out, static_cast<std::uint32_t>(kFrameOverheadBytes +
                                           frame.payload.size()));
    out.push_back(static_cast<char>(frame.type));
    putU64(out, frame.requestId);
    out += frame.payload;
    return out;
}

std::string
encodeHelloPayload(std::uint32_t version)
{
    std::string out;
    putU32(out, version);
    return out;
}

std::optional<std::uint32_t>
decodeHelloPayload(std::string_view payload)
{
    if (payload.size() != 4)
        return std::nullopt;
    return getU32(payload);
}

std::string
encodeWelcomePayload(std::uint32_t version, std::string_view banner)
{
    std::string out;
    putU32(out, version);
    out += banner;
    return out;
}

std::optional<WelcomePayload>
decodeWelcomePayload(std::string_view payload)
{
    if (payload.size() < 4)
        return std::nullopt;
    WelcomePayload welcome;
    welcome.version = getU32(payload);
    welcome.banner = std::string(payload.substr(4));
    return welcome;
}

std::string
encodeResultPayload(api::ResultStatus status,
                    std::string_view message,
                    std::string_view result_text)
{
    // The message is human-readable detail; cap it at the u16
    // length field rather than failing the whole response.
    if (message.size() > 0xffff)
        message = message.substr(0, 0xffff);
    std::string out;
    out.reserve(3 + message.size() + result_text.size());
    out.push_back(static_cast<char>(statusToCode(status)));
    putU16(out, static_cast<std::uint16_t>(message.size()));
    out += message;
    out += result_text;
    return out;
}

std::optional<ResultPayload>
decodeResultPayload(std::string_view payload)
{
    if (payload.size() < 3)
        return std::nullopt;
    const auto status = statusFromCode(
        static_cast<std::uint8_t>(payload[0]));
    if (!status)
        return std::nullopt;
    const std::size_t message_len = getU16(payload.substr(1, 2));
    if (payload.size() < 3 + message_len)
        return std::nullopt;
    ResultPayload result;
    result.status = *status;
    result.message = std::string(payload.substr(3, message_len));
    result.resultText = std::string(payload.substr(3 + message_len));
    return result;
}

void
FrameDecoder::feed(std::string_view bytes)
{
    if (!errorMessage.empty())
        return;
    buffer += bytes;
}

bool
FrameDecoder::next(Frame &frame)
{
    if (!errorMessage.empty())
        return false;
    if (buffer.size() < 4)
        return false;
    const std::uint32_t length = getU32(std::string_view(buffer));
    // Validate the declared length before waiting for the body: a
    // hostile prefix must poison the stream immediately, not after
    // a multi-megabyte buffer fills.
    if (length < kFrameOverheadBytes ||
        length > kFrameOverheadBytes + kMaxPayloadBytes) {
        errorMessage = "malformed frame: declared length " +
                       std::to_string(length) +
                       " outside [9, 9 + 8 MiB]";
        return false;
    }
    if (buffer.size() < 4 + std::size_t(length))
        return false;
    const auto type_byte = static_cast<std::uint8_t>(buffer[4]);
    if (!isKnownMessageType(type_byte)) {
        errorMessage = "malformed frame: unknown message type 0x";
        constexpr char hex[] = "0123456789abcdef";
        errorMessage.push_back(hex[type_byte >> 4]);
        errorMessage.push_back(hex[type_byte & 0xf]);
        return false;
    }
    frame.type = static_cast<MessageType>(type_byte);
    frame.requestId = getU64(std::string_view(buffer).substr(5, 8));
    frame.payload.assign(buffer, kHeaderBytes,
                         length - kFrameOverheadBytes);
    buffer.erase(0, 4 + std::size_t(length));
    return true;
}

} // namespace fermihedral::net
