/**
 * @file
 * The wire format of the encoding service: a length-prefixed binary
 * frame protocol carrying versioned text payloads. One frame is
 *
 *   offset  size  field
 *   0       4     frame length N, u32 little-endian — the number of
 *                 bytes AFTER this prefix (type + id + payload)
 *   4       1     message type, u8 (MessageType)
 *   5       8     request id, u64 little-endian
 *   13      N-9   payload (layout depends on the type)
 *
 * so N >= 9 always, and N <= 9 + kMaxPayloadBytes. The full
 * byte-level specification — message types, payload layouts, status
 * codes, request-id semantics, version negotiation, worked hex
 * dumps — lives in docs/PROTOCOL.md; this header and that document
 * are kept in sync by the fixtures in tests/test_net_frame.cpp,
 * which are written from the document.
 *
 * Key invariants:
 *  - encodeFrame(decode(bytes)) == bytes for every valid frame:
 *    the codec is byte-exact in both directions.
 *  - FrameDecoder is incremental and allocation-bounded: bytes may
 *    arrive one at a time (partial reads), and a declared length
 *    outside [9, 9 + kMaxPayloadBytes] or an unknown type byte
 *    poisons the decoder (error()) before any payload is buffered,
 *    so a hostile peer cannot make it allocate unboundedly.
 *  - kProtocolVersion is the single version constant; it appears in
 *    HELLO/WELCOME payloads and is asserted against docs/PROTOCOL.md
 *    by the tests.
 */

#ifndef FERMIHEDRAL_NET_FRAME_H
#define FERMIHEDRAL_NET_FRAME_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "api/compiler.h"

namespace fermihedral::net {

/** The protocol version this build speaks (docs/PROTOCOL.md). */
constexpr std::uint32_t kProtocolVersion = 1;

/** The oldest version this build still accepts in HELLO. */
constexpr std::uint32_t kMinProtocolVersion = 1;

/** Frame length prefix + type byte + request id. */
constexpr std::size_t kHeaderBytes = 13;

/** Bytes of the frame counted by the length prefix besides payload. */
constexpr std::size_t kFrameOverheadBytes = 9;

/** Hard ceiling on one frame's payload (8 MiB). */
constexpr std::size_t kMaxPayloadBytes = 8u * 1024 * 1024;

/** Message types (the u8 at frame offset 4). */
enum class MessageType : std::uint8_t
{
    /** client -> server: highest protocol version the client speaks. */
    Hello = 0x01,
    /** server -> client: negotiated version + server banner. */
    Welcome = 0x02,
    /** client -> server: one compilation request (versioned text). */
    Compile = 0x03,
    /** server -> client: status + message + serialized result. */
    Result = 0x04,
    /** client -> server: cancel the in-flight id of this frame. */
    Cancel = 0x05,
    /** client -> server: request the process metrics document. */
    Metrics = 0x06,
    /** server -> client: the metrics JSON document. */
    MetricsResult = 0x07,
    /** client -> server: liveness probe; payload echoed back. */
    Ping = 0x08,
    /** server -> client: the Ping echo. */
    Pong = 0x09,
    /** server -> client: protocol-level error (UTF-8 message). */
    Error = 0x7f,
};

/** True when `byte` is one of the MessageType values above. */
bool isKnownMessageType(std::uint8_t byte);

/** Printable name of a message type (diagnostics). */
const char *messageTypeName(MessageType type);

/**
 * Result-frame status codes (the u8 at payload offset 0 of a
 * Result frame), a stable wire rendering of api::ResultStatus.
 */
constexpr std::uint8_t kStatusOk = 0;
constexpr std::uint8_t kStatusDeadlineExceeded = 1;
constexpr std::uint8_t kStatusCancelled = 2;
constexpr std::uint8_t kStatusShed = 3;
constexpr std::uint8_t kStatusError = 4;

/** ResultStatus -> wire status code. */
std::uint8_t statusToCode(api::ResultStatus status);

/** Wire status code -> ResultStatus; nullopt on unknown codes. */
std::optional<api::ResultStatus> statusFromCode(std::uint8_t code);

/** One decoded frame. */
struct Frame
{
    MessageType type = MessageType::Error;
    std::uint64_t requestId = 0;
    std::string payload;
};

/** Render a frame to wire bytes (length prefix included). */
std::string encodeFrame(const Frame &frame);

/** Convenience constructors for the fixed-layout payloads. */
std::string encodeHelloPayload(std::uint32_t version);
std::optional<std::uint32_t> decodeHelloPayload(
    std::string_view payload);

std::string encodeWelcomePayload(std::uint32_t version,
                                 std::string_view banner);
struct WelcomePayload
{
    std::uint32_t version = 0;
    std::string banner;
};
std::optional<WelcomePayload> decodeWelcomePayload(
    std::string_view payload);

/**
 * Result payload: status (u8), message length (u16 LE), message
 * bytes, then the serialized CompilationResult text (possibly
 * empty — Shed and Error results carry no encoding).
 */
std::string encodeResultPayload(api::ResultStatus status,
                                std::string_view message,
                                std::string_view result_text);
struct ResultPayload
{
    api::ResultStatus status = api::ResultStatus::Error;
    std::string message;
    std::string resultText;
};
std::optional<ResultPayload> decodeResultPayload(
    std::string_view payload);

/**
 * Incremental frame decoder: feed() bytes as they arrive, poll
 * next() for completed frames. Once error() is set the decoder
 * ignores further input — the connection must be torn down.
 */
class FrameDecoder
{
  public:
    /** Append raw bytes from the peer. */
    void feed(std::string_view bytes);

    /**
     * Pop the next completed frame. Returns false when no full
     * frame is buffered (or the decoder is poisoned).
     */
    bool next(Frame &frame);

    /** Non-empty once the stream is unrecoverably malformed. */
    const std::string &error() const { return errorMessage; }

    /** Bytes currently buffered (tests; bounded by one frame). */
    std::size_t buffered() const { return buffer.size(); }

  private:
    std::string buffer;
    std::string errorMessage;
};

} // namespace fermihedral::net

#endif // FERMIHEDRAL_NET_FRAME_H
