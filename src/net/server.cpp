#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <unistd.h>

#include "api/serialize.h"
#include "api/strategy_registry.h"
#include "common/logging.h"
#include "common/timer.h"
#include "net/socket.h"

namespace fermihedral::net {

namespace {

/** Poll timeout while compile futures are pending (ms). */
constexpr int kBusyPollMs = 2;

/** Poll timeout while fully idle (ms). */
constexpr int kIdlePollMs = 500;

/** Read chunk size per read() call. */
constexpr std::size_t kReadChunk = 64 * 1024;

} // namespace

/** One live peer: fd, protocol state, and the bridge handler. */
struct EncodingServer::ConnState
{
    std::uint64_t id = 0;
    int fd = -1;
    bool peerClosed = false;
    Handler handler;
    Connection conn;

    ConnState(EncodingServer *server, std::uint64_t conn_id,
              int conn_fd, const std::string &banner)
        : id(conn_id), fd(conn_fd), conn(handler, banner)
    {
        handler.server = server;
        handler.connId = conn_id;
    }
};

void
EncodingServer::Handler::onCompile(std::uint64_t id,
                                   std::string request_text)
{
    server->startCompile(connId, id, std::move(request_text));
}

void
EncodingServer::Handler::onCancel(std::uint64_t id)
{
    server->cancelCompile(connId, id);
}

std::string
EncodingServer::Handler::onMetrics()
{
    return api::CompilerService::metricsJson();
}

EncodingServer::EncodingServer(const ServerOptions &options)
    : options(options), compiler(options.service)
{
    if (options.tcpHost.empty() && options.unixPath.empty())
        fatal("EncodingServer needs at least one listener "
              "(tcpHost or unixPath)");
    if (!options.tcpHost.empty()) {
        tcpListener =
            listenTcp(options.tcpHost, options.tcpPort, &tcpPort);
        setNonBlocking(tcpListener);
    }
    if (!options.unixPath.empty()) {
        unixListener =
            listenUnix(options.unixPath, options.unixMode);
        setNonBlocking(unixListener);
    }
}

EncodingServer::~EncodingServer()
{
    // Orphan every in-flight search before the service destructor
    // drains them: no point finishing work nobody will read.
    for (const auto &[key, token] : cancelTokens)
        token.requestCancel();
    for (const auto &[id, state] : connections)
        closeFd(state->fd);
    closeFd(tcpListener);
    closeFd(unixListener);
    if (!options.unixPath.empty())
        ::unlink(options.unixPath.c_str());
}

WarmReport
EncodingServer::warm(const std::vector<api::RequestSpec> &specs)
{
    WarmReport report;
    report.requests = specs.size();
    Timer timer;
    std::vector<api::CompilationRequest> requests;
    requests.reserve(specs.size());
    for (const api::RequestSpec &spec : specs)
        requests.push_back(api::buildRequest(spec));
    const auto results =
        compiler.compileBatch(std::move(requests));
    for (std::size_t i = 0; i < results.size(); ++i) {
        const api::CompilationResult &result = results[i];
        if (result.status == api::ResultStatus::Ok)
            ++report.ok;
        else
            warn("warm: '", specs[i].problem, "' @",
                 specs[i].strategy, " ended ",
                 api::resultStatusName(result.status),
                 result.statusMessage.empty()
                     ? ""
                     : (": " + result.statusMessage));
        if (result.fromCache)
            ++report.fromCache;
    }
    report.seconds = timer.seconds();
    return report;
}

void
EncodingServer::startCompile(std::uint64_t conn_id,
                             std::uint64_t id,
                             std::string request_text)
{
    const auto it = connections.find(conn_id);
    if (it == connections.end())
        return;
    ConnState &state = *it->second;

    const auto spec = api::tryParseRequestSpec(request_text);
    if (!spec) {
        state.conn.completeCompile(
            id, api::ResultStatus::Error,
            "malformed request payload (expected the "
            "fermihedral-request v1 format)",
            "");
        return;
    }
    std::string error;
    auto request = api::tryBuildRequest(*spec, &error);
    if (!request) {
        state.conn.completeCompile(id, api::ResultStatus::Error,
                                   error, "");
        return;
    }
    // Unknown strategy names are fatal inside submit(); over the
    // wire they must come back as a typed Error result instead.
    const auto known = api::registeredStrategyNames();
    if (std::find(known.begin(), known.end(), request->strategy) ==
        known.end()) {
        state.conn.completeCompile(
            id, api::ResultStatus::Error,
            "unknown strategy '" + request->strategy + "'", "");
        return;
    }
    cancelTokens.emplace(std::make_pair(conn_id, id),
                         request->cancellation);
    PendingCompile entry;
    entry.connId = conn_id;
    entry.requestId = id;
    entry.future = compiler.submit(*std::move(request));
    pending.push_back(std::move(entry));
}

void
EncodingServer::cancelCompile(std::uint64_t conn_id,
                              std::uint64_t id)
{
    const auto it = cancelTokens.find({conn_id, id});
    if (it != cancelTokens.end())
        it->second.requestCancel();
}

void
EncodingServer::acceptAll(int listener_fd)
{
    for (;;) {
        const int fd = acceptConnection(listener_fd);
        if (fd < 0)
            return;
        setNonBlocking(fd);
        setTcpNoDelay(fd);
        const std::uint64_t id = nextConnId++;
        connections.emplace(
            id, std::make_unique<ConnState>(this, id, fd,
                                            options.banner));
        fdIndex.emplace(fd, id);
    }
}

void
EncodingServer::readConnection(ConnState &state)
{
    char buffer[kReadChunk];
    for (;;) {
        bool would_block = false;
        const long n =
            readSome(state.fd, buffer, sizeof buffer, &would_block);
        if (n > 0) {
            state.conn.feed(
                std::string_view(buffer,
                                 static_cast<std::size_t>(n)));
            continue;
        }
        if (would_block)
            return;
        // Orderly close or hard error: either way the peer is gone.
        state.peerClosed = true;
        return;
    }
}

void
EncodingServer::flushConnection(ConnState &state)
{
    while (state.conn.hasOutput()) {
        const std::string_view out = state.conn.pendingOutput();
        bool would_block = false;
        const long n = writeSome(state.fd, out.data(), out.size(),
                                 &would_block);
        if (n > 0) {
            state.conn.consumeOutput(
                static_cast<std::size_t>(n));
            continue;
        }
        if (would_block)
            return;
        state.peerClosed = true;
        return;
    }
}

void
EncodingServer::reapCompletions()
{
    for (std::size_t i = 0; i < pending.size();) {
        PendingCompile &entry = pending[i];
        if (entry.future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
            ++i;
            continue;
        }
        // submit() futures never throw: failures are Error results.
        const api::CompilationResult result = entry.future.get();
        cancelTokens.erase({entry.connId, entry.requestId});
        const auto it = connections.find(entry.connId);
        if (it != connections.end()) {
            // Shed and Error results carry no encoding; everything
            // else ships the full serialized result.
            const bool has_payload =
                result.status != api::ResultStatus::Shed &&
                result.status != api::ResultStatus::Error;
            it->second->conn.completeCompile(
                entry.requestId, result.status,
                result.statusMessage,
                has_payload ? api::serializeResult(result) : "");
        }
        pending[i] = std::move(pending.back());
        pending.pop_back();
    }
}

void
EncodingServer::closeFinished()
{
    for (auto it = connections.begin();
         it != connections.end();) {
        ConnState &state = *it->second;
        const bool drained =
            state.conn.shouldClose() && !state.conn.hasOutput();
        if (!state.peerClosed && !drained) {
            ++it;
            continue;
        }
        // Cancel whatever the dead peer still had in flight; the
        // futures finish on the pool and are dropped on reap.
        for (auto token = cancelTokens.lower_bound(
                 {state.id, 0});
             token != cancelTokens.end() &&
             token->first.first == state.id;
             ++token)
            token->second.requestCancel();
        fdIndex.erase(state.fd);
        closeFd(state.fd);
        it = connections.erase(it);
    }
}

void
EncodingServer::run()
{
    std::vector<Interest> interests;
    while (!stopRequested.load(std::memory_order_relaxed)) {
        interests.clear();
        if (tcpListener >= 0)
            interests.push_back({tcpListener, true, false});
        if (unixListener >= 0)
            interests.push_back({unixListener, true, false});
        for (const auto &[id, state] : connections)
            interests.push_back({state->fd, true,
                                 state->conn.hasOutput()});

        const int timeout =
            pending.empty() ? kIdlePollMs : kBusyPollMs;
        const std::vector<Event> events =
            loop.poll(interests, timeout);

        for (const Event &event : events) {
            if (event.fd == tcpListener ||
                event.fd == unixListener) {
                acceptAll(event.fd);
                continue;
            }
            const auto idx = fdIndex.find(event.fd);
            if (idx == fdIndex.end())
                continue;
            ConnState &state = *connections.at(idx->second);
            if (event.readable)
                readConnection(state);
        }

        reapCompletions();

        // Opportunistic flush: most sockets are writable, and
        // waiting for the next POLLOUT round-trip would add a poll
        // cycle to every response.
        for (const auto &[id, state] : connections)
            if (state->conn.hasOutput() && !state->peerClosed)
                flushConnection(*state);

        closeFinished();
    }
}

void
EncodingServer::stop()
{
    stopRequested.store(true, std::memory_order_relaxed);
    loop.wake();
}

} // namespace fermihedral::net
