/**
 * @file
 * EncodingServer: the daemon core binding the net/ layer to the
 * CompilerService. One poll(2) loop (net/event_loop.h) owns every
 * listener and connection fd; per-connection protocol state lives
 * in net/connection.h Connection objects; compilations run on the
 * service's own pool and their futures are reaped by the loop, so
 * all connection state is touched from exactly one thread — no
 * per-connection locks.
 *
 * Completion model: COMPILE frames become CompilerService::submit()
 * futures. While any are pending the loop polls with a short
 * timeout (~2 ms) and checks each future with wait_for(0); the
 * bounded extra latency this adds sits outside the service's own
 * submit-to-complete histogram, so service.latency_seconds stays
 * honest. CANCEL frames flip the stored CancellationToken of the
 * (connection, id) pair; the search observes it at its next budget
 * poll and the RESULT frame carries the typed degraded status.
 *
 * Key invariants:
 *  - All Connection/ConnState mutation happens on the run() thread.
 *    stop() is the only cross-thread entry point (atomic flag +
 *    EventLoop::wake(), both async-signal-safe), so it may be
 *    called from signal handlers.
 *  - A connection that dies with requests in flight cancels their
 *    tokens; their futures still complete (the service never
 *    abandons work) and the results are dropped on reap.
 *  - Responses go out in completion order, keyed by request id —
 *    the server never reorders or delays a completed result to
 *    restore submission order.
 *  - warm() runs strictly before serving: the store is populated
 *    through the same CompilerService (same canonical keys, same
 *    CRC'd entry format), so warmed entries are
 *    indistinguishable from ones cached by live traffic.
 */

#ifndef FERMIHEDRAL_NET_SERVER_H
#define FERMIHEDRAL_NET_SERVER_H

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/model_spec.h"
#include "api/service.h"
#include "net/connection.h"
#include "net/event_loop.h"

namespace fermihedral::net {

/** Configuration of an EncodingServer. */
struct ServerOptions
{
    /** TCP listener address (empty disables TCP). Numeric IPv4. */
    std::string tcpHost;

    /** TCP port (0 = ephemeral; see boundTcpPort()). */
    std::uint16_t tcpPort = 0;

    /** Unix-domain socket path (empty disables the listener). */
    std::string unixPath;

    /** File mode applied to the unix socket (default 0600). */
    unsigned unixMode = 0600;

    /** Banner echoed in WELCOME frames. */
    std::string banner = "fermihedrald";

    /** The wrapped CompilerService's configuration. */
    api::ServiceOptions service;
};

/** What warm() did (logged and reported by fermihedrald). */
struct WarmReport
{
    /** Specs compiled (cache hits included). */
    std::size_t requests = 0;
    /** Requests that ended ResultStatus::Ok. */
    std::size_t ok = 0;
    /** Requests answered from the cache (no search). */
    std::size_t fromCache = 0;
    /** Wall-clock seconds for the whole sweep. */
    double seconds = 0.0;
};

/** The daemon core (see file docs). */
class EncodingServer
{
  public:
    explicit EncodingServer(const ServerOptions &options);
    ~EncodingServer();

    EncodingServer(const EncodingServer &) = delete;
    EncodingServer &operator=(const EncodingServer &) = delete;

    /**
     * Precompile every spec through the service (and thus into the
     * store) before serving. Non-Ok outcomes are warned about and
     * counted, not fatal — a warm spec that times out still leaves
     * the daemon servable.
     */
    WarmReport warm(const std::vector<api::RequestSpec> &specs);

    /** Serve until stop(). Runs the loop on the calling thread. */
    void run();

    /** Request shutdown; safe from any thread or signal handler. */
    void stop();

    /** Actual TCP port (after an ephemeral bind), 0 if no TCP. */
    std::uint16_t boundTcpPort() const { return tcpPort; }

    /** The wrapped service (stats reporting in fermihedrald). */
    api::CompilerService &service() { return compiler; }

  private:
    struct ConnState;

    /** Per-connection ConnectionHandler bridging into the server. */
    struct Handler : ConnectionHandler
    {
        EncodingServer *server = nullptr;
        std::uint64_t connId = 0;

        void onCompile(std::uint64_t id,
                       std::string request_text) override;
        void onCancel(std::uint64_t id) override;
        std::string onMetrics() override;
    };

    /** One submitted compile awaiting its future. */
    struct PendingCompile
    {
        std::uint64_t connId = 0;
        std::uint64_t requestId = 0;
        std::future<api::CompilationResult> future;
    };

    void startCompile(std::uint64_t conn_id, std::uint64_t id,
                      std::string request_text);
    void cancelCompile(std::uint64_t conn_id, std::uint64_t id);

    void acceptAll(int listener_fd);
    void readConnection(ConnState &state);
    void flushConnection(ConnState &state);
    void reapCompletions();
    void closeFinished();

    ServerOptions options;
    api::CompilerService compiler;
    EventLoop loop;
    std::atomic<bool> stopRequested{false};

    int tcpListener = -1;
    int unixListener = -1;
    std::uint16_t tcpPort = 0;

    std::uint64_t nextConnId = 1;
    std::unordered_map<std::uint64_t, std::unique_ptr<ConnState>>
        connections;
    std::unordered_map<int, std::uint64_t> fdIndex;

    std::vector<PendingCompile> pending;
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             api::CancellationToken>
        cancelTokens;
};

} // namespace fermihedral::net

#endif // FERMIHEDRAL_NET_SERVER_H
