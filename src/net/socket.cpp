#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.h"

namespace fermihedral::net {

namespace {

[[noreturn]] void
fatalErrno(const char *what, const std::string &target)
{
    const int saved = errno;
    fatal(what, " '", target, "': ", std::strerror(saved));
}

sockaddr_in
tcpAddress(const std::string &host, std::uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        fatal("invalid IPv4 address '", host,
              "' (hostnames are not resolved; use a numeric "
              "address such as 127.0.0.1)");
    return addr;
}

sockaddr_un
unixAddress(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof addr.sun_path)
        fatal("unix socket path '", path, "' is empty or longer ",
              "than ", sizeof addr.sun_path - 1, " bytes");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

std::size_t
maxUnixPathLength()
{
    return sizeof(sockaddr_un{}.sun_path) - 1;
}

int
listenTcp(const std::string &host, std::uint16_t port,
          std::uint16_t *bound_port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatalErrno("cannot create TCP socket for", host);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = tcpAddress(host, port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        closeFd(fd);
        fatalErrno("cannot bind TCP listener to",
                   host + ":" + std::to_string(port));
    }
    if (::listen(fd, 64) != 0) {
        closeFd(fd);
        fatalErrno("cannot listen on", host);
    }
    if (bound_port) {
        sockaddr_in actual{};
        socklen_t len = sizeof actual;
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&actual),
                          &len) != 0) {
            closeFd(fd);
            fatalErrno("cannot read bound port of", host);
        }
        *bound_port = ntohs(actual.sin_port);
    }
    return fd;
}

int
listenUnix(const std::string &path, unsigned mode)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatalErrno("cannot create unix socket for", path);
    sockaddr_un addr = unixAddress(path);
    // Daemon-restart convention: a leftover socket file from a
    // previous run blocks bind(); unlink it. A *live* daemon on
    // the same path loses its listener — docs/OPERATIONS.md tells
    // operators to serialize restarts instead.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        closeFd(fd);
        fatalErrno("cannot bind unix listener at", path);
    }
    if (::chmod(path.c_str(), mode) != 0) {
        closeFd(fd);
        ::unlink(path.c_str());
        fatalErrno("cannot chmod unix socket", path);
    }
    if (::listen(fd, 64) != 0) {
        closeFd(fd);
        ::unlink(path.c_str());
        fatalErrno("cannot listen on unix socket", path);
    }
    return fd;
}

int
connectTcp(const std::string &host, std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatalErrno("cannot create TCP socket for", host);
    // Request/response frames are small; without NODELAY every
    // pipelined request would wait out Nagle against delayed ACKs.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr = tcpAddress(host, port);
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        closeFd(fd);
        fatalErrno("cannot connect to",
                   host + ":" + std::to_string(port));
    }
    return fd;
}

int
connectUnix(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatalErrno("cannot create unix socket for", path);
    sockaddr_un addr = unixAddress(path);
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        closeFd(fd);
        fatalErrno("cannot connect to unix socket", path);
    }
    return fd;
}

int
acceptConnection(int listener_fd)
{
    int fd;
    do {
        fd = ::accept(listener_fd, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    return fd;
}

void
setTcpNoDelay(int fd)
{
    const int one = 1;
    // Fails with ENOTSUP/EOPNOTSUPP on unix-domain sockets; that
    // is the expected no-op path.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        fatalErrno("cannot set O_NONBLOCK on fd",
                   std::to_string(fd));
}

void
closeFd(int fd)
{
    if (fd < 0)
        return;
    // POSIX leaves the fd state unspecified after EINTR from
    // close(); retrying risks closing a recycled fd, so don't.
    ::close(fd);
}

long
readSome(int fd, char *buffer, std::size_t capacity,
         bool *would_block)
{
    *would_block = false;
    for (;;) {
        const ssize_t n = ::read(fd, buffer, capacity);
        if (n >= 0)
            return static_cast<long>(n);
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            *would_block = true;
            return 0;
        }
        return -1;
    }
}

long
writeSome(int fd, const char *buffer, std::size_t size,
          bool *would_block)
{
    *would_block = false;
    for (;;) {
        // MSG_NOSIGNAL: a peer that closed mid-response must
        // surface as an error return, not SIGPIPE.
        const ssize_t n =
            ::send(fd, buffer, size, MSG_NOSIGNAL);
        if (n >= 0)
            return static_cast<long>(n);
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            *would_block = true;
            return 0;
        }
        return -1;
    }
}

} // namespace fermihedral::net
