/**
 * @file
 * Thin POSIX socket helpers shared by the daemon's event loop and
 * the blocking client: listeners (TCP and unix-domain), outbound
 * connects, non-blocking mode, and EINTR-safe read/write wrappers.
 *
 * Key invariants:
 *  - Listener helpers either return a bound, listening fd or throw
 *    FatalError with the failing syscall and errno text; they never
 *    return a half-configured fd.
 *  - listenUnix() unlinks a pre-existing socket file at the path
 *    before binding (standard daemon restart behaviour; see
 *    docs/OPERATIONS.md for the liveness caveat) and applies
 *    `mode` with chmod so the permission race window is the bind
 *    itself, not a post-hoc fixup by callers.
 *  - readSome()/writeSome() retry EINTR internally and report
 *    would-block as 0 bytes with `wouldBlock = true`, so callers
 *    distinguish "try later" from "peer closed" (readSome() == 0
 *    with !wouldBlock).
 */

#ifndef FERMIHEDRAL_NET_SOCKET_H
#define FERMIHEDRAL_NET_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace fermihedral::net {

/** Max unix-socket path length the sockaddr can carry. */
std::size_t maxUnixPathLength();

/**
 * Create a TCP listener on host:port (port 0 = ephemeral).
 * Returns the fd; *bound_port receives the actual port.
 */
int listenTcp(const std::string &host, std::uint16_t port,
              std::uint16_t *bound_port);

/**
 * Create a unix-domain listener at `path` with file mode `mode`
 * (e.g. 0600). A stale socket file at the path is unlinked first.
 */
int listenUnix(const std::string &path, unsigned mode);

/** Blocking TCP connect (for the client and tests). */
int connectTcp(const std::string &host, std::uint16_t port);

/** Blocking unix-domain connect. */
int connectUnix(const std::string &path);

/**
 * Accept one pending connection on a non-blocking listener.
 * Returns the fd, or -1 when none is pending (EAGAIN) or the
 * accept failed transiently.
 */
int acceptConnection(int listener_fd);

/** Best-effort TCP_NODELAY (no-op on non-TCP fds). */
void setTcpNoDelay(int fd);

/** Switch an fd to non-blocking mode (fatal on failure). */
void setNonBlocking(int fd);

/** close() ignoring EINTR; safe on -1. */
void closeFd(int fd);

/**
 * Read up to `capacity` bytes. Returns bytes read; 0 with
 * *would_block set when the socket is drained (non-blocking), 0
 * with it clear on orderly peer close; -1 on hard errors.
 */
long readSome(int fd, char *buffer, std::size_t capacity,
              bool *would_block);

/**
 * Write up to `size` bytes. Returns bytes written (possibly short);
 * 0 with *would_block set when the send buffer is full; -1 on hard
 * errors (EPIPE included — callers drop the connection).
 */
long writeSome(int fd, const char *buffer, std::size_t size,
               bool *would_block);

} // namespace fermihedral::net

#endif // FERMIHEDRAL_NET_SOCKET_H
