#include "pauli/commuting_groups.h"

#include "common/logging.h"

namespace fermihedral::pauli {

bool
qubitWiseCommute(const PauliString &a, const PauliString &b)
{
    require(a.numQubits() == b.numQubits(),
            "qubitWiseCommute width mismatch");
    // At every position the operators must be equal or one of them
    // identity. In symplectic form: on the shared support both bit
    // masks must agree.
    const std::uint64_t support_a = a.xMask() | a.zMask();
    const std::uint64_t support_b = b.xMask() | b.zMask();
    const std::uint64_t shared = support_a & support_b;
    return ((a.xMask() ^ b.xMask()) & shared) == 0 &&
           ((a.zMask() ^ b.zMask()) & shared) == 0;
}

std::vector<CommutingGroup>
groupQubitWiseCommuting(const PauliSum &sum)
{
    std::vector<CommutingGroup> groups;
    const auto &terms = sum.terms();
    for (std::size_t index = 0; index < terms.size(); ++index) {
        const PauliString &string = terms[index].string;
        if (string.isIdentity())
            continue;
        bool placed = false;
        for (auto &group : groups) {
            if (qubitWiseCommute(group.basis, string)) {
                group.termIndices.push_back(index);
                // Extend the shared basis over this term's support.
                group.basis = PauliString::fromMasks(
                    string.numQubits(),
                    group.basis.xMask() | string.xMask(),
                    group.basis.zMask() | string.zMask());
                placed = true;
                break;
            }
        }
        if (!placed) {
            CommutingGroup group;
            group.termIndices.push_back(index);
            group.basis = PauliString::fromMasks(
                string.numQubits(), string.xMask(),
                string.zMask());
            groups.push_back(std::move(group));
        }
    }
    return groups;
}

} // namespace fermihedral::pauli
