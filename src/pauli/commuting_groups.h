/**
 * @file
 * Grouping of Pauli terms into qubit-wise commuting families.
 *
 * Energy estimation on hardware measures one commuting family per
 * shot instead of one term per shot; two strings are qubit-wise
 * commuting when their single-qubit operators agree or one is the
 * identity at every position, so one basis rotation serves the
 * whole family. This is the standard measurement-reduction pass the
 * paper's related-work section cites (term grouping [12, 13]) and
 * reduces the shot cost of the Figs. 8-10 protocols.
 *
 * Key invariants:
 *  - The groups partition exactly the non-identity terms of the
 *    input sum: every such term index appears in precisely one
 *    group; identity terms appear in none.
 *  - Within a group, every member agrees with the shared `basis`
 *    at each qubit where the member is non-identity.
 *  - Grouping is deterministic (first-fit in stored term order),
 *    so results are stable across runs.
 */

#ifndef FERMIHEDRAL_PAULI_COMMUTING_GROUPS_H
#define FERMIHEDRAL_PAULI_COMMUTING_GROUPS_H

#include <vector>

#include "pauli/pauli_sum.h"

namespace fermihedral::pauli {

/** One qubit-wise commuting family of terms. */
struct CommutingGroup
{
    /** Indices into the source PauliSum's term list. */
    std::vector<std::size_t> termIndices;
    /**
     * The family's shared measurement basis: at each qubit the
     * non-identity operator used by any member (I when unused).
     */
    PauliString basis;
};

/** True when a and b commute qubit-wise (per-position). */
bool qubitWiseCommute(const PauliString &a, const PauliString &b);

/**
 * Greedy first-fit grouping of the sum's non-identity terms into
 * qubit-wise commuting families. Deterministic: terms are scanned
 * in their stored order and placed into the first compatible group.
 */
std::vector<CommutingGroup> groupQubitWiseCommuting(
    const PauliSum &sum);

} // namespace fermihedral::pauli

#endif // FERMIHEDRAL_PAULI_COMMUTING_GROUPS_H
