/**
 * @file
 * Single-qubit Pauli operators and their multiplication table.
 *
 * Operators are represented in symplectic form: an (x, z) bit pair
 * with I=(0,0), X=(1,0), Y=(1,1), Z=(0,1). Multiplication xors the
 * bit pairs; the accumulated power of i is looked up in a 16-entry
 * table derived from the 2x2 matrices.
 *
 * Key invariants:
 *  - fromBits(xBit(op), zBit(op)) == op for every operator: the
 *    symplectic round-trip is the identity.
 *  - The phase table is exact Pauli algebra: op1 * op2 =
 *    i^phase * fromBits(x1^x2, z1^z2), with phase 0 whenever the
 *    operators commute.
 *  - Everything here is constexpr and branch-free enough for the
 *    hot loops (annealing's productWeight, the simulator).
 */

#ifndef FERMIHEDRAL_PAULI_PAULI_OP_H
#define FERMIHEDRAL_PAULI_PAULI_OP_H

#include <array>
#include <cstdint>

namespace fermihedral::pauli {

/** The four single-qubit Pauli operators. */
enum class PauliOp : std::uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

/** x bit of the symplectic representation (set for X and Y). */
constexpr bool
xBit(PauliOp op)
{
    return op == PauliOp::X || op == PauliOp::Y;
}

/** z bit of the symplectic representation (set for Z and Y). */
constexpr bool
zBit(PauliOp op)
{
    return op == PauliOp::Z || op == PauliOp::Y;
}

/** Reassemble an operator from its symplectic bits. */
constexpr PauliOp
fromBits(bool x, bool z)
{
    if (x && z)
        return PauliOp::Y;
    if (x)
        return PauliOp::X;
    if (z)
        return PauliOp::Z;
    return PauliOp::I;
}

/** Single-character label: I, X, Y or Z. */
constexpr char
opChar(PauliOp op)
{
    constexpr char chars[4] = {'I', 'X', 'Y', 'Z'};
    return chars[static_cast<int>(op)];
}

/**
 * Power of i produced by the product op1*op2, indexed by
 * (x1, z1, x2, z2). E.g.\ X*Y = i^1 Z, Y*X = i^3 Z.
 */
constexpr std::array<std::uint8_t, 16> productPhaseTable = {
    //            (x1 z1 x2 z2)
    0, // 0000  I*I
    0, // 0001  I*Z
    0, // 0010  I*X
    0, // 0011  I*Y
    0, // 0100  Z*I
    0, // 0101  Z*Z
    1, // 0110  Z*X = iY
    3, // 0111  Z*Y = -iX
    0, // 1000  X*I
    3, // 1001  X*Z = -iY
    0, // 1010  X*X
    1, // 1011  X*Y = iZ
    0, // 1100  Y*I
    1, // 1101  Y*Z = iX
    3, // 1110  Y*X = -iZ
    0, // 1111  Y*Y
};

/** Power of i such that op1*op2 = i^k (op1 xor op2). */
constexpr std::uint8_t
productPhase(PauliOp op1, PauliOp op2)
{
    const int index = (xBit(op1) << 3) | (zBit(op1) << 2) |
                      (xBit(op2) << 1) | static_cast<int>(zBit(op2));
    return productPhaseTable[static_cast<std::size_t>(index)];
}

/** True when the two operators anticommute (both non-I, different). */
constexpr bool
anticommutes(PauliOp op1, PauliOp op2)
{
    if (op1 == PauliOp::I || op2 == PauliOp::I)
        return false;
    return op1 != op2;
}

} // namespace fermihedral::pauli

#endif // FERMIHEDRAL_PAULI_PAULI_OP_H
