#include "pauli/pauli_string.h"

#include <bit>

#include "common/logging.h"

namespace fermihedral::pauli {

namespace {

/** i^k for k in 0..3. */
std::complex<double>
iPower(int k)
{
    switch (((k % 4) + 4) % 4) {
      case 0: return {1.0, 0.0};
      case 1: return {0.0, 1.0};
      case 2: return {-1.0, 0.0};
      default: return {0.0, -1.0};
    }
}

} // namespace

std::complex<double>
BasisImage::amplitude() const
{
    return iPower(phaseExp);
}

PauliString::PauliString(std::size_t num_qubits)
{
    require(num_qubits <= maxQubits,
            "PauliString supports at most ", maxQubits, " qubits");
    n = static_cast<std::uint8_t>(num_qubits);
}

PauliString
PauliString::fromLabel(std::string_view label)
{
    int phase_exp = 0;
    std::size_t pos = 0;
    while (pos < label.size() &&
           (label[pos] == '-' || label[pos] == '+' ||
            label[pos] == 'i')) {
        if (label[pos] == '-')
            phase_exp += 2;
        else if (label[pos] == 'i')
            phase_exp += 1;
        ++pos;
    }
    const std::string_view ops = label.substr(pos);
    PauliString result(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        // Leftmost char is the highest qubit.
        const std::size_t qubit = ops.size() - 1 - i;
        switch (ops[i]) {
          case 'I': break;
          case 'X': result.setOp(qubit, PauliOp::X); break;
          case 'Y': result.setOp(qubit, PauliOp::Y); break;
          case 'Z': result.setOp(qubit, PauliOp::Z); break;
          default:
            fatal("invalid Pauli label character '", ops[i], "' in '",
                  label, "'");
        }
    }
    result.phase = static_cast<std::uint8_t>(((phase_exp % 4) + 4) % 4);
    return result;
}

PauliString
PauliString::fromMasks(std::size_t num_qubits, std::uint64_t x_mask,
                       std::uint64_t z_mask, int phase_exp)
{
    PauliString result(num_qubits);
    const std::uint64_t valid =
        num_qubits == 64 ? ~std::uint64_t{0}
                         : ((std::uint64_t{1} << num_qubits) - 1);
    require((x_mask & ~valid) == 0 && (z_mask & ~valid) == 0,
            "PauliString::fromMasks: mask wider than qubit count");
    result.x = x_mask;
    result.z = z_mask;
    result.phase =
        static_cast<std::uint8_t>(((phase_exp % 4) + 4) % 4);
    return result;
}

void
PauliString::checkQubit(std::size_t q) const
{
    require(q < n, "qubit index ", q, " out of range for ", int{n},
            "-qubit Pauli string");
}

PauliOp
PauliString::op(std::size_t q) const
{
    checkQubit(q);
    return fromBits((x >> q) & 1, (z >> q) & 1);
}

void
PauliString::setOp(std::size_t q, PauliOp op)
{
    checkQubit(q);
    const std::uint64_t mask = std::uint64_t{1} << q;
    x = (x & ~mask) | (xBit(op) ? mask : 0);
    z = (z & ~mask) | (zBit(op) ? mask : 0);
}

std::complex<double>
PauliString::phaseFactor() const
{
    return iPower(phase);
}

PauliString
PauliString::withPhase(int delta) const
{
    PauliString result = *this;
    result.phase = static_cast<std::uint8_t>(
        ((phase + delta) % 4 + 4) % 4);
    return result;
}

std::size_t
PauliString::weight() const
{
    return static_cast<std::size_t>(std::popcount(x | z));
}

bool
PauliString::isIdentity() const
{
    return (x | z) == 0;
}

bool
PauliString::commutesWith(const PauliString &other) const
{
    return !anticommutesWith(other);
}

bool
PauliString::anticommutesWith(const PauliString &other) const
{
    require(n == other.n, "Pauli string width mismatch");
    // Symplectic inner product: parity of the number of positions
    // where the single-qubit operators anticommute.
    const int parity = std::popcount(x & other.z) +
                       std::popcount(z & other.x);
    return parity % 2 == 1;
}

PauliString
PauliString::operator*(const PauliString &other) const
{
    require(n == other.n, "Pauli string width mismatch");
    int phase_exp = phase + other.phase;
    std::uint64_t remaining = (x | z | other.x | other.z);
    while (remaining) {
        const int q = std::countr_zero(remaining);
        remaining &= remaining - 1;
        phase_exp += productPhase(op(q), other.op(q));
    }
    return fromMasks(n, x ^ other.x, z ^ other.z, phase_exp);
}

PauliString
PauliString::adjoint() const
{
    // The tensor part is Hermitian; conjugating i^k negates k.
    return fromMasks(n, x, z, -static_cast<int>(phase));
}

BasisImage
PauliString::applyToBasis(std::uint64_t bits) const
{
    // X/Y flip bits; Z/Y contribute (-1)^bit; each Y adds a factor i.
    int phase_exp = phase;
    phase_exp += 2 * std::popcount(z & bits);
    phase_exp += std::popcount(x & z);
    return BasisImage{bits ^ x, ((phase_exp % 4) + 4) % 4};
}

bool
PauliString::bareEquals(const PauliString &other) const
{
    return n == other.n && x == other.x && z == other.z;
}

bool
PauliString::operator<(const PauliString &other) const
{
    if (n != other.n)
        return n < other.n;
    if (x != other.x)
        return x < other.x;
    if (z != other.z)
        return z < other.z;
    return phase < other.phase;
}

std::string
PauliString::label() const
{
    static const char *prefixes[4] = {"", "i", "-", "-i"};
    std::string result = prefixes[phase];
    for (std::size_t i = 0; i < n; ++i)
        result += opChar(op(n - 1 - i));
    return result;
}

std::size_t
PauliString::hashValue() const
{
    std::uint64_t h = 0x9e3779b97f4a7c15ull ^ n;
    auto mix = [&h](std::uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(x);
    mix(z);
    mix(phase);
    return static_cast<std::size_t>(h);
}

std::size_t
productWeight(const PauliString &a, const PauliString &b)
{
    return static_cast<std::size_t>(
        std::popcount((a.xMask() ^ b.xMask()) |
                      (a.zMask() ^ b.zMask())));
}

} // namespace fermihedral::pauli
