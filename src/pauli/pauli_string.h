/**
 * @file
 * Phase-tracked Pauli strings over up to 64 qubits.
 *
 * A PauliString is i^phase times a tensor product of single-qubit
 * Pauli operators, stored in symplectic form as packed x/z bit masks.
 * Qubit 0 is the least-significant bit; the printed label follows the
 * paper's convention P = sigma_N (x) ... (x) sigma_1, i.e.\ the
 * leftmost character is the highest qubit.
 *
 * Key invariants:
 *  - Value type of three machine words; copying is trivial and all
 *    operations leave operands unchanged.
 *  - The x/z masks only ever have bits below numQubits() set, and
 *    the phase exponent is kept normalised to 0..3.
 *  - Two strings either commute or anticommute; commutesWith() is
 *    the symplectic-form parity popcount(x1 & z2) + popcount(z1 & x2)
 *    being even.
 *  - operator* tracks the exact i^k phase of the 2x2 matrix algebra,
 *    so P * P.adjoint() is the identity with phase exponent 0.
 */

#ifndef FERMIHEDRAL_PAULI_PAULI_STRING_H
#define FERMIHEDRAL_PAULI_PAULI_STRING_H

#include <complex>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "pauli/pauli_op.h"

namespace fermihedral::pauli {

/** Result of applying a Pauli string to a computational basis state. */
struct BasisImage
{
    /** Output basis state (bit q = qubit q). */
    std::uint64_t bits;
    /** Power of i multiplying the output state. */
    int phaseExp;

    /** The complex amplitude i^phaseExp. */
    std::complex<double> amplitude() const;
};

/**
 * An N-qubit Pauli string with a global i^k phase.
 *
 * Value type: cheap to copy (three words). Equality includes the
 * phase; bareEquals() compares only the tensor part.
 */
class PauliString
{
  public:
    /** Maximum supported width. */
    static constexpr std::size_t maxQubits = 64;

    /** Zero-qubit identity. */
    PauliString() = default;

    /** Identity string on num_qubits qubits. */
    explicit PauliString(std::size_t num_qubits);

    /**
     * Parse a label such as "XYZI", "-XX" or "iYZ".
     * The leftmost operator character is the highest qubit. An
     * optional prefix of '-' and/or 'i' sets the global phase.
     */
    static PauliString fromLabel(std::string_view label);

    /** Build from symplectic masks and a phase exponent. */
    static PauliString fromMasks(std::size_t num_qubits,
                                 std::uint64_t x_mask,
                                 std::uint64_t z_mask,
                                 int phase_exp = 0);

    std::size_t numQubits() const { return n; }

    /** Operator acting on qubit q. */
    PauliOp op(std::size_t q) const;

    /** Replace the operator acting on qubit q. */
    void setOp(std::size_t q, PauliOp op);

    /** x bit mask (bit q set when op(q) is X or Y). */
    std::uint64_t xMask() const { return x; }

    /** z bit mask (bit q set when op(q) is Z or Y). */
    std::uint64_t zMask() const { return z; }

    /** Global phase exponent k in i^k, normalised to 0..3. */
    int phaseExp() const { return phase; }

    /** The complex number i^phaseExp(). */
    std::complex<double> phaseFactor() const;

    /** Return a copy with phase multiplied by i^delta. */
    PauliString withPhase(int delta) const;

    /** Number of non-identity operators (the Pauli weight). */
    std::size_t weight() const;

    /** True when every operator is I (phase may be any). */
    bool isIdentity() const;

    /** True when this string commutes with other. */
    bool commutesWith(const PauliString &other) const;

    /** True when this string anticommutes with other. */
    bool anticommutesWith(const PauliString &other) const;

    /** Full product including the tracked phase. */
    PauliString operator*(const PauliString &other) const;

    /** Hermitian conjugate (conjugates the phase). */
    PauliString adjoint() const;

    /**
     * Apply to the computational basis state |bits>.
     * P |bits> = i^k |image.bits> with k = image.phaseExp.
     */
    BasisImage applyToBasis(std::uint64_t bits) const;

    /** Equality including phase. */
    bool operator==(const PauliString &other) const = default;

    /** Equality of the tensor part only (phase ignored). */
    bool bareEquals(const PauliString &other) const;

    /** Total order (by width, then masks, then phase). */
    bool operator<(const PauliString &other) const;

    /** Printable label with phase prefix, highest qubit first. */
    std::string label() const;

    /** Hash over width, masks and phase. */
    std::size_t hashValue() const;

  private:
    std::uint64_t x = 0;
    std::uint64_t z = 0;
    std::uint8_t n = 0;
    std::uint8_t phase = 0;

    void checkQubit(std::size_t q) const;
};

/**
 * Pauli weight of the (phaseless) product of two strings,
 * without constructing the product. Used heavily by annealing.
 */
std::size_t productWeight(const PauliString &a, const PauliString &b);

} // namespace fermihedral::pauli

template <>
struct std::hash<fermihedral::pauli::PauliString>
{
    std::size_t
    operator()(const fermihedral::pauli::PauliString &p) const
    {
        return p.hashValue();
    }
};

#endif // FERMIHEDRAL_PAULI_PAULI_STRING_H
