#include "pauli/pauli_sum.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace fermihedral::pauli {

PauliSum::PauliSum(std::size_t num_qubits) : n(num_qubits)
{
}

void
PauliSum::add(std::complex<double> coefficient,
              const PauliString &string)
{
    require(string.numQubits() == n,
            "PauliSum::add: string width ", string.numQubits(),
            " != sum width ", n);
    const std::complex<double> folded =
        coefficient * string.phaseFactor();
    termList.push_back(PauliTerm{
        folded,
        PauliString::fromMasks(n, string.xMask(), string.zMask())});
}

void
PauliSum::add(const PauliSum &other)
{
    require(other.n == n, "PauliSum::add: width mismatch");
    for (const auto &term : other.termList)
        termList.push_back(term);
}

void
PauliSum::scale(std::complex<double> factor)
{
    for (auto &term : termList)
        term.coefficient *= factor;
}

void
PauliSum::simplify(double epsilon)
{
    std::sort(termList.begin(), termList.end(),
              [](const PauliTerm &a, const PauliTerm &b) {
                  return a.string < b.string;
              });
    std::vector<PauliTerm> combined;
    for (const auto &term : termList) {
        if (!combined.empty() &&
            combined.back().string == term.string) {
            combined.back().coefficient += term.coefficient;
        } else {
            combined.push_back(term);
        }
    }
    std::erase_if(combined, [epsilon](const PauliTerm &term) {
        return std::abs(term.coefficient) <= epsilon;
    });
    termList = std::move(combined);
}

std::size_t
PauliSum::totalWeight() const
{
    std::size_t total = 0;
    for (const auto &term : termList)
        total += term.string.weight();
    return total;
}

double
PauliSum::maxImaginaryMagnitude() const
{
    double max_imag = 0.0;
    for (const auto &term : termList)
        max_imag = std::max(max_imag,
                            std::abs(term.coefficient.imag()));
    return max_imag;
}

bool
PauliSum::isHermitian(double epsilon) const
{
    return maxImaginaryMagnitude() <= epsilon;
}

std::string
PauliSum::toString(int precision) const
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision);
    for (const auto &term : termList) {
        oss << std::showpos << term.coefficient.real();
        if (std::abs(term.coefficient.imag()) > 1e-12)
            oss << term.coefficient.imag() << 'i';
        oss << std::noshowpos << " * " << term.string.label() << '\n';
    }
    return oss.str();
}

} // namespace fermihedral::pauli
