/**
 * @file
 * Linear combinations of Pauli strings (qubit Hamiltonians).
 *
 * A PauliSum stores terms as (complex coefficient, phaseless string)
 * pairs; the string's tracked phase is folded into the coefficient on
 * insertion, so equal tensors always combine. Encoded Fermionic
 * Hamiltonians are PauliSums with (numerically) real coefficients.
 *
 * Key invariants:
 *  - Stored PauliTerm strings always have phase exponent 0 — the
 *    phase lives entirely in the coefficient.
 *  - All terms share the sum's qubit count; add() rejects width
 *    mismatches.
 *  - add() is lazy (duplicates accumulate); only simplify()
 *    combines equal tensors, drops near-zero terms and sorts into
 *    canonical order, after which equal sums compare term-by-term.
 */

#ifndef FERMIHEDRAL_PAULI_PAULI_SUM_H
#define FERMIHEDRAL_PAULI_PAULI_SUM_H

#include <complex>
#include <string>
#include <vector>

#include "pauli/pauli_string.h"

namespace fermihedral::pauli {

/** A single weighted Pauli string. The string carries no phase. */
struct PauliTerm
{
    std::complex<double> coefficient;
    PauliString string;
};

/** A sum of weighted Pauli strings on a fixed qubit count. */
class PauliSum
{
  public:
    PauliSum() = default;

    /** Empty sum over num_qubits qubits. */
    explicit PauliSum(std::size_t num_qubits);

    std::size_t numQubits() const { return n; }

    /**
     * Add coefficient * string. The string's phase is folded into
     * the coefficient. Terms are not combined until simplify().
     */
    void add(std::complex<double> coefficient,
             const PauliString &string);

    /** Add every term of another sum. */
    void add(const PauliSum &other);

    /** Multiply every coefficient by a scalar. */
    void scale(std::complex<double> factor);

    /**
     * Combine equal tensors and drop terms with |coeff| <= epsilon.
     * Terms end up sorted in canonical string order.
     */
    void simplify(double epsilon = 1e-12);

    const std::vector<PauliTerm> &terms() const { return termList; }

    /** Number of stored terms. */
    std::size_t size() const { return termList.size(); }

    /**
     * Total Hamiltonian Pauli weight: the sum of the Pauli weights
     * of all non-identity terms (the paper's cost metric).
     */
    std::size_t totalWeight() const;

    /** Largest |imaginary part| over all coefficients. */
    double maxImaginaryMagnitude() const;

    /** True when all coefficients are real within epsilon. */
    bool isHermitian(double epsilon = 1e-9) const;

    /** Multi-line human-readable rendering. */
    std::string toString(int precision = 6) const;

  private:
    std::size_t n = 0;
    std::vector<PauliTerm> termList;
};

} // namespace fermihedral::pauli

#endif // FERMIHEDRAL_PAULI_PAULI_SUM_H
