#include "sat/clause_arena.h"

#include <bit>

#include "common/logging.h"

namespace fermihedral::sat {

ClauseRef
ClauseArena::alloc(std::span<const Lit> literals, bool learnt)
{
    require(!literals.empty(), "allocating an empty clause");
    require(words.size() + headerWords + literals.size() <
                crefUndef,
            "clause arena exceeds 32-bit addressing");
    const auto ref = static_cast<ClauseRef>(words.size());
    words.push_back(
        (static_cast<std::uint32_t>(literals.size()) << 2) |
        (learnt ? 1u : 0u));
    words.push_back(std::bit_cast<std::uint32_t>(0.0f));
    words.push_back(0);
    for (const Lit lit : literals)
        words.push_back(static_cast<std::uint32_t>(lit.code));
    return ref;
}

float
ClauseArena::activity(ClauseRef ref) const
{
    return std::bit_cast<float>(words[ref + 1]);
}

void
ClauseArena::activity(ClauseRef ref, float value)
{
    words[ref + 1] = std::bit_cast<std::uint32_t>(value);
}

void
ClauseArena::shrink(ClauseRef ref, std::uint32_t new_size)
{
    const std::uint32_t old_size = size(ref);
    require(new_size >= 1 && new_size <= old_size,
            "shrink to invalid size ", new_size);
    wastedWords += old_size - new_size;
    words[ref] = (new_size << 2) | (words[ref] & 3);
}

void
ClauseArena::free(ClauseRef ref)
{
    wastedWords += size(ref) + headerWords;
}

ClauseRef
ClauseArena::relocate(ClauseRef ref, ClauseArena &to)
{
    if (isRelocated(ref))
        return forward(ref);
    const ClauseRef copy = to.alloc(clause(ref), learnt(ref));
    to.activity(copy, activity(ref));
    to.lbd(copy, lbd(ref));
    // Turn the old header into a forwarding record: the size field
    // is kept so validRef() still recognises the slot, the activity
    // word now holds the destination.
    words[ref] |= 2;
    words[ref + 1] = copy;
    return copy;
}

bool
ClauseArena::validRef(ClauseRef ref) const
{
    if (ref == crefUndef ||
        static_cast<std::size_t>(ref) + headerWords > words.size())
        return false;
    const std::uint32_t len = size(ref);
    return len >= 1 && static_cast<std::size_t>(ref) + headerWords +
                           len <= words.size();
}

} // namespace fermihedral::sat
