/**
 * @file
 * Bump-allocated clause storage with 32-bit references.
 *
 * All clauses of one solver live in a single contiguous word array.
 * A ClauseRef is the word offset of a clause header, so the whole
 * database is addressed with 4-byte handles instead of pointers,
 * halving watcher size and keeping propagation cache-friendly. Each
 * clause inlines its metadata ahead of the literals:
 *
 *   word 0: size << 2 | relocated << 1 | learnt
 *   word 1: activity (float bits) for learnt clauses,
 *           forwarding address while relocated
 *   word 2: LBD ("glue") for learnt clauses
 *   word 3...: literal codes
 *
 * Clauses shrink in place (strengthening, vivification) and are
 * freed by marking; the freed words are counted as waste. When the
 * waste crosses a threshold the owner runs a copying collection:
 * every live clause is relocated into a fresh arena and the old
 * header becomes a forwarding record, so the owner can rewrite every
 * stored ClauseRef (clause lists, watcher lists, reason slots) by a
 * single forward() lookup.
 *
 * Key invariants:
 *  - A ClauseRef returned by alloc() stays valid — same literals,
 *    same metadata — until free() or the relocation that retires
 *    the arena generation; refs never escape the owning solver.
 *  - shrink() only shortens: freed literal words are accounted as
 *    waste but the header offset is unchanged, so watcher lists
 *    remain valid as long as the first two literals are kept.
 *  - After relocate(), isRelocated(old_ref) is true and
 *    forward(old_ref) names the copy in the destination arena;
 *    metadata and literal order are preserved exactly.
 *  - wasted() never exceeds size(); both are in 32-bit words.
 */

#ifndef FERMIHEDRAL_SAT_CLAUSE_ARENA_H
#define FERMIHEDRAL_SAT_CLAUSE_ARENA_H

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "sat/types.h"

namespace fermihedral::sat {

/** Offset of a clause header in a ClauseArena. */
using ClauseRef = std::uint32_t;

/** Sentinel for "no clause" (decision / unit reasons). */
constexpr ClauseRef crefUndef =
    std::numeric_limits<ClauseRef>::max();

/** Bump allocator for clauses (see file comment). */
class ClauseArena
{
  public:
    /** Words of metadata ahead of each clause's literals. */
    static constexpr std::uint32_t headerWords = 3;

    ClauseArena() { words.reserve(1 << 16); }

    /** Append a clause; literals must be non-empty. */
    ClauseRef alloc(std::span<const Lit> literals, bool learnt);

    std::uint32_t size(ClauseRef ref) const
    {
        return words[ref] >> 2;
    }
    bool learnt(ClauseRef ref) const { return words[ref] & 1; }

    Lit *lits(ClauseRef ref)
    {
        return reinterpret_cast<Lit *>(&words[ref + headerWords]);
    }
    const Lit *lits(ClauseRef ref) const
    {
        return reinterpret_cast<const Lit *>(
            &words[ref + headerWords]);
    }
    std::span<const Lit> clause(ClauseRef ref) const
    {
        return {lits(ref), size(ref)};
    }

    float activity(ClauseRef ref) const;
    void activity(ClauseRef ref, float value);

    std::uint32_t lbd(ClauseRef ref) const
    {
        return words[ref + 2];
    }
    void lbd(ClauseRef ref, std::uint32_t value)
    {
        words[ref + 2] = value;
    }

    /** Shorten a clause in place; freed words become waste. */
    void shrink(ClauseRef ref, std::uint32_t new_size);

    /** Retire a clause; its words become waste. */
    void free(ClauseRef ref);

    /**
     * Copy a live clause into `to` and leave a forwarding record
     * behind. Idempotent: a second call returns the first copy.
     */
    ClauseRef relocate(ClauseRef ref, ClauseArena &to);

    bool isRelocated(ClauseRef ref) const
    {
        return words[ref] & 2;
    }

    /** Destination of a relocated clause. */
    ClauseRef forward(ClauseRef ref) const
    {
        return static_cast<ClauseRef>(words[ref + 1]);
    }

    /** Total words allocated. */
    std::size_t size() const { return words.size(); }

    /** Words retired by shrink()/free(). */
    std::size_t wasted() const { return wastedWords; }

    /** True when `ref` points at a plausible clause header. */
    bool validRef(ClauseRef ref) const;

  private:
    std::vector<std::uint32_t> words;
    std::size_t wastedWords = 0;
};

} // namespace fermihedral::sat

#endif // FERMIHEDRAL_SAT_CLAUSE_ARENA_H
