/**
 * @file
 * DIMACS CNF export/import.
 *
 * Lets the generated encoding instances run on external solvers
 * (Kissat, CaDiCaL) for cross-checking, and lets regression CNFs be
 * loaded back into this solver.
 *
 * Key invariants:
 *  - toDimacs(parseDimacs(text)) preserves the clause list exactly
 *    (same clauses, same literal order); only comments and
 *    whitespace are normalised.
 *  - Internal 0-based variables map to DIMACS 1-based integers as
 *    var + 1, negative for negated literals.
 *  - parseDimacs() rejects clauses containing a duplicate or
 *    contradictory (x and NOT x) literal outright: such clauses
 *    are invariably generator bugs, and catching them at the
 *    parser keeps them out of the solver and the simplifier.
 *  - snapshotCnf() exports only problem clauses and top-level
 *    facts, never learnt clauses: the result is logically
 *    equivalent to the solver's addClause() stream (duplicate,
 *    tautological and satisfied clauses may be dropped and clauses
 *    may be shrunk by inprocessing) and is stable across learnt-DB
 *    reduction, clearLearnts() and arena garbage collection.
 */

#ifndef FERMIHEDRAL_SAT_DIMACS_H
#define FERMIHEDRAL_SAT_DIMACS_H

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/solver.h"
#include "sat/types.h"

namespace fermihedral::sat {

/** A plain CNF: clause list over 1-based DIMACS variables. */
struct Cnf
{
    std::size_t numVars = 0;
    std::vector<std::vector<Lit>> clauses;

    /** Append a clause (variables are created on demand). */
    void addClause(std::span<const Lit> literals);

    /**
     * Load every clause into a solver. Returns false when the
     * solver detects a conflict at load time; how much it detects
     * is the solver's affair (the plain Solver unit-propagates per
     * clause, a staging solver like PortfolioSolver reports only
     * direct contradictions and finds the rest at the first
     * solve()). UNSAT itself is never lost — solve() still says so.
     */
    bool loadInto(SolverBase &solver) const;
};

/** Render a CNF in DIMACS format. */
std::string toDimacs(const Cnf &cnf);

/**
 * Parse DIMACS text (comments and the problem line are accepted and
 * validated loosely). Throws FatalError on malformed input.
 */
Cnf parseDimacs(const std::string &text);

/**
 * Snapshot of a solver's live problem clauses as a Cnf (see
 * Solver::problemClausesSnapshot): top-level facts as units plus the
 * current problem clauses, never learnt clauses. The variable count
 * is the solver's.
 */
Cnf snapshotCnf(const Solver &solver);

} // namespace fermihedral::sat

#endif // FERMIHEDRAL_SAT_DIMACS_H
