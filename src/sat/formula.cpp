#include "sat/formula.h"

#include "common/logging.h"

namespace fermihedral::sat {

Formula::Formula(SolverBase &solver) : sat(solver)
{
}

Lit
Formula::newLit()
{
    return mkLit(sat.newVar());
}

Lit
Formula::trueLit()
{
    if (constTrue == litUndef) {
        constTrue = newLit();
        sat.addUnit(constTrue);
    }
    return constTrue;
}

Lit
Formula::falseLit()
{
    return ~trueLit();
}

void
Formula::assertTrue(Lit lit)
{
    sat.addUnit(lit);
}

void
Formula::assertFalse(Lit lit)
{
    sat.addUnit(~lit);
}

void
Formula::addClause(std::span<const Lit> literals)
{
    sat.addClause(literals);
}

void
Formula::addClause(std::initializer_list<Lit> literals)
{
    sat.addClause(literals);
}

Lit
Formula::mkAnd(std::span<const Lit> inputs)
{
    if (inputs.empty())
        return trueLit();
    if (inputs.size() == 1)
        return inputs[0];
    const Lit y = newLit();
    // y -> each input.
    for (const Lit input : inputs)
        sat.addBinary(~y, input);
    // all inputs -> y.
    std::vector<Lit> clause;
    clause.reserve(inputs.size() + 1);
    for (const Lit input : inputs)
        clause.push_back(~input);
    clause.push_back(y);
    sat.addClause(clause);
    return y;
}

Lit
Formula::mkAnd(std::initializer_list<Lit> inputs)
{
    return mkAnd(std::span<const Lit>(inputs.begin(), inputs.size()));
}

Lit
Formula::mkOr(std::span<const Lit> inputs)
{
    if (inputs.empty())
        return falseLit();
    if (inputs.size() == 1)
        return inputs[0];
    const Lit y = newLit();
    // each input -> y.
    for (const Lit input : inputs)
        sat.addBinary(~input, y);
    // y -> some input.
    std::vector<Lit> clause;
    clause.reserve(inputs.size() + 1);
    for (const Lit input : inputs)
        clause.push_back(input);
    clause.push_back(~y);
    sat.addClause(clause);
    return y;
}

Lit
Formula::mkOr(std::initializer_list<Lit> inputs)
{
    return mkOr(std::span<const Lit>(inputs.begin(), inputs.size()));
}

Lit
Formula::mkXor(Lit a, Lit b)
{
    const Lit y = newLit();
    sat.addTernary(~y, a, b);
    sat.addTernary(~y, ~a, ~b);
    sat.addTernary(y, ~a, b);
    sat.addTernary(y, a, ~b);
    return y;
}

Lit
Formula::mkXorChain(std::span<const Lit> inputs)
{
    if (inputs.empty())
        return falseLit();
    Lit acc = inputs[0];
    for (std::size_t i = 1; i < inputs.size(); ++i)
        acc = mkXor(acc, inputs[i]);
    return acc;
}

void
Formula::assertXorEquals(std::span<const Lit> inputs, bool parity)
{
    if (inputs.empty()) {
        require(!parity, "assertXorEquals: empty xor cannot be true");
        return;
    }
    if (inputs.size() == 1) {
        if (parity)
            assertTrue(inputs[0]);
        else
            assertFalse(inputs[0]);
        return;
    }
    // Fold all but the last two inputs into an accumulator, then
    // assert the final binary xor directly with four (two) clauses.
    Lit acc = inputs[0];
    for (std::size_t i = 1; i + 1 < inputs.size(); ++i)
        acc = mkXor(acc, inputs[i]);
    const Lit last = inputs[inputs.size() - 1];
    if (parity) {
        // acc xor last = 1  <=>  acc != last.
        sat.addBinary(acc, last);
        sat.addBinary(~acc, ~last);
    } else {
        // acc xor last = 0  <=>  acc == last.
        sat.addBinary(~acc, last);
        sat.addBinary(acc, ~last);
    }
}

} // namespace fermihedral::sat
