/**
 * @file
 * Boolean circuit construction with Tseitin CNF conversion.
 *
 * This layer plays the role Z3 plays in the original artifact: the
 * encoding constraints of Section 3 are written as and/or/xor gates
 * over literals, and each gate is converted to CNF by introducing one
 * auxiliary variable (the Tseitin transformation), keeping the clause
 * count linear in the formula size.
 *
 * Key invariants:
 *  - Every mk*() gate is a full equivalence (y <-> gate(inputs)),
 *    so formulas stay equisatisfiable with the circuit they encode
 *    regardless of input polarity.
 *  - All variables and clauses go into the solver passed at
 *    construction (any SolverBase: the plain CDCL engine or the
 *    preprocessing portfolio); Formula itself holds no clause
 *    state beyond the shared true-literal, and several Formulas
 *    may target one solver.
 *  - Gate clause counts are fixed: and/or cost |inputs| + 1
 *    clauses, a binary xor costs 4; mkXorChain is linear in the
 *    input count.
 */

#ifndef FERMIHEDRAL_SAT_FORMULA_H
#define FERMIHEDRAL_SAT_FORMULA_H

#include <span>
#include <vector>

#include "sat/solver_base.h"
#include "sat/types.h"

namespace fermihedral::sat {

/** Gate-level formula builder writing CNF into a SolverBase. */
class Formula
{
  public:
    /** All clauses and variables are created in the given solver. */
    explicit Formula(SolverBase &solver);

    SolverBase &solver() { return sat; }

    /** Fresh free literal. */
    Lit newLit();

    /** A literal constrained to be true (shared constant). */
    Lit trueLit();

    /** A literal constrained to be false (shared constant). */
    Lit falseLit();

    /** Assert a literal at the top level. */
    void assertTrue(Lit lit);

    /** Assert the negation of a literal at the top level. */
    void assertFalse(Lit lit);

    /** Add a raw CNF clause. */
    void addClause(std::span<const Lit> literals);
    void addClause(std::initializer_list<Lit> literals);

    /**
     * y <-> AND(inputs). Returns y. Empty input yields trueLit().
     */
    Lit mkAnd(std::span<const Lit> inputs);
    Lit mkAnd(std::initializer_list<Lit> inputs);

    /**
     * y <-> OR(inputs). Returns y. Empty input yields falseLit().
     */
    Lit mkOr(std::span<const Lit> inputs);
    Lit mkOr(std::initializer_list<Lit> inputs);

    /** y <-> a XOR b. */
    Lit mkXor(Lit a, Lit b);

    /**
     * y <-> XOR(inputs), built as a balanced chain of binary xors
     * (each adds one auxiliary variable and four clauses).
     * Empty input yields falseLit().
     */
    Lit mkXorChain(std::span<const Lit> inputs);

    /** Assert XOR(inputs) = parity without naming the output. */
    void assertXorEquals(std::span<const Lit> inputs, bool parity);

  private:
    SolverBase &sat;
    Lit constTrue = litUndef;
};

} // namespace fermihedral::sat

#endif // FERMIHEDRAL_SAT_FORMULA_H
