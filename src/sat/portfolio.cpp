#include "sat/portfolio.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/telemetry.h"
#include "common/timer.h"

namespace fermihedral::sat {

// --------------------------------------------------------------------
// ClauseExchange
// --------------------------------------------------------------------

ClauseExchange::ClauseExchange(std::size_t instances,
                               std::uint32_t max_lbd,
                               std::size_t max_size)
    : lbdLimit(max_lbd), sizeLimit(max_size), cursors(instances, 0)
{
}

void
ClauseExchange::publish(std::size_t from,
                        std::span<const Lit> literals,
                        std::uint32_t lbd)
{
    // The ceilings are enforced here, not just at the call site:
    // a flood of long or high-LBD clauses would bloat every other
    // instance's database at each restart.
    if (literals.empty() || literals.size() > sizeLimit ||
        (literals.size() > 1 && lbd > lbdLimit)) {
        return;
    }
    const std::lock_guard<std::mutex> guard(mutex);
    // Bound the log even when an instance stalls between restarts
    // (late geometric intervals can span most of a solve, freezing
    // its cursor). Sharing is best-effort: dropping the oldest
    // half only costs stragglers clauses they were slowest to
    // fetch.
    constexpr std::size_t maxLogEntries = 1 << 14;
    if (log.size() >= maxLogEntries) {
        const std::size_t drop = log.size() / 2;
        log.erase(log.begin(),
                  log.begin() + static_cast<std::ptrdiff_t>(drop));
        totalPruned += drop;
        for (std::size_t &cursor : cursors)
            cursor = cursor > drop ? cursor - drop : 0;
    }
    log.push_back(Entry{
        from,
        SharedClause{
            std::vector<Lit>(literals.begin(), literals.end()),
            lbd}});
}

void
ClauseExchange::collect(std::size_t instance,
                        std::vector<SharedClause> &out)
{
    const std::lock_guard<std::mutex> guard(mutex);
    std::size_t &cursor = cursors[instance];
    for (; cursor < log.size(); ++cursor) {
        if (log[cursor].from != instance)
            out.push_back(log[cursor].clause);
    }
    // Prune the prefix every cursor has passed: without this the
    // append-only log grows for the lifetime of an incremental
    // descent. Cursors are offsets into `log`, so shift them too.
    const std::size_t consumed =
        *std::min_element(cursors.begin(), cursors.end());
    if (consumed > 0) {
        log.erase(log.begin(),
                  log.begin() +
                      static_cast<std::ptrdiff_t>(consumed));
        totalPruned += consumed;
        for (std::size_t &c : cursors)
            c -= consumed;
    }
}

std::uint64_t
ClauseExchange::published() const
{
    const std::lock_guard<std::mutex> guard(mutex);
    return totalPruned + log.size();
}

// --------------------------------------------------------------------
// Diversification
// --------------------------------------------------------------------

SolverConfig
PortfolioSolver::instanceConfig(std::size_t index)
{
    SolverConfig config;
    if (index == 0)
        return config; // the stock solver: plain-Solver-identical
    config.seed = 0x9e3779b97f4a7c15ull * (index + 1);
    switch (index % 4) {
    case 1:
        // Opposite default phase, geometric restarts.
        config.initialPhase = true;
        config.restartSchedule = SolverConfig::Restarts::Geometric;
        config.restartBase = 100;
        config.restartGrowth = 1.5;
        break;
    case 2:
        // Randomized phases with occasional random decisions and
        // rapid Luby restarts.
        config.randomizePhases = true;
        config.randomBranchFreq = 0.02;
        config.restartBase = 50;
        break;
    case 3:
        // Slow activity decay (more breadth), long restarts.
        config.varDecay = 0.99;
        config.restartSchedule = SolverConfig::Restarts::Geometric;
        config.restartBase = 300;
        config.restartGrowth = 2.0;
        break;
    default:
        // Stock heuristics at a different seed and restart pace.
        config.randomBranchFreq = 0.01;
        config.restartBase = 150;
        break;
    }
    return config;
}

// --------------------------------------------------------------------
// PortfolioSolver
// --------------------------------------------------------------------

PortfolioSolver::PortfolioSolver(const PortfolioOptions &options)
    : options(options),
      instanceCount(0),
      threadCount(ThreadPool::resolveThreadCount(
          static_cast<std::int64_t>(options.threads)))
{
    instanceCount = options.instances > 0 ? options.instances
                                          : threadCount;
    require(instanceCount >= 1, "portfolio needs an instance");
}

PortfolioSolver::~PortfolioSolver() = default;

Var
PortfolioSolver::newVar()
{
    const Var var = static_cast<Var>(varCount);
    ++varCount;
    frozenVars.push_back(0);
    stagedUnits.push_back(LBool::Undef);
    if (built) {
        for (auto &instance : instances)
            instance->newVar();
    }
    return var;
}

std::size_t
PortfolioSolver::numClauses() const
{
    return built ? instances.front()->numClauses()
                 : pendingClauses.size();
}

void
PortfolioSolver::checkIncrementalLits(
    std::span<const Lit> literals) const
{
    for (const Lit lit : literals) {
        const Var var = litVar(lit);
        require(var >= 0 &&
                    static_cast<std::size_t>(var) < varCount,
                "literal references unknown variable");
        // Variables created after the build postdate the
        // simplifier and can never have been eliminated.
        require(!simplifier ||
                    static_cast<std::size_t>(var) >=
                        simplifier->numVars() ||
                    !simplifier->isEliminated(var),
                "variable ", var,
                " was eliminated by preprocessing; freeze() "
                "variables used after the first solve");
    }
}

bool
PortfolioSolver::addClause(std::span<const Lit> literals)
{
    if (!built) {
        for (const Lit lit : literals) {
            require(litVar(lit) >= 0 &&
                        static_cast<std::size_t>(litVar(lit)) <
                            varCount,
                    "clause references unknown variable");
        }
        if (literals.empty())
            stagedUnsat = true;
        // Track staged unit clauses so directly contradictory
        // units report the conflict immediately (the Cnf::loadInto
        // contract); deeper conflicts surface at the first solve.
        if (literals.size() == 1) {
            const Var var = litVar(literals[0]);
            const LBool value = litSign(literals[0])
                                    ? LBool::False
                                    : LBool::True;
            if (stagedUnits[var] == -value)
                stagedUnsat = true;
            else
                stagedUnits[var] = value;
        }
        pendingClauses.emplace_back(literals.begin(),
                                    literals.end());
        return !stagedUnsat;
    }
    checkIncrementalLits(literals);
    // Instances hold the same problem clauses but may have adopted
    // different shared units, so level-0 unsatisfiability can
    // surface in any one of them first.
    bool result = true;
    for (auto &instance : instances)
        result = instance->addClause(literals) && result;
    return result;
}

void
PortfolioSolver::setPolarity(Var var, bool value)
{
    require(static_cast<std::size_t>(var) < varCount,
            "setPolarity on unknown variable");
    if (!built) {
        pendingPolarity.emplace_back(var, value);
        return;
    }
    for (auto &instance : instances)
        instance->setPolarity(var, value);
}

void
PortfolioSolver::boostActivity(Var var, double amount)
{
    require(static_cast<std::size_t>(var) < varCount,
            "boostActivity on unknown variable");
    if (!built) {
        pendingActivity.emplace_back(var, amount);
        return;
    }
    for (auto &instance : instances)
        instance->boostActivity(var, amount);
}

void
PortfolioSolver::freeze(Var var)
{
    require(static_cast<std::size_t>(var) < varCount,
            "freeze on unknown variable");
    // After the build the formula is already simplified; freezing
    // is only meaningful for variables that survived, which are
    // exactly the ones still usable anyway.
    if (!built)
        frozenVars[var] = 1;
}

void
PortfolioSolver::build(bool skip_preprocess)
{
    require(!built, "portfolio built twice");
    telemetry::TraceSpan span("portfolio.build");
    if (span.active()) {
        span.arg("instances", instanceCount);
        span.arg("clauses", pendingClauses.size());
    }

    std::vector<std::vector<Lit>> load;
    const bool under_ceiling =
        options.preprocessMaxClauses == 0 ||
        pendingClauses.size() <= options.preprocessMaxClauses;
    if (options.preprocess && under_ceiling && !skip_preprocess &&
        !stagedUnsat) {
        simplifier = std::make_unique<Simplifier>(varCount);
        for (const auto &clause : pendingClauses)
            simplifier->addClause(clause);
        for (std::size_t var = 0; var < varCount; ++var) {
            if (frozenVars[var])
                simplifier->freeze(static_cast<Var>(var));
        }
        simplifier->run(options.simplify);
        portfolio.simplifier = simplifier->stats();
        if (simplifier->inconsistent())
            topLevelUnsat = true;
        else
            load = simplifier->simplifiedClauses();
    } else {
        if (stagedUnsat)
            topLevelUnsat = true;
        load = std::move(pendingClauses);
        pendingClauses.clear();
    }

    // Instances are independent until the exchange connects them,
    // so construction and clause loading fan out over the pool —
    // loading a large instance N times serially would multiply
    // the first solve's construction wall-clock by N.
    pool = std::make_unique<ThreadPool>(
        std::min(threadCount, instanceCount));
    instances.resize(instanceCount);
    pool->forEach(instanceCount, [&](std::size_t i) {
        auto instance =
            std::make_unique<Solver>(instanceConfig(i));
        for (std::size_t var = 0; var < varCount; ++var)
            instance->newVar();
        for (const auto &[var, value] : pendingPolarity)
            instance->setPolarity(var, value);
        for (const auto &[var, amount] : pendingActivity)
            instance->boostActivity(var, amount);
        if (!topLevelUnsat) {
            for (const auto &clause : load)
                instance->addClause(clause);
        }
        instances[i] = std::move(instance);
    });

    // Clause sharing only in racing mode: import order is a race,
    // which deterministic arbitration must not observe.
    if (!options.deterministic && options.shareClauses &&
        instanceCount > 1) {
        exchange = std::make_unique<ClauseExchange>(
            instanceCount, options.shareMaxLbd,
            options.shareMaxSize);
        for (std::size_t i = 0; i < instanceCount; ++i)
            instances[i]->connectExchange(exchange.get(), i);
    }

    pendingClauses.clear();
    pendingClauses.shrink_to_fit();
    pendingPolarity.clear();
    pendingActivity.clear();
    built = true;
}

void
PortfolioSolver::prepare()
{
    if (!built)
        build(/*skip_preprocess=*/false);
}

bool
PortfolioSolver::inprocess()
{
    if (!built || topLevelUnsat)
        return !inconsistent();
    // Each instance inprocesses its own database; the pass is a
    // per-instance deterministic function of its state, so fanning
    // out over the pool cannot perturb deterministic arbitration.
    telemetry::TraceSpan span("portfolio.inprocess");
    pool->forEach(instanceCount, [&](std::size_t i) {
        instances[i]->inprocess(options.inprocess);
    });
    return !inconsistent();
}

void
PortfolioSolver::clearLearnts()
{
    if (!built)
        return;
    for (auto &instance : instances)
        instance->clearLearnts();
}

SolveStatus
PortfolioSolver::solve(std::span<const Lit> assumptions,
                       const Budget &budget)
{
    if (!built)
        build(/*skip_preprocess=*/!assumptions.empty());
    telemetry::TraceSpan span("portfolio.solve");
    if (span.active()) {
        span.arg("instances", instanceCount);
        span.arg("racing", !options.deterministic);
    }
    ++portfolio.solves;
    if (topLevelUnsat) {
        ++portfolio.unsatAnswers;
        portfolio.lastWinner = 0;
        return SolveStatus::Unsat;
    }
    checkIncrementalLits(assumptions);

    SolveStatus status = SolveStatus::Unknown;
    std::size_t winner_index = 0;
    if (instanceCount == 1) {
        status = instances[0]->solve(assumptions, budget);
    } else {
        std::vector<SolveStatus> results(instanceCount,
                                         SolveStatus::Unknown);
        // One shared cancellation flag: the first racing winner
        // raises it for everyone. Deterministic mode never cancels
        // and passes the caller's own flag straight through.
        std::atomic<bool> stop{false};
        std::atomic<int> first_decisive{-1};
        Timer solve_timer;

        // Racing instances watch the shared flag instead of the
        // caller's, so a caller-supplied Budget::stopFlag must be
        // relayed into it by a polling watcher.
        std::atomic<bool> watcher_done{false};
        std::thread watcher;
        if (!options.deterministic && budget.stopFlag) {
            watcher = std::thread([&] {
                while (!watcher_done.load(
                    std::memory_order_relaxed)) {
                    if (budget.stopFlag->load(
                            std::memory_order_relaxed)) {
                        stop.store(true,
                                   std::memory_order_relaxed);
                        return;
                    }
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(5));
                }
            });
        }

        pool->forEach(instanceCount, [&](std::size_t i) {
            // One span per instance, recorded on the worker thread
            // that ran it: a --trace timeline shows the race the
            // arbitration (racing or deterministic) chose from.
            telemetry::TraceSpan instance_span("portfolio.instance");
            if (instance_span.active())
                instance_span.arg("instance", i);
            Budget local = budget;
            if (!options.deterministic)
                local.stopFlag = &stop;
            // The wall budget bounds this solve() call, not each
            // instance: with fewer threads than instances the
            // stragglers only get what the earlier finishers left
            // over, so the call never overshoots the caller's
            // budget by a factor of the portfolio size.
            if (budget.maxSeconds > 0) {
                local.maxSeconds =
                    budget.maxSeconds - solve_timer.seconds();
                if (local.maxSeconds <= 0) {
                    if (instance_span.active())
                        instance_span.arg("status", "skipped");
                    return; // stays Unknown
                }
            }
            const SolveStatus result =
                instances[i]->solve(assumptions, local);
            results[i] = result;
            if (instance_span.active()) {
                instance_span.arg(
                    "status",
                    result == SolveStatus::Sat
                        ? "sat"
                        : result == SolveStatus::Unsat ? "unsat"
                                                       : "unknown");
            }
            if (result == SolveStatus::Unknown)
                return;
            // Deterministic mode cancels nobody — not even
            // higher-index instances a lower decisive index has
            // already beaten. Cancellation would make the loser's
            // persistent heuristic state (learnt clauses, phases)
            // depend on the thread schedule, and that state feeds
            // the NEXT incremental solve, where the loser may be
            // the winner: bit-identity across thread counts holds
            // precisely because every instance's trajectory is
            // schedule-independent.
            if (options.deterministic)
                return;
            int expected = -1;
            if (first_decisive.compare_exchange_strong(
                    expected, static_cast<int>(i))) {
                stop.store(true, std::memory_order_relaxed);
            }
        });

        if (watcher.joinable()) {
            watcher_done.store(true, std::memory_order_relaxed);
            watcher.join();
        }

        if (options.deterministic) {
            // Fixed arbitration: the decisive instance with the
            // lowest index wins, making the outcome (and model) a
            // pure function of the call sequence and budgets.
            bool found = false;
            for (std::size_t i = 0; i < instanceCount; ++i) {
                if (results[i] != SolveStatus::Unknown) {
                    winner_index = i;
                    status = results[i];
                    found = true;
                    break;
                }
            }
            if (!found)
                status = SolveStatus::Unknown;
        } else {
            const int first = first_decisive.load();
            if (first >= 0) {
                winner_index = static_cast<std::size_t>(first);
                status = results[winner_index];
            }
        }
    }

    portfolio.lastWinner = winner_index;
    if (span.active())
        span.arg("winner", winner_index);
    switch (status) {
    case SolveStatus::Sat:
        ++portfolio.satAnswers;
        publishModel(*instances[winner_index]);
        break;
    case SolveStatus::Unsat:
        ++portfolio.unsatAnswers;
        break;
    case SolveStatus::Unknown:
        ++portfolio.unknownAnswers;
        break;
    }
    return status;
}

void
PortfolioSolver::publishModel(const Solver &winner)
{
    fullModel.resize(varCount, LBool::Undef);
    for (std::size_t var = 0; var < varCount; ++var)
        fullModel[var] = winner.modelValue(static_cast<Var>(var));
    // Eliminated variables carry arbitrary values in the winner's
    // model (they occur in no clause there); the witness stack
    // overwrites them with values satisfying the original formula.
    if (simplifier)
        simplifier->reconstruct(fullModel);
}

LBool
PortfolioSolver::modelValue(Var var) const
{
    if (static_cast<std::size_t>(var) >= fullModel.size())
        return LBool::Undef;
    return fullModel[var];
}

bool
PortfolioSolver::inconsistent() const
{
    if (!built)
        return stagedUnsat;
    return topLevelUnsat ||
           std::any_of(instances.begin(), instances.end(),
                       [](const auto &instance) {
                           return instance->inconsistent();
                       });
}

const SolverStats &
PortfolioSolver::stats() const
{
    aggregateCache = SolverStats{};
    for (const auto &instance : instances)
        aggregateCache += instance->stats();
    return aggregateCache;
}

const PortfolioStats &
PortfolioSolver::portfolioStats() const
{
    portfolio.aggregate = stats();
    portfolio.winner =
        built && portfolio.lastWinner < instances.size()
            ? instances[portfolio.lastWinner]->stats()
            : SolverStats{};
    return portfolio;
}

} // namespace fermihedral::sat
