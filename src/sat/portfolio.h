/**
 * @file
 * Parallel portfolio SAT engine with clause-database preprocessing.
 *
 * PortfolioSolver presents the SolverBase surface but, underneath,
 * stages the incoming formula, simplifies it once
 * (sat/preprocess.h) and then races N diversified CDCL instances
 * (different EVSIDS seeds, phase policies and restart schedules)
 * over a shared ThreadPool on every solve() call. Instances
 * exchange short low-LBD learnt clauses through a lock-light
 * append-only buffer; the first decisive finisher cancels the rest
 * through the Budget stop flag.
 *
 * Two arbitration modes:
 *  - racing (deterministic = false): first Sat/Unsat wins, all
 *    other instances are stopped, learnt clauses flow freely. The
 *    fastest mode, but the winning instance — and hence the model —
 *    may differ run to run.
 *  - deterministic (the default): clause sharing is off, nobody is
 *    cancelled, and the winner is the decisive instance with the
 *    lowest index. Every instance is then an isolated deterministic
 *    machine, so results are bit-identical for every thread count
 *    whenever budgets do not bind (conflict budgets, or wall-clock
 *    limits generous enough that no instance times out).
 *
 * Key invariants:
 *  - Variable numbering is shared: newVar()/addClause() broadcast
 *    to every instance in call order, so literal meanings agree
 *    across the portfolio and with the caller.
 *  - Preprocessing runs once, on the first solve() call, and only
 *    when that call has no assumptions (incremental assumptions
 *    present => preprocessing is skipped entirely). Frozen
 *    variables survive it; clauses and assumptions arriving after
 *    the first solve must mention only frozen or surviving
 *    variables (enforced).
 *  - After Sat, modelValue() is defined for every variable: the
 *    winner's model is extended over eliminated variables with the
 *    simplifier's witness stack before it is published.
 *  - With instances = 1, deterministic = true and preprocessing
 *    off, solve behaviour is bit-identical to a plain Solver fed
 *    the same calls.
 *  - Budget.maxSeconds bounds the whole solve() call's wall
 *    clock, not each instance: with fewer threads than instances
 *    the stragglers only get whatever the earlier finishers left
 *    over. Conflict budgets stay per instance.
 */

#ifndef FERMIHEDRAL_SAT_PORTFOLIO_H
#define FERMIHEDRAL_SAT_PORTFOLIO_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/parallel.h"
#include "sat/preprocess.h"
#include "sat/solver.h"
#include "sat/solver_base.h"
#include "sat/types.h"

namespace fermihedral::sat {

/**
 * Lock-light learnt-clause exchange: an append-only publish log
 * with one read cursor per instance. The single mutex is taken only
 * when a glue clause is learnt or a restart imports — both rare
 * next to propagation — never per propagation or per decision.
 */
class ClauseExchange
{
  public:
    ClauseExchange(std::size_t instances, std::uint32_t max_lbd,
                   std::size_t max_size);

    /** LBD ceiling for published clauses (units always pass). */
    std::uint32_t maxLbd() const { return lbdLimit; }

    /** Length ceiling for published clauses. */
    std::size_t maxSize() const { return sizeLimit; }

    /** Append a clause learnt by `from`. */
    void publish(std::size_t from, std::span<const Lit> literals,
                 std::uint32_t lbd);

    /** A clause in transit, with the publisher's LBD. */
    struct SharedClause
    {
        std::vector<Lit> lits;
        std::uint32_t lbd;
    };

    /**
     * Append all clauses published by other instances since
     * `instance` last collected. The publisher's LBD rides along
     * so importers keep the glue protection reduceDb() grants.
     */
    void collect(std::size_t instance,
                 std::vector<SharedClause> &out);

    /** Total clauses ever published. */
    std::uint64_t published() const;

  private:
    struct Entry
    {
        std::size_t from;
        SharedClause clause;
    };

    std::uint32_t lbdLimit;
    std::size_t sizeLimit;
    mutable std::mutex mutex;
    /** Entries every cursor consumed are pruned; this counts them. */
    std::uint64_t totalPruned = 0;
    std::vector<Entry> log;
    std::vector<std::size_t> cursors;
};

/** Configuration of a PortfolioSolver. */
struct PortfolioOptions
{
    /**
     * Number of diversified solver instances (0 selects the
     * resolved thread count). Instance 0 always runs the default
     * SolverConfig, so a 1-instance portfolio searches exactly like
     * a plain Solver.
     */
    std::size_t instances = 0;

    /** Threads racing the instances (0 = hardware concurrency). */
    std::size_t threads = 1;

    /** Fixed lowest-decisive-index arbitration (see file docs). */
    bool deterministic = true;

    /** Simplify the clause database before the first solve. */
    bool preprocess = true;

    /** Simplifier effort limits. */
    SimplifierOptions simplify;

    /**
     * Skip preprocessing for instances staged with more than this
     * many clauses (0 = no ceiling). Building the occurrence index
     * and running the resolvent checks scales with the database
     * size, so past some density the upfront pass costs more than
     * it saves; inprocessing can still simplify later, once the
     * search has shown the instance is actually hard.
     */
    std::size_t preprocessMaxClauses = 0;

    /** Exchange learnt clauses (racing mode only). */
    bool shareClauses = true;

    /** Effort limits forwarded to inprocess() calls. */
    InprocessOptions inprocess;

    /** LBD ceiling for shared clauses. */
    std::uint32_t shareMaxLbd = 2;

    /** Length ceiling for shared clauses. */
    std::size_t shareMaxSize = 8;
};

/** Counters describing the portfolio's work so far. */
struct PortfolioStats
{
    /** Sum of every instance's counters. */
    SolverStats aggregate;

    /** Counters of the last winning instance. */
    SolverStats winner;

    /** Preprocessing result (all zero when preprocessing is off). */
    SimplifierStats simplifier;

    /** Index of the instance that decided the last solve. */
    std::size_t lastWinner = 0;

    /** solve() calls so far. */
    std::size_t solves = 0;

    /** Solves decided by Sat / Unsat / neither. */
    std::size_t satAnswers = 0;
    std::size_t unsatAnswers = 0;
    std::size_t unknownAnswers = 0;
};

/** The portfolio front-end (see file docs). */
class PortfolioSolver final : public SolverBase
{
  public:
    explicit PortfolioSolver(const PortfolioOptions &options = {});
    ~PortfolioSolver() override;

    Var newVar() override;
    std::size_t numVars() const override { return varCount; }
    std::size_t numClauses() const override;

    using SolverBase::addClause;
    bool addClause(std::span<const Lit> literals) override;

    SolveStatus solve(std::span<const Lit> assumptions = {},
                      const Budget &budget = {}) override;

    /**
     * Force the build (preprocessing + instance construction) now
     * instead of on the first solve(). Lets instrumentation read
     * portfolioStats().simplifier without solving anything.
     */
    void prepare();

    /**
     * Inprocess every instance's clause database between solve()
     * calls (Solver::inprocess with options.inprocess limits).
     * Returns false when any instance refuted the formula. Runs in
     * parallel over the pool; instance order and results stay
     * deterministic (each instance's trajectory is independent).
     */
    bool inprocess();

    /**
     * Drop every instance's learnt clauses (Solver::clearLearnts):
     * the carry-over reset used to measure what incremental reuse
     * buys across the descent's bound-tightening steps.
     */
    void clearLearnts();

    using SolverBase::modelValue;
    LBool modelValue(Var var) const override;

    void setPolarity(Var var, bool value) override;
    void boostActivity(Var var, double amount) override;
    void freeze(Var var) override;

    bool inconsistent() const override;
    const SolverStats &stats() const override;

    /** Number of instances that will race (>= 1). */
    std::size_t numInstances() const { return instanceCount; }

    /** Threads used per solve (>= 1). */
    std::size_t numThreads() const { return threadCount; }

    const PortfolioStats &portfolioStats() const;

    /**
     * The diversified configuration instance `index` runs with.
     * Exposed so tests can pin down the diversification contract.
     */
    static SolverConfig instanceConfig(std::size_t index);

  private:
    PortfolioOptions options;
    std::size_t instanceCount;
    std::size_t threadCount;

    // Staged formula (before the instances are built).
    std::size_t varCount = 0;
    std::vector<std::vector<Lit>> pendingClauses;
    std::vector<std::pair<Var, bool>> pendingPolarity;
    std::vector<std::pair<Var, double>> pendingActivity;
    std::vector<char> frozenVars;
    /** Values forced by staged unit clauses (conflict detection). */
    std::vector<LBool> stagedUnits;
    bool stagedUnsat = false;

    // Built state.
    bool built = false;
    std::unique_ptr<Simplifier> simplifier;
    std::vector<std::unique_ptr<Solver>> instances;
    std::unique_ptr<ClauseExchange> exchange;
    std::unique_ptr<ThreadPool> pool;
    std::vector<LBool> fullModel;
    bool topLevelUnsat = false;

    mutable PortfolioStats portfolio;
    mutable SolverStats aggregateCache;

    void build(bool skip_preprocess);
    void checkIncrementalLits(std::span<const Lit> literals) const;
    void publishModel(const Solver &winner);
};

} // namespace fermihedral::sat

#endif // FERMIHEDRAL_SAT_PORTFOLIO_H
