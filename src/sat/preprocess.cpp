#include "sat/preprocess.h"

#include <algorithm>

#include "common/logging.h"
#include "common/telemetry.h"
#include "common/timer.h"

namespace fermihedral::sat {

Simplifier::Simplifier(std::size_t num_vars)
    : occurrences(2 * num_vars), values(num_vars, LBool::Undef),
      frozen(num_vars, 0), eliminated(num_vars, 0)
{
}

std::uint64_t
Simplifier::signatureOf(std::span<const Lit> literals)
{
    // Variable-based Bloom signature: sig(C) & ~sig(D) != 0 proves
    // C's variables are not a subset of D's, which filters almost
    // every candidate pair before the literal-level subset walk.
    std::uint64_t signature = 0;
    for (const Lit lit : literals)
        signature |= std::uint64_t{1} << (litVar(lit) & 63);
    return signature;
}

bool
Simplifier::overBudget() const
{
    if (budgetSeconds <= 0.0)
        return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - budgetStart;
    return elapsed.count() >= budgetSeconds;
}

bool
Simplifier::pollBudget()
{
    // The clock read costs more than a cheap queue step does:
    // sample it instead of reading it on every iteration.
    if (budgetSeconds <= 0.0)
        return false;
    if ((++budgetTick & 63u) != 0)
        return false;
    return overBudget();
}

LBool
Simplifier::valueOf(Lit lit) const
{
    const LBool v = values[litVar(lit)];
    return litSign(lit) ? -v : v;
}

void
Simplifier::enqueueUnit(Lit lit)
{
    const Var var = litVar(lit);
    const LBool value = litSign(lit) ? LBool::False : LBool::True;
    if (values[var] == value)
        return;
    if (values[var] != LBool::Undef) {
        contradiction = true;
        return;
    }
    values[var] = value;
    ++statistics.fixedVariables;
    unitQueue.push_back(var);
}

void
Simplifier::enqueueSubsumption(std::size_t index)
{
    if (queued[index])
        return;
    queued[index] = 1;
    subsumptionQueue.push_back(index);
}

void
Simplifier::removeClauseAt(std::size_t index)
{
    // Occurrence entries of removed clauses are left stale and
    // filtered by the `removed` flag on every scan: active entries
    // therefore always point to clauses that do contain the
    // literal they are indexed under.
    clauses[index].removed = true;
    clauses[index].lits.clear();
    clauses[index].lits.shrink_to_fit();
}

void
Simplifier::detachLiteral(std::size_t index, Lit lit)
{
    auto &list = occurrences[lit.code];
    for (std::size_t i = 0; i < list.size(); ++i) {
        if (list[i] == index) {
            list[i] = list.back();
            list.pop_back();
            return;
        }
    }
}

void
Simplifier::addClause(std::span<const Lit> literals)
{
    require(!ran, "Simplifier::addClause after run()");
    ++statistics.originalClauses;
    statistics.originalLiterals += literals.size();
    insertClause(std::vector<Lit>(literals.begin(), literals.end()));
}

void
Simplifier::freeze(Var var)
{
    require(var >= 0 &&
                static_cast<std::size_t>(var) < values.size(),
            "freeze of unknown variable ", var);
    frozen[var] = 1;
}

bool
Simplifier::insertClause(std::vector<Lit> lits)
{
    if (contradiction)
        return false;
    std::sort(lits.begin(), lits.end());
    Lit previous = litUndef;
    std::size_t keep = 0;
    for (const Lit lit : lits) {
        require(litVar(lit) >= 0 &&
                    static_cast<std::size_t>(litVar(lit)) <
                        values.size(),
                "clause references unknown variable");
        if (lit == previous)
            continue; // duplicate literal
        if (previous != litUndef && lit == ~previous)
            return true; // tautology
        if (valueOf(lit) == LBool::True)
            return true; // satisfied at top level
        if (valueOf(lit) == LBool::False)
            continue; // falsified at top level
        lits[keep++] = lit;
        previous = lit;
    }
    lits.resize(keep);

    if (lits.empty()) {
        contradiction = true;
        return false;
    }
    if (lits.size() == 1) {
        enqueueUnit(lits[0]);
        return !contradiction;
    }
    const std::size_t index = clauses.size();
    Clause clause;
    clause.signature = signatureOf(lits);
    clause.lits = std::move(lits);
    clauses.push_back(std::move(clause));
    for (const Lit lit : clauses[index].lits)
        occurrences[lit.code].push_back(index);
    queued.push_back(0);
    enqueueSubsumption(index);
    return true;
}

bool
Simplifier::propagateUnits()
{
    while (!unitQueue.empty() && !contradiction) {
        const Var var = unitQueue.back();
        unitQueue.pop_back();
        const Lit lit =
            mkLit(var, values[var] == LBool::False);

        for (const std::size_t index : occurrences[lit.code]) {
            if (!clauses[index].removed)
                removeClauseAt(index); // satisfied clause
        }
        occurrences[lit.code].clear();

        // Detach the false literal from every remaining clause.
        std::vector<std::size_t> falsified;
        falsified.swap(occurrences[(~lit).code]);
        for (const std::size_t index : falsified) {
            if (clauses[index].removed)
                continue;
            auto &clause = clauses[index];
            clause.lits.erase(std::find(clause.lits.begin(),
                                        clause.lits.end(), ~lit));
            clause.signature = signatureOf(clause.lits);
            if (clause.lits.empty()) {
                contradiction = true;
                return false;
            }
            if (clause.lits.size() == 1) {
                enqueueUnit(clause.lits[0]);
                removeClauseAt(index);
            } else {
                enqueueSubsumption(index);
            }
        }
    }
    return !contradiction;
}

namespace {

/**
 * True when every literal of `small` — with `flip` replaced by its
 * negation — occurs in `large`. Both clauses are sorted by literal
 * code; flipping only toggles the low bit, so the walked sequence
 * stays sorted and one merge pass suffices.
 */
bool
subsetWithFlip(const std::vector<Lit> &small,
               const std::vector<Lit> &large, Lit flip)
{
    std::size_t j = 0;
    for (Lit lit : small) {
        if (lit == flip)
            lit = ~lit;
        while (j < large.size() && large[j].code < lit.code)
            ++j;
        if (j == large.size() || !(large[j] == lit))
            return false;
        ++j;
    }
    return true;
}

} // namespace

bool
Simplifier::strengthenClause(std::size_t index, Lit lit)
{
    auto &clause = clauses[index];
    detachLiteral(index, lit);
    clause.lits.erase(
        std::find(clause.lits.begin(), clause.lits.end(), lit));
    clause.signature = signatureOf(clause.lits);
    ++statistics.strengthenedLiterals;
    if (clause.lits.empty()) {
        contradiction = true;
        return false;
    }
    if (clause.lits.size() == 1) {
        enqueueUnit(clause.lits[0]);
        removeClauseAt(index);
        return !contradiction;
    }
    enqueueSubsumption(index);
    return true;
}

bool
Simplifier::subsumptionPass(const SimplifierOptions &options)
{
    while (!subsumptionQueue.empty()) {
        if (!propagateUnits())
            return false;
        if (subsumptionQueue.empty())
            break;
        if (pollBudget())
            break; // queued work stays queued, soundly undone
        const std::size_t index = subsumptionQueue.back();
        subsumptionQueue.pop_back();
        queued[index] = 0;
        if (clauses[index].removed)
            continue;
        if (!options.subsumption && !options.selfSubsumption)
            continue; // drain only
        const std::vector<Lit> lits = clauses[index].lits;
        const std::uint64_t signature = clauses[index].signature;

        // Scan the occurrence list of the rarest literal: every
        // clause containing all of `lits` must appear there.
        if (options.subsumption) {
            Lit best = lits[0];
            for (const Lit lit : lits) {
                if (occurrences[lit.code].size() <
                    occurrences[best.code].size())
                    best = lit;
            }
            for (const std::size_t other :
                 occurrences[best.code]) {
                if (other == index || clauses[other].removed)
                    continue;
                const auto &cand = clauses[other];
                if (cand.lits.size() < lits.size() ||
                    (signature & ~cand.signature) != 0)
                    continue;
                if (subsetWithFlip(lits, cand.lits, litUndef)) {
                    removeClauseAt(other);
                    ++statistics.subsumedClauses;
                }
            }
        }

        // Self-subsuming resolution: D ⊇ (C \ {l}) ∪ {~l} lets the
        // resolvent C⊗D replace D, i.e.\ ~l is removed from D.
        if (options.selfSubsumption) {
            for (const Lit lit : lits) {
                if (clauses[index].removed)
                    break;
                // detachLiteral edits this list, so walk a copy.
                const std::vector<std::size_t> candidates =
                    occurrences[(~lit).code];
                for (const std::size_t other : candidates) {
                    if (other == index || clauses[other].removed)
                        continue;
                    const auto &cand = clauses[other];
                    if (cand.lits.size() < lits.size() ||
                        (signature & ~cand.signature) != 0)
                        continue;
                    if (!subsetWithFlip(lits, cand.lits, lit))
                        continue;
                    if (!strengthenClause(other, ~lit))
                        return false;
                }
            }
        }
    }
    return !contradiction;
}

bool
Simplifier::resolve(const std::vector<Lit> &pos,
                    const std::vector<Lit> &neg, Var var,
                    std::vector<Lit> &out)
{
    // Merge the sorted operands, skipping the pivot literals;
    // adjacent equal codes collapse, adjacent complementary codes
    // make the resolvent a tautology.
    out.clear();
    std::size_t i = 0, j = 0;
    while (i < pos.size() || j < neg.size()) {
        Lit next;
        if (j == neg.size() ||
            (i < pos.size() && pos[i].code <= neg[j].code)) {
            next = pos[i++];
        } else {
            next = neg[j++];
        }
        if (litVar(next) == var)
            continue;
        if (!out.empty()) {
            if (out.back() == next)
                continue;
            if (out.back() == ~next)
                return false; // tautology
        }
        out.push_back(next);
    }
    return true;
}

bool
Simplifier::tryEliminate(Var var, const SimplifierOptions &options)
{
    if (frozen[var] || eliminated[var] ||
        values[var] != LBool::Undef) {
        return false;
    }
    const Lit lit = mkLit(var);
    std::vector<std::size_t> pos, neg;
    for (const std::size_t index : occurrences[lit.code]) {
        if (!clauses[index].removed)
            pos.push_back(index);
    }
    for (const std::size_t index : occurrences[(~lit).code]) {
        if (!clauses[index].removed)
            neg.push_back(index);
    }
    const std::size_t before = pos.size() + neg.size();
    if (before > options.eliminationOccurrenceLimit)
        return false;

    // Bounded check: elimination may not grow the clause database
    // nor create clauses longer than the configured limit.
    std::vector<std::vector<Lit>> resolvents;
    std::vector<Lit> resolvent;
    for (const std::size_t p : pos) {
        for (const std::size_t n : neg) {
            if (!resolve(clauses[p].lits, clauses[n].lits, var,
                         resolvent))
                continue; // tautology
            if (resolvent.empty() ||
                resolvent.size() > options.eliminationClauseLimit)
                return false;
            resolvents.push_back(resolvent);
            if (resolvents.size() > before)
                return false;
        }
    }

    // Commit. The positive-phase clauses become the witness: the
    // reconstruction rule (Eén & Biere) sets `lit` true exactly
    // when one of them is not satisfied by the other literals.
    Witness witness;
    witness.lit = lit;
    for (const std::size_t p : pos)
        witness.clauses.push_back(clauses[p].lits);
    witnesses.push_back(std::move(witness));
    for (const std::size_t index : pos)
        removeClauseAt(index);
    for (const std::size_t index : neg)
        removeClauseAt(index);
    occurrences[lit.code].clear();
    occurrences[(~lit).code].clear();
    eliminated[var] = 1;
    ++statistics.eliminatedVariables;
    for (auto &clause : resolvents) {
        ++statistics.resolventsAdded;
        if (!insertClause(std::move(clause)))
            return true; // contradiction recorded
    }
    return true;
}

bool
Simplifier::eliminationPass(const SimplifierOptions &options,
                            bool &changed)
{
    // Cheap variables first: elimination order matters, and low
    // occurrence counts are both the likeliest wins and the
    // cheapest resolvent checks.
    std::vector<std::pair<std::size_t, Var>> candidates;
    auto live_count = [this](Lit lit) {
        // Occurrence lists keep stale entries for removed clauses;
        // counting them raw would both mis-order candidates and
        // permanently skip variables pushed over the limit by
        // clauses subsumption already deleted.
        std::size_t count = 0;
        for (const std::size_t index : occurrences[lit.code])
            count += clauses[index].removed ? 0 : 1;
        return count;
    };
    for (Var var = 0;
         static_cast<std::size_t>(var) < values.size(); ++var) {
        if (frozen[var] || eliminated[var] ||
            values[var] != LBool::Undef)
            continue;
        const Lit lit = mkLit(var);
        const std::size_t count =
            live_count(lit) + live_count(~lit);
        if (count <= options.eliminationOccurrenceLimit)
            candidates.emplace_back(count, var);
    }
    std::sort(candidates.begin(), candidates.end());
    for (const auto &[count, var] : candidates) {
        if (!propagateUnits())
            return false;
        if (pollBudget())
            break;
        if (tryEliminate(var, options))
            changed = true;
        if (contradiction)
            return false;
    }
    return true;
}

void
Simplifier::run(const SimplifierOptions &options)
{
    require(!ran, "Simplifier::run() may only be called once");
    ran = true;
    telemetry::TraceSpan span("sat.simplify");
    const Timer run_timer;
    budgetSeconds = options.timeBudgetSeconds;
    budgetStart = std::chrono::steady_clock::now();
    budgetTick = 0;
    for (std::size_t round = 0; round < options.maxRounds; ++round) {
        if (overBudget())
            break;
        if (!propagateUnits())
            break;
        if (!subsumptionPass(options))
            break;
        bool changed = false;
        if (options.variableElimination &&
            !eliminationPass(options, changed))
            break;
        ++statistics.rounds;
        if (!changed && subsumptionQueue.empty() &&
            unitQueue.empty())
            break;
    }
    if (!contradiction) {
        propagateUnits();
        subsumptionPass(options);
    }

    statistics.seconds = run_timer.seconds();
    statistics.simplifiedClauses = 0;
    statistics.simplifiedLiterals = 0;
    if (!contradiction) {
        for (const auto &clause : clauses) {
            if (clause.removed)
                continue;
            ++statistics.simplifiedClauses;
            statistics.simplifiedLiterals += clause.lits.size();
        }
        for (const LBool value : values) {
            if (value != LBool::Undef) {
                ++statistics.simplifiedClauses;
                ++statistics.simplifiedLiterals;
            }
        }
    }
    if (span.active()) {
        span.arg("rounds", statistics.rounds);
        span.arg("original_clauses", statistics.originalClauses);
        span.arg("simplified_clauses",
                 statistics.simplifiedClauses);
        span.arg("subsumed", statistics.subsumedClauses);
        span.arg("eliminated_vars",
                 statistics.eliminatedVariables);
    }
}

std::vector<std::vector<Lit>>
Simplifier::simplifiedClauses() const
{
    std::vector<std::vector<Lit>> out;
    if (contradiction)
        return out;
    // Units first so a loading solver fixes them before anything
    // else propagates; then the surviving clause database.
    for (Var var = 0;
         static_cast<std::size_t>(var) < values.size(); ++var) {
        if (values[var] != LBool::Undef) {
            out.push_back(
                {mkLit(var, values[var] == LBool::False)});
        }
    }
    for (const auto &clause : clauses) {
        if (!clause.removed)
            out.push_back(clause.lits);
    }
    return out;
}

bool
Simplifier::isEliminated(Var var) const
{
    require(var >= 0 &&
                static_cast<std::size_t>(var) < values.size(),
            "isEliminated of unknown variable ", var);
    return eliminated[var] != 0;
}

void
Simplifier::reconstruct(std::vector<LBool> &model) const
{
    require(model.size() >= values.size(),
            "reconstruct model too small: ", model.size(), " < ",
            values.size());
    for (std::size_t var = 0; var < values.size(); ++var) {
        if (values[var] != LBool::Undef)
            model[var] = values[var];
    }
    // Replay eliminations backwards: each witness clause list holds
    // every clause that contained `lit` at elimination time, over
    // variables that were either never eliminated or eliminated
    // later (and therefore already reconstructed here).
    for (auto it = witnesses.rbegin(); it != witnesses.rend();
         ++it) {
        bool need = false;
        for (const auto &clause : it->clauses) {
            bool satisfied_by_rest = false;
            for (const Lit lit : clause) {
                if (lit == it->lit)
                    continue;
                const LBool v = model[litVar(lit)];
                if ((litSign(lit) ? -v : v) == LBool::True) {
                    satisfied_by_rest = true;
                    break;
                }
            }
            if (!satisfied_by_rest) {
                need = true;
                break;
            }
        }
        model[litVar(it->lit)] =
            need ? LBool::True : LBool::False;
    }
}

} // namespace fermihedral::sat
