/**
 * @file
 * Clause-database preprocessing (SatELite-style simplification).
 *
 * Runs the three classic inprocessing techniques the Kissat/CaDiCaL
 * line applies before search, over a plain clause list and an
 * occurrence index:
 *
 *  - top-level unit propagation (satisfied clauses removed, false
 *    literals stripped),
 *  - backward subsumption: a clause C removes every clause D ⊇ C,
 *  - self-subsuming resolution (strengthening): when
 *    D ⊇ (C \ {l}) ∪ {~l}, the literal ~l is removed from D,
 *  - bounded variable elimination (BVE): a variable whose
 *    resolvent set is no larger than the clauses it replaces is
 *    resolved away (pure literals fall out as the zero-resolvent
 *    case).
 *
 * Eliminated variables are recorded on a witness stack (Eén &
 * Biere): for each elimination the clauses containing the positive
 * literal are saved, and reconstruct() replays the stack backwards
 * to extend any model of the simplified formula into a model of the
 * original — required here because EncodingModel::decode() reads
 * every operator variable.
 *
 * Key invariants:
 *  - The simplified formula is equisatisfiable with the input, and
 *    equivalent over the non-eliminated variables: every model of
 *    the simplified clauses extends (via reconstruct()) to a model
 *    of every clause ever added; UNSAT is preserved exactly.
 *  - Frozen variables are never eliminated and never fixed
 *    silently: a frozen variable forced at top level is re-emitted
 *    as a unit clause, so callers may keep adding clauses or
 *    assumptions over frozen variables after simplification.
 *  - reconstruct() only overwrites eliminated/fixed variables; the
 *    values of surviving variables are taken as given.
 *  - run() may be called once per Simplifier; addClause()/freeze()
 *    must happen before it.
 */

#ifndef FERMIHEDRAL_SAT_PREPROCESS_H
#define FERMIHEDRAL_SAT_PREPROCESS_H

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "sat/types.h"

namespace fermihedral::sat {

/** Effort limits for one simplification run. */
struct SimplifierOptions
{
    /** Remove clauses subsumed by another clause. */
    bool subsumption = true;

    /** Strengthen clauses by self-subsuming resolution. */
    bool selfSubsumption = true;

    /** Run bounded variable elimination. */
    bool variableElimination = true;

    /**
     * Skip BVE for variables occurring (both phases combined) more
     * often than this: the resolvent check would be quadratic.
     */
    std::size_t eliminationOccurrenceLimit = 24;

    /** Resolvents longer than this block their elimination. */
    std::size_t eliminationClauseLimit = 8;

    /** Maximum subsumption+elimination rounds before settling. */
    std::size_t maxRounds = 8;

    /**
     * Stop simplifying once this much wall-clock has elapsed
     * (<= 0 = unlimited). Checked between rounds and periodically
     * inside the subsumption/elimination passes; stopping anywhere
     * is sound because every individual rewrite preserves
     * equisatisfiability and the witness stack on its own.
     */
    double timeBudgetSeconds = -1.0;
};

/** Counters of one simplification run. */
struct SimplifierStats
{
    std::size_t originalClauses = 0;
    std::size_t originalLiterals = 0;
    std::size_t simplifiedClauses = 0;
    std::size_t simplifiedLiterals = 0;
    std::size_t subsumedClauses = 0;
    std::size_t strengthenedLiterals = 0;
    std::size_t eliminatedVariables = 0;
    std::size_t fixedVariables = 0;
    std::size_t resolventsAdded = 0;
    std::size_t rounds = 0;
    /** Wall-clock of the run() call itself. */
    double seconds = 0.0;
};

/** One-shot clause-database simplifier with model reconstruction. */
class Simplifier
{
  public:
    explicit Simplifier(std::size_t num_vars);

    /** Add an input clause (before run()). */
    void addClause(std::span<const Lit> literals);
    void addClause(std::initializer_list<Lit> literals)
    {
        addClause(std::span<const Lit>(literals.begin(),
                                       literals.size()));
    }

    /** Protect a variable from elimination (before run()). */
    void freeze(Var var);

    /** Run the simplification pipeline once. */
    void run(const SimplifierOptions &options = {});

    /** True when the input was refuted at the top level. */
    bool inconsistent() const { return contradiction; }

    /** Number of variables (indices are preserved, never packed). */
    std::size_t numVars() const { return values.size(); }

    /**
     * The simplified clause list: all surviving clauses plus one
     * unit per fixed variable (so a solver loading the result
     * agrees with the top-level assignment). Empty and meaningless
     * when inconsistent().
     */
    std::vector<std::vector<Lit>> simplifiedClauses() const;

    /**
     * True when the variable no longer occurs in the simplified
     * formula and is reconstructed from the witness stack instead.
     * Clauses/assumptions added after simplification must not
     * mention such variables.
     */
    bool isEliminated(Var var) const;

    /**
     * Extend a model of the simplified formula (indexed by the
     * original variable numbering, True/False for every surviving
     * variable) into a model of the original formula by replaying
     * the witness stack. Overwrites only eliminated/fixed entries.
     */
    void reconstruct(std::vector<LBool> &model) const;

    const SimplifierStats &stats() const { return statistics; }

  private:
    struct Clause
    {
        std::vector<Lit> lits;
        std::uint64_t signature = 0;
        bool removed = false;
    };

    /** One elimination record: l plus all clauses containing l. */
    struct Witness
    {
        Lit lit;
        std::vector<std::vector<Lit>> clauses;
    };

    std::vector<Clause> clauses;
    /** occurrences[lit.code]: indices of clauses containing lit. */
    std::vector<std::vector<std::size_t>> occurrences;
    std::vector<LBool> values;
    std::vector<char> frozen;
    std::vector<char> eliminated;
    std::vector<Witness> witnesses;
    std::vector<Var> unitQueue;
    std::vector<std::size_t> subsumptionQueue;
    std::vector<char> queued;
    bool contradiction = false;
    bool ran = false;
    SimplifierStats statistics;

    /** Effort-budget state, valid during run() only. */
    double budgetSeconds = -1.0;
    std::chrono::steady_clock::time_point budgetStart;
    std::uint32_t budgetTick = 0;

    bool overBudget() const;
    bool pollBudget();
    static std::uint64_t signatureOf(std::span<const Lit> literals);
    LBool valueOf(Lit lit) const;
    void enqueueUnit(Lit lit);
    void enqueueSubsumption(std::size_t index);
    void removeClauseAt(std::size_t index);
    void detachLiteral(std::size_t index, Lit lit);
    bool insertClause(std::vector<Lit> lits);
    bool propagateUnits();
    bool subsumptionPass(const SimplifierOptions &options);
    bool strengthenClause(std::size_t index, Lit lit);
    bool eliminationPass(const SimplifierOptions &options,
                         bool &changed);
    bool tryEliminate(Var var, const SimplifierOptions &options);
    static bool resolve(const std::vector<Lit> &pos,
                        const std::vector<Lit> &neg, Var var,
                        std::vector<Lit> &out);
};

} // namespace fermihedral::sat

#endif // FERMIHEDRAL_SAT_PREPROCESS_H
