#include "sat/solver.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "sat/portfolio.h"
#include "sat/preprocess.h"

namespace fermihedral::sat {

Solver::Solver(const SolverConfig &config)
    : heap(config.varDecay), config(config), rng(config.seed)
{
}

// --------------------------------------------------------------------
// Watches
// --------------------------------------------------------------------

void
Solver::attachClause(ClauseRef ref)
{
    const Lit *lits = arena.lits(ref);
    const std::uint32_t size = arena.size(ref);
    require(size >= 2, "attaching clause of size < 2");
    auto &lists = size == 2 ? binWatches : watches;
    lists[(~lits[0]).code].push_back(Watcher{ref, lits[1]});
    lists[(~lits[1]).code].push_back(Watcher{ref, lits[0]});
}

void
Solver::detachClause(ClauseRef ref)
{
    const Lit *lits = arena.lits(ref);
    auto &lists = arena.size(ref) == 2 ? binWatches : watches;
    for (int w = 0; w < 2; ++w) {
        auto &list = lists[(~lits[w]).code];
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (list[i].cref == ref) {
                list[i] = list.back();
                list.pop_back();
                break;
            }
        }
    }
}

// --------------------------------------------------------------------
// Variables / assignments
// --------------------------------------------------------------------

Var
Solver::newVar()
{
    const Var var = static_cast<Var>(assigns.size());
    assigns.push_back(LBool::Undef);
    varLevel.push_back(0);
    varReason.push_back(crefUndef);
    // Saved-phase convention: polarity[v] == 1 branches negative
    // (the MiniSat default); the config may flip or randomize it.
    const bool phase = config.randomizePhases ? rng.nextBool()
                                              : config.initialPhase;
    polarity.push_back(phase ? 0 : 1);
    seen.push_back(0);
    watches.emplace_back();
    watches.emplace_back();
    binWatches.emplace_back();
    binWatches.emplace_back();
    heap.grow();
    return var;
}

void
Solver::uncheckedEnqueue(Lit lit, ClauseRef reason)
{
    const Var var = litVar(lit);
    require(assigns[var] == LBool::Undef,
            "enqueue of an already assigned variable");
    assigns[var] = litSign(lit) ? LBool::False : LBool::True;
    varLevel[var] = decisionLevel();
    varReason[var] = reason;
    trail.push_back(lit);
}

void
Solver::cancelUntil(std::uint32_t level)
{
    if (decisionLevel() <= level)
        return;
    const std::uint32_t keep = trailLim[level];
    for (std::size_t i = trail.size(); i-- > keep;) {
        const Lit lit = trail[i];
        const Var var = litVar(lit);
        assigns[var] = LBool::Undef;
        polarity[var] = litSign(lit); // phase saving
        varReason[var] = crefUndef;
        heap.insert(var);
    }
    trail.resize(keep);
    trailLim.resize(level);
    qhead = trail.size();
}

// --------------------------------------------------------------------
// Propagation
// --------------------------------------------------------------------

ClauseRef
Solver::propagate()
{
    ClauseRef conflict = crefUndef;
    while (qhead < trail.size()) {
        // Clauses watching literal L are registered under ~L, so
        // the clauses to inspect when p became true live at p.code.
        const Lit p = trail[qhead++];
        ++statistics.propagations;

        // Binary chains first: the watcher carries the implied
        // literal, so the whole scan runs without touching the
        // arena. Binary watch lists never move (both literals are
        // watched permanently), so plain iteration is safe even as
        // the trail grows underneath.
        for (const Watcher &w : binWatches[p.code]) {
            const LBool val = value(w.blocker);
            if (val == LBool::True)
                continue;
            if (val == LBool::False) {
                conflict = w.cref;
                break;
            }
            uncheckedEnqueue(w.blocker, w.cref);
        }
        if (conflict != crefUndef) {
            qhead = trail.size();
            break;
        }

        auto &ws = watches[p.code];
        std::size_t i = 0, j = 0;
        while (i < ws.size()) {
            const Watcher w = ws[i];
            if (value(w.blocker) == LBool::True) {
                ws[j++] = ws[i++];
                continue;
            }
            const ClauseRef cref = w.cref;
            Lit *lits = arena.lits(cref);
            const std::uint32_t size = arena.size(cref);
            const Lit false_lit = ~p;
            if (lits[0] == false_lit)
                std::swap(lits[0], lits[1]);
            ++i;

            const Lit first = lits[0];
            const Watcher updated{cref, first};
            if (first != w.blocker && value(first) == LBool::True) {
                ws[j++] = updated;
                continue;
            }

            bool found_watch = false;
            for (std::uint32_t k = 2; k < size; ++k) {
                if (value(lits[k]) != LBool::False) {
                    lits[1] = lits[k];
                    lits[k] = false_lit;
                    watches[(~lits[1]).code].push_back(updated);
                    found_watch = true;
                    break;
                }
            }
            if (found_watch)
                continue;

            // Clause is unit or conflicting under the current trail.
            ws[j++] = updated;
            if (value(first) == LBool::False) {
                conflict = cref;
                qhead = trail.size();
                while (i < ws.size())
                    ws[j++] = ws[i++];
            } else {
                uncheckedEnqueue(first, cref);
            }
        }
        ws.resize(j);
        if (conflict != crefUndef)
            break;
    }
    return conflict;
}

// --------------------------------------------------------------------
// Decision heuristic
// --------------------------------------------------------------------

Lit
Solver::pickBranchLit()
{
    // Occasional random decisions diversify portfolio instances
    // away from pure EVSIDS order (never taken at the default
    // randomBranchFreq of 0, keeping the solo solver deterministic
    // in its call sequence alone).
    if (config.randomBranchFreq > 0.0 && !heap.empty() &&
        rng.nextDouble() < config.randomBranchFreq) {
        const Var var = heap.at(rng.nextBelow(heap.size()));
        if (assigns[var] == LBool::Undef)
            return mkLit(var, polarity[var]);
    }
    while (!heap.empty()) {
        const Var var = heap.pop();
        if (assigns[var] == LBool::Undef)
            return mkLit(var, polarity[var]);
    }
    return litUndef;
}

// --------------------------------------------------------------------
// Conflict analysis
// --------------------------------------------------------------------

std::uint32_t
Solver::computeLbd(std::span<const Lit> literals)
{
    // Number of distinct decision levels in the clause ("glue").
    static thread_local std::vector<std::uint32_t> mark;
    static thread_local std::uint32_t stamp = 0;
    if (mark.size() < varLevel.size() + 1)
        mark.resize(varLevel.size() + 1, 0);
    ++stamp;
    std::uint32_t lbd = 0;
    for (const Lit lit : literals) {
        const std::uint32_t lvl = varLevel[litVar(lit)];
        if (mark[lvl] != stamp) {
            mark[lvl] = stamp;
            ++lbd;
        }
    }
    return lbd;
}

void
Solver::analyze(ClauseRef conflict, std::vector<Lit> &out_learnt,
                std::uint32_t &out_btlevel, std::uint32_t &out_lbd)
{
    out_learnt.clear();
    out_learnt.push_back(litUndef); // slot for the asserting literal

    Lit p = litUndef;
    int path_count = 0;
    std::size_t index = trail.size() - 1;
    ClauseRef cref = conflict;

    do {
        require(cref != crefUndef, "analyze reached a decision");
        if (arena.learnt(cref))
            claBumpActivity(cref);
        const Lit *lits = arena.lits(cref);
        const std::uint32_t size = arena.size(cref);
        for (std::uint32_t k = 0; k < size; ++k) {
            const Lit q = lits[k];
            const Var v = litVar(q);
            // Skip the literal this clause propagated. Binary
            // watchers enqueue the blocker without normalising the
            // stored literal order, so it is matched by variable,
            // not by position.
            if (p != litUndef && v == litVar(p))
                continue;
            if (!seen[v] && varLevel[v] > 0) {
                heap.bump(v);
                seen[v] = 1;
                if (varLevel[v] >= decisionLevel())
                    ++path_count;
                else
                    out_learnt.push_back(q);
            }
        }
        // Find the next marked literal on the trail.
        while (!seen[litVar(trail[index])])
            --index;
        p = trail[index];
        --index;
        cref = varReason[litVar(p)];
        seen[litVar(p)] = 0;
        --path_count;
    } while (path_count > 0);
    out_learnt[0] = ~p;

    // Clause minimization: drop literals implied by the rest.
    analyzeToClear = out_learnt;
    std::uint32_t abstract_levels = 0;
    for (std::size_t i = 1; i < out_learnt.size(); ++i)
        abstract_levels |=
            1u << (varLevel[litVar(out_learnt[i])] & 31);
    std::size_t keep = 1;
    for (std::size_t i = 1; i < out_learnt.size(); ++i) {
        const Lit lit = out_learnt[i];
        if (varReason[litVar(lit)] == crefUndef ||
            !litRedundant(lit, abstract_levels)) {
            out_learnt[keep++] = lit;
        }
    }
    statistics.learntLiterals += keep;
    out_learnt.resize(keep);

    // Backtrack level: highest level among the non-asserting lits.
    if (out_learnt.size() == 1) {
        out_btlevel = 0;
    } else {
        std::size_t max_i = 1;
        for (std::size_t i = 2; i < out_learnt.size(); ++i) {
            if (varLevel[litVar(out_learnt[i])] >
                varLevel[litVar(out_learnt[max_i])]) {
                max_i = i;
            }
        }
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = varLevel[litVar(out_learnt[1])];
    }
    out_lbd = computeLbd(out_learnt);

    for (const Lit lit : analyzeToClear)
        seen[litVar(lit)] = 0;
    analyzeToClear.clear();
}

bool
Solver::litRedundant(Lit lit, std::uint32_t abstract_levels)
{
    static thread_local std::vector<Lit> stack;
    stack.clear();
    stack.push_back(lit);
    const std::size_t top = analyzeToClear.size();
    while (!stack.empty()) {
        const Lit q = stack.back();
        stack.pop_back();
        const ClauseRef cref = varReason[litVar(q)];
        require(cref != crefUndef, "litRedundant on decision");
        const Lit *lits = arena.lits(cref);
        const std::uint32_t size = arena.size(cref);
        for (std::uint32_t k = 0; k < size; ++k) {
            const Lit l = lits[k];
            const Var v = litVar(l);
            // As in analyze(): skip the propagated literal by
            // variable (binary reasons are not position-normalised).
            if (v == litVar(q))
                continue;
            if (seen[v] || varLevel[v] == 0)
                continue;
            if (varReason[v] != crefUndef &&
                ((1u << (varLevel[v] & 31)) & abstract_levels)) {
                seen[v] = 1;
                stack.push_back(l);
                analyzeToClear.push_back(l);
            } else {
                for (std::size_t j = top; j < analyzeToClear.size();
                     ++j) {
                    seen[litVar(analyzeToClear[j])] = 0;
                }
                analyzeToClear.resize(top);
                return false;
            }
        }
    }
    return true;
}

// --------------------------------------------------------------------
// Clause database
// --------------------------------------------------------------------

void
Solver::claBumpActivity(ClauseRef ref)
{
    float act = arena.activity(ref) + static_cast<float>(claInc);
    if (act > 1e20f) {
        for (const ClauseRef learnt : learntClauses)
            arena.activity(learnt, arena.activity(learnt) * 1e-20f);
        claInc *= 1e-20;
        act = arena.activity(ref) + static_cast<float>(claInc);
    }
    arena.activity(ref, act);
}

bool
Solver::clauseLocked(ClauseRef ref) const
{
    const Lit *lits = arena.lits(ref);
    if (value(lits[0]) == LBool::True &&
        varReason[litVar(lits[0])] == ref)
        return true;
    // Binary propagation enqueues the blocker without normalising
    // the stored order, so either literal may be the implied one.
    return arena.size(ref) == 2 && value(lits[1]) == LBool::True &&
           varReason[litVar(lits[1])] == ref;
}

void
Solver::removeClause(ClauseRef ref)
{
    detachClause(ref);
    arena.free(ref);
    ++statistics.removedClauses;
}

void
Solver::reduceDb()
{
    // Keep low-LBD ("glue") and locked clauses; drop the less active
    // half of the rest.
    std::vector<ClauseRef> keep;
    std::vector<ClauseRef> candidates;
    keep.reserve(learntClauses.size());
    for (const ClauseRef ref : learntClauses) {
        if (arena.lbd(ref) <= 2 || clauseLocked(ref))
            keep.push_back(ref);
        else
            candidates.push_back(ref);
    }
    std::sort(candidates.begin(), candidates.end(),
              [this](ClauseRef a, ClauseRef b) {
                  if (arena.lbd(a) != arena.lbd(b))
                      return arena.lbd(a) < arena.lbd(b);
                  return arena.activity(a) > arena.activity(b);
              });
    const std::size_t retain = candidates.size() / 2;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (i < retain)
            keep.push_back(candidates[i]);
        else
            removeClause(candidates[i]);
    }
    learntClauses = std::move(keep);
    garbageCollectIfNeeded();
}

void
Solver::garbageCollectIfNeeded()
{
    // Collect when a quarter of the arena is retired words. The
    // floor keeps tiny databases from collecting on every removal.
    if (arena.wasted() > 1024 &&
        arena.wasted() * 4 >= arena.size()) {
        garbageCollect();
    }
}

void
Solver::garbageCollect()
{
    telemetry::TraceSpan span("sat.gc");
    ClauseArena to;
    // Relocating through the watcher lists first preserves their
    // traversal order exactly, so a collection changes no future
    // propagation; clause lists and reasons then pick up the
    // forwarded copies.
    for (auto *lists : {&binWatches, &watches}) {
        for (auto &list : *lists)
            for (Watcher &w : list)
                w.cref = arena.relocate(w.cref, to);
    }
    for (const Lit lit : trail) {
        ClauseRef &reason = varReason[litVar(lit)];
        if (reason != crefUndef)
            reason = arena.relocate(reason, to);
    }
    for (ClauseRef &ref : problemClauses)
        ref = arena.relocate(ref, to);
    for (ClauseRef &ref : learntClauses)
        ref = arena.relocate(ref, to);
    ++statistics.garbageCollects;
    const std::size_t reclaimed = arena.size() - to.size();
    statistics.reclaimedWords += reclaimed;
    if (span.active()) {
        span.arg("reclaimed_words", reclaimed);
        span.arg("arena_words", to.size());
    }
    arena = std::move(to);
    maybeCheck();
}

// --------------------------------------------------------------------
// Inprocessing
// --------------------------------------------------------------------

void
Solver::detachLevelZeroReasons()
{
    // Top-level assignments are facts: nothing ever dereferences
    // their reasons again (conflict analysis stops at level 0), so
    // dropping them unlocks the clauses for removal, vivification
    // and collection.
    require(decisionLevel() == 0,
            "level-0 reasons can only be dropped between solves");
    for (const Lit lit : trail)
        varReason[litVar(lit)] = crefUndef;
}

bool
Solver::enqueueFactAndPropagate(Lit lit)
{
    if (value(lit) == LBool::True)
        return true;
    if (value(lit) == LBool::False) {
        ok = false;
        return false;
    }
    uncheckedEnqueue(lit, crefUndef);
    if (propagate() != crefUndef)
        ok = false;
    return ok;
}

bool
Solver::subsumptionPass()
{
    // Re-run the PR 3 simplifier over the problem clauses with
    // variable elimination off: subsumption and self-subsuming
    // resolution preserve logical equivalence, so the retained
    // learnt clauses stay sound without witness reconstruction.
    Simplifier simplifier(numVars());
    for (const Lit lit : trail)
        simplifier.addClause({lit});
    for (const ClauseRef ref : problemClauses)
        simplifier.addClause(arena.clause(ref));
    SimplifierOptions options;
    options.variableElimination = false;
    options.maxRounds = 2;
    simplifier.run(options);
    statistics.inprocessSubsumed +=
        simplifier.stats().subsumedClauses;
    statistics.inprocessStrengthened +=
        simplifier.stats().strengthenedLiterals;
    if (simplifier.inconsistent()) {
        ok = false;
        return false;
    }
    // Rebuild the problem database from the simplified clause list;
    // derived units enter the trail through the normal addClause
    // path.
    for (const ClauseRef ref : problemClauses) {
        detachClause(ref);
        arena.free(ref);
    }
    problemClauses.clear();
    for (const auto &clause : simplifier.simplifiedClauses()) {
        if (!addClause(clause))
            return false;
    }
    return true;
}

bool
Solver::vivifyPass(const InprocessOptions &options)
{
    const std::uint64_t start = statistics.propagations;
    std::vector<Lit> kept;
    std::vector<Lit> original;
    // Iterate a snapshot: shrink-to-unit removes entries from the
    // live list. Refs stay valid (no collection inside the loop).
    const std::vector<ClauseRef> todo = problemClauses;
    for (const ClauseRef ref : todo) {
        if (statistics.propagations - start >
            options.vivifyPropagationLimit)
            break;
        if (arena.size(ref) < options.vivifyMinSize ||
            clauseLocked(ref))
            continue;

        original.assign(arena.lits(ref),
                        arena.lits(ref) + arena.size(ref));
        detachClause(ref);
        kept.clear();
        // Assume the negation of each literal in turn. A literal
        // already true closes the clause (the prefix implies it); a
        // false one is redundant; a propagation conflict proves the
        // kept prefix alone is implied.
        for (const Lit lit : original) {
            const LBool val = value(lit);
            if (val == LBool::True) {
                kept.push_back(lit);
                break;
            }
            if (val == LBool::False)
                continue;
            kept.push_back(lit);
            newDecisionLevel();
            uncheckedEnqueue(~lit, crefUndef);
            if (propagate() != crefUndef)
                break;
        }
        cancelUntil(0);

        if (kept.size() == original.size()) {
            attachClause(ref);
            continue;
        }
        ++statistics.vivifiedClauses;
        statistics.vivifiedLiterals +=
            original.size() - kept.size();
        if (kept.empty()) {
            // Every literal was false at the top level.
            std::erase(problemClauses, ref);
            arena.free(ref);
            ok = false;
            return false;
        }
        if (kept.size() == 1) {
            std::erase(problemClauses, ref);
            arena.free(ref);
            if (!enqueueFactAndPropagate(kept[0]))
                return false;
            continue;
        }
        std::copy(kept.begin(), kept.end(), arena.lits(ref));
        arena.shrink(ref,
                     static_cast<std::uint32_t>(kept.size()));
        attachClause(ref);
    }
    return true;
}

bool
Solver::inprocess(const InprocessOptions &options)
{
    require(decisionLevel() == 0,
            "inprocess may only run between solve() calls");
    if (!ok)
        return false;
    if (propagate() != crefUndef) {
        ok = false;
        return false;
    }
    ++statistics.inprocessings;
    telemetry::TraceSpan span("sat.inprocess");
    const std::uint64_t subsumed_before = statistics.inprocessSubsumed;
    const std::uint64_t vivified_before = statistics.vivifiedClauses;
    detachLevelZeroReasons();
    if (options.subsumption && !subsumptionPass()) {
        maybeCheck();
        return false;
    }
    if (options.vivification && !vivifyPass(options)) {
        maybeCheck();
        return false;
    }
    garbageCollectIfNeeded();
    maybeCheck();
    if (span.active()) {
        span.arg("subsumed",
                 statistics.inprocessSubsumed - subsumed_before);
        span.arg("vivified",
                 statistics.vivifiedClauses - vivified_before);
    }
    return ok;
}

void
Solver::clearLearnts()
{
    require(decisionLevel() == 0,
            "clearLearnts may only run between solve() calls");
    detachLevelZeroReasons();
    for (const ClauseRef ref : learntClauses) {
        detachClause(ref);
        arena.free(ref);
    }
    statistics.clearedLearnts += learntClauses.size();
    statistics.removedClauses += learntClauses.size();
    learntClauses.clear();
    maxLearnts = 8192;
    garbageCollectIfNeeded();
    maybeCheck();
}

// --------------------------------------------------------------------
// Clause exchange
// --------------------------------------------------------------------

void
Solver::connectExchange(ClauseExchange *new_exchange,
                        std::size_t instance_id)
{
    exchange = new_exchange;
    exchangeId = instance_id;
}

void
Solver::publishLearnt(std::span<const Lit> literals,
                      std::uint32_t lbd)
{
    if (!exchange || literals.empty())
        return;
    if (literals.size() > exchange->maxSize() ||
        (literals.size() > 1 && lbd > exchange->maxLbd())) {
        return;
    }
    exchange->publish(exchangeId, literals, lbd);
    ++statistics.sharedOut;
}

bool
Solver::adoptClause(std::span<const Lit> literals,
                    std::uint32_t lbd)
{
    require(decisionLevel() == 0,
            "shared clauses may only be adopted at level 0");
    static thread_local std::vector<Lit> scratch;
    scratch.clear();
    for (const Lit lit : literals) {
        require(static_cast<std::size_t>(litVar(lit)) < numVars(),
                "shared clause references unknown variable");
        if (value(lit) == LBool::True)
            return true; // already satisfied at level 0
        if (value(lit) == LBool::False)
            continue; // falsified at level 0: drop literal
        scratch.push_back(lit);
    }
    if (scratch.empty()) {
        ok = false;
        return false;
    }
    if (scratch.size() == 1) {
        uncheckedEnqueue(scratch[0], crefUndef);
        if (propagate() != crefUndef)
            ok = false;
        return ok;
    }
    const ClauseRef ref = arena.alloc(scratch, true);
    // Keep the publisher's LBD (clamped: level-0 filtering may
    // have shortened the clause) so glue clauses retain the
    // keep-forever protection reduceDb() grants them.
    arena.lbd(ref, std::min(lbd, static_cast<std::uint32_t>(
                                     scratch.size() - 1)));
    learntClauses.push_back(ref);
    attachClause(ref);
    return true;
}

bool
Solver::importSharedClauses()
{
    if (!exchange)
        return true;
    static thread_local std::vector<ClauseExchange::SharedClause>
        imports;
    imports.clear();
    exchange->collect(exchangeId, imports);
    for (const auto &shared : imports) {
        ++statistics.sharedIn;
        if (!adoptClause(shared.lits, shared.lbd))
            return false;
    }
    return true;
}

// --------------------------------------------------------------------
// Clause addition
// --------------------------------------------------------------------

bool
Solver::addClause(std::span<const Lit> literals)
{
    require(decisionLevel() == 0,
            "clauses may only be added at decision level 0");
    if (!ok)
        return false;

    static thread_local std::vector<Lit> scratch;
    scratch.assign(literals.begin(), literals.end());
    std::sort(scratch.begin(), scratch.end());
    Lit previous = litUndef;
    std::size_t keep = 0;
    for (const Lit lit : scratch) {
        require(litVar(lit) >= 0 &&
                    static_cast<std::size_t>(litVar(lit)) < numVars(),
                "clause references unknown variable");
        if (lit == previous)
            continue; // duplicate literal
        if (previous != litUndef && lit == ~previous)
            return true; // tautology: x OR NOT x
        if (value(lit) == LBool::True)
            return true; // already satisfied at level 0
        if (value(lit) == LBool::False)
            continue; // falsified at level 0: drop literal
        scratch[keep++] = lit;
        previous = lit;
    }
    scratch.resize(keep);

    if (scratch.empty()) {
        ok = false;
        return false;
    }
    if (scratch.size() == 1) {
        uncheckedEnqueue(scratch[0], crefUndef);
        if (propagate() != crefUndef)
            ok = false;
        return ok;
    }
    const ClauseRef ref = arena.alloc(scratch, false);
    problemClauses.push_back(ref);
    attachClause(ref);
    return true;
}

// --------------------------------------------------------------------
// Export
// --------------------------------------------------------------------

std::vector<std::vector<Lit>>
Solver::problemClausesSnapshot() const
{
    std::vector<std::vector<Lit>> out;
    if (!ok) {
        // Inconsistent: the clause that refuted the instance was
        // never stored (addClause rejects it), so the clause list
        // alone would be satisfiable. Pin unsatisfiability with a
        // contradictory unit pair — the empty clause would not
        // survive a DIMACS round-trip.
        const Lit pin = mkLit(0);
        out.push_back({pin});
        out.push_back({~pin});
        return out;
    }
    // Top-level facts first (caller units and inprocessing
    // derivations), then the stored problem clauses — and only
    // those: learnt clauses are implied, not part of the instance.
    const std::size_t level0 =
        trailLim.empty() ? trail.size() : trailLim[0];
    out.reserve(level0 + problemClauses.size());
    for (std::size_t i = 0; i < level0; ++i)
        out.push_back({trail[i]});
    for (const ClauseRef ref : problemClauses) {
        const auto clause = arena.clause(ref);
        out.emplace_back(clause.begin(), clause.end());
    }
    return out;
}

std::size_t
Solver::numBinaryClauses() const
{
    std::size_t count = 0;
    for (const ClauseRef ref : problemClauses)
        count += arena.size(ref) == 2;
    return count;
}

// --------------------------------------------------------------------
// Self-checks
// --------------------------------------------------------------------

bool
Solver::selfCheckEnabled() const
{
#ifdef FERMIHEDRAL_SOLVER_CHECK
    return true;
#else
    return config.selfCheck;
#endif
}

void
Solver::checkInvariants() const
{
    // Clause lists: valid, unrelocated refs with matching flags.
    std::vector<ClauseRef> live;
    for (const auto *list : {&problemClauses, &learntClauses}) {
        const bool learnt = list == &learntClauses;
        for (const ClauseRef ref : *list) {
            require(arena.validRef(ref),
                    "invalid clause ref in database");
            require(!arena.isRelocated(ref),
                    "relocated clause ref survived collection");
            require(arena.learnt(ref) == learnt,
                    "clause learnt flag disagrees with its list");
            require(arena.size(ref) >= 2,
                    "stored clause of size < 2");
            live.push_back(ref);
        }
    }

    // Watch lists: each watcher names a live clause watched on the
    // falling literal, with the blocker drawn from the clause; the
    // multiset of watchers is exactly every live clause twice.
    std::vector<ClauseRef> watched;
    for (std::size_t code = 0; code < watches.size(); ++code) {
        const Lit falling = ~Lit{static_cast<std::int32_t>(code)};
        for (const Watcher &w : binWatches[code]) {
            require(arena.validRef(w.cref) &&
                        arena.size(w.cref) == 2,
                    "binary watcher on non-binary clause");
            const Lit *lits = arena.lits(w.cref);
            require((lits[0] == falling &&
                     lits[1] == w.blocker) ||
                        (lits[1] == falling &&
                         lits[0] == w.blocker),
                    "binary watcher blocker is not the other "
                    "literal");
            watched.push_back(w.cref);
        }
        for (const Watcher &w : watches[code]) {
            require(arena.validRef(w.cref) &&
                        arena.size(w.cref) >= 3,
                    "long watcher on short clause");
            const Lit *lits = arena.lits(w.cref);
            require(lits[0] == falling || lits[1] == falling,
                    "watched literal is not in the first two "
                    "slots");
            watched.push_back(w.cref);
        }
    }
    std::sort(live.begin(), live.end());
    std::sort(watched.begin(), watched.end());
    require(watched.size() == 2 * live.size(),
            "watcher count is not twice the live clause count");
    for (std::size_t i = 0; i < live.size(); ++i) {
        require(watched[2 * i] == live[i] &&
                    watched[2 * i + 1] == live[i],
                "live clause not watched exactly twice");
    }

    // Trail: monotone level marks, true literals, sane reasons.
    require(qhead <= trail.size(), "qhead past the trail");
    for (std::size_t i = 1; i < trailLim.size(); ++i)
        require(trailLim[i - 1] <= trailLim[i],
                "decision level marks out of order");
    for (const Lit lit : trail) {
        require(value(lit) == LBool::True,
                "trail literal is not true");
        const ClauseRef reason = varReason[litVar(lit)];
        if (reason == crefUndef)
            continue;
        require(arena.validRef(reason) &&
                    !arena.isRelocated(reason),
                "invalid reason ref");
        bool contains = false;
        for (const Lit l : arena.clause(reason))
            contains |= litVar(l) == litVar(lit);
        require(contains,
                "reason clause does not mention its variable");
    }

    // Heap: ordering/index integrity, and completeness — every
    // unassigned variable must be reachable by pickBranchLit().
    require(heap.brokenSlot() == -1,
            "variable heap order or index broken at slot ",
            heap.brokenSlot());
    for (std::size_t var = 0; var < assigns.size(); ++var) {
        if (assigns[var] == LBool::Undef) {
            require(heap.contains(static_cast<Var>(var)),
                    "unassigned variable ", var,
                    " missing from the decision heap");
        }
    }
}

// --------------------------------------------------------------------
// Search
// --------------------------------------------------------------------

std::uint64_t
Solver::luby(std::uint64_t i)
{
    // Luby sequence 1,1,2,1,1,2,4,... (0-indexed), MiniSat style.
    std::uint64_t size = 1, seq = 0;
    while (size < i + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) >> 1;
        --seq;
        i = i % size;
    }
    return std::uint64_t{1} << seq;
}

double
Solver::now() const
{
    // Timer::nowNs is the project-wide monotonic tick; sharing it
    // keeps budget checks on the same timeline as telemetry spans.
    return static_cast<double>(Timer::nowNs()) * 1e-9;
}

std::uint64_t
Solver::restartLimit(std::uint64_t round) const
{
    if (config.restartSchedule == SolverConfig::Restarts::Geometric) {
        double limit = config.restartBase;
        for (std::uint64_t i = 0; i < round; ++i) {
            limit *= config.restartGrowth;
            // Saturate well below 2^63: casting an out-of-range
            // double to an integer is undefined behaviour.
            if (limit >= 1e18)
                return std::uint64_t{1} << 60;
        }
        return static_cast<std::uint64_t>(limit);
    }
    return config.restartBase * luby(round);
}

bool
Solver::budgetExpired(const Budget &budget, double start_time,
                      std::uint64_t start_conflicts) const
{
    // Fault rehearsal: a forced expiry exercises every degradation
    // path above the solver (Unknown step -> anytime descent ->
    // ResultStatus). One relaxed load when no failpoint is armed.
    if (failpoint::fire("sat.budget.expire"))
        return true;
    if (budget.stopFlag &&
        budget.stopFlag->load(std::memory_order_relaxed)) {
        return true;
    }
    if (budget.maxConflicts >= 0 &&
        statistics.conflicts - start_conflicts >=
            static_cast<std::uint64_t>(budget.maxConflicts)) {
        return true;
    }
    if (budget.maxSeconds > 0 &&
        now() - start_time >= budget.maxSeconds) {
        return true;
    }
    return false;
}

SolveStatus
Solver::search(const Budget &budget, double start_time)
{
    const std::uint64_t start_conflicts = statistics.conflicts;
    std::uint64_t restart_round = 0;
    std::uint64_t conflicts_this_round = 0;
    std::uint64_t restart_limit = restartLimit(0);

    for (;;) {
        const ClauseRef conflict = propagate();
        if (conflict != crefUndef) {
            ++statistics.conflicts;
            ++conflicts_this_round;
            if (decisionLevel() == 0) {
                ok = false;
                return SolveStatus::Unsat;
            }
            std::uint32_t bt_level = 0, lbd = 0;
            analyze(conflict, learntClause, bt_level, lbd);
            publishLearnt(learntClause, lbd);
            cancelUntil(bt_level);
            if (learntClause.size() == 1) {
                uncheckedEnqueue(learntClause[0], crefUndef);
            } else {
                const ClauseRef ref =
                    arena.alloc(learntClause, true);
                arena.lbd(ref, lbd);
                learntClauses.push_back(ref);
                attachClause(ref);
                claBumpActivity(ref);
                uncheckedEnqueue(learntClause[0], ref);
            }
            heap.decay();
            claDecayActivity();
            if ((statistics.conflicts & 0x3ff) == 0 &&
                budgetExpired(budget, start_time, start_conflicts)) {
                cancelUntil(0);
                return SolveStatus::Unknown;
            }
            continue;
        }

        // No conflict.
        if (conflicts_this_round >= restart_limit) {
            ++statistics.restarts;
            ++restart_round;
            conflicts_this_round = 0;
            restart_limit = restartLimit(restart_round);
            cancelUntil(0);
            // Restart boundaries are the one place foreign clauses
            // can be adopted without disturbing an in-flight trail.
            if (!importSharedClauses())
                return SolveStatus::Unsat;
            continue;
        }
        if (budgetExpired(budget, start_time, start_conflicts)) {
            cancelUntil(0);
            return SolveStatus::Unknown;
        }
        if (learntClauses.size() >= maxLearnts) {
            reduceDb();
            maxLearnts =
                static_cast<std::uint64_t>(maxLearnts * 1.2);
        }

        Lit next = litUndef;
        while (decisionLevel() < assumptionList.size()) {
            const Lit p = assumptionList[decisionLevel()];
            if (value(p) == LBool::True) {
                newDecisionLevel(); // dummy level for this assumption
            } else if (value(p) == LBool::False) {
                cancelUntil(0);
                return SolveStatus::Unsat;
            } else {
                next = p;
                break;
            }
        }
        if (next == litUndef) {
            next = pickBranchLit();
            if (next == litUndef) {
                // All variables assigned: model found.
                model.assign(assigns.begin(), assigns.end());
                cancelUntil(0);
                return SolveStatus::Sat;
            }
            ++statistics.decisions;
        }
        newDecisionLevel();
        uncheckedEnqueue(next, crefUndef);
    }
}

SolveStatus
Solver::solve(std::span<const Lit> assumptions, const Budget &budget)
{
    if (!ok)
        return SolveStatus::Unsat;
    assumptionList.assign(assumptions.begin(), assumptions.end());
    cancelUntil(0);
    if (propagate() != crefUndef) {
        ok = false;
        return SolveStatus::Unsat;
    }
    if (!importSharedClauses()) {
        assumptionList.clear();
        return SolveStatus::Unsat;
    }
    maybeCheck();
    telemetry::TraceSpan span("sat.solve");
    const SolverStats before = statistics;
    const double start_time = now();
    const SolveStatus status = search(budget, start_time);
    cancelUntil(0);
    assumptionList.clear();
    maybeCheck();
    publishTelemetry(before, status, span);
    return status;
}

/**
 * Push this solve's SolverStats deltas into the global metrics
 * registry. Deltas are accumulated once per solve() — never inside
 * the search loop — so the CDCL hot path carries no atomics.
 */
void
Solver::publishTelemetry(const SolverStats &before,
                         SolveStatus status,
                         telemetry::TraceSpan &span) const
{
    auto &registry = telemetry::MetricsRegistry::global();
    static auto &conflicts = registry.counter("sat.conflicts");
    static auto &decisions = registry.counter("sat.decisions");
    static auto &propagations = registry.counter("sat.propagations");
    static auto &restarts = registry.counter("sat.restarts");
    static auto &learntDb = registry.gauge("sat.learnt_db_clauses");
    conflicts.add(statistics.conflicts - before.conflicts);
    decisions.add(statistics.decisions - before.decisions);
    propagations.add(statistics.propagations - before.propagations);
    restarts.add(statistics.restarts - before.restarts);
    learntDb.set(static_cast<std::int64_t>(learntClauses.size()));
    if (span.active()) {
        span.arg("status",
                 status == SolveStatus::Sat
                     ? "sat"
                     : status == SolveStatus::Unsat ? "unsat"
                                                    : "unknown");
        span.arg("conflicts", statistics.conflicts - before.conflicts);
        span.arg("propagations",
                 statistics.propagations - before.propagations);
        span.arg("restarts", statistics.restarts - before.restarts);
        span.arg("learnt_db", learntClauses.size());
    }
}

LBool
Solver::modelValue(Var var) const
{
    if (static_cast<std::size_t>(var) >= model.size())
        return LBool::Undef;
    return model[var];
}

void
Solver::setPolarity(Var var, bool value)
{
    require(static_cast<std::size_t>(var) < numVars(),
            "setPolarity on unknown variable");
    polarity[var] = value ? 0 : 1;
}

void
Solver::boostActivity(Var var, double amount)
{
    require(static_cast<std::size_t>(var) < numVars(),
            "boostActivity on unknown variable");
    heap.boost(var, amount);
}

} // namespace fermihedral::sat
