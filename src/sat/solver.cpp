#include "sat/solver.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>

#include "common/logging.h"
#include "sat/portfolio.h"

namespace fermihedral::sat {

Solver::Solver(const SolverConfig &config)
    : config(config), rng(config.seed)
{
    arena.reserve(1 << 16);
}

// --------------------------------------------------------------------
// Clause arena
// --------------------------------------------------------------------

float
Solver::clauseActivity(ClauseRef ref) const
{
    return std::bit_cast<float>(arena[ref + 1]);
}

void
Solver::clauseActivity(ClauseRef ref, float value)
{
    arena[ref + 1] = std::bit_cast<std::uint32_t>(value);
}

void
Solver::clauseShrink(ClauseRef ref, std::uint32_t new_size)
{
    require(new_size <= clauseSize(ref), "clauseShrink grows clause");
    arena[ref] = (new_size << 1) | (arena[ref] & 1);
}

Solver::ClauseRef
Solver::allocClause(std::span<const Lit> literals, bool learnt)
{
    const auto ref = static_cast<ClauseRef>(arena.size());
    arena.push_back((static_cast<std::uint32_t>(literals.size()) << 1)
                    | (learnt ? 1u : 0u));
    arena.push_back(std::bit_cast<std::uint32_t>(0.0f));
    arena.push_back(0);
    for (const Lit lit : literals)
        arena.push_back(static_cast<std::uint32_t>(lit.code));
    return ref;
}

// --------------------------------------------------------------------
// Watches
// --------------------------------------------------------------------

void
Solver::attachClause(ClauseRef ref)
{
    const Lit *lits = clauseLits(ref);
    require(clauseSize(ref) >= 2, "attaching clause of size < 2");
    watches[(~lits[0]).code].push_back(Watcher{ref, lits[1]});
    watches[(~lits[1]).code].push_back(Watcher{ref, lits[0]});
}

void
Solver::detachClause(ClauseRef ref)
{
    const Lit *lits = clauseLits(ref);
    for (int w = 0; w < 2; ++w) {
        auto &list = watches[(~lits[w]).code];
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (list[i].cref == ref) {
                list[i] = list.back();
                list.pop_back();
                break;
            }
        }
    }
}

// --------------------------------------------------------------------
// Variables / assignments
// --------------------------------------------------------------------

Var
Solver::newVar()
{
    const Var var = static_cast<Var>(assigns.size());
    assigns.push_back(LBool::Undef);
    varLevel.push_back(0);
    varReason.push_back(crefUndef);
    activity.push_back(0.0);
    // Saved-phase convention: polarity[v] == 1 branches negative
    // (the MiniSat default); the config may flip or randomize it.
    const bool phase = config.randomizePhases ? rng.nextBool()
                                              : config.initialPhase;
    polarity.push_back(phase ? 0 : 1);
    seen.push_back(0);
    heapIndex.push_back(-1);
    watches.emplace_back();
    watches.emplace_back();
    heapInsert(var);
    return var;
}

void
Solver::uncheckedEnqueue(Lit lit, ClauseRef reason)
{
    const Var var = litVar(lit);
    require(assigns[var] == LBool::Undef,
            "enqueue of an already assigned variable");
    assigns[var] = litSign(lit) ? LBool::False : LBool::True;
    varLevel[var] = decisionLevel();
    varReason[var] = reason;
    trail.push_back(lit);
}

void
Solver::cancelUntil(std::uint32_t level)
{
    if (decisionLevel() <= level)
        return;
    const std::uint32_t keep = trailLim[level];
    for (std::size_t i = trail.size(); i-- > keep;) {
        const Lit lit = trail[i];
        const Var var = litVar(lit);
        assigns[var] = LBool::Undef;
        polarity[var] = litSign(lit); // phase saving
        varReason[var] = crefUndef;
        if (!heapContains(var))
            heapInsert(var);
    }
    trail.resize(keep);
    trailLim.resize(level);
    qhead = trail.size();
}

// --------------------------------------------------------------------
// Propagation
// --------------------------------------------------------------------

Solver::ClauseRef
Solver::propagate()
{
    ClauseRef conflict = crefUndef;
    while (qhead < trail.size()) {
        // Clauses watching literal L are registered under ~L, so
        // the clauses to inspect when p became true live at p.code.
        const Lit p = trail[qhead++];
        ++statistics.propagations;
        auto &ws = watches[p.code];
        std::size_t i = 0, j = 0;
        while (i < ws.size()) {
            const Watcher w = ws[i];
            if (value(w.blocker) == LBool::True) {
                ws[j++] = ws[i++];
                continue;
            }
            const ClauseRef cref = w.cref;
            Lit *lits = clauseLits(cref);
            const std::uint32_t size = clauseSize(cref);
            const Lit false_lit = ~p;
            if (lits[0] == false_lit)
                std::swap(lits[0], lits[1]);
            ++i;

            const Lit first = lits[0];
            const Watcher updated{cref, first};
            if (first != w.blocker && value(first) == LBool::True) {
                ws[j++] = updated;
                continue;
            }

            bool found_watch = false;
            for (std::uint32_t k = 2; k < size; ++k) {
                if (value(lits[k]) != LBool::False) {
                    lits[1] = lits[k];
                    lits[k] = false_lit;
                    watches[(~lits[1]).code].push_back(updated);
                    found_watch = true;
                    break;
                }
            }
            if (found_watch)
                continue;

            // Clause is unit or conflicting under the current trail.
            ws[j++] = updated;
            if (value(first) == LBool::False) {
                conflict = cref;
                qhead = trail.size();
                while (i < ws.size())
                    ws[j++] = ws[i++];
            } else {
                uncheckedEnqueue(first, cref);
            }
        }
        ws.resize(j);
        if (conflict != crefUndef)
            break;
    }
    return conflict;
}

// --------------------------------------------------------------------
// Decision heuristic (indexed binary max-heap over activity)
// --------------------------------------------------------------------

void
Solver::heapPercolateUp(std::int32_t i)
{
    const Var var = heap[i];
    while (i > 0) {
        const std::int32_t parent = (i - 1) >> 1;
        if (!heapLess(var, heap[parent]))
            break;
        heap[i] = heap[parent];
        heapIndex[heap[i]] = i;
        i = parent;
    }
    heap[i] = var;
    heapIndex[var] = i;
}

void
Solver::heapPercolateDown(std::int32_t i)
{
    const Var var = heap[i];
    const auto size = static_cast<std::int32_t>(heap.size());
    for (;;) {
        std::int32_t child = 2 * i + 1;
        if (child >= size)
            break;
        if (child + 1 < size && heapLess(heap[child + 1], heap[child]))
            ++child;
        if (!heapLess(heap[child], var))
            break;
        heap[i] = heap[child];
        heapIndex[heap[i]] = i;
        i = child;
    }
    heap[i] = var;
    heapIndex[var] = i;
}

void
Solver::heapInsert(Var var)
{
    heap.push_back(var);
    heapIndex[var] = static_cast<std::int32_t>(heap.size()) - 1;
    heapPercolateUp(heapIndex[var]);
}

Var
Solver::heapRemoveMax()
{
    const Var top = heap[0];
    heap[0] = heap.back();
    heapIndex[heap[0]] = 0;
    heapIndex[top] = -1;
    heap.pop_back();
    if (!heap.empty())
        heapPercolateDown(0);
    return top;
}

void
Solver::varBumpActivity(Var var)
{
    activity[var] += varInc;
    if (activity[var] > 1e100) {
        for (auto &act : activity)
            act *= 1e-100;
        varInc *= 1e-100;
    }
    if (heapContains(var))
        heapPercolateUp(heapIndex[var]);
}

Lit
Solver::pickBranchLit()
{
    // Occasional random decisions diversify portfolio instances
    // away from pure EVSIDS order (never taken at the default
    // randomBranchFreq of 0, keeping the solo solver deterministic
    // in its call sequence alone).
    if (config.randomBranchFreq > 0.0 && !heapEmpty() &&
        rng.nextDouble() < config.randomBranchFreq) {
        const Var var = heap[rng.nextBelow(heap.size())];
        if (assigns[var] == LBool::Undef)
            return mkLit(var, polarity[var]);
    }
    while (!heapEmpty()) {
        const Var var = heapRemoveMax();
        if (assigns[var] == LBool::Undef)
            return mkLit(var, polarity[var]);
    }
    return litUndef;
}

// --------------------------------------------------------------------
// Conflict analysis
// --------------------------------------------------------------------

std::uint32_t
Solver::computeLbd(std::span<const Lit> literals)
{
    // Number of distinct decision levels in the clause ("glue").
    static thread_local std::vector<std::uint32_t> mark;
    static thread_local std::uint32_t stamp = 0;
    if (mark.size() < varLevel.size() + 1)
        mark.resize(varLevel.size() + 1, 0);
    ++stamp;
    std::uint32_t lbd = 0;
    for (const Lit lit : literals) {
        const std::uint32_t lvl = varLevel[litVar(lit)];
        if (mark[lvl] != stamp) {
            mark[lvl] = stamp;
            ++lbd;
        }
    }
    return lbd;
}

void
Solver::analyze(ClauseRef conflict, std::vector<Lit> &out_learnt,
                std::uint32_t &out_btlevel, std::uint32_t &out_lbd)
{
    out_learnt.clear();
    out_learnt.push_back(litUndef); // slot for the asserting literal

    Lit p = litUndef;
    int path_count = 0;
    std::size_t index = trail.size() - 1;
    ClauseRef cref = conflict;

    do {
        require(cref != crefUndef, "analyze reached a decision");
        if (clauseLearnt(cref))
            claBumpActivity(cref);
        const Lit *lits = clauseLits(cref);
        const std::uint32_t size = clauseSize(cref);
        for (std::uint32_t k = (p == litUndef) ? 0 : 1; k < size;
             ++k) {
            const Lit q = lits[k];
            const Var v = litVar(q);
            if (!seen[v] && varLevel[v] > 0) {
                varBumpActivity(v);
                seen[v] = 1;
                if (varLevel[v] >= decisionLevel())
                    ++path_count;
                else
                    out_learnt.push_back(q);
            }
        }
        // Find the next marked literal on the trail.
        while (!seen[litVar(trail[index])])
            --index;
        p = trail[index];
        --index;
        cref = varReason[litVar(p)];
        seen[litVar(p)] = 0;
        --path_count;
    } while (path_count > 0);
    out_learnt[0] = ~p;

    // Clause minimization: drop literals implied by the rest.
    analyzeToClear = out_learnt;
    std::uint32_t abstract_levels = 0;
    for (std::size_t i = 1; i < out_learnt.size(); ++i)
        abstract_levels |=
            1u << (varLevel[litVar(out_learnt[i])] & 31);
    std::size_t keep = 1;
    for (std::size_t i = 1; i < out_learnt.size(); ++i) {
        const Lit lit = out_learnt[i];
        if (varReason[litVar(lit)] == crefUndef ||
            !litRedundant(lit, abstract_levels)) {
            out_learnt[keep++] = lit;
        }
    }
    statistics.learntLiterals += keep;
    out_learnt.resize(keep);

    // Backtrack level: highest level among the non-asserting lits.
    if (out_learnt.size() == 1) {
        out_btlevel = 0;
    } else {
        std::size_t max_i = 1;
        for (std::size_t i = 2; i < out_learnt.size(); ++i) {
            if (varLevel[litVar(out_learnt[i])] >
                varLevel[litVar(out_learnt[max_i])]) {
                max_i = i;
            }
        }
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = varLevel[litVar(out_learnt[1])];
    }
    out_lbd = computeLbd(out_learnt);

    for (const Lit lit : analyzeToClear)
        seen[litVar(lit)] = 0;
    analyzeToClear.clear();
}

bool
Solver::litRedundant(Lit lit, std::uint32_t abstract_levels)
{
    static thread_local std::vector<Lit> stack;
    stack.clear();
    stack.push_back(lit);
    const std::size_t top = analyzeToClear.size();
    while (!stack.empty()) {
        const Lit q = stack.back();
        stack.pop_back();
        const ClauseRef cref = varReason[litVar(q)];
        require(cref != crefUndef, "litRedundant on decision");
        const Lit *lits = clauseLits(cref);
        const std::uint32_t size = clauseSize(cref);
        for (std::uint32_t k = 1; k < size; ++k) {
            const Lit l = lits[k];
            const Var v = litVar(l);
            if (seen[v] || varLevel[v] == 0)
                continue;
            if (varReason[v] != crefUndef &&
                ((1u << (varLevel[v] & 31)) & abstract_levels)) {
                seen[v] = 1;
                stack.push_back(l);
                analyzeToClear.push_back(l);
            } else {
                for (std::size_t j = top; j < analyzeToClear.size();
                     ++j) {
                    seen[litVar(analyzeToClear[j])] = 0;
                }
                analyzeToClear.resize(top);
                return false;
            }
        }
    }
    return true;
}

// --------------------------------------------------------------------
// Clause database
// --------------------------------------------------------------------

void
Solver::claBumpActivity(ClauseRef ref)
{
    float act = clauseActivity(ref) + static_cast<float>(claInc);
    if (act > 1e20f) {
        for (const ClauseRef learnt : learntClauses)
            clauseActivity(learnt, clauseActivity(learnt) * 1e-20f);
        claInc *= 1e-20;
        act = clauseActivity(ref) + static_cast<float>(claInc);
    }
    clauseActivity(ref, act);
}

bool
Solver::clauseLocked(ClauseRef ref) const
{
    const Lit first = clauseLits(ref)[0];
    return value(first) == LBool::True &&
           varReason[litVar(first)] == ref;
}

void
Solver::removeClause(ClauseRef ref)
{
    detachClause(ref);
    wastedWords += clauseSize(ref) + 3;
    ++statistics.removedClauses;
}

void
Solver::reduceDb()
{
    // Keep low-LBD ("glue") and locked clauses; drop the less active
    // half of the rest.
    std::vector<ClauseRef> keep;
    std::vector<ClauseRef> candidates;
    keep.reserve(learntClauses.size());
    for (const ClauseRef ref : learntClauses) {
        if (clauseLbd(ref) <= 2 || clauseLocked(ref))
            keep.push_back(ref);
        else
            candidates.push_back(ref);
    }
    std::sort(candidates.begin(), candidates.end(),
              [this](ClauseRef a, ClauseRef b) {
                  if (clauseLbd(a) != clauseLbd(b))
                      return clauseLbd(a) < clauseLbd(b);
                  return clauseActivity(a) > clauseActivity(b);
              });
    const std::size_t retain = candidates.size() / 2;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (i < retain)
            keep.push_back(candidates[i]);
        else
            removeClause(candidates[i]);
    }
    learntClauses = std::move(keep);
}

void
Solver::garbageCollectIfNeeded()
{
    // The arena is append-only: removed clauses are detached and
    // their words counted as waste, but not compacted. This keeps
    // ClauseRefs stable across the incremental descent loop.
}

// --------------------------------------------------------------------
// Clause exchange
// --------------------------------------------------------------------

void
Solver::connectExchange(ClauseExchange *new_exchange,
                        std::size_t instance_id)
{
    exchange = new_exchange;
    exchangeId = instance_id;
}

void
Solver::publishLearnt(std::span<const Lit> literals,
                      std::uint32_t lbd)
{
    if (!exchange || literals.empty())
        return;
    if (literals.size() > exchange->maxSize() ||
        (literals.size() > 1 && lbd > exchange->maxLbd())) {
        return;
    }
    exchange->publish(exchangeId, literals, lbd);
    ++statistics.sharedOut;
}

bool
Solver::adoptClause(std::span<const Lit> literals,
                    std::uint32_t lbd)
{
    require(decisionLevel() == 0,
            "shared clauses may only be adopted at level 0");
    static thread_local std::vector<Lit> scratch;
    scratch.clear();
    for (const Lit lit : literals) {
        require(static_cast<std::size_t>(litVar(lit)) < numVars(),
                "shared clause references unknown variable");
        if (value(lit) == LBool::True)
            return true; // already satisfied at level 0
        if (value(lit) == LBool::False)
            continue; // falsified at level 0: drop literal
        scratch.push_back(lit);
    }
    if (scratch.empty()) {
        ok = false;
        return false;
    }
    if (scratch.size() == 1) {
        uncheckedEnqueue(scratch[0], crefUndef);
        if (propagate() != crefUndef)
            ok = false;
        return ok;
    }
    const ClauseRef ref = allocClause(scratch, true);
    // Keep the publisher's LBD (clamped: level-0 filtering may
    // have shortened the clause) so glue clauses retain the
    // keep-forever protection reduceDb() grants them.
    clauseLbd(ref,
              std::min(lbd, static_cast<std::uint32_t>(
                                scratch.size() - 1)));
    learntClauses.push_back(ref);
    attachClause(ref);
    return true;
}

bool
Solver::importSharedClauses()
{
    if (!exchange)
        return true;
    static thread_local std::vector<ClauseExchange::SharedClause>
        imports;
    imports.clear();
    exchange->collect(exchangeId, imports);
    for (const auto &shared : imports) {
        ++statistics.sharedIn;
        if (!adoptClause(shared.lits, shared.lbd))
            return false;
    }
    return true;
}

// --------------------------------------------------------------------
// Clause addition
// --------------------------------------------------------------------

bool
Solver::addClause(std::span<const Lit> literals)
{
    require(decisionLevel() == 0,
            "clauses may only be added at decision level 0");
    if (recordClauses)
        recorded.emplace_back(literals.begin(), literals.end());
    if (!ok)
        return false;

    static thread_local std::vector<Lit> scratch;
    scratch.assign(literals.begin(), literals.end());
    std::sort(scratch.begin(), scratch.end());
    Lit previous = litUndef;
    std::size_t keep = 0;
    for (const Lit lit : scratch) {
        require(litVar(lit) >= 0 &&
                    static_cast<std::size_t>(litVar(lit)) < numVars(),
                "clause references unknown variable");
        if (lit == previous)
            continue; // duplicate literal
        if (previous != litUndef && lit == ~previous)
            return true; // tautology: x OR NOT x
        if (value(lit) == LBool::True)
            return true; // already satisfied at level 0
        if (value(lit) == LBool::False)
            continue; // falsified at level 0: drop literal
        scratch[keep++] = lit;
        previous = lit;
    }
    scratch.resize(keep);

    if (scratch.empty()) {
        ok = false;
        return false;
    }
    if (scratch.size() == 1) {
        uncheckedEnqueue(scratch[0], crefUndef);
        if (propagate() != crefUndef)
            ok = false;
        return ok;
    }
    const ClauseRef ref = allocClause(scratch, false);
    problemClauses.push_back(ref);
    ++numProblemClauses;
    attachClause(ref);
    return true;
}

// --------------------------------------------------------------------
// Search
// --------------------------------------------------------------------

std::uint64_t
Solver::luby(std::uint64_t i)
{
    // Luby sequence 1,1,2,1,1,2,4,... (0-indexed), MiniSat style.
    std::uint64_t size = 1, seq = 0;
    while (size < i + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) >> 1;
        --seq;
        i = i % size;
    }
    return std::uint64_t{1} << seq;
}

double
Solver::now() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::uint64_t
Solver::restartLimit(std::uint64_t round) const
{
    if (config.restartSchedule == SolverConfig::Restarts::Geometric) {
        double limit = config.restartBase;
        for (std::uint64_t i = 0; i < round; ++i) {
            limit *= config.restartGrowth;
            // Saturate well below 2^63: casting an out-of-range
            // double to an integer is undefined behaviour.
            if (limit >= 1e18)
                return std::uint64_t{1} << 60;
        }
        return static_cast<std::uint64_t>(limit);
    }
    return config.restartBase * luby(round);
}

bool
Solver::budgetExpired(const Budget &budget, double start_time,
                      std::uint64_t start_conflicts) const
{
    if (budget.stopFlag &&
        budget.stopFlag->load(std::memory_order_relaxed)) {
        return true;
    }
    if (budget.maxConflicts >= 0 &&
        statistics.conflicts - start_conflicts >=
            static_cast<std::uint64_t>(budget.maxConflicts)) {
        return true;
    }
    if (budget.maxSeconds > 0 &&
        now() - start_time >= budget.maxSeconds) {
        return true;
    }
    return false;
}

SolveStatus
Solver::search(const Budget &budget, double start_time)
{
    const std::uint64_t start_conflicts = statistics.conflicts;
    std::uint64_t restart_round = 0;
    std::uint64_t conflicts_this_round = 0;
    std::uint64_t restart_limit = restartLimit(0);

    for (;;) {
        const ClauseRef conflict = propagate();
        if (conflict != crefUndef) {
            ++statistics.conflicts;
            ++conflicts_this_round;
            if (decisionLevel() == 0) {
                ok = false;
                return SolveStatus::Unsat;
            }
            std::uint32_t bt_level = 0, lbd = 0;
            analyze(conflict, learntClause, bt_level, lbd);
            publishLearnt(learntClause, lbd);
            cancelUntil(bt_level);
            if (learntClause.size() == 1) {
                uncheckedEnqueue(learntClause[0], crefUndef);
            } else {
                const ClauseRef ref = allocClause(learntClause, true);
                clauseLbd(ref, lbd);
                learntClauses.push_back(ref);
                attachClause(ref);
                claBumpActivity(ref);
                uncheckedEnqueue(learntClause[0], ref);
            }
            varDecayActivity();
            claDecayActivity();
            if ((statistics.conflicts & 0x3ff) == 0 &&
                budgetExpired(budget, start_time, start_conflicts)) {
                cancelUntil(0);
                return SolveStatus::Unknown;
            }
            continue;
        }

        // No conflict.
        if (conflicts_this_round >= restart_limit) {
            ++statistics.restarts;
            ++restart_round;
            conflicts_this_round = 0;
            restart_limit = restartLimit(restart_round);
            cancelUntil(0);
            // Restart boundaries are the one place foreign clauses
            // can be adopted without disturbing an in-flight trail.
            if (!importSharedClauses())
                return SolveStatus::Unsat;
            continue;
        }
        if (budgetExpired(budget, start_time, start_conflicts)) {
            cancelUntil(0);
            return SolveStatus::Unknown;
        }
        if (learntClauses.size() >= maxLearnts) {
            reduceDb();
            maxLearnts =
                static_cast<std::uint64_t>(maxLearnts * 1.2);
        }

        Lit next = litUndef;
        while (decisionLevel() < assumptionList.size()) {
            const Lit p = assumptionList[decisionLevel()];
            if (value(p) == LBool::True) {
                newDecisionLevel(); // dummy level for this assumption
            } else if (value(p) == LBool::False) {
                cancelUntil(0);
                return SolveStatus::Unsat;
            } else {
                next = p;
                break;
            }
        }
        if (next == litUndef) {
            next = pickBranchLit();
            if (next == litUndef) {
                // All variables assigned: model found.
                model.assign(assigns.begin(), assigns.end());
                cancelUntil(0);
                return SolveStatus::Sat;
            }
            ++statistics.decisions;
        }
        newDecisionLevel();
        uncheckedEnqueue(next, crefUndef);
    }
}

SolveStatus
Solver::solve(std::span<const Lit> assumptions, const Budget &budget)
{
    if (!ok)
        return SolveStatus::Unsat;
    assumptionList.assign(assumptions.begin(), assumptions.end());
    cancelUntil(0);
    if (propagate() != crefUndef) {
        ok = false;
        return SolveStatus::Unsat;
    }
    if (!importSharedClauses()) {
        assumptionList.clear();
        return SolveStatus::Unsat;
    }
    const double start_time = now();
    const SolveStatus status = search(budget, start_time);
    cancelUntil(0);
    assumptionList.clear();
    return status;
}

LBool
Solver::modelValue(Var var) const
{
    if (static_cast<std::size_t>(var) >= model.size())
        return LBool::Undef;
    return model[var];
}

void
Solver::setPolarity(Var var, bool value)
{
    require(static_cast<std::size_t>(var) < numVars(),
            "setPolarity on unknown variable");
    polarity[var] = value ? 0 : 1;
}

void
Solver::boostActivity(Var var, double amount)
{
    require(static_cast<std::size_t>(var) < numVars(),
            "boostActivity on unknown variable");
    activity[var] += amount;
    if (heapContains(var))
        heapPercolateUp(heapIndex[var]);
}

} // namespace fermihedral::sat
