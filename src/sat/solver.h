/**
 * @file
 * A self-contained CDCL SAT solver.
 *
 * This replaces the Kissat/CaDiCaL dependency of the original
 * Fermihedral artifact. The implementation follows the classic
 * MiniSat architecture with the standard modern refinements:
 *
 *  - two-watched-literal propagation with blocker literals,
 *  - first-UIP conflict analysis with clause minimization,
 *  - EVSIDS decision heuristic with phase saving,
 *  - Luby-sequence (or geometric) restarts,
 *  - LBD ("glue") guided learnt-clause database reduction,
 *  - incremental solving: clauses may be added between solve()
 *    calls and assumptions are supported, which Algorithm 1's
 *    descent loop uses to tighten the Pauli-weight bound by
 *    asserting a single totalizer output literal per step,
 *  - conflict/time budgets so descent steps can time out the same
 *    way the paper's setup bounds each SAT call,
 *  - configurable diversification (decision seed, phase policy,
 *    restart schedule) and learnt-clause exchange, the two hooks
 *    the portfolio front-end (sat/portfolio.h) races instances on.
 *
 * Key invariants:
 *  - Variables are dense 0-based indices; every literal passed to
 *    addClause()/solve() must come from a prior newVar() call.
 *  - After solve() returns Sat, modelValue() is defined for every
 *    variable and satisfies every added clause; after Unsat the
 *    formula (under the given assumptions) has no model. Unknown is
 *    returned only when a Budget expired or a stop was requested.
 *  - Clauses and variables may be added between solve() calls;
 *    learnt clauses, saved phases and activities persist, which is
 *    what makes the descent loop's incremental tightening cheap.
 *  - The clause arena may be garbage-collected at any solve()
 *    boundary: ClauseRef values are internal and never escape.
 *  - A default-constructed config makes the solver a deterministic
 *    function of its clause/solve call sequence; any two Solvers
 *    fed the same calls return the same answers and models.
 */

#ifndef FERMIHEDRAL_SAT_SOLVER_H
#define FERMIHEDRAL_SAT_SOLVER_H

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/rng.h"
#include "sat/solver_base.h"
#include "sat/types.h"

namespace fermihedral::sat {

class ClauseExchange;

/**
 * Search-heuristic configuration. The defaults reproduce the
 * classic MiniSat-style behaviour; the portfolio diversifies
 * instances by varying these knobs.
 */
struct SolverConfig
{
    /** Seed for the solver-local RNG (random branching/phases). */
    std::uint64_t seed = 0;

    /** Probability of a uniformly random branching variable. */
    double randomBranchFreq = 0.0;

    /** Initial saved phase assigned to fresh variables. */
    bool initialPhase = false;

    /** Draw each fresh variable's initial phase from the RNG. */
    bool randomizePhases = false;

    /** Restart schedule family. */
    enum class Restarts { Luby, Geometric };
    Restarts restartSchedule = Restarts::Luby;

    /** Conflicts per restart unit (Luby) / first interval (geom.). */
    std::uint32_t restartBase = 100;

    /** Interval multiplier for the geometric schedule. */
    double restartGrowth = 1.5;

    /** EVSIDS activity decay factor. */
    double varDecay = 0.95;
};

/**
 * The CDCL solver. Create variables with newVar(), add clauses with
 * addClause(), then call solve(). More clauses may be added after a
 * solve; learnt clauses and heuristic state are kept.
 */
class Solver final : public SolverBase
{
  public:
    explicit Solver(const SolverConfig &config = {});
    Solver(const Solver &) = delete;
    Solver &operator=(const Solver &) = delete;

    /** Create a fresh variable and return its index. */
    Var newVar() override;

    /** Number of created variables. */
    std::size_t numVars() const override { return assigns.size(); }

    /** Number of problem (non-learnt) clauses added and retained. */
    std::size_t numClauses() const override
    {
        return numProblemClauses;
    }

    using SolverBase::addClause;

    /**
     * Add a clause (disjunction of literals). Returns false when
     * the clause makes the formula trivially unsatisfiable.
     * Must not be called while a solve() is in progress.
     */
    bool addClause(std::span<const Lit> literals) override;

    /**
     * Solve under the given assumptions and budget.
     * Unknown means the budget expired first.
     */
    SolveStatus solve(std::span<const Lit> assumptions = {},
                      const Budget &budget = {}) override;

    using SolverBase::modelValue;

    /** Value of a variable in the last satisfying model. */
    LBool modelValue(Var var) const override;

    /**
     * Set the initial saved phase of a variable (warm start). The
     * solver will try this polarity first when branching.
     */
    void setPolarity(Var var, bool value) override;

    /**
     * Raise a variable's branching activity so it is decided before
     * less active ones. Useful to prioritise semantic variables
     * over Tseitin auxiliaries, which then follow by propagation.
     */
    void boostActivity(Var var, double amount) override;

    /**
     * Join a learnt-clause exchange: short low-LBD learnt clauses
     * are published under `instance_id` and clauses published by
     * other instances are imported at restart boundaries. The
     * exchange must outlive every connected solver, and all
     * connected solvers must share one variable numbering.
     */
    void connectExchange(ClauseExchange *exchange,
                         std::size_t instance_id);

    /**
     * Record every clause passed to addClause (verbatim, before
     * simplification) for DIMACS export. Must be enabled before the
     * first clause is added to capture the whole instance.
     */
    void enableRecording() { recordClauses = true; }

    /** The recorded clause stream (empty unless enabled). */
    const std::vector<std::vector<Lit>> &
    recordedClauses() const
    {
        return recorded;
    }

    /** True once the clause set is known unsatisfiable at level 0. */
    bool inconsistent() const override { return !ok; }

    const SolverStats &stats() const override { return statistics; }

  private:
    // --- Clause storage -------------------------------------------------
    /** Offset of a clause in the arena. */
    using ClauseRef = std::uint32_t;
    static constexpr ClauseRef crefUndef =
        std::numeric_limits<ClauseRef>::max();

    /**
     * Arena layout per clause:
     *   word 0: size << 1 | learnt
     *   word 1: activity (float bits) for learnt, 0 otherwise
     *   word 2: lbd for learnt, 0 otherwise
     *   word 3..: literal codes
     */
    std::vector<std::uint32_t> arena;

    std::uint32_t clauseSize(ClauseRef ref) const
    {
        return arena[ref] >> 1;
    }
    bool clauseLearnt(ClauseRef ref) const { return arena[ref] & 1; }
    Lit *clauseLits(ClauseRef ref)
    {
        return reinterpret_cast<Lit *>(&arena[ref + 3]);
    }
    const Lit *clauseLits(ClauseRef ref) const
    {
        return reinterpret_cast<const Lit *>(&arena[ref + 3]);
    }
    float clauseActivity(ClauseRef ref) const;
    void clauseActivity(ClauseRef ref, float value);
    std::uint32_t clauseLbd(ClauseRef ref) const
    {
        return arena[ref + 2];
    }
    void clauseLbd(ClauseRef ref, std::uint32_t lbd)
    {
        arena[ref + 2] = lbd;
    }
    void clauseShrink(ClauseRef ref, std::uint32_t new_size);

    ClauseRef allocClause(std::span<const Lit> literals, bool learnt);

    // --- Watches --------------------------------------------------------
    struct Watcher
    {
        ClauseRef cref;
        Lit blocker;
    };
    /** watches[lit.code]: clauses to inspect when lit becomes false. */
    std::vector<std::vector<Watcher>> watches;

    void attachClause(ClauseRef ref);
    void detachClause(ClauseRef ref);

    // --- Assignment trail -----------------------------------------------
    std::vector<LBool> assigns;
    std::vector<std::uint32_t> varLevel;
    std::vector<ClauseRef> varReason;
    std::vector<Lit> trail;
    std::vector<std::uint32_t> trailLim;
    std::size_t qhead = 0;

    LBool value(Var var) const { return assigns[var]; }
    LBool value(Lit lit) const
    {
        const LBool v = assigns[litVar(lit)];
        return litSign(lit) ? -v : v;
    }
    std::uint32_t decisionLevel() const
    {
        return static_cast<std::uint32_t>(trailLim.size());
    }

    void uncheckedEnqueue(Lit lit, ClauseRef reason);
    ClauseRef propagate();
    void cancelUntil(std::uint32_t level);
    void newDecisionLevel()
    {
        trailLim.push_back(static_cast<std::uint32_t>(trail.size()));
    }

    // --- Decision heuristic ----------------------------------------------
    std::vector<double> activity;
    double varInc = 1.0;
    std::vector<char> polarity;
    std::vector<char> seen;

    /** Indexed max-heap over variable activity. */
    std::vector<Var> heap;
    std::vector<std::int32_t> heapIndex;
    bool heapLess(Var a, Var b) const
    {
        return activity[a] > activity[b];
    }
    void heapPercolateUp(std::int32_t i);
    void heapPercolateDown(std::int32_t i);
    void heapInsert(Var var);
    Var heapRemoveMax();
    bool heapEmpty() const { return heap.empty(); }
    bool heapContains(Var var) const
    {
        return heapIndex[var] >= 0;
    }

    void varBumpActivity(Var var);
    void varDecayActivity() { varInc /= config.varDecay; }
    Lit pickBranchLit();

    // --- Conflict analysis -----------------------------------------------
    std::vector<Lit> learntClause;
    std::vector<Lit> analyzeToClear;
    void analyze(ClauseRef conflict, std::vector<Lit> &out_learnt,
                 std::uint32_t &out_btlevel, std::uint32_t &out_lbd);
    bool litRedundant(Lit lit, std::uint32_t abstract_levels);
    std::uint32_t computeLbd(std::span<const Lit> literals);

    // --- Clause database management ---------------------------------------
    std::vector<ClauseRef> problemClauses;
    std::vector<ClauseRef> learntClauses;
    std::size_t numProblemClauses = 0;
    double claInc = 1.0;
    static constexpr double claDecay = 0.999;
    std::uint64_t maxLearnts = 8192;
    std::uint64_t wastedWords = 0;

    void claBumpActivity(ClauseRef ref);
    void claDecayActivity() { claInc /= claDecay; }
    void reduceDb();
    bool clauseLocked(ClauseRef ref) const;
    void removeClause(ClauseRef ref);
    void garbageCollectIfNeeded();

    // --- Clause exchange ---------------------------------------------------
    ClauseExchange *exchange = nullptr;
    std::size_t exchangeId = 0;

    void publishLearnt(std::span<const Lit> literals,
                       std::uint32_t lbd);
    /** Adopt foreign clauses at level 0. False when UNSAT results. */
    bool importSharedClauses();
    bool adoptClause(std::span<const Lit> literals,
                     std::uint32_t lbd);

    // --- Search ------------------------------------------------------------
    SolverConfig config;
    Rng rng;
    bool ok = true;
    bool recordClauses = false;
    std::vector<std::vector<Lit>> recorded;
    std::vector<Lit> assumptionList;
    std::vector<LBool> model;
    SolverStats statistics;

    SolveStatus search(const Budget &budget, double start_time);
    std::uint64_t restartLimit(std::uint64_t round) const;
    static std::uint64_t luby(std::uint64_t i);
    double now() const;

    bool budgetExpired(const Budget &budget, double start_time,
                       std::uint64_t start_conflicts) const;
};

} // namespace fermihedral::sat

#endif // FERMIHEDRAL_SAT_SOLVER_H
