/**
 * @file
 * A self-contained CDCL SAT solver.
 *
 * This replaces the Kissat/CaDiCaL dependency of the original
 * Fermihedral artifact. The implementation follows the classic
 * MiniSat architecture with the standard modern refinements:
 *
 *  - clause storage in a bump-allocated arena (sat/clause_arena.h):
 *    32-bit clause refs, metadata inlined ahead of the literals,
 *    in-place shrinking, and copying garbage collection when the
 *    learnt-database reduction has retired enough words,
 *  - two-watched-literal propagation with blocker literals, and
 *    dedicated binary watch lists whose watchers carry the implied
 *    literal inline so binary chains never touch the arena,
 *  - first-UIP conflict analysis with clause minimization,
 *  - EVSIDS decision heuristic on an indexed binary heap with lazy
 *    activity rescaling (sat/var_heap.h), plus phase saving,
 *  - Luby-sequence (or geometric) restarts,
 *  - LBD ("glue") guided learnt-clause database reduction,
 *  - incremental solving: clauses may be added between solve()
 *    calls and assumptions are supported, which Algorithm 1's
 *    descent loop uses to tighten the Pauli-weight bound by
 *    asserting a single totalizer output literal per step; learnt
 *    clauses, phases and activities carry over across those calls
 *    (clearLearnts() resets the carried clauses when a caller
 *    wants restart-from-scratch behaviour),
 *  - inprocessing between solves: subsumption / self-subsuming
 *    resolution of the problem clauses through the sat/preprocess
 *    Simplifier (variable elimination stays off so retained learnt
 *    clauses remain sound) and bounded clause vivification,
 *  - conflict/time budgets so descent steps can time out the same
 *    way the paper's setup bounds each SAT call,
 *  - configurable diversification (decision seed, phase policy,
 *    restart schedule) and learnt-clause exchange, the two hooks
 *    the portfolio front-end (sat/portfolio.h) races instances on.
 *
 * Key invariants:
 *  - Variables are dense 0-based indices; every literal passed to
 *    addClause()/solve() must come from a prior newVar() call.
 *  - After solve() returns Sat, modelValue() is defined for every
 *    variable and satisfies every added clause; after Unsat the
 *    formula (under the given assumptions) has no model. Unknown is
 *    returned only when a Budget expired or a stop was requested.
 *  - Clauses and variables may be added between solve() calls;
 *    learnt clauses, saved phases and activities persist, which is
 *    what makes the descent loop's incremental tightening cheap.
 *  - The clause arena may be garbage-collected whenever the solver
 *    is between propagations: ClauseRef values are internal and
 *    never escape. snapshotCnf (sat/dimacs.h) therefore reads the
 *    live problem clauses, never refs.
 *  - inprocess()/clearLearnts() preserve equivalence over all
 *    variables (no elimination): any model of the formula before
 *    the call is a model after it and vice versa.
 *  - A default-constructed config makes the solver a deterministic
 *    function of its clause/solve/inprocess call sequence; any two
 *    Solvers fed the same calls return the same answers and models.
 *  - Compiling with -DFERMIHEDRAL_SOLVER_CHECK (or setting
 *    SolverConfig::selfCheck) runs checkInvariants() at solve,
 *    reduction, collection and inprocessing boundaries; the check
 *    itself is always available and fatal on violation.
 */

#ifndef FERMIHEDRAL_SAT_SOLVER_H
#define FERMIHEDRAL_SAT_SOLVER_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/telemetry.h"
#include "sat/clause_arena.h"
#include "sat/solver_base.h"
#include "sat/types.h"
#include "sat/var_heap.h"

namespace fermihedral::sat {

class ClauseExchange;

/**
 * Search-heuristic configuration. The defaults reproduce the
 * classic MiniSat-style behaviour; the portfolio diversifies
 * instances by varying these knobs.
 */
struct SolverConfig
{
    /** Seed for the solver-local RNG (random branching/phases). */
    std::uint64_t seed = 0;

    /** Probability of a uniformly random branching variable. */
    double randomBranchFreq = 0.0;

    /** Initial saved phase assigned to fresh variables. */
    bool initialPhase = false;

    /** Draw each fresh variable's initial phase from the RNG. */
    bool randomizePhases = false;

    /** Restart schedule family. */
    enum class Restarts { Luby, Geometric };
    Restarts restartSchedule = Restarts::Luby;

    /** Conflicts per restart unit (Luby) / first interval (geom.). */
    std::uint32_t restartBase = 100;

    /** Interval multiplier for the geometric schedule. */
    double restartGrowth = 1.5;

    /** EVSIDS activity decay factor. */
    double varDecay = 0.95;

    /**
     * Run the solver invariant self-checks (watch consistency,
     * arena ref validity, heap order) at search boundaries. Always
     * on when the library is compiled with
     * -DFERMIHEDRAL_SOLVER_CHECK.
     */
    bool selfCheck = false;
};

/** Effort limits for one Solver::inprocess() call. */
struct InprocessOptions
{
    /**
     * Subsume / strengthen the problem clauses with the
     * sat/preprocess Simplifier (variable elimination off: learnt
     * clauses stay sound without witness reconstruction).
     */
    bool subsumption = true;

    /** Shorten clauses by unit-propagation vivification. */
    bool vivification = true;

    /** Propagation budget for one vivification pass. */
    std::uint64_t vivifyPropagationLimit = 500000;

    /** Skip vivifying clauses shorter than this. */
    std::uint32_t vivifyMinSize = 3;
};

/**
 * The CDCL solver. Create variables with newVar(), add clauses with
 * addClause(), then call solve(). More clauses may be added after a
 * solve; learnt clauses and heuristic state are kept.
 */
class Solver final : public SolverBase
{
  public:
    explicit Solver(const SolverConfig &config = {});
    Solver(const Solver &) = delete;
    Solver &operator=(const Solver &) = delete;

    /** Create a fresh variable and return its index. */
    Var newVar() override;

    /** Number of created variables. */
    std::size_t numVars() const override { return assigns.size(); }

    /** Number of problem (non-learnt) clauses added and retained. */
    std::size_t numClauses() const override
    {
        return problemClauses.size();
    }

    using SolverBase::addClause;

    /**
     * Add a clause (disjunction of literals). Returns false when
     * the clause makes the formula trivially unsatisfiable.
     * Must not be called while a solve() is in progress.
     */
    bool addClause(std::span<const Lit> literals) override;

    /**
     * Solve under the given assumptions and budget.
     * Unknown means the budget expired first.
     */
    SolveStatus solve(std::span<const Lit> assumptions = {},
                      const Budget &budget = {}) override;

    using SolverBase::modelValue;

    /** Value of a variable in the last satisfying model. */
    LBool modelValue(Var var) const override;

    /**
     * Set the initial saved phase of a variable (warm start). The
     * solver will try this polarity first when branching.
     */
    void setPolarity(Var var, bool value) override;

    /**
     * Raise a variable's branching activity so it is decided before
     * less active ones. Useful to prioritise semantic variables
     * over Tseitin auxiliaries, which then follow by propagation.
     */
    void boostActivity(Var var, double amount) override;

    /**
     * Inprocess the clause database between solve() calls:
     * top-level simplification, subsumption / self-subsuming
     * resolution of the problem clauses, bounded vivification, and
     * a garbage collection when enough waste accumulated. Returns
     * false when simplification refuted the formula.
     */
    bool inprocess(const InprocessOptions &options = {});

    /**
     * Drop every learnt clause (the carried state of the
     * incremental descent). The next solve() re-derives what it
     * needs — used to measure what carry-over buys, and by callers
     * that want restart-from-scratch semantics.
     */
    void clearLearnts();

    /**
     * Join a learnt-clause exchange: short low-LBD learnt clauses
     * are published under `instance_id` and clauses published by
     * other instances are imported at restart boundaries. The
     * exchange must outlive every connected solver, and all
     * connected solvers must share one variable numbering.
     */
    void connectExchange(ClauseExchange *exchange,
                         std::size_t instance_id);

    /**
     * The current problem clauses (simplified, possibly shrunk by
     * inprocessing — never learnt clauses) plus one unit per
     * top-level fixed variable. This is the DIMACS export surface:
     * equivalent to the conjunction of every added clause, and
     * stable across garbage collection. An inconsistent solver
     * snapshots as a contradictory unit pair, since the refuting
     * clause itself was never stored.
     */
    std::vector<std::vector<Lit>> problemClausesSnapshot() const;

    /** True once the clause set is known unsatisfiable at level 0. */
    bool inconsistent() const override { return !ok; }

    const SolverStats &stats() const override { return statistics; }

    /** Arena footprint in 32-bit words (live + waste). */
    std::size_t arenaWords() const { return arena.size(); }

    /** Arena words retired but not yet collected. */
    std::size_t arenaWasted() const { return arena.wasted(); }

    /** Problem clauses stored in the binary watch lists. */
    std::size_t numBinaryClauses() const;

    /**
     * Verify the solver's internal invariants: every stored
     * ClauseRef valid and unrelocated, watch lists consistent with
     * the first two literals of every clause (binary watchers
     * carrying the implied literal), heap order and index mapping
     * intact, trail well-formed. Fatal (FatalError) on violation.
     * Runs automatically at search boundaries when selfCheck is
     * set or the library is built with FERMIHEDRAL_SOLVER_CHECK.
     */
    void checkInvariants() const;

  private:
    // --- Clause storage -------------------------------------------------
    ClauseArena arena;

    // --- Watches --------------------------------------------------------
    struct Watcher
    {
        ClauseRef cref;
        Lit blocker;
    };
    /** watches[lit.code]: long clauses to inspect when lit falls. */
    std::vector<std::vector<Watcher>> watches;
    /**
     * binWatches[lit.code]: binary clauses; the blocker IS the
     * other literal, so propagation never dereferences the arena.
     */
    std::vector<std::vector<Watcher>> binWatches;

    void attachClause(ClauseRef ref);
    void detachClause(ClauseRef ref);

    // --- Assignment trail -----------------------------------------------
    std::vector<LBool> assigns;
    std::vector<std::uint32_t> varLevel;
    std::vector<ClauseRef> varReason;
    std::vector<Lit> trail;
    std::vector<std::uint32_t> trailLim;
    std::size_t qhead = 0;

    LBool value(Var var) const { return assigns[var]; }
    LBool value(Lit lit) const
    {
        const LBool v = assigns[litVar(lit)];
        return litSign(lit) ? -v : v;
    }
    std::uint32_t decisionLevel() const
    {
        return static_cast<std::uint32_t>(trailLim.size());
    }

    void uncheckedEnqueue(Lit lit, ClauseRef reason);
    ClauseRef propagate();
    void cancelUntil(std::uint32_t level);
    void newDecisionLevel()
    {
        trailLim.push_back(static_cast<std::uint32_t>(trail.size()));
    }

    // --- Decision heuristic ----------------------------------------------
    VarHeap heap;
    std::vector<char> polarity;
    std::vector<char> seen;

    Lit pickBranchLit();

    // --- Conflict analysis -----------------------------------------------
    std::vector<Lit> learntClause;
    std::vector<Lit> analyzeToClear;
    void analyze(ClauseRef conflict, std::vector<Lit> &out_learnt,
                 std::uint32_t &out_btlevel, std::uint32_t &out_lbd);
    bool litRedundant(Lit lit, std::uint32_t abstract_levels);
    std::uint32_t computeLbd(std::span<const Lit> literals);

    // --- Clause database management ---------------------------------------
    std::vector<ClauseRef> problemClauses;
    std::vector<ClauseRef> learntClauses;
    double claInc = 1.0;
    static constexpr double claDecay = 0.999;
    std::uint64_t maxLearnts = 8192;

    void claBumpActivity(ClauseRef ref);
    void claDecayActivity() { claInc /= claDecay; }
    void reduceDb();
    bool clauseLocked(ClauseRef ref) const;
    void removeClause(ClauseRef ref);

    /**
     * Copying collection: live clauses move to a fresh arena in
     * watcher order, every stored ref is forwarded. Runs when the
     * retired words cross a quarter of the arena.
     */
    void garbageCollectIfNeeded();
    void garbageCollect();

    // --- Inprocessing ------------------------------------------------------
    /** Drop level-0 reasons (facts need none; frees their clauses). */
    void detachLevelZeroReasons();
    bool subsumptionPass();
    bool vivifyPass(const InprocessOptions &options);
    bool enqueueFactAndPropagate(Lit lit);

    // --- Clause exchange ---------------------------------------------------
    ClauseExchange *exchange = nullptr;
    std::size_t exchangeId = 0;

    void publishLearnt(std::span<const Lit> literals,
                       std::uint32_t lbd);
    /** Adopt foreign clauses at level 0. False when UNSAT results. */
    bool importSharedClauses();
    bool adoptClause(std::span<const Lit> literals,
                     std::uint32_t lbd);

    // --- Search ------------------------------------------------------------
    SolverConfig config;
    Rng rng;
    bool ok = true;
    std::vector<Lit> assumptionList;
    std::vector<LBool> model;
    SolverStats statistics;

    SolveStatus search(const Budget &budget, double start_time);
    std::uint64_t restartLimit(std::uint64_t round) const;
    static std::uint64_t luby(std::uint64_t i);
    double now() const;

    /** Push this solve's stat deltas into the metrics registry. */
    void publishTelemetry(const SolverStats &before,
                          SolveStatus status,
                          telemetry::TraceSpan &span) const;

    bool budgetExpired(const Budget &budget, double start_time,
                       std::uint64_t start_conflicts) const;

    bool selfCheckEnabled() const;
    void maybeCheck() const
    {
        if (selfCheckEnabled())
            checkInvariants();
    }
};

} // namespace fermihedral::sat

#endif // FERMIHEDRAL_SAT_SOLVER_H
