/**
 * @file
 * The abstract clause-consumer / solver interface.
 *
 * The encoding model, the Tseitin builder and the totalizer only
 * need "create variables, add clauses, solve, read the model". This
 * interface names exactly that surface so the same constraint
 * construction can target either the plain CDCL engine
 * (sat/solver.h) or the preprocessing portfolio front-end
 * (sat/portfolio.h) without caring which it got.
 *
 * Key invariants:
 *  - Variables are dense 0-based indices; every literal passed to
 *    addClause()/solve() must come from a prior newVar() call on
 *    the same object.
 *  - After solve() returns Sat, modelValue() is defined for every
 *    created variable and satisfies every added clause; after
 *    Unsat the formula (under the given assumptions) has no model;
 *    Unknown is returned only when the Budget expired (or an
 *    external stop was requested).
 *  - Clauses and variables may be added between solve() calls.
 *  - freeze() is a hint, never a behavioural requirement for
 *    correct callers: it marks a variable as part of the caller's
 *    interface (future clauses, assumptions or model reads), which
 *    preprocessing implementations must then not eliminate. The
 *    plain solver ignores it.
 */

#ifndef FERMIHEDRAL_SAT_SOLVER_BASE_H
#define FERMIHEDRAL_SAT_SOLVER_BASE_H

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <span>

#include "sat/types.h"

namespace fermihedral::sat {

/** Outcome of a solve() call. */
enum class SolveStatus { Sat, Unsat, Unknown };

/** Resource limits for one solve() call. */
struct Budget
{
    /** Maximum number of conflicts (no limit when negative). */
    std::int64_t maxConflicts = -1;
    /** Maximum wall-clock seconds (no limit when <= 0). */
    double maxSeconds = -1.0;
    /**
     * Optional external cancellation: when the pointed-to flag
     * becomes true the solve returns Unknown at the next budget
     * check. The portfolio uses this for first-finisher-wins.
     */
    const std::atomic<bool> *stopFlag = nullptr;
};

/** Aggregate counters exposed for benchmarks and tests. */
struct SolverStats
{
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learntLiterals = 0;
    std::uint64_t removedClauses = 0;
    /** Learnt clauses exported to / adopted from a ClauseExchange. */
    std::uint64_t sharedOut = 0;
    std::uint64_t sharedIn = 0;
    /** Copying arena collections and the words they reclaimed. */
    std::uint64_t garbageCollects = 0;
    std::uint64_t reclaimedWords = 0;
    /** Inprocessing rounds and their clause-database effect. */
    std::uint64_t inprocessings = 0;
    std::uint64_t inprocessSubsumed = 0;
    std::uint64_t inprocessStrengthened = 0;
    std::uint64_t vivifiedClauses = 0;
    std::uint64_t vivifiedLiterals = 0;
    /** Learnt clauses dropped by clearLearnts() (carry-over off). */
    std::uint64_t clearedLearnts = 0;

    SolverStats &operator+=(const SolverStats &other)
    {
        conflicts += other.conflicts;
        decisions += other.decisions;
        propagations += other.propagations;
        restarts += other.restarts;
        learntLiterals += other.learntLiterals;
        removedClauses += other.removedClauses;
        sharedOut += other.sharedOut;
        sharedIn += other.sharedIn;
        garbageCollects += other.garbageCollects;
        reclaimedWords += other.reclaimedWords;
        inprocessings += other.inprocessings;
        inprocessSubsumed += other.inprocessSubsumed;
        inprocessStrengthened += other.inprocessStrengthened;
        vivifiedClauses += other.vivifiedClauses;
        vivifiedLiterals += other.vivifiedLiterals;
        clearedLearnts += other.clearedLearnts;
        return *this;
    }
};

/** Abstract variable/clause/solve surface (see file comment). */
class SolverBase
{
  public:
    virtual ~SolverBase() = default;

    /** Create a fresh variable and return its index. */
    virtual Var newVar() = 0;

    /** Number of created variables. */
    virtual std::size_t numVars() const = 0;

    /** Number of problem (non-learnt) clauses retained. */
    virtual std::size_t numClauses() const = 0;

    /**
     * Add a clause (disjunction of literals). Returns false when
     * the clause is known to make the formula unsatisfiable.
     */
    virtual bool addClause(std::span<const Lit> literals) = 0;

    bool addClause(std::initializer_list<Lit> literals)
    {
        return addClause(std::span<const Lit>(literals.begin(),
                                              literals.size()));
    }

    /** Convenience for unit / binary / ternary clauses. */
    bool addUnit(Lit a) { return addClause({a}); }
    bool addBinary(Lit a, Lit b) { return addClause({a, b}); }
    bool addTernary(Lit a, Lit b, Lit c)
    {
        return addClause({a, b, c});
    }

    /**
     * Solve under the given assumptions and budget.
     * Unknown means the budget expired (or a stop was requested).
     */
    virtual SolveStatus solve(std::span<const Lit> assumptions = {},
                              const Budget &budget = {}) = 0;

    /** Value of a variable in the last satisfying model. */
    virtual LBool modelValue(Var var) const = 0;

    /** Value of a literal in the last satisfying model. */
    LBool modelValue(Lit lit) const
    {
        const LBool v = modelValue(litVar(lit));
        return litSign(lit) ? -v : v;
    }

    /** Set the initial saved phase of a variable (warm start). */
    virtual void setPolarity(Var var, bool value) = 0;

    /** Raise a variable's branching activity. */
    virtual void boostActivity(Var var, double amount) = 0;

    /**
     * Mark a variable as externally visible: the caller will read
     * its model value, assume it, or mention it in clauses added
     * after the first solve. Preprocessing must not eliminate it.
     * The plain solver ignores the hint.
     */
    virtual void freeze(Var) {}

    /** True once the clause set is known unsatisfiable at level 0. */
    virtual bool inconsistent() const = 0;

    virtual const SolverStats &stats() const = 0;
};

} // namespace fermihedral::sat

#endif // FERMIHEDRAL_SAT_SOLVER_BASE_H
