#include "sat/totalizer.h"

#include "common/logging.h"

namespace fermihedral::sat {

Totalizer::Totalizer(SolverBase &solver, std::span<const Lit> inputs,
                     std::size_t cap)
    : sat(solver), cap(cap), numInputs(inputs.size())
{
    require(!inputs.empty(), "Totalizer over zero inputs");
    outputs = build(inputs);
}

std::vector<Lit>
Totalizer::build(std::span<const Lit> inputs)
{
    if (inputs.size() == 1)
        return {inputs[0]};
    const std::size_t half = inputs.size() / 2;
    const std::vector<Lit> left = build(inputs.subspan(0, half));
    const std::vector<Lit> right = build(inputs.subspan(half));
    return merge(left, right);
}

std::vector<Lit>
Totalizer::merge(const std::vector<Lit> &left,
                 const std::vector<Lit> &right)
{
    // The merged node represents min(|left|+|right|, cap+1) unary
    // counter bits r_1..r_m with the "at least" semantics:
    //   left >= i AND right >= j  ->  merged >= i+j  (saturating).
    const std::size_t total = left.size() + right.size();
    const std::size_t width = std::min(total, cap + 1);
    std::vector<Lit> merged(width);
    for (std::size_t k = 0; k < width; ++k)
        merged[k] = mkLit(sat.newVar());

    // Emitting the implications for all pairs with i + j <= width is
    // sufficient even under saturation: a true sum s >= width always
    // admits a split i + j = width with left >= i and right >= j, so
    // the top output is still forced.
    for (std::size_t i = 0; i <= left.size(); ++i) {
        for (std::size_t j = (i == 0 ? 1 : 0);
             i + j <= width && j <= right.size(); ++j) {
            const Lit out = merged[i + j - 1];
            // (left >= i) and (right >= j) -> (merged >= i + j).
            if (i > 0 && j > 0)
                sat.addTernary(~left[i - 1], ~right[j - 1], out);
            else if (i > 0)
                sat.addBinary(~left[i - 1], out);
            else
                sat.addBinary(~right[j - 1], out);
        }
    }
    return merged;
}

Lit
Totalizer::atLeast(std::size_t count) const
{
    require(count >= 1 && count <= outputs.size(),
            "Totalizer::atLeast(", count, ") out of range 1..",
            outputs.size());
    return outputs[count - 1];
}

void
Totalizer::boundAtMost(std::size_t bound)
{
    require(bound + 1 <= outputs.size() || bound >= numInputs,
            "Totalizer bound ", bound, " exceeds cap ", cap);
    if (bound >= numInputs)
        return; // vacuous
    sat.addUnit(~atLeast(bound + 1));
}

} // namespace fermihedral::sat
