/**
 * @file
 * Capped totalizer encoding for cardinality bounds.
 *
 * The weight objective of Section 3.6 is realised as a totalizer tree
 * (Bailleux & Boutier) over the per-operator weight bits. The tree's
 * outputs form a monotone unary counter: output k is implied whenever
 * at least k+1 inputs are true. Bounding "sum <= k" is then a single
 * unit clause (NOT output_k), which makes Algorithm 1's descent loop
 * incremental: each iteration only asserts one more unit.
 *
 * The counter is capped: counts above `cap` all map to the top
 * output, which keeps the clause count O(n * cap) instead of O(n^2).
 * This is sound for upper bounds not exceeding the cap.
 *
 * Key invariants:
 *  - Outputs are monotone in every model: output k true implies
 *    output k-1 true, so the counter reads as a unary number.
 *  - atLeast(count) requires 1 <= count <= width(), where width()
 *    is min(inputs, cap + 1); bounds above the cap are not
 *    expressible and must be handled by the caller.
 *  - All counter structure is built once in the constructor; later
 *    boundAtMost() calls add only single unit clauses, which is
 *    what keeps Algorithm 1's descent incremental.
 */

#ifndef FERMIHEDRAL_SAT_TOTALIZER_H
#define FERMIHEDRAL_SAT_TOTALIZER_H

#include <span>
#include <vector>

#include "sat/solver_base.h"
#include "sat/types.h"

namespace fermihedral::sat {

/** A capped unary counter over a fixed set of input literals. */
class Totalizer
{
  public:
    /**
     * Build the counter in the given solver.
     *
     * @param solver Destination solver.
     * @param inputs The counted literals.
     * @param cap    Highest count that must be distinguished; sums
     *               greater than cap saturate at cap + 1.
     */
    Totalizer(SolverBase &solver, std::span<const Lit> inputs,
              std::size_t cap);

    /**
     * Literal implied when at least `count` inputs are true
     * (1 <= count <= width()). Asserting its negation bounds the sum
     * below `count`.
     */
    Lit atLeast(std::size_t count) const;

    /** Add a permanent unit clause enforcing sum <= bound. */
    void boundAtMost(std::size_t bound);

    /** Number of usable counter outputs (min(inputs, cap + 1)). */
    std::size_t width() const { return outputs.size(); }

    /** Number of input literals. */
    std::size_t size() const { return numInputs; }

    /**
     * The counter's output literals, lowest count first. These are
     * the solver-visible interface of the counter: callers that
     * bound incrementally after preprocessing must freeze() their
     * variables so elimination keeps them addressable.
     */
    std::span<const Lit> outputLits() const { return outputs; }

  private:
    SolverBase &sat;
    std::size_t cap;
    std::size_t numInputs;
    /** outputs[k] is implied by "at least k+1 inputs true". */
    std::vector<Lit> outputs;

    std::vector<Lit> build(std::span<const Lit> inputs);
    std::vector<Lit> merge(const std::vector<Lit> &left,
                           const std::vector<Lit> &right);
};

} // namespace fermihedral::sat

#endif // FERMIHEDRAL_SAT_TOTALIZER_H
