/**
 * @file
 * Basic SAT solver types: variables, literals and ternary values.
 *
 * Follows the MiniSat conventions: a literal packs a variable index
 * and a sign into one integer (var << 1 | sign), which doubles as an
 * index into watch lists.
 *
 * Key invariants:
 *  - litVar(mkLit(v, s)) == v and litSign(mkLit(v, s)) == s;
 *    negation (~) only toggles the low bit, so ~~lit == lit.
 *  - A default-constructed Lit equals litUndef and is never a
 *    valid clause literal.
 *  - The packed code orders literals by variable then sign, which
 *    watch lists and the DIMACS writer both rely on.
 */

#ifndef FERMIHEDRAL_SAT_TYPES_H
#define FERMIHEDRAL_SAT_TYPES_H

#include <cstdint>
#include <string>

namespace fermihedral::sat {

/** A Boolean variable index, 0-based. */
using Var = std::int32_t;

/** Sentinel for "no variable". */
constexpr Var varUndef = -1;

/** A literal: a variable together with a sign. */
struct Lit
{
    /** Packed representation: (var << 1) | sign. */
    std::int32_t code = -2;

    bool operator==(const Lit &other) const = default;
    bool operator<(const Lit &other) const
    {
        return code < other.code;
    }
};

/** Make a literal; negated=true yields NOT var. */
constexpr Lit
mkLit(Var var, bool negated = false)
{
    return Lit{(var << 1) | static_cast<std::int32_t>(negated)};
}

/** Logical negation of a literal. */
constexpr Lit
operator~(Lit lit)
{
    return Lit{lit.code ^ 1};
}

/** The variable underlying a literal. */
constexpr Var
litVar(Lit lit)
{
    return lit.code >> 1;
}

/** True when the literal is the negation of its variable. */
constexpr bool
litSign(Lit lit)
{
    return lit.code & 1;
}

/** Sentinel literal. */
constexpr Lit litUndef = Lit{-2};

/** A ternary truth value. */
enum class LBool : std::int8_t { False = -1, Undef = 0, True = 1 };

/** Negate a ternary value (Undef stays Undef). */
constexpr LBool
operator-(LBool value)
{
    return static_cast<LBool>(-static_cast<std::int8_t>(value));
}

/** Human-readable literal, e.g.\ "-3" for NOT x3 (1-based). */
inline std::string
litToString(Lit lit)
{
    // Built with += rather than operator+(const char*, string&&),
    // which trips GCC 12's -Wrestrict false positive (PR 105651)
    // at -O2 and above.
    std::string text = litSign(lit) ? "-" : "";
    text += std::to_string(litVar(lit) + 1);
    return text;
}

} // namespace fermihedral::sat

#endif // FERMIHEDRAL_SAT_TYPES_H
