/**
 * @file
 * Indexed binary heap over EVSIDS variable activities.
 *
 * The decision queue of the CDCL solver: variables are ordered by a
 * bump-and-decay activity score, the heap yields the most active
 * unassigned variable in O(log n), and an index array makes
 * membership tests and re-heapification after a bump O(1)/O(log n).
 * Decay is implemented lazily as a growing increment (EVSIDS): the
 * scores of untouched variables never move, and when the increment
 * overflows 1e100 every score is rescaled once.
 *
 * Key invariants:
 *  - position[v] >= 0 iff v is in the heap, and then
 *    order[position[v]] == v; every parent's activity is >= both
 *    children's (ties break on insertion order, making the queue a
 *    deterministic function of the bump/insert sequence).
 *  - bump() and boost() preserve the heap property for the bumped
 *    variable's new score; decay() touches no stored score.
 *  - Rescaling multiplies every activity and the increment by the
 *    same factor, so the relative order is bit-exact afterwards
 *    (all values are powers-of-two scalings away from the unscaled
 *    trajectory).
 */

#ifndef FERMIHEDRAL_SAT_VAR_HEAP_H
#define FERMIHEDRAL_SAT_VAR_HEAP_H

#include <cstdint>
#include <vector>

#include "sat/types.h"

namespace fermihedral::sat {

/** The EVSIDS decision queue (see file comment). */
class VarHeap
{
  public:
    explicit VarHeap(double decay = 0.95) : decayFactor(decay) {}

    /** Register a fresh variable (activity 0, in the queue). */
    void grow()
    {
        const Var var = static_cast<Var>(scores.size());
        scores.push_back(0.0);
        position.push_back(-1);
        insert(var);
    }

    std::size_t numVars() const { return scores.size(); }
    bool empty() const { return order.empty(); }
    std::size_t size() const { return order.size(); }

    bool contains(Var var) const { return position[var] >= 0; }

    double activity(Var var) const { return scores[var]; }

    /** The queued variable at heap slot `i` (for random picks). */
    Var at(std::size_t i) const { return order[i]; }

    /** Re-queue a variable that was popped (on backtracking). */
    void insert(Var var)
    {
        if (contains(var))
            return;
        order.push_back(var);
        position[var] = static_cast<std::int32_t>(order.size()) - 1;
        percolateUp(position[var]);
    }

    /** Remove and return the most active queued variable. */
    Var pop()
    {
        const Var top = order.front();
        order.front() = order.back();
        position[order.front()] = 0;
        position[top] = -1;
        order.pop_back();
        if (!order.empty())
            percolateDown(0);
        return top;
    }

    /** EVSIDS bump: add the current increment, rescale lazily. */
    void bump(Var var)
    {
        scores[var] += increment;
        if (scores[var] > 1e100)
            rescale();
        if (contains(var))
            percolateUp(position[var]);
    }

    /** External priority boost by an absolute amount. */
    void boost(Var var, double amount)
    {
        scores[var] += amount;
        if (scores[var] > 1e100)
            rescale();
        if (contains(var))
            percolateUp(position[var]);
    }

    /** Lazy decay: future bumps weigh 1/decay more. */
    void decay() { increment /= decayFactor; }

    /**
     * Verify the heap property and the index mapping; returns the
     * first broken slot or -1 when consistent. The solver's
     * FERMIHEDRAL_SOLVER_CHECK self-checks call this.
     */
    std::int32_t brokenSlot() const
    {
        for (std::size_t i = 0; i < order.size(); ++i) {
            const Var var = order[i];
            if (position[var] != static_cast<std::int32_t>(i))
                return static_cast<std::int32_t>(i);
            if (i > 0 &&
                scores[order[(i - 1) / 2]] < scores[var])
                return static_cast<std::int32_t>(i);
        }
        for (std::size_t v = 0; v < position.size(); ++v) {
            const std::int32_t pos = position[v];
            if (pos >= 0 &&
                (static_cast<std::size_t>(pos) >= order.size() ||
                 order[static_cast<std::size_t>(pos)] !=
                     static_cast<Var>(v)))
                return pos;
        }
        return -1;
    }

  private:
    void percolateUp(std::int32_t i)
    {
        const Var var = order[i];
        while (i > 0) {
            const std::int32_t parent = (i - 1) >> 1;
            if (scores[var] <= scores[order[parent]])
                break;
            order[i] = order[parent];
            position[order[i]] = i;
            i = parent;
        }
        order[i] = var;
        position[var] = i;
    }

    void percolateDown(std::int32_t i)
    {
        const Var var = order[i];
        const auto n = static_cast<std::int32_t>(order.size());
        for (;;) {
            std::int32_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n &&
                scores[order[child + 1]] > scores[order[child]])
                ++child;
            if (scores[order[child]] <= scores[var])
                break;
            order[i] = order[child];
            position[order[i]] = i;
            i = child;
        }
        order[i] = var;
        position[var] = i;
    }

    void rescale()
    {
        for (double &score : scores)
            score *= 1e-100;
        increment *= 1e-100;
    }

    double decayFactor;
    double increment = 1.0;
    std::vector<double> scores;
    std::vector<Var> order;
    std::vector<std::int32_t> position;
};

} // namespace fermihedral::sat

#endif // FERMIHEDRAL_SAT_VAR_HEAP_H
