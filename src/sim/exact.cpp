#include "sim/exact.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace fermihedral::sim {

namespace {

/**
 * Cyclic Jacobi diagonalization of a real symmetric matrix.
 * Rotations accumulate into `vectors` (columns = eigenvectors).
 */
void
jacobiRealSymmetric(std::vector<double> &a, std::size_t n,
                    std::vector<double> &vectors,
                    std::vector<double> &values)
{
    vectors.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        vectors[i * n + i] = 1.0;

    auto off_diagonal_norm = [&]() {
        double sum = 0.0;
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q)
                sum += a[p * n + q] * a[p * n + q];
        }
        return std::sqrt(sum);
    };

    const double tolerance = 1e-12 * std::max(1.0, [&]() {
        double scale = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            scale = std::max(scale, std::abs(a[i * n + i]));
        return scale;
    }());

    constexpr int max_sweeps = 64;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        if (off_diagonal_norm() <= tolerance)
            break;
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a[p * n + q];
                if (std::abs(apq) <= 1e-300)
                    continue;
                const double app = a[p * n + p];
                const double aqq = a[q * n + q];
                const double theta = (aqq - app) / (2.0 * apq);
                const double t =
                    (theta >= 0 ? 1.0 : -1.0) /
                    (std::abs(theta) +
                     std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a[k * n + p];
                    const double akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a[p * n + k];
                    const double aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = vectors[k * n + p];
                    const double vkq = vectors[k * n + q];
                    vectors[k * n + p] = c * vkp - s * vkq;
                    vectors[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    values.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        values[i] = a[i * n + i];
}

} // namespace

StateVector
EigenSystem::state(std::size_t k) const
{
    require(k < vectors.size(), "eigenstate index out of range");
    const std::size_t dim = vectors[k].size();
    std::size_t qubits = 0;
    while ((std::size_t{1} << qubits) < dim)
        ++qubits;
    require((std::size_t{1} << qubits) == dim,
            "eigenvector dimension is not a power of two");
    StateVector state(qubits, vectors[k]);
    state.normalize();
    return state;
}

std::vector<Amplitude>
denseMatrix(const pauli::PauliSum &sum)
{
    const std::size_t n = sum.numQubits();
    require(n <= 14, "denseMatrix limited to 14 qubits");
    const std::size_t dim = std::size_t{1} << n;
    std::vector<Amplitude> matrix(dim * dim, {0.0, 0.0});
    for (const auto &term : sum.terms()) {
        for (std::uint64_t col = 0; col < dim; ++col) {
            const auto image = term.string.applyToBasis(col);
            matrix[image.bits * dim + col] +=
                term.coefficient * image.amplitude();
        }
    }
    return matrix;
}

EigenSystem
eigendecomposeHermitian(const std::vector<Amplitude> &matrix,
                        std::size_t dim)
{
    require(matrix.size() == dim * dim,
            "matrix size does not match dimension");
    // Hermiticity sanity check.
    for (std::size_t r = 0; r < dim; ++r) {
        for (std::size_t c = r; c < dim; ++c) {
            const Amplitude delta =
                matrix[r * dim + c] -
                std::conj(matrix[c * dim + r]);
            require(std::abs(delta) < 1e-8,
                    "eigendecomposeHermitian: matrix not Hermitian");
        }
    }

    // Real symmetric embedding M = [[A, -B], [B, A]] of H = A + iB:
    // each eigenvalue of H appears twice in M, with eigenvector
    // [Re(v); Im(v)].
    const std::size_t m = 2 * dim;
    std::vector<double> embedded(m * m, 0.0);
    for (std::size_t r = 0; r < dim; ++r) {
        for (std::size_t c = 0; c < dim; ++c) {
            const double re = matrix[r * dim + c].real();
            const double im = matrix[r * dim + c].imag();
            embedded[r * m + c] = re;
            embedded[(r + dim) * m + (c + dim)] = re;
            embedded[r * m + (c + dim)] = -im;
            embedded[(r + dim) * m + c] = im;
        }
    }

    std::vector<double> vectors, values;
    jacobiRealSymmetric(embedded, m, vectors, values);

    // Sort eigenpairs ascending, then keep every second one (the
    // doubled spectrum collapses back onto the spectrum of H).
    std::vector<std::size_t> order(m);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&values](std::size_t a, std::size_t b) {
                  return values[a] < values[b];
              });

    EigenSystem system;
    system.values.reserve(dim);
    system.vectors.reserve(dim);
    for (std::size_t pair = 0; pair < dim; ++pair) {
        const std::size_t column = order[2 * pair];
        system.values.push_back(values[column]);
        std::vector<Amplitude> vec(dim);
        for (std::size_t r = 0; r < dim; ++r) {
            vec[r] = Amplitude(vectors[r * m + column],
                               vectors[(r + dim) * m + column]);
        }
        // Normalise (the embedding halves the norm split).
        double norm_sq = 0.0;
        for (const auto &amp : vec)
            norm_sq += std::norm(amp);
        require(norm_sq > 1e-12, "degenerate embedded eigenvector");
        const double inv = 1.0 / std::sqrt(norm_sq);
        for (auto &amp : vec)
            amp *= inv;
        system.vectors.push_back(std::move(vec));
    }
    return system;
}

EigenSystem
eigendecompose(const pauli::PauliSum &sum)
{
    const auto matrix = denseMatrix(sum);
    return eigendecomposeHermitian(matrix,
                                   std::size_t{1}
                                       << sum.numQubits());
}

std::vector<double>
eigenvaluesHermitian(const std::vector<Amplitude> &matrix,
                     std::size_t dim)
{
    return eigendecomposeHermitian(matrix, dim).values;
}

} // namespace fermihedral::sim
