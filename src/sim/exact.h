/**
 * @file
 * Exact dense diagonalization of qubit Hamiltonians.
 *
 * Builds the 2^n x 2^n Hermitian matrix of a PauliSum and
 * diagonalizes it with a cyclic Jacobi eigensolver (via the real
 * symmetric embedding [[A, -B], [B, A]] of H = A + iB). Used to
 * prepare the energy eigenstates E0..E3 that the noisy simulations
 * of Figures 8-10 start from, and to cross-check encoded spectra
 * against the Fock-space ground truth.
 *
 * Key invariants:
 *  - Eigenvalues are returned in ascending order with vectors[k]
 *    the normalised eigenvector of values[k]; for Hermitian input
 *    the residual |H v - lambda v| is at numerical noise level.
 *  - Inputs must be Hermitian; the functions do not symmetrise or
 *    validate, garbage in is garbage out.
 *  - Cost is O(dim^3) time and O(dim^2) memory with dim = 2^n —
 *    intended for the paper's small study systems (n <= ~10).
 */

#ifndef FERMIHEDRAL_SIM_EXACT_H
#define FERMIHEDRAL_SIM_EXACT_H

#include <complex>
#include <vector>

#include "pauli/pauli_sum.h"
#include "sim/statevector.h"

namespace fermihedral::sim {

/** Eigenvalues (ascending) and matching normalised eigenvectors. */
struct EigenSystem
{
    std::vector<double> values;
    /** vectors[k] is the eigenvector of values[k]. */
    std::vector<std::vector<Amplitude>> vectors;

    /** The k-th eigenstate as a StateVector. */
    StateVector state(std::size_t k) const;
};

/** Dense row-major matrix of a Pauli sum (dim = 2^n). */
std::vector<Amplitude> denseMatrix(const pauli::PauliSum &sum);

/**
 * Diagonalize a Hermitian matrix given in row-major order.
 *
 * @param matrix Row-major Hermitian matrix, size dim * dim.
 * @param dim    Matrix dimension.
 */
EigenSystem eigendecomposeHermitian(
    const std::vector<Amplitude> &matrix, std::size_t dim);

/** Convenience: diagonalize a Pauli sum. */
EigenSystem eigendecompose(const pauli::PauliSum &sum);

/** Eigenvalues only, ascending, of a Hermitian matrix. */
std::vector<double> eigenvaluesHermitian(
    const std::vector<Amplitude> &matrix, std::size_t dim);

} // namespace fermihedral::sim

#endif // FERMIHEDRAL_SIM_EXACT_H
