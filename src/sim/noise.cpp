#include "sim/noise.h"

#include <bit>
#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "pauli/commuting_groups.h"

namespace fermihedral::sim {

namespace {

/** Apply one uniformly random non-identity Pauli to `qubit`. */
void
injectPauli(StateVector &state, std::uint32_t qubit, Rng &rng)
{
    static constexpr circuit::GateKind paulis[3] = {
        circuit::GateKind::X, circuit::GateKind::Y,
        circuit::GateKind::Z};
    const auto pick = static_cast<std::size_t>(rng.nextBelow(3));
    state.applyGate(circuit::Gate{paulis[pick], qubit, 0, 0.0});
}

/** Apply one of the 15 non-identity two-qubit Paulis. */
void
injectTwoQubitPauli(StateVector &state, std::uint32_t qubit_a,
                    std::uint32_t qubit_b, Rng &rng)
{
    const auto pick = static_cast<std::uint32_t>(rng.nextBelow(15));
    // pick + 1 in base 4: digit 0 -> qubit_a, digit 1 -> qubit_b.
    const std::uint32_t code = pick + 1;
    static constexpr circuit::GateKind ops[4] = {
        circuit::GateKind::H /* unused slot for I */,
        circuit::GateKind::X, circuit::GateKind::Y,
        circuit::GateKind::Z};
    const std::uint32_t op_a = code % 4;
    const std::uint32_t op_b = code / 4;
    if (op_a != 0)
        state.applyGate(circuit::Gate{ops[op_a], qubit_a, 0, 0.0});
    if (op_b != 0)
        state.applyGate(circuit::Gate{ops[op_b], qubit_b, 0, 0.0});
}

/** Flip each of the n readout bits with the readout probability. */
std::uint64_t
flipReadout(std::uint64_t bits, std::size_t n,
            const NoiseModel &noise, Rng &rng)
{
    if (noise.readoutError <= 0)
        return bits;
    for (std::size_t q = 0; q < n; ++q) {
        if (rng.nextBool(noise.readoutError))
            bits ^= std::uint64_t{1} << q;
    }
    return bits;
}

/** Sum of +-coefficient over a family's terms for one sample. */
double
readGroup(const MeasurementPlan::Group &group, std::uint64_t bits)
{
    double energy = 0.0;
    for (const auto &term : group.terms) {
        const int parity = std::popcount(bits & term.supportMask) & 1;
        energy += parity == 0 ? term.coefficient : -term.coefficient;
    }
    return energy;
}

} // namespace

StateVector
runNoisyTrajectory(const circuit::Circuit &circuit,
                   const StateVector &initial,
                   const NoiseModel &noise, Rng &rng)
{
    // Minimal placeholder; the Into call assigns `initial` itself.
    StateVector state(1);
    runNoisyTrajectoryInto(circuit, initial, noise, rng, state);
    return state;
}

void
runNoisyTrajectoryInto(const circuit::Circuit &circuit,
                       const StateVector &initial,
                       const NoiseModel &noise, Rng &rng,
                       StateVector &out)
{
    out = initial;
    for (const auto &gate : circuit.gates()) {
        out.applyGate(gate);
        if (gate.kind == circuit::GateKind::Cnot) {
            if (noise.twoQubitError > 0 &&
                rng.nextBool(noise.twoQubitError)) {
                injectTwoQubitPauli(out, gate.qubit0, gate.qubit1,
                                    rng);
            }
        } else if (noise.singleQubitError > 0 &&
                   rng.nextBool(noise.singleQubitError)) {
            injectPauli(out, gate.qubit0, rng);
        }
    }
}

void
runNoisyTrajectoryInto(const circuit::FusedCircuit &lowered,
                       const StateVector &initial,
                       const NoiseModel &noise, Rng &rng,
                       StateVector &out)
{
    out = initial;
    for (const auto &op : lowered.gates) {
        out.applyFusedGate(op);
        if (op.isCnot) {
            if (noise.twoQubitError > 0 &&
                rng.nextBool(noise.twoQubitError)) {
                injectTwoQubitPauli(out, op.qubit0, op.qubit1, rng);
            }
        } else if (noise.singleQubitError > 0 &&
                   rng.nextBool(noise.singleQubitError)) {
            injectPauli(out, op.qubit0, rng);
        }
    }
}

MeasurementPlan::MeasurementPlan(const pauli::PauliSum &hamiltonian)
    : n(hamiltonian.numQubits())
{
    const auto &terms = hamiltonian.terms();
    for (const auto &term : terms) {
        if (term.string.isIdentity())
            identity += term.coefficient.real();
    }
    const auto families =
        pauli::groupQubitWiseCommuting(hamiltonian);
    groupList.reserve(families.size());
    for (const auto &family : families) {
        Group group;
        circuit::Circuit rotation(n);
        for (std::size_t q = 0; q < n; ++q) {
            const auto qubit = static_cast<std::uint32_t>(q);
            switch (family.basis.op(q)) {
              case pauli::PauliOp::X:
                rotation.add(circuit::GateKind::H, qubit);
                break;
              case pauli::PauliOp::Y:
                rotation.add(circuit::GateKind::Sdg, qubit);
                rotation.add(circuit::GateKind::H, qubit);
                break;
              default:
                break;
            }
        }
        group.rotation = circuit::fuseSingleQubitGates(rotation);
        group.terms.reserve(family.termIndices.size());
        for (const std::size_t index : family.termIndices) {
            const auto &term = terms[index];
            group.terms.push_back(
                {term.coefficient.real(),
                 term.string.xMask() | term.string.zMask()});
        }
        groupList.push_back(std::move(group));
    }
}

double
sampleEnergy(const StateVector &state,
             const pauli::PauliSum &hamiltonian,
             const NoiseModel &noise, Rng &rng)
{
    double energy = 0.0;
    for (const auto &term : hamiltonian.terms()) {
        if (term.string.isIdentity()) {
            energy += term.coefficient.real();
            continue;
        }
        // Rotate this term's support into the Z basis.
        StateVector rotated = state;
        std::uint64_t support = 0;
        for (std::size_t q = 0; q < term.string.numQubits(); ++q) {
            const pauli::PauliOp op = term.string.op(q);
            if (op == pauli::PauliOp::I)
                continue;
            support |= std::uint64_t{1} << q;
            const auto qubit = static_cast<std::uint32_t>(q);
            if (op == pauli::PauliOp::X) {
                rotated.applyGate(
                    {circuit::GateKind::H, qubit, 0, 0.0});
            } else if (op == pauli::PauliOp::Y) {
                rotated.applyGate(
                    {circuit::GateKind::Sdg, qubit, 0, 0.0});
                rotated.applyGate(
                    {circuit::GateKind::H, qubit, 0, 0.0});
            }
        }
        std::uint64_t bits = rotated.sampleBasisState(rng);
        bits = flipReadout(bits, term.string.numQubits(), noise,
                           rng);
        const int parity = std::popcount(bits & support) % 2;
        const double value = parity == 0 ? 1.0 : -1.0;
        energy += term.coefficient.real() * value;
    }
    return energy;
}

double
sampleEnergy(const StateVector &state, const MeasurementPlan &plan,
             const NoiseModel &noise, Rng &rng)
{
    require(state.numQubits() == plan.numQubits(),
            "measurement plan width does not match state");
    // Per-thread scratch so shot loops neither allocate nor share.
    thread_local StateVector rotated(1);
    double energy = plan.identityEnergy();
    for (const auto &group : plan.groups()) {
        rotated = state;
        rotated.applyFused(group.rotation);
        std::uint64_t bits = rotated.sampleBasisState(rng);
        bits = flipReadout(bits, plan.numQubits(), noise, rng);
        energy += readGroup(group, bits);
    }
    return energy;
}

EnergyStatistics
measureEnergy(const circuit::Circuit &circuit,
              const StateVector &initial,
              const pauli::PauliSum &hamiltonian,
              const NoiseModel &noise, std::size_t shots, Rng &rng,
              std::size_t threads)
{
    ThreadPool pool(threads);
    return measureEnergy(circuit, initial, hamiltonian, noise,
                         shots, rng, pool);
}

EnergyStatistics
measureEnergy(const circuit::Circuit &circuit,
              const StateVector &initial,
              const pauli::PauliSum &hamiltonian,
              const NoiseModel &noise, std::size_t shots, Rng &rng,
              ThreadPool &pool)
{
    require(shots >= 1, "measureEnergy needs at least one shot");
    Timer timer;
    telemetry::TraceSpan span("sim.measure_energy");
    if (span.active())
        span.arg("shots", shots);
    const MeasurementPlan plan = [&] {
        telemetry::TraceSpan plan_span("sim.plan_build");
        return MeasurementPlan(hamiltonian);
    }();
    // One draw from the caller, then one forked stream per shot:
    // shot s sees the same randomness on every thread count.
    Rng master = rng.split();
    std::vector<double> energies(shots);

    const bool noiseless_gates =
        noise.singleQubitError <= 0 && noise.twoQubitError <= 0;
    {
        telemetry::TraceSpan sample_span("sim.sample");
        if (sample_span.active())
            sample_span.arg("noiseless_gates", noiseless_gates);
        if (noiseless_gates) {
            // Trajectories are deterministic: compute the final state
            // and the per-family rotated sampling tables once, then a
            // shot is one CDF draw per family (plus readout flips).
            // This consumes the same RNG stream as the general path,
            // so the results are bit-identical to it.
            StateVector final_state = initial;
            final_state.applyCircuit(circuit);
            std::vector<SampleTable> tables;
            tables.reserve(plan.groups().size());
            StateVector rotated(1);
            for (const auto &group : plan.groups()) {
                rotated = final_state;
                rotated.applyFused(group.rotation);
                tables.emplace_back(rotated);
            }
            pool.forEach(shots, [&](std::size_t shot) {
                Rng shot_rng = master.fork(shot);
                double energy = plan.identityEnergy();
                for (std::size_t g = 0; g < tables.size(); ++g) {
                    std::uint64_t bits = tables[g].sample(shot_rng);
                    bits = flipReadout(bits, plan.numQubits(), noise,
                                       shot_rng);
                    energy += readGroup(plan.groups()[g], bits);
                }
                energies[shot] = energy;
            });
        } else {
            // One matrix per gate, trig evaluated once for all shots.
            const auto lowered = circuit::lowerToMatrices(circuit);
            pool.forEach(shots, [&](std::size_t shot) {
                Rng shot_rng = master.fork(shot);
                thread_local StateVector trajectory(1);
                runNoisyTrajectoryInto(lowered, initial, noise,
                                       shot_rng, trajectory);
                energies[shot] =
                    sampleEnergy(trajectory, plan, noise, shot_rng);
            });
        }
    }
    telemetry::MetricsRegistry::global()
        .counter("sim.shots")
        .add(shots);

    // Reduce in shot order: the sums are independent of how the
    // pool scheduled the shots.
    double sum = 0.0, sum_sq = 0.0;
    for (const double energy : energies) {
        sum += energy;
        sum_sq += energy * energy;
    }
    EnergyStatistics stats;
    stats.shots = shots;
    stats.mean = sum / static_cast<double>(shots);
    const double variance =
        std::max(0.0, sum_sq / static_cast<double>(shots) -
                          stats.mean * stats.mean);
    stats.standardDeviation = std::sqrt(variance);
    stats.elapsedSeconds = timer.seconds();
    return stats;
}

} // namespace fermihedral::sim
