#include "sim/noise.h"

#include <bit>
#include <cmath>

#include "common/logging.h"

namespace fermihedral::sim {

namespace {

/** Apply one uniformly random non-identity Pauli to `qubit`. */
void
injectPauli(StateVector &state, std::uint32_t qubit, Rng &rng)
{
    static constexpr circuit::GateKind paulis[3] = {
        circuit::GateKind::X, circuit::GateKind::Y,
        circuit::GateKind::Z};
    const auto pick = static_cast<std::size_t>(rng.nextBelow(3));
    state.applyGate(circuit::Gate{paulis[pick], qubit, 0, 0.0});
}

/** Apply one of the 15 non-identity two-qubit Paulis. */
void
injectTwoQubitPauli(StateVector &state, std::uint32_t qubit_a,
                    std::uint32_t qubit_b, Rng &rng)
{
    const auto pick = static_cast<std::uint32_t>(rng.nextBelow(15));
    // pick + 1 in base 4: digit 0 -> qubit_a, digit 1 -> qubit_b.
    const std::uint32_t code = pick + 1;
    static constexpr circuit::GateKind ops[4] = {
        circuit::GateKind::H /* unused slot for I */,
        circuit::GateKind::X, circuit::GateKind::Y,
        circuit::GateKind::Z};
    const std::uint32_t op_a = code % 4;
    const std::uint32_t op_b = code / 4;
    if (op_a != 0)
        state.applyGate(circuit::Gate{ops[op_a], qubit_a, 0, 0.0});
    if (op_b != 0)
        state.applyGate(circuit::Gate{ops[op_b], qubit_b, 0, 0.0});
}

} // namespace

StateVector
runNoisyTrajectory(const circuit::Circuit &circuit,
                   const StateVector &initial,
                   const NoiseModel &noise, Rng &rng)
{
    StateVector state = initial;
    for (const auto &gate : circuit.gates()) {
        state.applyGate(gate);
        if (gate.kind == circuit::GateKind::Cnot) {
            if (noise.twoQubitError > 0 &&
                rng.nextBool(noise.twoQubitError)) {
                injectTwoQubitPauli(state, gate.qubit0, gate.qubit1,
                                    rng);
            }
        } else if (noise.singleQubitError > 0 &&
                   rng.nextBool(noise.singleQubitError)) {
            injectPauli(state, gate.qubit0, rng);
        }
    }
    return state;
}

double
sampleEnergy(const StateVector &state,
             const pauli::PauliSum &hamiltonian,
             const NoiseModel &noise, Rng &rng)
{
    double energy = 0.0;
    for (const auto &term : hamiltonian.terms()) {
        if (term.string.isIdentity()) {
            energy += term.coefficient.real();
            continue;
        }
        // Rotate this term's support into the Z basis.
        StateVector rotated = state;
        std::uint64_t support = 0;
        for (std::size_t q = 0; q < term.string.numQubits(); ++q) {
            const pauli::PauliOp op = term.string.op(q);
            if (op == pauli::PauliOp::I)
                continue;
            support |= std::uint64_t{1} << q;
            const auto qubit = static_cast<std::uint32_t>(q);
            if (op == pauli::PauliOp::X) {
                rotated.applyGate(
                    {circuit::GateKind::H, qubit, 0, 0.0});
            } else if (op == pauli::PauliOp::Y) {
                rotated.applyGate(
                    {circuit::GateKind::Sdg, qubit, 0, 0.0});
                rotated.applyGate(
                    {circuit::GateKind::H, qubit, 0, 0.0});
            }
        }
        std::uint64_t bits = rotated.sampleBasisState(rng);
        if (noise.readoutError > 0) {
            for (std::size_t q = 0; q < term.string.numQubits();
                 ++q) {
                if (rng.nextBool(noise.readoutError))
                    bits ^= std::uint64_t{1} << q;
            }
        }
        const int parity = std::popcount(bits & support) % 2;
        const double value = parity == 0 ? 1.0 : -1.0;
        energy += term.coefficient.real() * value;
    }
    return energy;
}

EnergyStatistics
measureEnergy(const circuit::Circuit &circuit,
              const StateVector &initial,
              const pauli::PauliSum &hamiltonian,
              const NoiseModel &noise, std::size_t shots, Rng &rng)
{
    require(shots >= 1, "measureEnergy needs at least one shot");
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t shot = 0; shot < shots; ++shot) {
        const StateVector final_state =
            runNoisyTrajectory(circuit, initial, noise, rng);
        const double energy =
            sampleEnergy(final_state, hamiltonian, noise, rng);
        sum += energy;
        sum_sq += energy * energy;
    }
    EnergyStatistics stats;
    stats.shots = shots;
    stats.mean = sum / static_cast<double>(shots);
    const double variance =
        std::max(0.0, sum_sq / static_cast<double>(shots) -
                          stats.mean * stats.mean);
    stats.standardDeviation = std::sqrt(variance);
    return stats;
}

} // namespace fermihedral::sim
