/**
 * @file
 * Monte-Carlo noise model and high-throughput trajectory engine for
 * the end-to-end studies.
 *
 * Depolarizing channels are realised as stochastic Pauli errors per
 * gate (trajectory / quantum-jump method, the same family Qiskit Aer
 * uses for the paper's Figures 8-9), plus classical readout bit
 * flips during measurement sampling. The IonQ Aria-1 profile of the
 * real-system study (Fig. 10) is provided as a preset.
 *
 * Energy estimation is grouped: a MeasurementPlan partitions the
 * Hamiltonian into qubit-wise commuting families once, so each shot
 * rotates and samples once per family instead of once per term.
 * measureEnergy() fans its shots across a thread pool with one
 * forked RNG stream per shot.
 *
 * Key invariants:
 *  - Injected errors are uniformly random non-identity Paulis on
 *    exactly the qubit(s) the gate touched (1 of 3 for single-qubit
 *    gates, 1 of 15 for CNOT) — standard depolarizing channels.
 *  - With NoiseModel::ideal() every function reduces exactly to
 *    the noiseless behaviour; sampleEnergy still samples shot
 *    noise, but trajectories equal applyCircuit().
 *  - All randomness flows through the caller's Rng, so whole
 *    experiments are reproducible from one seed. measureEnergy()
 *    draws exactly once from the caller's Rng and derives shot
 *    stream s with Rng::fork(s), so its results are bit-identical
 *    for every thread count.
 *  - Both sampleEnergy estimators are unbiased for <H>: grouped
 *    measurement only correlates the terms inside one family (it
 *    changes the variance, never the mean).
 */

#ifndef FERMIHEDRAL_SIM_NOISE_H
#define FERMIHEDRAL_SIM_NOISE_H

#include "circuit/circuit.h"
#include "circuit/passes.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "pauli/pauli_sum.h"
#include "sim/statevector.h"

namespace fermihedral::sim {

/** Error probabilities per operation. */
struct NoiseModel
{
    /** Pauli error probability after each single-qubit gate. */
    double singleQubitError = 0.0;
    /** Two-qubit Pauli error probability after each CNOT. */
    double twoQubitError = 0.0;
    /** Per-bit classical flip probability at readout. */
    double readoutError = 0.0;

    /** No-noise model. */
    static NoiseModel ideal() { return {}; }

    /**
     * IonQ Aria-1 profile quoted in the paper's setup: 99.99%
     * single-qubit, 98.91% two-qubit and 98.82% readout fidelity.
     */
    static NoiseModel
    ionqAria1()
    {
        return NoiseModel{1.0 - 0.9999, 1.0 - 0.9891, 1.0 - 0.9882};
    }
};

/**
 * Run one noisy trajectory of the circuit from `initial`: apply each
 * gate, then with the channel probability inject a uniformly random
 * non-identity Pauli error on the touched qubit(s).
 */
StateVector runNoisyTrajectory(const circuit::Circuit &circuit,
                               const StateVector &initial,
                               const NoiseModel &noise, Rng &rng);

/**
 * Allocation-free variant for shot loops: `out` is overwritten with
 * the trajectory's final state, reusing its amplitude buffer.
 */
void runNoisyTrajectoryInto(const circuit::Circuit &circuit,
                            const StateVector &initial,
                            const NoiseModel &noise, Rng &rng,
                            StateVector &out);

/**
 * Trajectory over a per-gate lowered circuit (one op per original
 * gate, rotation trig precomputed — see circuit::lowerToMatrices).
 * `lowered` MUST be unfused: matrix ops draw the single-qubit
 * channel, CNOTs the two-qubit channel, so merging runs would
 * change how many error opportunities the trajectory sees. Gate
 * order and RNG consumption match the Circuit overload exactly.
 */
void runNoisyTrajectoryInto(const circuit::FusedCircuit &lowered,
                            const StateVector &initial,
                            const NoiseModel &noise, Rng &rng,
                            StateVector &out);

/**
 * Precomputed measurement protocol for one Hamiltonian: its
 * qubit-wise commuting families, each with a fused basis-rotation
 * circuit and the per-term Z-supports to read off one sample.
 * Build once, reuse for every shot.
 */
class MeasurementPlan
{
  public:
    /** One term read from a family's sample. */
    struct MeasuredTerm
    {
        /** Re(coefficient) — the Hermitian part the estimate uses. */
        double coefficient;
        /** After rotation the term is Z on exactly these qubits. */
        std::uint64_t supportMask;
    };

    /** One qubit-wise commuting family. */
    struct Group
    {
        /** Rotates the family's shared basis into Z. */
        circuit::FusedCircuit rotation;
        std::vector<MeasuredTerm> terms;
    };

    explicit MeasurementPlan(const pauli::PauliSum &hamiltonian);

    std::size_t numQubits() const { return n; }
    const std::vector<Group> &groups() const { return groupList; }

    /** Exact contribution of the Hamiltonian's identity terms. */
    double identityEnergy() const { return identity; }

  private:
    std::size_t n;
    double identity = 0.0;
    std::vector<Group> groupList;
};

/**
 * One-shot sampled estimate of <H>, term by term: every Pauli term
 * is measured once by basis rotation and basis-state sampling with
 * readout flips. Identity terms contribute their coefficients
 * exactly. This is the ungrouped reference estimator; shot loops
 * should use the MeasurementPlan overload.
 */
double sampleEnergy(const StateVector &state,
                    const pauli::PauliSum &hamiltonian,
                    const NoiseModel &noise, Rng &rng);

/**
 * One-shot grouped estimate of <H>: one basis rotation, one sample
 * and one set of readout flips per commuting family; every term in
 * the family is read from the same bit string.
 */
double sampleEnergy(const StateVector &state,
                    const MeasurementPlan &plan,
                    const NoiseModel &noise, Rng &rng);

/** Aggregate over many shots. */
struct EnergyStatistics
{
    double mean = 0.0;
    double standardDeviation = 0.0;
    std::size_t shots = 0;
    /** Wall-clock time measureEnergy spent, for throughput. */
    double elapsedSeconds = 0.0;
};

/**
 * Full experiment for one (circuit, Hamiltonian, noise) setting:
 * `shots` independent trajectories, each measured with the grouped
 * sampleEnergy. Shots fan out over the caller's thread pool (reuse
 * one pool across experiments — workers persist between calls);
 * every shot draws from its own forked RNG stream, so the
 * statistics are bit-identical for any thread count. When the
 * gate-error rates are zero the trajectory state is computed once
 * and shots reduce to SampleTable draws. Returns the observed
 * energy statistics.
 */
EnergyStatistics measureEnergy(const circuit::Circuit &circuit,
                               const StateVector &initial,
                               const pauli::PauliSum &hamiltonian,
                               const NoiseModel &noise,
                               std::size_t shots, Rng &rng,
                               ThreadPool &pool);

/**
 * Convenience overload constructing a throwaway pool of `threads`
 * threads (0 = hardware concurrency) for this one experiment.
 */
EnergyStatistics measureEnergy(const circuit::Circuit &circuit,
                               const StateVector &initial,
                               const pauli::PauliSum &hamiltonian,
                               const NoiseModel &noise,
                               std::size_t shots, Rng &rng,
                               std::size_t threads = 1);

} // namespace fermihedral::sim

#endif // FERMIHEDRAL_SIM_NOISE_H
