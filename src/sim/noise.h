/**
 * @file
 * Monte-Carlo noise model for the end-to-end studies.
 *
 * Depolarizing channels are realised as stochastic Pauli errors per
 * gate (trajectory / quantum-jump method, the same family Qiskit Aer
 * uses for the paper's Figures 8-9), plus classical readout bit
 * flips during measurement sampling. The IonQ Aria-1 profile of the
 * real-system study (Fig. 10) is provided as a preset.
 *
 * Key invariants:
 *  - Injected errors are uniformly random non-identity Paulis on
 *    exactly the qubit(s) the gate touched (1 of 3 for single-qubit
 *    gates, 1 of 15 for CNOT) — standard depolarizing channels.
 *  - With NoiseModel::ideal() every function reduces exactly to
 *    the noiseless behaviour; sampleEnergy still samples shot
 *    noise, but trajectories equal applyCircuit().
 *  - All randomness flows through the caller's Rng, so whole
 *    experiments are reproducible from one seed.
 */

#ifndef FERMIHEDRAL_SIM_NOISE_H
#define FERMIHEDRAL_SIM_NOISE_H

#include "circuit/circuit.h"
#include "common/rng.h"
#include "pauli/pauli_sum.h"
#include "sim/statevector.h"

namespace fermihedral::sim {

/** Error probabilities per operation. */
struct NoiseModel
{
    /** Pauli error probability after each single-qubit gate. */
    double singleQubitError = 0.0;
    /** Two-qubit Pauli error probability after each CNOT. */
    double twoQubitError = 0.0;
    /** Per-bit classical flip probability at readout. */
    double readoutError = 0.0;

    /** No-noise model. */
    static NoiseModel ideal() { return {}; }

    /**
     * IonQ Aria-1 profile quoted in the paper's setup: 99.99%
     * single-qubit, 98.91% two-qubit and 98.82% readout fidelity.
     */
    static NoiseModel
    ionqAria1()
    {
        return NoiseModel{1.0 - 0.9999, 1.0 - 0.9891, 1.0 - 0.9882};
    }
};

/**
 * Run one noisy trajectory of the circuit from `initial`: apply each
 * gate, then with the channel probability inject a uniformly random
 * non-identity Pauli error on the touched qubit(s).
 */
StateVector runNoisyTrajectory(const circuit::Circuit &circuit,
                               const StateVector &initial,
                               const NoiseModel &noise, Rng &rng);

/**
 * One-shot sampled estimate of <H>: every Pauli term is measured
 * once by basis rotation and basis-state sampling with readout
 * flips. Identity terms contribute their coefficients exactly.
 */
double sampleEnergy(const StateVector &state,
                    const pauli::PauliSum &hamiltonian,
                    const NoiseModel &noise, Rng &rng);

/** Aggregate over many shots. */
struct EnergyStatistics
{
    double mean = 0.0;
    double standardDeviation = 0.0;
    std::size_t shots = 0;
};

/**
 * Full experiment for one (circuit, Hamiltonian, noise) setting:
 * `shots` independent trajectories, each measured with
 * sampleEnergy. Returns the observed energy statistics.
 */
EnergyStatistics measureEnergy(const circuit::Circuit &circuit,
                               const StateVector &initial,
                               const pauli::PauliSum &hamiltonian,
                               const NoiseModel &noise,
                               std::size_t shots, Rng &rng);

} // namespace fermihedral::sim

#endif // FERMIHEDRAL_SIM_NOISE_H
