#include "sim/statevector.h"

#include <cmath>

#include "common/logging.h"

namespace fermihedral::sim {

namespace {

constexpr Amplitude kI{0.0, 1.0};

} // namespace

StateVector::StateVector(std::size_t num_qubits)
    : n(num_qubits), amps(std::size_t{1} << num_qubits, {0.0, 0.0})
{
    require(num_qubits >= 1 && num_qubits <= 26,
            "StateVector supports 1..26 qubits");
    amps[0] = 1.0;
}

StateVector::StateVector(std::size_t num_qubits,
                         std::vector<Amplitude> amplitudes)
    : n(num_qubits), amps(std::move(amplitudes))
{
    require(amps.size() == (std::size_t{1} << num_qubits),
            "amplitude vector size must be 2^n");
}

void
StateVector::setBasisState(std::uint64_t bits)
{
    require(bits < amps.size(), "basis state out of range");
    std::fill(amps.begin(), amps.end(), Amplitude{0.0, 0.0});
    amps[bits] = 1.0;
}

void
StateVector::applyUnitary(std::uint32_t qubit, const Amplitude m00,
                          const Amplitude m01, const Amplitude m10,
                          const Amplitude m11)
{
    require(qubit < n, "gate qubit out of range");
    const std::size_t stride = std::size_t{1} << qubit;
    for (std::size_t base = 0; base < amps.size();
         base += 2 * stride) {
        for (std::size_t offset = 0; offset < stride; ++offset) {
            const std::size_t i0 = base + offset;
            const std::size_t i1 = i0 + stride;
            const Amplitude a0 = amps[i0];
            const Amplitude a1 = amps[i1];
            amps[i0] = m00 * a0 + m01 * a1;
            amps[i1] = m10 * a0 + m11 * a1;
        }
    }
}

void
StateVector::applyCnot(std::uint32_t control, std::uint32_t target)
{
    require(control < n && target < n && control != target,
            "invalid CNOT qubits");
    const std::size_t cmask = std::size_t{1} << control;
    const std::size_t tmask = std::size_t{1} << target;
    for (std::size_t i = 0; i < amps.size(); ++i) {
        if ((i & cmask) && !(i & tmask))
            std::swap(amps[i], amps[i | tmask]);
    }
}

void
StateVector::applyGate(const circuit::Gate &gate)
{
    using circuit::GateKind;
    const double half = gate.angle / 2.0;
    const double c = std::cos(half);
    const double s = std::sin(half);
    switch (gate.kind) {
      case GateKind::H: {
        const double r = 1.0 / std::sqrt(2.0);
        applyUnitary(gate.qubit0, r, r, r, -r);
        break;
      }
      case GateKind::X:
        applyUnitary(gate.qubit0, 0.0, 1.0, 1.0, 0.0);
        break;
      case GateKind::Y:
        applyUnitary(gate.qubit0, 0.0, -kI, kI, 0.0);
        break;
      case GateKind::Z:
        applyUnitary(gate.qubit0, 1.0, 0.0, 0.0, -1.0);
        break;
      case GateKind::S:
        applyUnitary(gate.qubit0, 1.0, 0.0, 0.0, kI);
        break;
      case GateKind::Sdg:
        applyUnitary(gate.qubit0, 1.0, 0.0, 0.0, -kI);
        break;
      case GateKind::Rx:
        applyUnitary(gate.qubit0, c, -kI * s, -kI * s, c);
        break;
      case GateKind::Ry:
        applyUnitary(gate.qubit0, c, -s, s, c);
        break;
      case GateKind::Rz:
        applyUnitary(gate.qubit0, Amplitude{c, -s}, 0.0, 0.0,
                     Amplitude{c, s});
        break;
      case GateKind::Cnot:
        applyCnot(gate.qubit0, gate.qubit1);
        break;
    }
}

void
StateVector::applyCircuit(const circuit::Circuit &circuit)
{
    require(circuit.numQubits() == n,
            "circuit width does not match state");
    for (const auto &gate : circuit.gates())
        applyGate(gate);
}

void
StateVector::applyPauli(const pauli::PauliString &string)
{
    require(string.numQubits() == n,
            "Pauli width does not match state");
    std::vector<Amplitude> next(amps.size());
    for (std::size_t b = 0; b < amps.size(); ++b) {
        const auto image = string.applyToBasis(b);
        next[image.bits] += image.amplitude() * amps[b];
    }
    amps = std::move(next);
}

Amplitude
StateVector::expectation(const pauli::PauliString &string) const
{
    require(string.numQubits() == n,
            "Pauli width does not match state");
    Amplitude sum{0.0, 0.0};
    for (std::size_t b = 0; b < amps.size(); ++b) {
        const auto image = string.applyToBasis(b);
        sum += std::conj(amps[image.bits]) * image.amplitude() *
               amps[b];
    }
    return sum;
}

double
StateVector::expectation(const pauli::PauliSum &hamiltonian) const
{
    double energy = 0.0;
    for (const auto &term : hamiltonian.terms()) {
        energy +=
            (term.coefficient * expectation(term.string)).real();
    }
    return energy;
}

std::uint64_t
StateVector::sampleBasisState(Rng &rng) const
{
    const double u = rng.nextDouble();
    double cumulative = 0.0;
    for (std::size_t b = 0; b < amps.size(); ++b) {
        cumulative += std::norm(amps[b]);
        if (u < cumulative)
            return b;
    }
    return amps.size() - 1; // rounding tail
}

double
StateVector::fidelity(const StateVector &other) const
{
    require(other.n == n, "fidelity of different-width states");
    Amplitude overlap{0.0, 0.0};
    for (std::size_t b = 0; b < amps.size(); ++b)
        overlap += std::conj(other.amps[b]) * amps[b];
    return std::norm(overlap);
}

double
StateVector::norm() const
{
    double sum = 0.0;
    for (const Amplitude &amp : amps)
        sum += std::norm(amp);
    return std::sqrt(sum);
}

void
StateVector::normalize()
{
    const double length = norm();
    require(length > 1e-300, "cannot normalize the zero vector");
    for (Amplitude &amp : amps)
        amp /= length;
}

} // namespace fermihedral::sim
