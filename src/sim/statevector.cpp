#include "sim/statevector.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"

namespace fermihedral::sim {

namespace {

constexpr Amplitude kI{0.0, 1.0};

} // namespace

StateVector::StateVector(std::size_t num_qubits)
    : n(num_qubits), amps(std::size_t{1} << num_qubits, {0.0, 0.0})
{
    require(num_qubits >= 1 && num_qubits <= 26,
            "StateVector supports 1..26 qubits");
    amps[0] = 1.0;
}

StateVector::StateVector(std::size_t num_qubits,
                         std::vector<Amplitude> amplitudes)
    : n(num_qubits), amps(std::move(amplitudes))
{
    require(amps.size() == (std::size_t{1} << num_qubits),
            "amplitude vector size must be 2^n");
}

void
StateVector::setBasisState(std::uint64_t bits)
{
    require(bits < amps.size(), "basis state out of range");
    std::fill(amps.begin(), amps.end(), Amplitude{0.0, 0.0});
    amps[bits] = 1.0;
}

void
StateVector::applyUnitary(std::uint32_t qubit, const Amplitude m00,
                          const Amplitude m01, const Amplitude m10,
                          const Amplitude m11)
{
    require(qubit < n, "gate qubit out of range");
    const std::size_t stride = std::size_t{1} << qubit;
    for (std::size_t base = 0; base < amps.size();
         base += 2 * stride) {
        for (std::size_t offset = 0; offset < stride; ++offset) {
            const std::size_t i0 = base + offset;
            const std::size_t i1 = i0 + stride;
            const Amplitude a0 = amps[i0];
            const Amplitude a1 = amps[i1];
            amps[i0] = m00 * a0 + m01 * a1;
            amps[i1] = m10 * a0 + m11 * a1;
        }
    }
}

void
StateVector::applyPhase(std::uint32_t qubit, Amplitude factor)
{
    require(qubit < n, "gate qubit out of range");
    const std::size_t stride = std::size_t{1} << qubit;
    for (std::size_t base = 0; base < amps.size();
         base += 2 * stride) {
        for (std::size_t offset = 0; offset < stride; ++offset)
            amps[base + stride + offset] *= factor;
    }
}

void
StateVector::applyDiagonal(std::uint32_t qubit, Amplitude d0,
                           Amplitude d1)
{
    require(qubit < n, "gate qubit out of range");
    const std::size_t stride = std::size_t{1} << qubit;
    for (std::size_t base = 0; base < amps.size();
         base += 2 * stride) {
        for (std::size_t offset = 0; offset < stride; ++offset) {
            amps[base + offset] *= d0;
            amps[base + stride + offset] *= d1;
        }
    }
}

void
StateVector::applyAntiDiagonal(std::uint32_t qubit, Amplitude c01,
                               Amplitude c10)
{
    require(qubit < n, "gate qubit out of range");
    const std::size_t stride = std::size_t{1} << qubit;
    for (std::size_t base = 0; base < amps.size();
         base += 2 * stride) {
        for (std::size_t offset = 0; offset < stride; ++offset) {
            const std::size_t i0 = base + offset;
            const std::size_t i1 = i0 + stride;
            const Amplitude a0 = amps[i0];
            amps[i0] = c01 * amps[i1];
            amps[i1] = c10 * a0;
        }
    }
}

void
StateVector::applyX(std::uint32_t qubit)
{
    require(qubit < n, "gate qubit out of range");
    const std::size_t stride = std::size_t{1} << qubit;
    for (std::size_t base = 0; base < amps.size();
         base += 2 * stride) {
        for (std::size_t offset = 0; offset < stride; ++offset)
            std::swap(amps[base + offset],
                      amps[base + stride + offset]);
    }
}

void
StateVector::applyY(std::uint32_t qubit)
{
    require(qubit < n, "gate qubit out of range");
    const std::size_t stride = std::size_t{1} << qubit;
    for (std::size_t base = 0; base < amps.size();
         base += 2 * stride) {
        for (std::size_t offset = 0; offset < stride; ++offset) {
            const std::size_t i0 = base + offset;
            const std::size_t i1 = i0 + stride;
            const Amplitude a0 = amps[i0];
            amps[i0] = -kI * amps[i1];
            amps[i1] = kI * a0;
        }
    }
}

void
StateVector::applyCnot(std::uint32_t control, std::uint32_t target)
{
    require(control < n && target < n && control != target,
            "invalid CNOT qubits");
    const std::size_t cmask = std::size_t{1} << control;
    const std::size_t tmask = std::size_t{1} << target;
    // Enumerate only the control=1, target=0 quarter of the basis:
    // spread each counter value over the other n-2 bit positions.
    const std::size_t low = std::min(cmask, tmask);
    const std::size_t high = std::max(cmask, tmask);
    const std::size_t quarter = amps.size() / 4;
    for (std::size_t k = 0; k < quarter; ++k) {
        std::size_t i = k;
        i = ((i & ~(low - 1)) << 1) | (i & (low - 1));
        i = ((i & ~(high - 1)) << 1) | (i & (high - 1));
        i |= cmask;
        std::swap(amps[i], amps[i | tmask]);
    }
}

void
StateVector::applyGate(const circuit::Gate &gate)
{
    using circuit::GateKind;
    // Trig only for the rotation gates: evaluating cos/sin for the
    // Cliffords too would dominate small-state trajectory shots.
    switch (gate.kind) {
      case GateKind::H: {
        const double r = 1.0 / std::sqrt(2.0);
        applyUnitary(gate.qubit0, r, r, r, -r);
        break;
      }
      case GateKind::X:
        applyX(gate.qubit0);
        break;
      case GateKind::Y:
        applyY(gate.qubit0);
        break;
      case GateKind::Z:
        applyPhase(gate.qubit0, {-1.0, 0.0});
        break;
      case GateKind::S:
        applyPhase(gate.qubit0, kI);
        break;
      case GateKind::Sdg:
        applyPhase(gate.qubit0, -kI);
        break;
      case GateKind::Rx: {
        const double c = std::cos(gate.angle / 2.0);
        const double s = std::sin(gate.angle / 2.0);
        applyUnitary(gate.qubit0, c, -kI * s, -kI * s, c);
        break;
      }
      case GateKind::Ry: {
        const double c = std::cos(gate.angle / 2.0);
        const double s = std::sin(gate.angle / 2.0);
        applyUnitary(gate.qubit0, c, -s, s, c);
        break;
      }
      case GateKind::Rz: {
        const double c = std::cos(gate.angle / 2.0);
        const double s = std::sin(gate.angle / 2.0);
        applyDiagonal(gate.qubit0, Amplitude{c, -s},
                      Amplitude{c, s});
        break;
      }
      case GateKind::Cnot:
        applyCnot(gate.qubit0, gate.qubit1);
        break;
    }
}

void
StateVector::applyCircuit(const circuit::Circuit &circuit)
{
    require(circuit.numQubits() == n,
            "circuit width does not match state");
    for (const auto &gate : circuit.gates())
        applyGate(gate);
}

void
StateVector::applyFusedGate(const circuit::FusedGate &fused)
{
    if (fused.isCnot) {
        applyCnot(fused.qubit0, fused.qubit1);
    } else if (fused.matrix.isDiagonal()) {
        applyDiagonal(fused.qubit0, fused.matrix.m00,
                      fused.matrix.m11);
    } else if (fused.matrix.isAntiDiagonal()) {
        applyAntiDiagonal(fused.qubit0, fused.matrix.m01,
                          fused.matrix.m10);
    } else {
        applyUnitary(fused.qubit0, fused.matrix.m00,
                     fused.matrix.m01, fused.matrix.m10,
                     fused.matrix.m11);
    }
}

void
StateVector::applyFused(const circuit::FusedCircuit &circuit)
{
    require(circuit.numQubits == n,
            "fused circuit width does not match state");
    for (const auto &fused : circuit.gates)
        applyFusedGate(fused);
}

void
StateVector::applyPauli(const pauli::PauliString &string)
{
    require(string.numQubits() == n,
            "Pauli width does not match state");
    std::vector<Amplitude> next(amps.size());
    for (std::size_t b = 0; b < amps.size(); ++b) {
        const auto image = string.applyToBasis(b);
        next[image.bits] += image.amplitude() * amps[b];
    }
    amps = std::move(next);
}

namespace {

/** i^k for k already normalised to 0..3. */
Amplitude
iPower(int k)
{
    switch (((k % 4) + 4) % 4) {
      case 0: return {1.0, 0.0};
      case 1: return {0.0, 1.0};
      case 2: return {-1.0, 0.0};
      default: return {0.0, -1.0};
    }
}

/** (-1)^popcount(bits) as a branch-free double. */
double
paritySign(std::uint64_t bits)
{
    return 1.0 - 2.0 * static_cast<double>(std::popcount(bits) & 1);
}

} // namespace

Amplitude
StateVector::expectation(const pauli::PauliString &string) const
{
    require(string.numQubits() == n,
            "Pauli width does not match state");
    // P|b> = i^(phase + popcount(x&z) + 2 popcount(z&b)) |b^x>, so
    // <P> = i^(phase + popcount(x&z))
    //       * sum_b (-1)^popcount(z&b) conj(a[b^x]) a[b].
    const std::uint64_t x = string.xMask();
    const std::uint64_t z = string.zMask();
    Amplitude sum{0.0, 0.0};
    for (std::size_t b = 0; b < amps.size(); ++b) {
        sum += paritySign(b & z) * std::conj(amps[b ^ x]) * amps[b];
    }
    return iPower(string.phaseExp() +
                  static_cast<int>(std::popcount(x & z))) *
           sum;
}

double
StateVector::expectation(const pauli::PauliSum &hamiltonian) const
{
    require(hamiltonian.numQubits() == n,
            "Hamiltonian width does not match state");
    // Split terms into diagonal (x == 0) and off-diagonal, the
    // latter grouped by X-mask so each distinct gather pattern
    // a[b^x] is walked once. PauliSum terms carry phase exponent 0,
    // so the constant factor per term is i^popcount(x&z) (one i per
    // Y), folded into the coefficient below.
    struct OffTerm
    {
        std::uint64_t z;
        double kr; // Re(coeff * i^popcount(x&z))
        double ki; // Im(coeff * i^popcount(x&z))
    };
    std::vector<std::pair<std::uint64_t, double>> diagonal;
    std::vector<std::pair<std::uint64_t, OffTerm>> off;
    for (const auto &term : hamiltonian.terms()) {
        const std::uint64_t x = term.string.xMask();
        const std::uint64_t z = term.string.zMask();
        if (x == 0) {
            diagonal.emplace_back(z, term.coefficient.real());
        } else {
            const Amplitude k =
                term.coefficient *
                iPower(static_cast<int>(std::popcount(x & z)));
            off.emplace_back(x, OffTerm{z, k.real(), k.imag()});
        }
    }

    double energy = 0.0;
    if (!diagonal.empty()) {
        // One pass over the probabilities serves every diagonal
        // term: energy += sum_b |a[b]|^2 sum_t c_t (-1)^pop(b&z_t).
        for (std::size_t b = 0; b < amps.size(); ++b) {
            const double p = std::norm(amps[b]);
            double dot = 0.0;
            for (const auto &[z, c] : diagonal)
                dot += c * paritySign(b & z);
            energy += p * dot;
        }
    }
    if (!off.empty()) {
        std::sort(off.begin(), off.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        std::size_t begin = 0;
        while (begin < off.size()) {
            const std::uint64_t x = off[begin].first;
            std::size_t end = begin;
            while (end < off.size() && off[end].first == x)
                ++end;
            // One pass per distinct X-mask; every term with this
            // mask reuses the gathered product conj(a[b^x]) a[b].
            for (std::size_t b = 0; b < amps.size(); ++b) {
                const Amplitude c = std::conj(amps[b ^ x]) * amps[b];
                double dot_r = 0.0, dot_i = 0.0;
                for (std::size_t t = begin; t < end; ++t) {
                    const OffTerm &term = off[t].second;
                    const double sign = paritySign(b & term.z);
                    dot_r += sign * term.kr;
                    dot_i += sign * term.ki;
                }
                // Re((kr + i ki) * c) summed over the mask's terms.
                energy += dot_r * c.real() - dot_i * c.imag();
            }
            begin = end;
        }
    }
    return energy;
}

SampleTable::SampleTable(const StateVector &state)
    : cdf(state.dimension())
{
    // Accumulate in the same order as the linear scan so the two
    // samplers agree bit-for-bit on every draw.
    const auto &amps = state.amplitudes();
    double cumulative = 0.0;
    for (std::size_t b = 0; b < amps.size(); ++b) {
        cumulative += std::norm(amps[b]);
        cdf[b] = cumulative;
    }
}

std::uint64_t
SampleTable::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
    if (it == cdf.end())
        return cdf.size() - 1; // rounding tail
    return static_cast<std::uint64_t>(it - cdf.begin());
}

std::uint64_t
StateVector::sampleBasisState(Rng &rng) const
{
    const double u = rng.nextDouble();
    double cumulative = 0.0;
    for (std::size_t b = 0; b < amps.size(); ++b) {
        cumulative += std::norm(amps[b]);
        if (u < cumulative)
            return b;
    }
    return amps.size() - 1; // rounding tail
}

double
StateVector::fidelity(const StateVector &other) const
{
    require(other.n == n, "fidelity of different-width states");
    Amplitude overlap{0.0, 0.0};
    for (std::size_t b = 0; b < amps.size(); ++b)
        overlap += std::conj(other.amps[b]) * amps[b];
    return std::norm(overlap);
}

double
StateVector::norm() const
{
    double sum = 0.0;
    for (const Amplitude &amp : amps)
        sum += std::norm(amp);
    return std::sqrt(sum);
}

void
StateVector::normalize()
{
    const double length = norm();
    require(length > 1e-300, "cannot normalize the zero vector");
    for (Amplitude &amp : amps)
        amp /= length;
}

} // namespace fermihedral::sim
