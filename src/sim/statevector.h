/**
 * @file
 * Dense state-vector simulator.
 *
 * Supports the compiler's gate set exactly (H, X, Y, Z, S, Sdg,
 * Rx/Ry/Rz, CNOT), Pauli-string application, Pauli-sum expectation
 * values and computational-basis sampling — everything the noisy
 * end-to-end studies (Figs. 8-10) need. Practical up to ~14 qubits.
 *
 * Gates dispatch to specialized kernels: diagonal gates (Z, S, Sdg,
 * Rz) are pure phase multiplies, X/Y are index swaps, CNOT iterates
 * only the affected quarter of the amplitudes, and fused 2x2 runs
 * (circuit::FusedCircuit) apply through the generic unitary kernel.
 * expectation(PauliSum) walks the amplitudes once per distinct
 * X-mask (at most once per qubit-wise commuting family) with
 * branch-free popcount sign arithmetic instead of once per term.
 *
 * Key invariants:
 *  - The amplitude vector always has exactly 2^numQubits() entries,
 *    with basis index bit q corresponding to qubit q.
 *  - Every gate application is unitary, so the norm is preserved up
 *    to floating-point rounding; normalize() exists for long noisy
 *    trajectories, not for correctness of single circuits.
 *  - applyGate() handles every circuit::GateKind exactly (the
 *    switch is exhaustive), and every specialized kernel computes
 *    the same matrix action as applyUnitary() with that gate's
 *    matrix; applyCircuit()/applyPauli() require matching qubit
 *    width and abort on mismatch.
 *  - Qubit indices passed to any method must be < numQubits().
 *  - sampleBasisState() is allocation-free (one linear scan); for
 *    many shots from one state build a SampleTable, which consumes
 *    the same single nextDouble() per shot and returns bit-identical
 *    samples to the linear scan.
 */

#ifndef FERMIHEDRAL_SIM_STATEVECTOR_H
#define FERMIHEDRAL_SIM_STATEVECTOR_H

#include <complex>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/passes.h"
#include "common/rng.h"
#include "pauli/pauli_string.h"
#include "pauli/pauli_sum.h"

namespace fermihedral::sim {

using Amplitude = std::complex<double>;

/** A normalised pure state of `n` qubits. */
class StateVector
{
  public:
    /** |0...0> on num_qubits qubits. */
    explicit StateVector(std::size_t num_qubits);

    /** State from explicit amplitudes (size must be 2^n). */
    StateVector(std::size_t num_qubits,
                std::vector<Amplitude> amplitudes);

    std::size_t numQubits() const { return n; }
    std::size_t dimension() const { return amps.size(); }
    const std::vector<Amplitude> &amplitudes() const { return amps; }

    /** Reset to the computational basis state |bits>. */
    void setBasisState(std::uint64_t bits);

    /** Apply a generic 2x2 unitary to one qubit. */
    void applyUnitary(std::uint32_t qubit, const Amplitude m00,
                      const Amplitude m01, const Amplitude m10,
                      const Amplitude m11);

    /** Multiply |..1..> amplitudes of `qubit` by `factor`. */
    void applyPhase(std::uint32_t qubit, Amplitude factor);

    /** Apply diag(d0, d1) to one qubit (Rz and fused diagonals). */
    void applyDiagonal(std::uint32_t qubit, Amplitude d0,
                       Amplitude d1);

    /** Apply [[0, c01], [c10, 0]] to one qubit (X, Y and fused). */
    void applyAntiDiagonal(std::uint32_t qubit, Amplitude c01,
                           Amplitude c10);

    /** Apply a CNOT (touches only the control=1 subspace). */
    void applyCnot(std::uint32_t control, std::uint32_t target);

    /** Apply one IR gate (dispatches to a specialized kernel). */
    void applyGate(const circuit::Gate &gate);

    /** Apply a whole circuit (no noise). */
    void applyCircuit(const circuit::Circuit &circuit);

    /** Apply one fused op via the matching specialized kernel. */
    void applyFusedGate(const circuit::FusedGate &fused);

    /** Apply a fused circuit (no noise). */
    void applyFused(const circuit::FusedCircuit &circuit);

    /** Apply a Pauli string (including its phase). */
    void applyPauli(const pauli::PauliString &string);

    /** <psi| P |psi> for one Pauli string. */
    Amplitude expectation(const pauli::PauliString &string) const;

    /** <psi| H |psi> for a Pauli sum (real part; H Hermitian). */
    double expectation(const pauli::PauliSum &hamiltonian) const;

    /** Sample a basis state index from |amplitude|^2. */
    std::uint64_t sampleBasisState(Rng &rng) const;

    /** Squared overlap |<other|this>|^2. */
    double fidelity(const StateVector &other) const;

    /** 2-norm of the amplitude vector. */
    double norm() const;

    /** Rescale to unit norm. */
    void normalize();

  private:
    std::size_t n;
    std::vector<Amplitude> amps;

    void applyX(std::uint32_t qubit);
    void applyY(std::uint32_t qubit);
};

/**
 * Precomputed cumulative distribution over a state's basis
 * probabilities, for drawing many samples from ONE state: O(2^n)
 * once, then O(n) binary search per shot instead of the O(2^n)
 * linear scan of StateVector::sampleBasisState().
 *
 * The prefix sums are accumulated in the same order as the linear
 * scan, so with the same Rng, sample() returns exactly the same
 * basis states — callers may switch between the two paths without
 * changing any experiment's results.
 */
class SampleTable
{
  public:
    /** Snapshot the state's probabilities (the state may change). */
    explicit SampleTable(const StateVector &state);

    /** Number of basis states (2^n). */
    std::size_t size() const { return cdf.size(); }

    /** Draw one basis state; consumes exactly one nextDouble(). */
    std::uint64_t sample(Rng &rng) const;

  private:
    std::vector<double> cdf;
};

} // namespace fermihedral::sim

#endif // FERMIHEDRAL_SIM_STATEVECTOR_H
