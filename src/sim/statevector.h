/**
 * @file
 * Dense state-vector simulator.
 *
 * Supports the compiler's gate set exactly (H, X, Y, Z, S, Sdg,
 * Rx/Ry/Rz, CNOT), Pauli-string application, Pauli-sum expectation
 * values and computational-basis sampling — everything the noisy
 * end-to-end studies (Figs. 8-10) need. Practical up to ~14 qubits.
 *
 * Key invariants:
 *  - The amplitude vector always has exactly 2^numQubits() entries,
 *    with basis index bit q corresponding to qubit q.
 *  - Every gate application is unitary, so the norm is preserved up
 *    to floating-point rounding; normalize() exists for long noisy
 *    trajectories, not for correctness of single circuits.
 *  - applyGate() handles every circuit::GateKind exactly (the
 *    switch is exhaustive); applyCircuit()/applyPauli() require
 *    matching qubit width and abort on mismatch.
 *  - Qubit indices passed to any method must be < numQubits().
 */

#ifndef FERMIHEDRAL_SIM_STATEVECTOR_H
#define FERMIHEDRAL_SIM_STATEVECTOR_H

#include <complex>
#include <vector>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "pauli/pauli_string.h"
#include "pauli/pauli_sum.h"

namespace fermihedral::sim {

using Amplitude = std::complex<double>;

/** A normalised pure state of `n` qubits. */
class StateVector
{
  public:
    /** |0...0> on num_qubits qubits. */
    explicit StateVector(std::size_t num_qubits);

    /** State from explicit amplitudes (size must be 2^n). */
    StateVector(std::size_t num_qubits,
                std::vector<Amplitude> amplitudes);

    std::size_t numQubits() const { return n; }
    std::size_t dimension() const { return amps.size(); }
    const std::vector<Amplitude> &amplitudes() const { return amps; }

    /** Reset to the computational basis state |bits>. */
    void setBasisState(std::uint64_t bits);

    /** Apply a generic 2x2 unitary to one qubit. */
    void applyUnitary(std::uint32_t qubit, const Amplitude m00,
                      const Amplitude m01, const Amplitude m10,
                      const Amplitude m11);

    /** Apply one IR gate. */
    void applyGate(const circuit::Gate &gate);

    /** Apply a whole circuit (no noise). */
    void applyCircuit(const circuit::Circuit &circuit);

    /** Apply a Pauli string (including its phase). */
    void applyPauli(const pauli::PauliString &string);

    /** <psi| P |psi> for one Pauli string. */
    Amplitude expectation(const pauli::PauliString &string) const;

    /** <psi| H |psi> for a Pauli sum (real part; H Hermitian). */
    double expectation(const pauli::PauliSum &hamiltonian) const;

    /** Sample a basis state index from |amplitude|^2. */
    std::uint64_t sampleBasisState(Rng &rng) const;

    /** Squared overlap |<other|this>|^2. */
    double fidelity(const StateVector &other) const;

    /** 2-norm of the amplitude vector. */
    double norm() const;

    /** Rescale to unit norm. */
    void normalize();

  private:
    std::size_t n;
    std::vector<Amplitude> amps;

    void applyCnot(std::uint32_t control, std::uint32_t target);
};

} // namespace fermihedral::sim

#endif // FERMIHEDRAL_SIM_STATEVECTOR_H
