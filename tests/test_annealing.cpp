/**
 * @file
 * Tests for Algorithm 2 (simulated-annealing pairing).
 */

#include <gtest/gtest.h>

#include "core/annealing.h"
#include "encodings/linear.h"
#include "fermion/models.h"

namespace fermihedral::core {
namespace {

TEST(Annealing, NeverWorseThanInitialAssignment)
{
    const auto h = fermion::fermiHubbard1D(3, 1.0, 4.0);
    const auto base = enc::bravyiKitaev(h.modes());
    const auto result = annealPairing(base, h);
    EXPECT_LE(result.finalCost, result.initialCost);
    EXPECT_EQ(result.initialCost,
              enc::hamiltonianPauliWeight(h, base));
}

TEST(Annealing, ReportedCostMatchesEncoding)
{
    const auto h = fermion::fermiHubbard1D(3, 1.0, 4.0);
    const auto base = enc::bravyiKitaev(h.modes());
    const auto result = annealPairing(base, h);
    EXPECT_EQ(result.finalCost,
              enc::hamiltonianPauliWeight(h, result.encoding));
}

TEST(Annealing, ResultIsAValidEncoding)
{
    const auto h = fermion::fermiHubbard1D(3, 1.0, 4.0);
    const auto base = enc::bravyiKitaev(h.modes());
    const auto result = annealPairing(base, h);
    const auto v = enc::validateEncoding(result.encoding);
    EXPECT_TRUE(v.anticommutativity) << v.detail;
    EXPECT_TRUE(v.algebraicIndependence) << v.detail;
    // Pair swaps preserve the vacuum property of the base encoding.
    EXPECT_TRUE(v.vacuumPreserving) << v.detail;
}

TEST(Annealing, AssignmentIsAPermutation)
{
    Rng rng(5);
    const auto h = fermion::sykModel(4, rng);
    const auto base = enc::bravyiKitaev(h.modes());
    const auto result = annealPairing(base, h);
    std::vector<bool> used(h.modes(), false);
    for (const auto pair_index : result.assignment) {
        ASSERT_LT(pair_index, h.modes());
        EXPECT_FALSE(used[pair_index]);
        used[pair_index] = true;
    }
}

TEST(Annealing, DeterministicForEqualSeeds)
{
    const auto h = fermion::fermiHubbard1D(4, 1.0, 4.0);
    const auto base = enc::bravyiKitaev(h.modes());
    AnnealingOptions options;
    options.seed = 123;
    const auto a = annealPairing(base, h, options);
    const auto b = annealPairing(base, h, options);
    EXPECT_EQ(a.finalCost, b.finalCost);
    EXPECT_EQ(a.assignment, b.assignment);
}

TEST(Annealing, SingleModeIsNoop)
{
    fermion::FermionHamiltonian h(1);
    h.addFermionTerm(1.0, {fermion::create(0),
                           fermion::annihilate(0)});
    const auto base = enc::jordanWigner(1);
    const auto result = annealPairing(base, h);
    EXPECT_EQ(result.initialCost, result.finalCost);
    EXPECT_EQ(result.encoding.majoranas, base.majoranas);
}

TEST(Annealing, FindsObviousImprovement)
{
    // Hopping between modes 0 and 1: under Jordan-Wigner the
    // product weight grows with the distance between the pairs, so
    // scrambling the pairs such that modes 0 and 1 land far apart
    // gives the annealer an improvement to find.
    fermion::FermionHamiltonian h(3);
    h.addFermionTerm(1.0, {fermion::create(0),
                           fermion::annihilate(1)});
    h.addFermionTerm(1.0, {fermion::create(1),
                           fermion::annihilate(0)});

    enc::FermionEncoding base = enc::jordanWigner(3);
    // Move JW pair 2 into slot 1 so modes (0, 1) initially use the
    // JW pairs (0, 2), whose hopping products have weight 3.
    std::swap(base.majoranas[2], base.majoranas[4]);
    std::swap(base.majoranas[3], base.majoranas[5]);

    AnnealingOptions options;
    options.iterationsPerTemperature = 50;
    const auto result = annealPairing(base, h, options);
    EXPECT_LT(result.finalCost, result.initialCost);
}

TEST(Annealing, AcceptanceStatisticsAreTracked)
{
    const auto h = fermion::fermiHubbard1D(3, 1.0, 4.0);
    const auto base = enc::bravyiKitaev(h.modes());
    const auto result = annealPairing(base, h);
    EXPECT_GT(result.proposals, 0u);
    EXPECT_LE(result.accepted, result.proposals);
}

} // namespace
} // namespace fermihedral::core
