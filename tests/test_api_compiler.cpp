/**
 * @file
 * Tests for the unified Compiler facade, the strategy registry and
 * the cached async CompilerService — including the warm-cache
 * contract: a second request for an already-solved spec returns a
 * bit-identical CompilationResult without running any strategy
 * (and therefore without any SAT call).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "api/serialize.h"
#include "api/service.h"
#include "api/strategy_registry.h"
#include "common/logging.h"
#include "encodings/linear.h"
#include "fermion/models.h"

namespace fermihedral::api {
namespace {

CompilationRequest
fastRequest(std::size_t modes, const std::string &strategy)
{
    CompilationRequest request;
    request.modes = modes;
    request.strategy = strategy;
    request.stepTimeoutSeconds = 10.0;
    request.totalTimeoutSeconds = 30.0;
    return request;
}

/** A fresh scratch directory under the system temp path. */
class TempDir
{
  public:
    explicit TempDir(const char *tag)
        : dir(std::filesystem::temp_directory_path() /
              (std::string("fermihedral-") + tag + "-" +
               std::to_string(::getpid())))
    {
        std::filesystem::remove_all(dir);
    }

    ~TempDir() { std::filesystem::remove_all(dir); }

    std::string path() const { return dir.string(); }

  private:
    std::filesystem::path dir;
};

TEST(StrategyRegistry, BuiltinsAreRegistered)
{
    const auto names = registeredStrategyNames();
    for (const char *expected :
         {"jordan-wigner", "bravyi-kitaev", "parity",
          "ternary-tree", "sat", "sat-noalg", "sat+annealing"}) {
        EXPECT_TRUE(strategyRegistered(expected)) << expected;
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(StrategyRegistry, UnknownNameIsFatalWithSuggestion)
{
    try {
        makeStrategy("sat-noalgo");
        FAIL() << "expected FatalError";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what())
                      .find("did you mean 'sat-noalg'"),
                  std::string::npos)
            << error.what();
    }
    // Far from everything: no suggestion, still fatal.
    EXPECT_THROW(makeStrategy("zzzzzzzzzz"), FatalError);
}

TEST(StrategyRegistry, CustomStrategyIsARegistrationNotARefactor)
{
    class FixedStrategy final : public EncodingStrategy
    {
      public:
        SearchOutcome
        search(const CompilationRequest &request) const override
        {
            SearchOutcome outcome;
            outcome.encoding =
                enc::parity(request.resolvedModes());
            outcome.cost = outcome.encoding.totalWeight();
            return outcome;
        }
    };
    if (!strategyRegistered("test-parity")) {
        registerStrategy("test-parity", [] {
            return std::make_unique<FixedStrategy>();
        });
    }
    EXPECT_THROW(registerStrategy("test-parity", [] {
        return std::unique_ptr<EncodingStrategy>(nullptr);
    }),
                 FatalError);

    Compiler compiler;
    const auto result =
        compiler.compile(fastRequest(3, "test-parity"));
    EXPECT_EQ(result.encoding.majoranas,
              enc::parity(3).majoranas);
    EXPECT_EQ(result.strategy, "test-parity");
}

TEST(Compiler, ClosedFormStrategiesMatchTheirBuilders)
{
    Compiler compiler;
    const auto jw = compiler.compile(fastRequest(4, "jordan-wigner"));
    EXPECT_EQ(jw.encoding.majoranas,
              enc::jordanWigner(4).majoranas);
    EXPECT_EQ(jw.cost, enc::jordanWigner(4).totalWeight());
    EXPECT_EQ(jw.baselineCost, enc::bravyiKitaev(4).totalWeight());
    EXPECT_EQ(jw.satCalls, 0u);
    EXPECT_TRUE(jw.validation.valid());
    EXPECT_EQ(jw.objective, Objective::TotalWeight);
    // No Hamiltonian: nothing to map or group.
    EXPECT_EQ(jw.qubitHamiltonian.size(), 0u);
    EXPECT_TRUE(jw.measurementGroups.empty());
}

TEST(Compiler, SatStrategyFindsTheProvedOptimum)
{
    Compiler compiler;
    const auto result = compiler.compile(fastRequest(2, "sat"));
    EXPECT_TRUE(result.provedOptimal);
    EXPECT_LE(result.cost, result.baselineCost);
    EXPECT_GT(result.satCalls, 0u);
    EXPECT_TRUE(result.validation.valid());
    EXPECT_EQ(result.cost, result.encoding.totalWeight());
}

TEST(Compiler, HamiltonianRequestMapsAndGroups)
{
    const auto h = fermion::fermiHubbard1D(2, 1.0, 4.0);
    CompilationRequest request = fastRequest(0, "bravyi-kitaev");
    request.hamiltonian = h;
    Compiler compiler;
    const auto result = compiler.compile(request);

    EXPECT_EQ(result.objective, Objective::HamiltonianWeight);
    EXPECT_EQ(result.cost,
              enc::hamiltonianPauliWeight(h, result.encoding));
    EXPECT_TRUE(result.qubitHamiltonian.isHermitian());
    EXPECT_GT(result.qubitHamiltonian.size(), 0u);

    // The groups partition exactly the non-identity terms.
    std::vector<bool> seen(result.qubitHamiltonian.size(), false);
    for (const auto &group : result.measurementGroups) {
        for (const std::size_t index : group.termIndices) {
            ASSERT_LT(index, seen.size());
            EXPECT_FALSE(seen[index]);
            seen[index] = true;
        }
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
        const bool identity =
            result.qubitHamiltonian.terms()[i].string.isIdentity();
        EXPECT_EQ(seen[i], !identity);
    }
}

TEST(Compiler, ObjectiveMismatchIsFatal)
{
    CompilationRequest request = fastRequest(3, "sat");
    request.objective = Objective::HamiltonianWeight;
    EXPECT_THROW(Compiler().compile(request), FatalError);
    EXPECT_THROW(
        Compiler().compile(fastRequest(3, "sat+annealing")),
        FatalError);
    EXPECT_THROW(Compiler().compile(fastRequest(0, "sat")),
                 FatalError);

    // sat+annealing under an explicit total-weight objective would
    // produce a Hamiltonian-dependent encoding behind a cache key
    // that omits the Hamiltonian structure — rejected up front.
    CompilationRequest total = fastRequest(0, "sat+annealing");
    total.hamiltonian = fermion::fermiHubbard1D(2, 1.0, 4.0);
    total.objective = Objective::TotalWeight;
    EXPECT_THROW(Compiler().compile(total), FatalError);
}

TEST(CompilerService, WarmCacheHitIsBitIdenticalWithoutSat)
{
    CompilerService service;
    const CompilationRequest request = fastRequest(2, "sat");

    const auto cold = service.compile(request);
    ASSERT_FALSE(cold.fromCache);
    EXPECT_GT(cold.satCalls, 0u);
    auto stats = service.cacheStats();
    EXPECT_EQ(stats.computes, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 0u);

    const auto warm = service.compile(request);
    EXPECT_TRUE(warm.fromCache);
    stats = service.cacheStats();
    // No strategy execution => no SAT call happened anywhere.
    EXPECT_EQ(stats.computes, 1u);
    EXPECT_EQ(stats.hits, 1u);
    // Bit-identical in every serialized field (the provenance
    // keeps the original solve's SAT-call count).
    EXPECT_EQ(serializeResult(warm), serializeResult(cold));
    EXPECT_EQ(warm.encoding.majoranas, cold.encoding.majoranas);
}

TEST(CompilerService, HamiltonianWarmHitReproducesMappedResult)
{
    const auto h = fermion::fermiHubbard1D(2, 1.0, 4.0);
    CompilationRequest request = fastRequest(0, "sat+annealing");
    request.hamiltonian = h;
    request.totalTimeoutSeconds = 20.0;

    CompilerService service;
    const auto cold = service.compile(request);
    const auto warm = service.compile(request);
    EXPECT_TRUE(warm.fromCache);
    EXPECT_EQ(service.cacheStats().computes, 1u);
    EXPECT_EQ(serializeResult(warm), serializeResult(cold));
    EXPECT_GT(warm.qubitHamiltonian.size(), 0u);
    EXPECT_FALSE(warm.measurementGroups.empty());
}

TEST(CompilerService, CanonicalKeySeparatesSpecsNotBudgets)
{
    const auto base = fastRequest(3, "sat");
    auto budget = base;
    budget.stepTimeoutSeconds *= 7;
    budget.threads = 4;
    EXPECT_EQ(CompilerService::canonicalRequestKey(base),
              CompilerService::canonicalRequestKey(budget));

    auto other_modes = base;
    other_modes.modes = 4;
    auto other_strategy = base;
    other_strategy.strategy = "sat-noalg";
    auto other_constraints = base;
    other_constraints.vacuumPreservation = false;
    EXPECT_NE(CompilerService::canonicalRequestKey(base),
              CompilerService::canonicalRequestKey(other_modes));
    EXPECT_NE(CompilerService::canonicalRequestKey(base),
              CompilerService::canonicalRequestKey(other_strategy));
    EXPECT_NE(
        CompilerService::canonicalRequestKey(base),
        CompilerService::canonicalRequestKey(other_constraints));

    // Hamiltonian-dependent keys hash the Eq. 14 structure.
    auto with_h = base;
    with_h.strategy = "bravyi-kitaev";
    with_h.hamiltonian = fermion::fermiHubbard1D(2, 1.0, 4.0);
    auto with_other_h = with_h;
    with_other_h.hamiltonian = fermion::fermiHubbard1D(3, 1.0, 4.0);
    EXPECT_NE(
        CompilerService::canonicalRequestKey(with_h),
        CompilerService::canonicalRequestKey(with_other_h));
}

TEST(CompilerService, SubmitBatchMatchesSyncResults)
{
    CompilerService service;
    std::vector<CompilationRequest> requests;
    for (const char *strategy :
         {"jordan-wigner", "bravyi-kitaev", "ternary-tree",
          "parity"})
        requests.push_back(fastRequest(3, strategy));
    auto batch = service.compileBatch(requests);
    ASSERT_EQ(batch.size(), requests.size());

    Compiler compiler;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(serializeResult(batch[i]),
                  serializeResult(compiler.compile(requests[i])));
    }

    // submit() of an unknown strategy fails fast on the caller.
    EXPECT_THROW(service.submit(fastRequest(3, "nope")),
                 FatalError);
}

TEST(CompilerService, AsyncFutureDeliversFailuresAsErrorResults)
{
    CompilerService service;
    CompilationRequest bad = fastRequest(3, "sat+annealing");
    // Valid strategy name, invalid spec (no Hamiltonian): the
    // diagnostic must surface as an Error-status result through
    // the future — future.get() never throws, no pool thread dies.
    auto future = service.submit(bad);
    const auto result = future.get();
    EXPECT_EQ(result.status, ResultStatus::Error);
    EXPECT_NE(result.statusMessage.find("sat+annealing"),
              std::string::npos)
        << result.statusMessage;

    // The synchronous path folds the same failure the same way.
    const auto sync = service.compile(bad);
    EXPECT_EQ(sync.status, ResultStatus::Error);

    const auto stats = service.serviceStats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.errors, 2u);
    EXPECT_EQ(stats.ok, 0u);
}

TEST(CompilerService, LruEvictsLeastRecentlyUsed)
{
    ServiceOptions options;
    options.cacheCapacity = 2;
    CompilerService service(options);
    service.compile(fastRequest(2, "jordan-wigner"));
    service.compile(fastRequest(3, "jordan-wigner"));
    service.compile(fastRequest(2, "jordan-wigner")); // hit, MRU
    service.compile(fastRequest(4, "jordan-wigner")); // evicts 3
    auto stats = service.cacheStats();
    EXPECT_EQ(stats.evictions, 1u);
    service.compile(fastRequest(3, "jordan-wigner")); // miss again
    stats = service.cacheStats();
    EXPECT_EQ(stats.computes, 4u);
    EXPECT_EQ(stats.hits, 1u);
}

TEST(CompilerService, DiskCacheSurvivesRestartAndRejectsCorruption)
{
    TempDir dir("disk-cache");
    ServiceOptions options;
    options.diskCachePath = dir.path();
    const auto request = fastRequest(2, "sat");

    std::string cold_text;
    {
        CompilerService service(options);
        cold_text = serializeResult(service.compile(request));
        EXPECT_EQ(service.cacheStats().computes, 1u);
    }

    // A fresh service (cold memory) must answer from disk.
    {
        CompilerService service(options);
        const auto warm = service.compile(request);
        EXPECT_TRUE(warm.fromCache);
        const auto stats = service.cacheStats();
        EXPECT_EQ(stats.computes, 0u);
        EXPECT_EQ(stats.diskHits, 1u);
        EXPECT_EQ(serializeResult(warm), cold_text);
    }

    // Corrupt every stored entry: the next lookup must count the
    // corruption, recompute, and rewrite a good entry.
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path())) {
        std::ofstream file(entry.path(), std::ios::trunc);
        file << "key v1|garbage\nnot an outcome\n";
    }
    {
        CompilerService service(options);
        const auto recomputed = service.compile(request);
        EXPECT_FALSE(recomputed.fromCache);
        const auto stats = service.cacheStats();
        EXPECT_EQ(stats.corrupted, 1u);
        EXPECT_EQ(stats.computes, 1u);
        EXPECT_EQ(serializeResult(recomputed), cold_text);

        CompilerService fresh(options);
        EXPECT_TRUE(fresh.compile(request).fromCache);
    }
}

TEST(CompilerService, DiskCacheRejectsTruncatedAndDamagedEntries)
{
    TempDir dir("disk-damage");
    ServiceOptions options;
    options.diskCachePath = dir.path();
    const auto request = fastRequest(2, "sat");

    std::string cold_text;
    {
        CompilerService service(options);
        cold_text = serializeResult(service.compile(request));
    }
    std::filesystem::path entry_path;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path()))
        entry_path = entry.path();
    ASSERT_FALSE(entry_path.empty());
    std::string good;
    {
        std::ifstream file(entry_path, std::ios::binary);
        std::ostringstream text;
        text << file.rdbuf();
        good = text.str();
    }
    ASSERT_EQ(good.rfind("fermihedral-cache v2 crc32 ", 0), 0u);

    const auto expectRejected = [&](const std::string &damaged,
                                    const char *what) {
        {
            std::ofstream file(entry_path, std::ios::binary |
                                               std::ios::trunc);
            file << damaged;
        }
        CompilerService service(options);
        const auto recomputed = service.compile(request);
        EXPECT_FALSE(recomputed.fromCache) << what;
        EXPECT_EQ(service.cacheStats().corrupted, 1u) << what;
        EXPECT_EQ(serializeResult(recomputed), cold_text) << what;
    };

    // A torn write: valid header, payload cut in half. The CRC
    // must reject it even though the prefix may still parse.
    expectRejected(good.substr(0, good.size() / 2), "truncated");
    // Crash before any byte landed.
    expectRejected("", "zero-length");
    // A single flipped bit deep in the payload.
    std::string flipped = good;
    flipped[flipped.size() - 2] =
        static_cast<char>(flipped[flipped.size() - 2] ^ 0x01);
    expectRejected(flipped, "bit-flip");
    // A pre-CRC v1 entry from an older build.
    expectRejected("key v1|strategy=sat|objective=total-weight\n",
                   "v1-format");

    // After each rejection the store rewrote a good entry.
    CompilerService fresh(options);
    EXPECT_TRUE(fresh.compile(request).fromCache);
}

TEST(CompilerService, CacheStatsJsonIsWellFormed)
{
    CompilerService service;
    service.compile(fastRequest(2, "jordan-wigner"));
    const std::string json = service.cacheStatsJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"computes\":1"), std::string::npos);
    EXPECT_NE(json.find("\"hits\":0"), std::string::npos);
}

} // namespace
} // namespace fermihedral::api
