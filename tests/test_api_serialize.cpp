/**
 * @file
 * Property tests for the api/serialize.h text formats: random
 * valid encodings and synthetic compilation results must round-trip
 * bit-exactly (phases, qubit counts, hexfloat coefficients, group
 * structure), and corrupted inputs must parse to nullopt — never
 * throw, never half-parse.
 */

#include <gtest/gtest.h>

#include "api/serialize.h"
#include "common/gf2.h"
#include "common/logging.h"
#include "common/rng.h"
#include "encodings/linear.h"
#include "pauli/commuting_groups.h"

namespace fermihedral::api {
namespace {

/** Random invertible GF(2) matrix: row operations on identity. */
BitMatrix
randomInvertible(std::size_t n, Rng &rng)
{
    BitMatrix m = BitMatrix::identity(n);
    for (std::size_t step = 0; step < 4 * n; ++step) {
        const auto i = static_cast<std::size_t>(rng.nextBelow(n));
        const auto j = static_cast<std::size_t>(rng.nextBelow(n));
        if (i != j)
            m.row(i) ^= m.row(j);
    }
    return m;
}

/** A random valid encoding, optionally with extra phase twists. */
enc::FermionEncoding
randomEncoding(std::size_t modes, Rng &rng, bool twist_phases)
{
    auto encoding = enc::linearEncoding(randomInvertible(modes, rng));
    if (twist_phases) {
        for (auto &majorana : encoding.majoranas)
            majorana = majorana.withPhase(
                static_cast<int>(rng.nextBelow(4)));
    }
    return encoding;
}

TEST(SerializeEncoding, RandomValidEncodingsRoundTripExactly)
{
    Rng rng(20240501);
    for (int iteration = 0; iteration < 50; ++iteration) {
        const auto modes =
            static_cast<std::size_t>(1 + rng.nextBelow(8));
        const auto encoding =
            randomEncoding(modes, rng, iteration % 2 == 1);

        const std::string text = serializeEncoding(encoding);
        const auto parsed = tryParseEncoding(text);
        ASSERT_TRUE(parsed.has_value()) << text;
        EXPECT_EQ(parsed->modes, encoding.modes);
        EXPECT_EQ(parsed->numQubits(), encoding.numQubits());
        ASSERT_EQ(parsed->majoranas.size(),
                  encoding.majoranas.size());
        for (std::size_t i = 0; i < encoding.majoranas.size(); ++i) {
            // operator== includes the phase exponent.
            EXPECT_EQ(parsed->majoranas[i], encoding.majoranas[i]);
        }
        // Serialization is canonical: a second trip is identical.
        EXPECT_EQ(serializeEncoding(*parsed), text);
    }
}

TEST(SerializeEncoding, MalformedInputsReturnNullopt)
{
    Rng rng(7);
    const auto encoding = randomEncoding(3, rng, false);
    const std::string good = serializeEncoding(encoding);
    ASSERT_TRUE(tryParseEncoding(good).has_value());

    const std::string cases[] = {
        "",
        "garbage\n",
        "fermihedral-encoding v2\nmodes 3\n",       // bad version
        good.substr(0, good.size() / 2),            // truncated
        good + "trailing\n",                        // trailing data
        "fermihedral-encoding v1\nmodes 1\nqubits 1\n"
        "majoranas 2\nXQ\nZZ\n",                    // bad op char
        "fermihedral-encoding v1\nmodes 2\nqubits 2\n"
        "majoranas 2\nXX\nZZ\n",                    // count != 2N
        "fermihedral-encoding v1\nmodes 1\nqubits 2\n"
        "majoranas 2\nX\nZ\n",                      // width mismatch
    };
    for (const auto &text : cases)
        EXPECT_FALSE(tryParseEncoding(text).has_value()) << text;
}

TEST(SerializeEncoding, ParseEncodingIsFatalOnMalformed)
{
    EXPECT_THROW(parseEncoding("nonsense"), FatalError);
}

TEST(SerializeOutcome, RoundTripsAllProvenanceFields)
{
    Rng rng(99);
    SearchOutcome outcome;
    outcome.encoding = randomEncoding(4, rng, true);
    outcome.cost = 41;
    outcome.baselineCost = 54;
    outcome.annealedCost = 46;
    outcome.provedOptimal = true;
    outcome.satCalls = 17;

    const auto parsed = tryParseOutcome(serializeOutcome(outcome));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->cost, outcome.cost);
    EXPECT_EQ(parsed->baselineCost, outcome.baselineCost);
    EXPECT_EQ(parsed->annealedCost, outcome.annealedCost);
    EXPECT_EQ(parsed->provedOptimal, outcome.provedOptimal);
    EXPECT_EQ(parsed->satCalls, outcome.satCalls);
    EXPECT_EQ(parsed->encoding.majoranas,
              outcome.encoding.majoranas);
}

TEST(SerializeOutcome, NumericFieldsRejectLooseGrammar)
{
    Rng rng(5);
    SearchOutcome outcome;
    outcome.encoding = randomEncoding(2, rng, false);
    outcome.cost = 42;
    const std::string good = serializeOutcome(outcome);
    ASSERT_TRUE(tryParseOutcome(good).has_value());

    // strtoull would happily wrap "-1" or read "0x10"; the strict
    // reader must treat both as corruption, not as warm data.
    for (const char *bad_value : {"-1", "0x10", "+7", " 9", "9 ",
                                  "12345678901234567890"}) {
        std::string bad = good;
        const auto pos = bad.find("cost 42");
        ASSERT_NE(pos, std::string::npos);
        bad.replace(pos, 7, std::string("cost ") + bad_value);
        EXPECT_FALSE(tryParseOutcome(bad).has_value())
            << bad_value;
    }
}

/** A synthetic result with a random Hamiltonian and groups. */
CompilationResult
randomResult(Rng &rng)
{
    CompilationResult result;
    result.encoding = randomEncoding(
        1 + static_cast<std::size_t>(rng.nextBelow(5)), rng, true);
    result.strategy = rng.nextBool() ? "sat" : "sat+annealing";
    result.objective = rng.nextBool()
                           ? Objective::TotalWeight
                           : Objective::HamiltonianWeight;
    result.cost = static_cast<std::size_t>(rng.nextBelow(1000));
    result.baselineCost =
        static_cast<std::size_t>(rng.nextBelow(1000));
    result.annealedCost =
        static_cast<std::size_t>(rng.nextBelow(1000));
    result.provedOptimal = rng.nextBool();
    result.satCalls = static_cast<std::size_t>(rng.nextBelow(50));

    const std::size_t qubits = result.encoding.numQubits();
    pauli::PauliSum sum(qubits);
    const std::size_t terms = 1 + rng.nextBelow(20);
    for (std::size_t t = 0; t < terms; ++t) {
        pauli::PauliString string(qubits);
        for (std::size_t q = 0; q < qubits; ++q) {
            string.setOp(q, static_cast<pauli::PauliOp>(
                                rng.nextBelow(4)));
        }
        // Coefficients exercise the hexfloat path: signs, tiny and
        // large magnitudes, and values with no short decimal form.
        const double re = rng.nextGaussian() * 1e3;
        const double im =
            rng.nextBool(0.25) ? rng.nextGaussian() * 1e-7 : 0.0;
        sum.add({re, im}, string);
    }
    sum.simplify();
    result.qubitHamiltonian = sum;
    result.measurementGroups = pauli::groupQubitWiseCommuting(sum);
    result.validation = enc::validateEncoding(result.encoding);
    return result;
}

TEST(SerializeResult, RandomResultsRoundTripBitExactly)
{
    Rng rng(20240502);
    for (int iteration = 0; iteration < 40; ++iteration) {
        const CompilationResult result = randomResult(rng);
        const std::string text = serializeResult(result);
        const auto parsed = tryParseResult(text);
        ASSERT_TRUE(parsed.has_value()) << text;

        EXPECT_EQ(parsed->strategy, result.strategy);
        EXPECT_EQ(parsed->objective, result.objective);
        EXPECT_EQ(parsed->cost, result.cost);
        EXPECT_EQ(parsed->baselineCost, result.baselineCost);
        EXPECT_EQ(parsed->annealedCost, result.annealedCost);
        EXPECT_EQ(parsed->provedOptimal, result.provedOptimal);
        EXPECT_EQ(parsed->satCalls, result.satCalls);
        EXPECT_EQ(parsed->encoding.majoranas,
                  result.encoding.majoranas);

        // Coefficients must round-trip to the last bit.
        const auto &a = result.qubitHamiltonian.terms();
        const auto &b = parsed->qubitHamiltonian.terms();
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].string, b[i].string);
            EXPECT_EQ(a[i].coefficient.real(),
                      b[i].coefficient.real());
            EXPECT_EQ(a[i].coefficient.imag(),
                      b[i].coefficient.imag());
        }
        ASSERT_EQ(parsed->measurementGroups.size(),
                  result.measurementGroups.size());
        for (std::size_t g = 0;
             g < result.measurementGroups.size(); ++g) {
            EXPECT_EQ(parsed->measurementGroups[g].basis,
                      result.measurementGroups[g].basis);
            EXPECT_EQ(parsed->measurementGroups[g].termIndices,
                      result.measurementGroups[g].termIndices);
        }
        // Canonical: serializing the parse reproduces the text.
        EXPECT_EQ(serializeResult(*parsed), text);
    }
}

TEST(SerializeResult, CorruptionsAreRejectedNotMisparsed)
{
    Rng rng(1234);
    const CompilationResult result = randomResult(rng);
    const std::string good = serializeResult(result);
    ASSERT_TRUE(tryParseResult(good).has_value());

    // Flip a byte at many positions: every corruption either still
    // parses to the same serialization (byte happened to be in a
    // label we replaced with an equally valid one) or is rejected;
    // it must never crash or mis-parse silently into junk sizes.
    for (std::size_t pos = 0; pos < good.size();
         pos += 1 + pos / 7) {
        std::string bad = good;
        bad[pos] = bad[pos] == 'Q' ? 'R' : 'Q';
        const auto parsed = tryParseResult(bad);
        if (parsed) {
            EXPECT_EQ(serializeResult(*parsed), bad);
        }
    }
    EXPECT_FALSE(tryParseResult(good.substr(1)).has_value());
    EXPECT_FALSE(
        tryParseResult(good + "extra line\n").has_value());
    EXPECT_THROW(parseResult("not a result"), FatalError);
}

} // namespace
} // namespace fermihedral::api
