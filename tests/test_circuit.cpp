/**
 * @file
 * Tests for the circuit IR and the peephole passes.
 */

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "circuit/passes.h"
#include "common/logging.h"

namespace fermihedral::circuit {
namespace {

TEST(Circuit, CountsSingleAndTwoQubitGates)
{
    Circuit c(3);
    c.add(GateKind::H, 0);
    c.add(GateKind::Rz, 1, 0.5);
    c.addCnot(0, 1);
    c.addCnot(1, 2);
    const auto costs = c.costs();
    EXPECT_EQ(costs.singleQubitGates, 2u);
    EXPECT_EQ(costs.cnotGates, 2u);
    EXPECT_EQ(costs.totalGates, 4u);
}

TEST(Circuit, DepthIsAsapSchedule)
{
    Circuit c(3);
    // Parallel H's: depth 1.
    c.add(GateKind::H, 0);
    c.add(GateKind::H, 1);
    c.add(GateKind::H, 2);
    EXPECT_EQ(c.costs().depth, 1u);
    // A CNOT chain serialises.
    c.addCnot(0, 1);
    c.addCnot(1, 2);
    EXPECT_EQ(c.costs().depth, 3u);
}

TEST(Circuit, RejectsBadQubits)
{
    Circuit c(2);
    EXPECT_THROW(c.add(GateKind::H, 2), PanicError);
    EXPECT_THROW(c.addCnot(0, 0), PanicError);
}

TEST(Passes, CancelsAdjacentHadamards)
{
    Circuit c(1);
    c.add(GateKind::H, 0);
    c.add(GateKind::H, 0);
    optimizeCircuit(c);
    EXPECT_EQ(c.size(), 0u);
}

TEST(Passes, CancelsCnotPairs)
{
    Circuit c(2);
    c.addCnot(0, 1);
    c.addCnot(0, 1);
    optimizeCircuit(c);
    EXPECT_EQ(c.size(), 0u);
}

TEST(Passes, KeepsReversedCnot)
{
    Circuit c(2);
    c.addCnot(0, 1);
    c.addCnot(1, 0);
    optimizeCircuit(c);
    EXPECT_EQ(c.size(), 2u);
}

TEST(Passes, SAndSdgCancel)
{
    Circuit c(1);
    c.add(GateKind::S, 0);
    c.add(GateKind::Sdg, 0);
    optimizeCircuit(c);
    EXPECT_EQ(c.size(), 0u);
}

TEST(Passes, MergesRotations)
{
    Circuit c(1);
    c.add(GateKind::Rz, 0, 0.3);
    c.add(GateKind::Rz, 0, 0.4);
    optimizeCircuit(c);
    ASSERT_EQ(c.size(), 1u);
    EXPECT_NEAR(c.gates()[0].angle, 0.7, 1e-12);
}

TEST(Passes, OppositeRotationsVanish)
{
    Circuit c(1);
    c.add(GateKind::Rz, 0, 0.3);
    c.add(GateKind::Rz, 0, -0.3);
    optimizeCircuit(c);
    EXPECT_EQ(c.size(), 0u);
}

TEST(Passes, InterveningGateBlocksCancellation)
{
    Circuit c(1);
    c.add(GateKind::H, 0);
    c.add(GateKind::Z, 0);
    c.add(GateKind::H, 0);
    optimizeCircuit(c);
    EXPECT_EQ(c.size(), 3u);
}

TEST(Passes, OtherQubitGatesDoNotBlock)
{
    Circuit c(2);
    c.add(GateKind::H, 0);
    c.add(GateKind::X, 1); // unrelated
    c.add(GateKind::H, 0);
    optimizeCircuit(c);
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c.gates()[0].kind, GateKind::X);
}

TEST(Passes, CascadingCancellation)
{
    // H X X H collapses completely (inner pair first, then outer).
    Circuit c(1);
    c.add(GateKind::H, 0);
    c.add(GateKind::X, 0);
    c.add(GateKind::X, 0);
    c.add(GateKind::H, 0);
    optimizeCircuit(c);
    EXPECT_EQ(c.size(), 0u);
}

TEST(Passes, CnotBlockedByOneSidedGate)
{
    Circuit c(2);
    c.addCnot(0, 1);
    c.add(GateKind::Z, 0); // touches the control in between
    c.addCnot(0, 1);
    optimizeCircuit(c);
    EXPECT_EQ(c.size(), 3u);
}

TEST(Circuit, ToStringListsGates)
{
    Circuit c(2);
    c.add(GateKind::H, 0);
    c.addCnot(0, 1);
    c.add(GateKind::Rz, 1, 0.25);
    const auto text = c.toString();
    EXPECT_NE(text.find("h q0"), std::string::npos);
    EXPECT_NE(text.find("cx q0, q1"), std::string::npos);
    EXPECT_NE(text.find("rz(0.25"), std::string::npos);
}

} // namespace
} // namespace fermihedral::circuit
