/**
 * @file
 * Tests for qubit-wise commuting measurement grouping.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pauli/commuting_groups.h"

namespace fermihedral::pauli {
namespace {

TEST(QubitWiseCommute, BasicPairs)
{
    const auto xi = PauliString::fromLabel("XI");
    const auto ix = PauliString::fromLabel("IX");
    const auto xx = PauliString::fromLabel("XX");
    const auto yx = PauliString::fromLabel("YX");
    const auto ii = PauliString::fromLabel("II");
    EXPECT_TRUE(qubitWiseCommute(xi, ix));
    EXPECT_TRUE(qubitWiseCommute(xi, xx));
    EXPECT_TRUE(qubitWiseCommute(xx, xx));
    EXPECT_FALSE(qubitWiseCommute(xx, yx));
    EXPECT_TRUE(qubitWiseCommute(ii, yx));
}

TEST(QubitWiseCommute, ImpliesFullCommutation)
{
    Rng rng(61);
    for (int trial = 0; trial < 300; ++trial) {
        PauliString a(4), b(4);
        for (std::size_t q = 0; q < 4; ++q) {
            a.setOp(q, static_cast<PauliOp>(rng.nextBelow(4)));
            b.setOp(q, static_cast<PauliOp>(rng.nextBelow(4)));
        }
        if (qubitWiseCommute(a, b)) {
            EXPECT_TRUE(a.commutesWith(b))
                << a.label() << " vs " << b.label();
        }
    }
}

TEST(Grouping, ZOnlyHamiltonianIsOneGroup)
{
    PauliSum sum(3);
    sum.add(1.0, PauliString::fromLabel("ZZI"));
    sum.add(0.5, PauliString::fromLabel("IZZ"));
    sum.add(-0.25, PauliString::fromLabel("ZIZ"));
    sum.simplify();
    const auto groups = groupQubitWiseCommuting(sum);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].termIndices.size(), 3u);
    EXPECT_EQ(groups[0].basis.label(), "ZZZ");
}

TEST(Grouping, MixedBasisSplits)
{
    PauliSum sum(2);
    sum.add(1.0, PauliString::fromLabel("XX"));
    sum.add(1.0, PauliString::fromLabel("ZZ"));
    sum.simplify();
    const auto groups = groupQubitWiseCommuting(sum);
    EXPECT_EQ(groups.size(), 2u);
}

TEST(Grouping, IdentityTermsAreSkipped)
{
    PauliSum sum(2);
    sum.add(3.0, PauliString::fromLabel("II"));
    sum.add(1.0, PauliString::fromLabel("XZ"));
    sum.simplify();
    const auto groups = groupQubitWiseCommuting(sum);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].termIndices.size(), 1u);
}

class GroupingProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(GroupingProperty, GroupsPartitionAndInternallyCommute)
{
    Rng rng(6100 + GetParam());
    const std::size_t qubits = 3 + rng.nextBelow(3);
    PauliSum sum(qubits);
    const int terms = 5 + static_cast<int>(rng.nextBelow(30));
    for (int t = 0; t < terms; ++t) {
        PauliString p(qubits);
        for (std::size_t q = 0; q < qubits; ++q)
            p.setOp(q, static_cast<PauliOp>(rng.nextBelow(4)));
        sum.add(rng.nextGaussian(), p);
    }
    sum.simplify();

    const auto groups = groupQubitWiseCommuting(sum);
    std::vector<int> seen(sum.size(), 0);
    for (const auto &group : groups) {
        for (const std::size_t index : group.termIndices) {
            ++seen[index];
            const auto &member = sum.terms()[index].string;
            // The basis must cover the member exactly on its
            // support.
            EXPECT_TRUE(qubitWiseCommute(group.basis, member));
        }
        // Pairwise qubit-wise commutation within the family.
        for (std::size_t i = 0; i < group.termIndices.size(); ++i) {
            for (std::size_t j = i + 1;
                 j < group.termIndices.size(); ++j) {
                EXPECT_TRUE(qubitWiseCommute(
                    sum.terms()[group.termIndices[i]].string,
                    sum.terms()[group.termIndices[j]].string));
            }
        }
    }
    for (std::size_t index = 0; index < sum.size(); ++index) {
        const int expected =
            sum.terms()[index].string.isIdentity() ? 0 : 1;
        EXPECT_EQ(seen[index], expected) << "term " << index;
    }
    EXPECT_LE(groups.size(), sum.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupingProperty,
                         ::testing::Range(0, 20));

} // namespace
} // namespace fermihedral::pauli
