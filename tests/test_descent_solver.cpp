/**
 * @file
 * Tests for Algorithm 1 (the descent solver).
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/logging.h"
#include "core/descent_solver.h"
#include "encodings/linear.h"
#include "fermion/models.h"

namespace fermihedral::core {
namespace {

DescentOptions
fastOptions()
{
    DescentOptions options;
    options.stepTimeoutSeconds = 10.0;
    options.totalTimeoutSeconds = 30.0;
    return options;
}

TEST(DescentSolver, SingleModeOptimal)
{
    DescentSolver solver(1, fastOptions());
    const auto result = solver.solve();
    EXPECT_EQ(result.cost, 2u);
    EXPECT_TRUE(result.provedOptimal);
    const auto v = enc::validateEncoding(result.encoding);
    EXPECT_TRUE(v.valid()) << v.detail;
}

TEST(DescentSolver, TwoModesBeatsOrMatchesBravyiKitaev)
{
    DescentSolver solver(2, fastOptions());
    const auto result = solver.solve();
    EXPECT_LE(result.cost, result.baselineCost);
    EXPECT_TRUE(result.provedOptimal);
    const auto v = enc::validateEncoding(result.encoding);
    EXPECT_TRUE(v.valid()) << v.detail;
    EXPECT_TRUE(v.xyPairing) << v.detail;
    // Figure 6: optimal total weight at N=2 is below BK's 7.
    EXPECT_LE(result.cost, 6u);
}

TEST(DescentSolver, ThreeModesProducesValidOptimal)
{
    DescentSolver solver(3, fastOptions());
    const auto result = solver.solve();
    EXPECT_LE(result.cost, result.baselineCost);
    const auto v = enc::validateEncoding(result.encoding);
    EXPECT_TRUE(v.valid()) << v.detail;
}

TEST(DescentSolver, WithoutAlgebraicIndependenceMatches)
{
    // Section 4.1: dropping the constraint rarely changes the
    // optimum; at N = 2 the optimal weight must agree.
    DescentOptions with = fastOptions();
    DescentOptions without = fastOptions();
    without.algebraicIndependence = false;

    const auto full = DescentSolver(2, with).solve();
    const auto reduced = DescentSolver(2, without).solve();
    EXPECT_EQ(full.cost, reduced.cost);
    // The reduced instance must be smaller.
    EXPECT_LT(reduced.numVars, full.numVars);
    EXPECT_LT(reduced.numClauses, full.numClauses);
}

TEST(DescentSolver, HamiltonianDependentTwoSiteHubbard)
{
    const auto h = fermion::fermiHubbard1D(2, 1.0, 4.0);
    DescentOptions options = fastOptions();
    options.totalTimeoutSeconds = 60.0;
    DescentSolver solver(h, options);
    const auto result = solver.solve();
    EXPECT_LE(result.cost, result.baselineCost);
    const auto v = enc::validateEncoding(result.encoding);
    EXPECT_TRUE(v.valid()) << v.detail;
    // The reported cost must equal the independent recomputation.
    EXPECT_EQ(result.cost,
              enc::hamiltonianPauliWeight(h, result.encoding));
}

TEST(DescentSolver, TrajectoryIsMonotoneDecreasing)
{
    DescentSolver solver(3, fastOptions());
    const auto result = solver.solve();
    for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
        EXPECT_LT(result.trajectory[i].first,
                  result.trajectory[i - 1].first);
    }
}

TEST(DescentSolver, TinyBudgetStillReturnsBaseline)
{
    DescentOptions options;
    options.stepTimeoutSeconds = 1e-6;
    options.totalTimeoutSeconds = 1e-6;
    DescentSolver solver(4, options);
    const auto result = solver.solve();
    // Whatever happens, the result is a valid encoding no worse
    // than BK (possibly BK itself).
    EXPECT_LE(result.cost, result.baselineCost);
    EXPECT_TRUE(enc::validateEncoding(result.encoding).valid());
}

TEST(DescentSolver, PortfolioDeterministicAcrossThreadCounts)
{
    // The bit-identity contract, mirroring test_parallel's
    // measureEnergy guarantee: with deterministic=true and budgets
    // generous enough that no step times out, the descent result —
    // cost, optimality proof, and the exact encoding — is the same
    // for every thread count at a fixed portfolio size.
    DescentOptions base = fastOptions();
    base.portfolioInstances = 3;
    base.deterministic = true;
    // Bit-identity requires budgets that never bind; the N=3 steps
    // take milliseconds, but sanitizer CI runs everything 10x
    // slower and in parallel, so leave a wide margin.
    base.stepTimeoutSeconds = 120.0;
    base.totalTimeoutSeconds = 600.0;

    std::optional<DescentResult> reference;
    for (const std::size_t threads : {1u, 2u, 4u}) {
        DescentOptions options = base;
        options.threads = threads;
        DescentSolver solver(3, options);
        const auto result = solver.solve();
        if (!reference) {
            reference = result;
            continue;
        }
        EXPECT_EQ(result.cost, reference->cost)
            << threads << " threads";
        EXPECT_EQ(result.provedOptimal, reference->provedOptimal)
            << threads << " threads";
        EXPECT_TRUE(result.encoding.majoranas ==
                    reference->encoding.majoranas)
            << threads << " threads";
    }
}

TEST(DescentSolver, PreprocessingPreservesResultAndShrinksInstance)
{
    DescentOptions with = fastOptions();
    DescentOptions without = fastOptions();
    without.preprocess = false;

    const auto simplified = DescentSolver(2, with).solve();
    const auto plain = DescentSolver(2, without).solve();
    EXPECT_EQ(simplified.cost, plain.cost);
    EXPECT_EQ(simplified.provedOptimal, plain.provedOptimal);
    const auto &stats = simplified.satStats.simplifier;
    EXPECT_GT(stats.eliminatedVariables, 0u);
    EXPECT_LT(stats.simplifiedClauses, stats.originalClauses);
    EXPECT_TRUE(
        enc::validateEncoding(simplified.encoding).valid());
}

TEST(DescentSolver, RacingPortfolioFindsSameOptimum)
{
    DescentOptions options = fastOptions();
    options.portfolioInstances = 3;
    options.threads = 3;
    options.deterministic = false;

    const auto racing = DescentSolver(2, options).solve();
    const auto plain = DescentSolver(2, fastOptions()).solve();
    // Arbitration may pick different optimal encodings, but the
    // optimum and its proof are unique.
    EXPECT_EQ(racing.cost, plain.cost);
    EXPECT_TRUE(racing.provedOptimal);
    EXPECT_TRUE(enc::validateEncoding(racing.encoding).valid());
}

TEST(DescentSolver, CarryOverKeepsCostAndSavesConflicts)
{
    // The learnt-clause carry-over across the descent's tightening
    // totalizer bounds is a pure engine optimisation: the N=4
    // workload must descend to bit-identical costs with it on or
    // off, and keeping the clauses must save conflicts overall
    // (every step resumes from the previous step's inferences
    // instead of re-deriving them).
    DescentOptions carry = fastOptions();
    carry.stepTimeoutSeconds = 120.0;
    carry.totalTimeoutSeconds = 600.0;
    DescentOptions fresh = carry;
    carry.carryLearnts = true;
    fresh.carryLearnts = false;

    const auto kept = DescentSolver(4, carry).solve();
    const auto cleared = DescentSolver(4, fresh).solve();

    EXPECT_EQ(kept.cost, cleared.cost);
    EXPECT_EQ(kept.baselineCost, cleared.baselineCost);
    EXPECT_EQ(kept.provedOptimal, cleared.provedOptimal);
    EXPECT_TRUE(enc::validateEncoding(kept.encoding).valid());

    // The off-run must actually have dropped learnt clauses, and
    // the on-run must win the conflict count.
    EXPECT_GT(cleared.satStats.aggregate.clearedLearnts, 0u);
    EXPECT_EQ(kept.satStats.aggregate.clearedLearnts, 0u);
    EXPECT_LT(kept.satStats.aggregate.conflicts,
              cleared.satStats.aggregate.conflicts);
}

TEST(DescentSolver, ProgressCallbackIsMonotone)
{
    // The observer contract: one report per SAT step, bounds
    // strictly decreasing (each step asks below the best cost so
    // far), elapsed time non-decreasing, and exactly one SAT call
    // per report.
    std::vector<DescentProgress> reports;
    DescentOptions options = fastOptions();
    options.progress = [&](const DescentProgress &p) {
        reports.push_back(p);
    };
    DescentSolver solver(3, options);
    const auto result = solver.solve();

    ASSERT_FALSE(reports.empty());
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const DescentProgress &report = reports[i];
        if (report.status == sat::SolveStatus::Sat) {
            // A SAT step improves to at most the bound it asked.
            EXPECT_LE(report.bestCost, report.bound);
        } else {
            // UNSAT/timeout leaves the previous best (= bound + 1).
            EXPECT_EQ(report.bestCost, report.bound + 1);
        }
        EXPECT_EQ(report.satCalls, i + 1);
        if (i == 0)
            continue;
        EXPECT_LT(report.bound, reports[i - 1].bound);
        EXPECT_GE(report.elapsedSeconds,
                  reports[i - 1].elapsedSeconds);
        EXPECT_LE(report.bestCost, reports[i - 1].bestCost);
        EXPECT_GE(report.conflicts, reports[i - 1].conflicts);
    }
    // The final report's best cost is the result the caller gets.
    EXPECT_EQ(reports.back().bestCost, result.cost);
    // Observer-only: attaching the callback must not change the
    // outcome of the search.
    const auto plain = DescentSolver(3, fastOptions()).solve();
    EXPECT_EQ(result.cost, plain.cost);
    EXPECT_EQ(result.satCalls, plain.satCalls);
}

TEST(DescentSolver, EnumerateOptimalBeforeSolveIsFatal)
{
    // The documented precondition (solve() first) must be a fatal
    // diagnostic, consistent with FlagSet::assign on malformed
    // values — not silent misbehaviour.
    DescentSolver solver(2, fastOptions());
    EXPECT_THROW(solver.enumerateOptimal(1, 1.0), FatalError);
    // After solve() the same call succeeds.
    solver.solve();
    EXPECT_FALSE(solver.enumerateOptimal(1, 10.0).empty());
}

TEST(DescentSolver, EnumerateOptimalYieldsDistinctValidEncodings)
{
    DescentSolver solver(2, fastOptions());
    const auto result = solver.solve();
    const auto samples = solver.enumerateOptimal(5, 20.0);
    EXPECT_GE(samples.size(), 2u);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_TRUE(enc::validateEncoding(samples[i]).valid());
        EXPECT_LE(samples[i].totalWeight(), result.cost);
        for (std::size_t j = i + 1; j < samples.size(); ++j) {
            EXPECT_FALSE(samples[i].majoranas ==
                         samples[j].majoranas);
        }
    }
}

} // namespace
} // namespace fermihedral::core
