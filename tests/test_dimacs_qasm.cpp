/**
 * @file
 * Tests for the interchange formats (DIMACS CNF, OpenQASM 2.0) and
 * the second-order Trotter extension.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "circuit/pauli_compiler.h"
#include "circuit/qasm.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/encoding_model.h"
#include "sat/dimacs.h"
#include "sim/statevector.h"

namespace fermihedral {
namespace {

using sat::Cnf;
using sat::Lit;
using sat::mkLit;

TEST(Dimacs, RoundTripPreservesClauses)
{
    Cnf cnf;
    const Lit a = mkLit(0), b = mkLit(1), c = mkLit(2);
    cnf.addClause(std::vector<Lit>{a, ~b});
    cnf.addClause(std::vector<Lit>{b, c});
    cnf.addClause(std::vector<Lit>{~a, ~c});
    const std::string text = toDimacs(cnf);
    const Cnf parsed = sat::parseDimacs(text);
    ASSERT_EQ(parsed.clauses.size(), cnf.clauses.size());
    EXPECT_EQ(parsed.numVars, 3u);
    for (std::size_t i = 0; i < cnf.clauses.size(); ++i)
        EXPECT_EQ(parsed.clauses[i], cnf.clauses[i]);
}

TEST(Dimacs, TextFormatIsStandard)
{
    Cnf cnf;
    cnf.addClause(std::vector<Lit>{mkLit(0), ~mkLit(1)});
    const std::string text = toDimacs(cnf);
    EXPECT_NE(text.find("p cnf 2 1"), std::string::npos);
    EXPECT_NE(text.find("1 -2 0"), std::string::npos);
}

TEST(Dimacs, ParserRejectsGarbage)
{
    EXPECT_THROW(sat::parseDimacs("1 2 0\n"), FatalError);
    EXPECT_THROW(sat::parseDimacs("p cnf 2 1\n1 2\n"), FatalError);
    EXPECT_THROW(sat::parseDimacs("p dnf 2 1\n1 2 0\n"),
                 FatalError);
}

TEST(Dimacs, ParserRejectsDuplicateAndContradictoryLiterals)
{
    // A repeated literal within a clause is a generator bug.
    EXPECT_THROW(sat::parseDimacs("p cnf 2 1\n1 2 1 0\n"),
                 FatalError);
    // So is a tautological x OR NOT x clause.
    EXPECT_THROW(sat::parseDimacs("p cnf 2 1\n1 -1 0\n"),
                 FatalError);
    EXPECT_THROW(sat::parseDimacs("p cnf 3 2\n1 2 0\n-3 2 3 0\n"),
                 FatalError);
    // The same literals across different clauses stay legal.
    const Cnf cnf =
        sat::parseDimacs("p cnf 2 2\n1 2 0\n-1 2 0\n");
    EXPECT_EQ(cnf.clauses.size(), 2u);
}

TEST(Dimacs, RandomRoundTripPreservesClauses)
{
    // Property: write -> parse is the identity on clause lists
    // (duplicate-free clauses, as the writer's callers produce).
    Rng rng(321);
    for (int round = 0; round < 50; ++round) {
        const std::size_t num_vars = 1 + rng.nextBelow(30);
        const std::size_t num_clauses = rng.nextBelow(40);
        Cnf cnf;
        cnf.numVars = num_vars;
        for (std::size_t c = 0; c < num_clauses; ++c) {
            // Pick distinct variables, then random signs.
            std::vector<sat::Var> vars;
            for (sat::Var v = 0;
                 static_cast<std::size_t>(v) < num_vars; ++v)
                vars.push_back(v);
            const std::size_t size =
                1 + rng.nextBelow(std::min<std::size_t>(
                        num_vars, 5));
            std::vector<Lit> clause;
            for (std::size_t k = 0; k < size; ++k) {
                const std::size_t pick =
                    rng.nextBelow(vars.size());
                clause.push_back(
                    mkLit(vars[pick], rng.nextBool()));
                vars[pick] = vars.back();
                vars.pop_back();
            }
            cnf.addClause(clause);
        }
        const Cnf parsed = sat::parseDimacs(toDimacs(cnf));
        ASSERT_EQ(parsed.clauses.size(), cnf.clauses.size())
            << "round " << round;
        EXPECT_EQ(parsed.numVars, cnf.numVars)
            << "round " << round;
        for (std::size_t i = 0; i < cnf.clauses.size(); ++i)
            EXPECT_EQ(parsed.clauses[i], cnf.clauses[i])
                << "round " << round << " clause " << i;
    }
}

TEST(Dimacs, LoadIntoSolverSolves)
{
    const Cnf cnf = sat::parseDimacs(
        "c a simple implication chain\n"
        "p cnf 3 3\n"
        "1 0\n"
        "-1 2 0\n"
        "-2 3 0\n");
    sat::Solver solver;
    ASSERT_TRUE(cnf.loadInto(solver));
    ASSERT_EQ(solver.solve(), sat::SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(sat::Var{2}), sat::LBool::True);
}

TEST(Dimacs, SnapshotCapturesEncodingModel)
{
    sat::Solver solver;
    core::EncodingModelOptions options;
    options.modes = 2;
    options.costCap = 8;
    core::EncodingModel model(solver, options);
    const Cnf cnf = sat::snapshotCnf(solver);
    EXPECT_EQ(cnf.numVars, solver.numVars());
    EXPECT_GT(cnf.clauses.size(), 100u);

    // The exported instance must be satisfiable in a fresh solver.
    sat::Solver replay;
    ASSERT_TRUE(cnf.loadInto(replay));
    EXPECT_EQ(replay.solve(), sat::SolveStatus::Sat);
}

TEST(Dimacs, SnapshotEmitsOnlyProblemClauses)
{
    // After a solve the database also holds learnt clauses; the
    // export must not include them (a learnt clause surviving an
    // arena collection has no well-defined place in the original
    // instance). Solving may fix variables at level 0 — those show
    // up as extra unit facts — but every non-unit clause of the
    // snapshot must still be an original problem clause.
    sat::Solver solver;
    core::EncodingModelOptions options;
    options.modes = 2;
    options.costCap = 8;
    core::EncodingModel model(solver, options);
    const Cnf before = sat::snapshotCnf(solver);

    ASSERT_EQ(solver.solve(), sat::SolveStatus::Sat);
    const Cnf after = sat::snapshotCnf(solver);

    // Propagation reorders the first two literals of a clause in
    // place (watched-literal swapping), so compare clauses as sets.
    auto nonUnits = [](const Cnf &cnf) {
        std::vector<std::vector<sat::Lit>> out;
        for (const auto &clause : cnf.clauses) {
            if (clause.size() > 1) {
                out.push_back(clause);
                std::sort(out.back().begin(), out.back().end());
            }
        }
        return out;
    };
    EXPECT_EQ(nonUnits(after), nonUnits(before));

    // clearLearnts() drops only learnt clauses: the export surface
    // is bit-identical before and after.
    solver.clearLearnts();
    const Cnf cleared = sat::snapshotCnf(solver);
    ASSERT_EQ(cleared.clauses.size(), after.clauses.size());
    for (std::size_t i = 0; i < after.clauses.size(); ++i)
        EXPECT_EQ(cleared.clauses[i], after.clauses[i])
            << "clause " << i;

    // And the snapshot round-trips through DIMACS text.
    const Cnf parsed = sat::parseDimacs(sat::toDimacs(after));
    ASSERT_EQ(parsed.clauses.size(), after.clauses.size());
    for (std::size_t i = 0; i < after.clauses.size(); ++i)
        EXPECT_EQ(parsed.clauses[i], after.clauses[i])
            << "clause " << i;
}

TEST(Qasm, ContainsHeaderAndGates)
{
    circuit::Circuit c(2);
    c.add(circuit::GateKind::H, 0);
    c.add(circuit::GateKind::Rz, 1, 0.5);
    c.addCnot(0, 1);
    const std::string qasm = circuit::toQasm(c);
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("qreg q[2];"), std::string::npos);
    EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
    EXPECT_NE(qasm.find("rz(0.5) q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("cx q[0], q[1];"), std::string::npos);
    EXPECT_EQ(qasm.find("creg"), std::string::npos);
}

TEST(Qasm, MeasurementVariantAddsClassicalRegister)
{
    circuit::Circuit c(3);
    c.add(circuit::GateKind::X, 2);
    const std::string qasm = circuit::toQasm(c, true);
    EXPECT_NE(qasm.find("creg c[3];"), std::string::npos);
    EXPECT_NE(qasm.find("measure q -> c;"), std::string::npos);
}

TEST(SecondOrderTrotter, BeatsFirstOrderAccuracy)
{
    Rng rng(55);
    pauli::PauliSum h(3);
    h.add(0.8, pauli::PauliString::fromLabel("XXI"));
    h.add(-0.6, pauli::PauliString::fromLabel("IZZ"));
    h.add(0.4, pauli::PauliString::fromLabel("YIY"));
    h.simplify();

    // Reference: fine-grained first-order evolution.
    circuit::CompileOptions fine;
    fine.trotterSteps = 1024;
    const auto reference = circuit::compileTrotter(h, 1.0, fine);

    std::vector<sim::Amplitude> amps(8);
    for (auto &amp : amps)
        amp = sim::Amplitude(rng.nextGaussian(),
                             rng.nextGaussian());
    sim::StateVector psi(3, amps);
    psi.normalize();

    sim::StateVector exact = psi;
    exact.applyCircuit(reference);

    auto error_of = [&](circuit::TrotterOrder order,
                        std::size_t steps) {
        circuit::CompileOptions options;
        options.trotterOrder = order;
        options.trotterSteps = steps;
        const auto c = circuit::compileTrotter(h, 1.0, options);
        sim::StateVector s = psi;
        s.applyCircuit(c);
        double sum = 0.0;
        for (std::size_t i = 0; i < s.dimension(); ++i)
            sum += std::norm(s.amplitudes()[i] -
                             exact.amplitudes()[i]);
        return std::sqrt(sum);
    };

    for (std::size_t steps : {2u, 4u}) {
        EXPECT_LT(error_of(circuit::TrotterOrder::Second, steps),
                  error_of(circuit::TrotterOrder::First, steps))
            << "steps=" << steps;
    }
    // Second order converges ~quadratically: 4x steps ~ 16x error.
    const double e2 = error_of(circuit::TrotterOrder::Second, 2);
    const double e8 = error_of(circuit::TrotterOrder::Second, 8);
    EXPECT_LT(e8, e2 / 8.0);
}

TEST(SecondOrderTrotter, SymmetricStepMergesBoundaryRotation)
{
    // The backward half-step starts with the same term the forward
    // half ended with, so the optimizer merges the two rotations:
    // the optimized symmetric circuit must be smaller than twice
    // the half-step circuit.
    pauli::PauliSum h(2);
    h.add(0.3, pauli::PauliString::fromLabel("XX"));
    h.add(0.7, pauli::PauliString::fromLabel("ZZ"));
    h.simplify();

    circuit::CompileOptions second;
    second.trotterOrder = circuit::TrotterOrder::Second;
    circuit::CompileOptions first;
    const auto c2 = circuit::compileTrotter(h, 1.0, second);
    const auto c1 = circuit::compileTrotter(h, 1.0, first);
    EXPECT_LT(c2.size(), 2 * c1.size());
}

} // namespace
} // namespace fermihedral
