/**
 * @file
 * Tests for the SAT encoding model (Section 3 constraints).
 */

#include <gtest/gtest.h>

#include "core/encoding_model.h"
#include "sat/solver.h"
#include "encodings/linear.h"

namespace fermihedral::core {
namespace {

EncodingModelOptions
baseOptions(std::size_t modes, std::size_t cap)
{
    EncodingModelOptions options;
    options.modes = modes;
    options.costCap = cap;
    return options;
}

TEST(EncodingModel, DecodedSolutionSatisfiesConstraints)
{
    for (std::size_t modes : {1u, 2u, 3u}) {
        sat::Solver solver;
        EncodingModel model(solver,
                            baseOptions(modes, 4 * modes * modes));
        ASSERT_EQ(solver.solve(), sat::SolveStatus::Sat)
            << "modes=" << modes;
        const auto encoding = model.decode();
        const auto v = enc::validateEncoding(encoding);
        EXPECT_TRUE(v.anticommutativity) << v.detail;
        EXPECT_TRUE(v.algebraicIndependence) << v.detail;
        EXPECT_TRUE(v.xyPairing) << v.detail;
    }
}

TEST(EncodingModel, WithoutAlgebraicIndependenceStillAnticommutes)
{
    sat::Solver solver;
    auto options = baseOptions(3, 36);
    options.algebraicIndependence = false;
    EncodingModel model(solver, options);
    ASSERT_EQ(solver.solve(), sat::SolveStatus::Sat);
    const auto v = enc::validateEncoding(model.decode());
    EXPECT_TRUE(v.anticommutativity) << v.detail;
}

TEST(EncodingModel, BoundForbidsHeavySolutions)
{
    // One mode: two 1-qubit strings; minimum total weight is 2
    // (e.g. X and Y). Bounding at 1 must be UNSAT.
    sat::Solver solver;
    EncodingModel model(solver, baseOptions(1, 2));
    model.boundCostAtMost(2);
    ASSERT_EQ(solver.solve(), sat::SolveStatus::Sat);
    model.boundCostAtMost(1);
    EXPECT_EQ(solver.solve(), sat::SolveStatus::Unsat);
}

TEST(EncodingModel, SingleModeOptimumIsXyPair)
{
    sat::Solver solver;
    EncodingModel model(solver, baseOptions(1, 2));
    model.boundCostAtMost(2);
    ASSERT_EQ(solver.solve(), sat::SolveStatus::Sat);
    const auto encoding = model.decode();
    EXPECT_EQ(encoding.totalWeight(), 2u);
    // Vacuum pairing requires the even string X and odd string Y on
    // the shared qubit.
    EXPECT_EQ(encoding.majoranas[0].label(), "X");
    EXPECT_EQ(encoding.majoranas[1].label(), "Y");
}

TEST(EncodingModel, WarmStartedSolverReproducesBaseline)
{
    const std::size_t modes = 3;
    const auto bk = enc::bravyiKitaev(modes);
    sat::Solver solver;
    EncodingModel model(solver, baseOptions(modes, bk.totalWeight()));
    model.warmStart(bk);
    model.boundCostAtMost(bk.totalWeight());
    ASSERT_EQ(solver.solve(), sat::SolveStatus::Sat);
    // Not necessarily equal to BK, but certainly no heavier.
    EXPECT_LE(model.decode().totalWeight(), bk.totalWeight());
}

TEST(EncodingModel, CostOfMatchesTotalWeight)
{
    sat::Solver solver;
    EncodingModel model(solver, baseOptions(2, 16));
    const auto jw = enc::jordanWigner(2);
    EXPECT_EQ(model.costOf(jw), jw.totalWeight());
}

TEST(EncodingModel, HamiltonianCostCountsSubsets)
{
    // Cost structure: single subset {g0, g1} with multiplicity 2.
    EncodingModelOptions options = baseOptions(2, 16);
    options.hamiltonianStructure = {
        fermion::WeightedSubset{0b11, 2}};
    sat::Solver solver;
    EncodingModel model(solver, options);
    const auto jw = enc::jordanWigner(2);
    // JW: g0 g1 = IX * IY = iIZ, weight 1; multiplicity 2 -> 2.
    EXPECT_EQ(model.costOf(jw), 2u);
}

TEST(EncodingModel, HamiltonianCostBoundIsEnforced)
{
    // For 1 mode the only Hamiltonian subset is {g0, g1}; its
    // product is a non-identity 1-qubit operator, so the cost is
    // exactly 1 and bounding at 0 must fail.
    EncodingModelOptions options = baseOptions(1, 4);
    options.hamiltonianStructure = {
        fermion::WeightedSubset{0b11, 1}};
    sat::Solver solver;
    EncodingModel model(solver, options);
    model.boundCostAtMost(1);
    ASSERT_EQ(solver.solve(), sat::SolveStatus::Sat);
    model.boundCostAtMost(0);
    EXPECT_EQ(solver.solve(), sat::SolveStatus::Unsat);
}

TEST(EncodingModel, BlockCurrentSolutionExcludesModel)
{
    // Without the vacuum pairing there are several anticommuting
    // 1-qubit pairs (XY, XZ, YZ, ...), so blocking one solution
    // must still leave another.
    auto options = baseOptions(1, 2);
    options.vacuumPreservation = false;
    sat::Solver solver;
    EncodingModel model(solver, options);
    ASSERT_EQ(solver.solve(), sat::SolveStatus::Sat);
    const auto first = model.decode();
    model.blockCurrentSolution();
    ASSERT_EQ(solver.solve(), sat::SolveStatus::Sat);
    const auto second = model.decode();
    EXPECT_FALSE(first.majoranas[0] == second.majoranas[0] &&
                 first.majoranas[1] == second.majoranas[1]);
}

TEST(EncodingModel, EnumerationTerminates)
{
    // 1 mode, weight <= 2, vacuum pairing on: solutions are pairs
    // (X at some qubit with Y at same qubit): exactly (X, Y)? Both
    // strings are width-1: valid anticommuting pairs with X/Y
    // pairing: only (X, Y). Blocking it must yield UNSAT.
    sat::Solver solver;
    EncodingModel model(solver, baseOptions(1, 2));
    model.boundCostAtMost(2);
    std::size_t count = 0;
    while (solver.solve() == sat::SolveStatus::Sat && count < 10) {
        ++count;
        model.blockCurrentSolution();
    }
    EXPECT_EQ(count, 1u);
}

} // namespace
} // namespace fermihedral::core
