/**
 * @file
 * Tests for the baseline encodings and the encoding validator.
 *
 * The decisive integration property: for every encoding, the
 * spectrum of the mapped qubit Hamiltonian equals the Fock-space
 * spectrum of the Fermionic Hamiltonian exactly.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "encodings/encoding.h"
#include "encodings/linear.h"
#include "encodings/ternary_tree.h"
#include "fermion/fock.h"
#include "fermion/models.h"
#include "sim/exact.h"

namespace fermihedral::enc {
namespace {

TEST(JordanWigner, MatchesPaperExample)
{
    // Paper Eq. 2 (converted to our 0-indexed gamma convention):
    // mode 0: gamma0 = IX, gamma1 = IY;
    // mode 1: gamma2 = XZ, gamma3 = YZ.
    const auto jw = jordanWigner(2);
    ASSERT_EQ(jw.majoranas.size(), 4u);
    EXPECT_TRUE(jw.majoranas[0].bareEquals(
        pauli::PauliString::fromLabel("IX")));
    EXPECT_TRUE(jw.majoranas[1].bareEquals(
        pauli::PauliString::fromLabel("IY")));
    EXPECT_TRUE(jw.majoranas[2].bareEquals(
        pauli::PauliString::fromLabel("XZ")));
    EXPECT_TRUE(jw.majoranas[3].bareEquals(
        pauli::PauliString::fromLabel("YZ")));
}

TEST(JordanWigner, WeightIsLinear)
{
    for (std::size_t n : {1u, 2u, 4u, 8u}) {
        const auto jw = jordanWigner(n);
        // Sum of weights: 2 * (1 + 2 + ... + n) = n (n + 1).
        EXPECT_EQ(jw.totalWeight(), n * (n + 1));
    }
}

TEST(BravyiKitaev, LogarithmicWeightScaling)
{
    const double w8 = bravyiKitaev(8).weightPerOperator();
    const double w32 = bravyiKitaev(32).weightPerOperator();
    const double jw8 = jordanWigner(8).weightPerOperator();
    const double jw32 = jordanWigner(32).weightPerOperator();
    // BK grows ~log N: going 8 -> 32 should add far less weight
    // than JW's linear growth.
    EXPECT_LT(w32 - w8, 2.5);
    EXPECT_GT(jw32 - jw8, 10.0);
}

TEST(BravyiKitaev, PaperPauliWeightBaseline)
{
    // Figure 6 plots BK per-operator weight ~ 0.73 log2(N) + 0.94.
    for (std::size_t n : {4u, 8u, 16u}) {
        const double per_op = bravyiKitaev(n).weightPerOperator();
        const double fit = 0.73 * std::log2(double(n)) + 0.94;
        EXPECT_NEAR(per_op, fit, 0.75) << "n=" << n;
    }
}

TEST(FenwickMatrix, MatchesBinaryIndexedTreeStructure)
{
    const auto m = fenwickMatrix(8);
    // Row q covers [q+1-lowbit(q+1), q]: row 0 = {0}, row 1 = {0,1},
    // row 3 = {0,1,2,3}, row 7 = {0..7}, row 4 = {4}.
    EXPECT_TRUE(m.get(1, 0) && m.get(1, 1));
    EXPECT_FALSE(m.get(1, 2));
    for (int c = 0; c < 4; ++c)
        EXPECT_TRUE(m.get(3, c));
    EXPECT_TRUE(m.get(4, 4));
    EXPECT_FALSE(m.get(4, 3));
}

class BaselineValidation
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BaselineValidation, JordanWignerSatisfiesAllConstraints)
{
    const auto v = validateEncoding(jordanWigner(GetParam()));
    EXPECT_TRUE(v.anticommutativity) << v.detail;
    EXPECT_TRUE(v.algebraicIndependence) << v.detail;
    EXPECT_TRUE(v.vacuumPreserving) << v.detail;
    EXPECT_TRUE(v.xyPairing) << v.detail;
}

TEST_P(BaselineValidation, BravyiKitaevSatisfiesAllConstraints)
{
    const auto v = validateEncoding(bravyiKitaev(GetParam()));
    EXPECT_TRUE(v.anticommutativity) << v.detail;
    EXPECT_TRUE(v.algebraicIndependence) << v.detail;
    EXPECT_TRUE(v.vacuumPreserving) << v.detail;
    EXPECT_TRUE(v.xyPairing) << v.detail;
}

TEST_P(BaselineValidation, ParitySatisfiesCoreConstraints)
{
    const auto v = validateEncoding(parity(GetParam()));
    EXPECT_TRUE(v.anticommutativity) << v.detail;
    EXPECT_TRUE(v.algebraicIndependence) << v.detail;
    EXPECT_TRUE(v.vacuumPreserving) << v.detail;
}

TEST_P(BaselineValidation, TernaryTreeCoreConstraints)
{
    const auto v = validateEncoding(ternaryTree(GetParam()));
    EXPECT_TRUE(v.anticommutativity) << v.detail;
    EXPECT_TRUE(v.algebraicIndependence) << v.detail;
}

INSTANTIATE_TEST_SUITE_P(Modes, BaselineValidation,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8,
                                           12, 16));

TEST(TernaryTree, WeightBeatsJordanWignerAtScale)
{
    const auto tt = ternaryTree(16);
    const auto jw = jordanWigner(16);
    EXPECT_LT(tt.totalWeight(), jw.totalWeight());
    // Depth of a balanced ternary tree with 16 nodes is 3-4.
    for (const auto &string : tt.majoranas)
        EXPECT_LE(string.weight(), 4u);
}

TEST(Validator, DetectsCommutingStrings)
{
    FermionEncoding bad;
    bad.modes = 1;
    bad.majoranas = {pauli::PauliString::fromLabel("X"),
                     pauli::PauliString::fromLabel("X")};
    const auto v = validateEncoding(bad);
    EXPECT_FALSE(v.anticommutativity);
    EXPECT_FALSE(v.valid());
}

TEST(Validator, DetectsAlgebraicDependence)
{
    // X, Y, Z on one qubit pairwise anticommute but X*Y*Z ~ I.
    FermionEncoding bad;
    bad.modes = 1; // wrong count triggers early exit, so use 2 modes
    bad.modes = 2;
    bad.majoranas = {pauli::PauliString::fromLabel("IX"),
                     pauli::PauliString::fromLabel("IY"),
                     pauli::PauliString::fromLabel("IZ"),
                     pauli::PauliString::fromLabel("XI")};
    // IX * IY * IZ = i II... but XI commutes with none? XI vs IX
    // commute -> anticommutativity already fails; check dependence
    // via rank directly on the first three plus their product.
    const auto v = validateEncoding(bad);
    EXPECT_FALSE(v.valid());
}

/** Spectrum preservation across encodings and models. */
struct SpectrumCase
{
    const char *name;
    int which; // 0 = JW, 1 = BK, 2 = parity, 3 = ternary tree
};

class SpectrumProperty : public ::testing::TestWithParam<SpectrumCase>
{
  protected:
    static FermionEncoding
    make(int which, std::size_t modes)
    {
        switch (which) {
          case 0: return jordanWigner(modes);
          case 1: return bravyiKitaev(modes);
          case 2: return parity(modes);
          default: return ternaryTree(modes);
        }
    }
};

TEST_P(SpectrumProperty, HubbardSpectrumPreserved)
{
    const auto h = fermion::fermiHubbard1D(2, 1.0, 3.0);
    const auto encoding = make(GetParam().which, h.modes());
    const auto qubit_h = mapToQubits(h, encoding);
    EXPECT_TRUE(qubit_h.isHermitian(1e-9));

    const auto fock = fermion::fockMatrix(h);
    const std::size_t dim = std::size_t{1} << h.modes();
    const auto fock_eigs = sim::eigenvaluesHermitian(fock, dim);
    const auto qubit_eigs =
        sim::eigenvaluesHermitian(sim::denseMatrix(qubit_h), dim);
    ASSERT_EQ(fock_eigs.size(), qubit_eigs.size());
    for (std::size_t i = 0; i < fock_eigs.size(); ++i)
        EXPECT_NEAR(fock_eigs[i], qubit_eigs[i], 1e-8)
            << GetParam().name << " eigenvalue " << i;
}

TEST_P(SpectrumProperty, SykSpectrumPreserved)
{
    Rng rng(99);
    const auto h = fermion::sykModel(3, rng);
    const auto encoding = make(GetParam().which, h.modes());
    const auto qubit_h = mapToQubits(h, encoding);
    EXPECT_TRUE(qubit_h.isHermitian(1e-9));

    const auto fock = fermion::fockMatrix(h);
    const std::size_t dim = std::size_t{1} << h.modes();
    const auto fock_eigs = sim::eigenvaluesHermitian(fock, dim);
    const auto qubit_eigs =
        sim::eigenvaluesHermitian(sim::denseMatrix(qubit_h), dim);
    for (std::size_t i = 0; i < fock_eigs.size(); ++i)
        EXPECT_NEAR(fock_eigs[i], qubit_eigs[i], 1e-8)
            << GetParam().name << " eigenvalue " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Encodings, SpectrumProperty,
    ::testing::Values(SpectrumCase{"jw", 0}, SpectrumCase{"bk", 1},
                      SpectrumCase{"parity", 2},
                      SpectrumCase{"ternary", 3}));

TEST(MapToQubits, PaperTwoModeExample)
{
    // Paper Sec. 2.2.2: h1 a1^dag a1 + h2 a2^dag a2 under JW maps to
    // (h1+h2)/2 II - h1/2 IZ - h2/2 ZI.
    const double h1 = 0.3, h2 = 0.7;
    fermion::FermionHamiltonian hf(2);
    hf.addFermionTerm(h1, {fermion::create(0),
                           fermion::annihilate(0)});
    hf.addFermionTerm(h2, {fermion::create(1),
                           fermion::annihilate(1)});
    const auto mapped = mapToQubits(hf, jordanWigner(2));
    ASSERT_EQ(mapped.size(), 3u);
    for (const auto &term : mapped.terms()) {
        const auto label = term.string.label();
        if (label == "II")
            EXPECT_NEAR(term.coefficient.real(), (h1 + h2) / 2,
                        1e-12);
        else if (label == "IZ")
            EXPECT_NEAR(term.coefficient.real(), -h1 / 2, 1e-12);
        else if (label == "ZI")
            EXPECT_NEAR(term.coefficient.real(), -h2 / 2, 1e-12);
        else
            FAIL() << "unexpected term " << label;
    }
}

TEST(HamiltonianPauliWeight, AgreesAcrossEncodingsOnStructure)
{
    // The Eq. 14 metric must equal multiplicity-weighted product
    // weights; cross-check against a manual computation for JW.
    const auto h = fermion::fermiHubbard1D(2, 1.0, 2.0);
    const auto jw = jordanWigner(2 * 2 / 2 * 2); // 4 modes
    const std::size_t metric = hamiltonianPauliWeight(h, jw);
    std::size_t manual = 0;
    for (const auto &subset : fermion::majoranaStructure(h)) {
        manual += subset.multiplicity *
                  majoranaProduct(jw, subset.mask).weight();
    }
    EXPECT_EQ(metric, manual);
    EXPECT_GT(metric, 0u);
}

TEST(MajoranaProduct, EmptyMaskIsIdentity)
{
    const auto jw = jordanWigner(3);
    EXPECT_TRUE(majoranaProduct(jw, 0).isIdentity());
}

} // namespace
} // namespace fermihedral::enc
