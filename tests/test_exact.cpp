/**
 * @file
 * Tests for dense matrices and the Hermitian eigensolver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "fermion/fock.h"
#include "fermion/models.h"
#include "sim/exact.h"

namespace fermihedral::sim {
namespace {

TEST(DenseMatrix, PauliZMatrix)
{
    pauli::PauliSum sum(1);
    sum.add(1.0, pauli::PauliString::fromLabel("Z"));
    const auto m = denseMatrix(sum);
    EXPECT_NEAR(std::abs(m[0] - 1.0), 0.0, 1e-15);
    EXPECT_NEAR(std::abs(m[3] + 1.0), 0.0, 1e-15);
    EXPECT_NEAR(std::abs(m[1]), 0.0, 1e-15);
}

TEST(DenseMatrix, PauliYMatrixIsComplex)
{
    pauli::PauliSum sum(1);
    sum.add(1.0, pauli::PauliString::fromLabel("Y"));
    const auto m = denseMatrix(sum);
    EXPECT_NEAR(std::abs(m[1] - std::complex<double>(0, -1)), 0.0,
                1e-15);
    EXPECT_NEAR(std::abs(m[2] - std::complex<double>(0, 1)), 0.0,
                1e-15);
}

TEST(Eigensolver, PauliZSpectrum)
{
    pauli::PauliSum sum(1);
    sum.add(1.0, pauli::PauliString::fromLabel("Z"));
    const auto system = eigendecompose(sum);
    ASSERT_EQ(system.values.size(), 2u);
    EXPECT_NEAR(system.values[0], -1.0, 1e-10);
    EXPECT_NEAR(system.values[1], 1.0, 1e-10);
}

TEST(Eigensolver, TransverseFieldPair)
{
    // H = X has eigenvalues -1, +1 with |-> and |+>.
    pauli::PauliSum sum(1);
    sum.add(1.0, pauli::PauliString::fromLabel("X"));
    const auto system = eigendecompose(sum);
    EXPECT_NEAR(system.values[0], -1.0, 1e-10);
    const auto ground = system.state(0);
    // |<-|ground>|^2 = 1 with |-> = (|0> - |1>)/sqrt2.
    EXPECT_NEAR(std::norm(ground.amplitudes()[0] -
                          ground.amplitudes()[1]) /
                    2.0,
                1.0, 1e-9);
}

TEST(Eigensolver, ReconstructsRandomHermitian)
{
    Rng rng(31);
    const std::size_t dim = 8;
    std::vector<Amplitude> m(dim * dim);
    for (std::size_t r = 0; r < dim; ++r) {
        m[r * dim + r] = rng.nextGaussian();
        for (std::size_t c = r + 1; c < dim; ++c) {
            const Amplitude v(rng.nextGaussian(),
                              rng.nextGaussian());
            m[r * dim + c] = v;
            m[c * dim + r] = std::conj(v);
        }
    }
    const auto system = eigendecomposeHermitian(m, dim);

    // Eigenvalues ascending.
    for (std::size_t i = 1; i < dim; ++i)
        EXPECT_LE(system.values[i - 1], system.values[i] + 1e-12);

    // A v = lambda v for every pair.
    for (std::size_t k = 0; k < dim; ++k) {
        for (std::size_t r = 0; r < dim; ++r) {
            Amplitude av{0, 0};
            for (std::size_t c = 0; c < dim; ++c)
                av += m[r * dim + c] * system.vectors[k][c];
            EXPECT_NEAR(std::abs(av - system.values[k] *
                                          system.vectors[k][r]),
                        0.0, 1e-8)
                << "eigenpair " << k << " row " << r;
        }
    }
}

TEST(Eigensolver, TraceEqualsEigenvalueSum)
{
    Rng rng(33);
    pauli::PauliSum sum(3);
    sum.add(0.7, pauli::PauliString::fromLabel("XYZ"));
    sum.add(-0.2, pauli::PauliString::fromLabel("ZZI"));
    sum.add(1.3, pauli::PauliString::fromLabel("III"));
    sum.simplify();
    const auto system = eigendecompose(sum);
    double total = 0.0;
    for (const double v : system.values)
        total += v;
    // Trace = 8 * identity coefficient (Paulis are traceless).
    EXPECT_NEAR(total, 8 * 1.3, 1e-8);
}

TEST(Eigensolver, EigenstatesAreStationary)
{
    // <E_k| H |E_k> = E_k via the StateVector expectation path.
    pauli::PauliSum sum(2);
    sum.add(0.5, pauli::PauliString::fromLabel("XX"));
    sum.add(0.25, pauli::PauliString::fromLabel("ZI"));
    sum.add(-0.75, pauli::PauliString::fromLabel("IZ"));
    sum.simplify();
    const auto system = eigendecompose(sum);
    for (std::size_t k = 0; k < system.values.size(); ++k) {
        const auto state = system.state(k);
        EXPECT_NEAR(state.expectation(sum), system.values[k], 1e-8);
    }
}

TEST(Eigensolver, MatchesFockSpectrumForH2)
{
    const auto h2 = fermion::h2Sto3gIntegrals().toHamiltonian();
    const auto fock = fermion::fockMatrix(h2);
    const auto values = eigenvaluesHermitian(fock, 16);
    EXPECT_NEAR(values.front(), -1.8510, 2e-3);
    // Spectrum is within chemically sensible range.
    EXPECT_LT(values.front(), values.back());
}

TEST(Eigensolver, RejectsNonHermitianInput)
{
    std::vector<Amplitude> m = {0.0, 1.0, 0.0, 0.0}; // upper shift
    EXPECT_THROW(eigendecomposeHermitian(m, 2), PanicError);
}

} // namespace
} // namespace fermihedral::sim
