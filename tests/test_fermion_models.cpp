/**
 * @file
 * Tests for the benchmark Hamiltonian generators.
 *
 * The H2/STO-3G test pins the full-CI electronic ground-state
 * energy to the published value, which validates the second-
 * quantization conventions end to end.
 */

#include <gtest/gtest.h>

#include <complex>

#include "common/logging.h"
#include "common/rng.h"
#include "fermion/fock.h"
#include "fermion/models.h"
#include "sim/exact.h"

namespace fermihedral::fermion {
namespace {

/** Smallest eigenvalue of the Fock matrix of a Hamiltonian. */
double
groundEnergy(const FermionHamiltonian &hamiltonian)
{
    const auto matrix = fockMatrix(hamiltonian);
    const std::size_t dim = std::size_t{1} << hamiltonian.modes();
    return sim::eigenvaluesHermitian(matrix, dim).front();
}

TEST(H2Model, GroundStateEnergyMatchesFullCi)
{
    // Electronic (no nuclear repulsion) FCI energy of H2/STO-3G at
    // 0.7414 A: -1.8510 Ha (total -1.1373 with repulsion 0.7138).
    const auto h2 = h2Sto3gIntegrals().toHamiltonian();
    EXPECT_EQ(h2.modes(), 4u);
    const double e0 = groundEnergy(h2);
    EXPECT_NEAR(e0, -1.8510, 2e-3);
    EXPECT_NEAR(e0 + h2Sto3gNuclearRepulsion(), -1.1373, 2e-3);
}

TEST(H2Model, MatrixIsHermitian)
{
    const auto h2 = h2Sto3gIntegrals().toHamiltonian();
    const auto matrix = fockMatrix(h2);
    const std::size_t dim = 16;
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            EXPECT_LT(std::abs(matrix[r * dim + c] -
                               std::conj(matrix[c * dim + r])),
                      1e-12);
}

TEST(H2Model, ConservesParticleNumber)
{
    const auto h2 = h2Sto3gIntegrals().toHamiltonian();
    const auto matrix = fockMatrix(h2);
    const std::size_t dim = 16;
    for (std::size_t r = 0; r < dim; ++r) {
        for (std::size_t c = 0; c < dim; ++c) {
            if (std::popcount(r) != std::popcount(c)) {
                EXPECT_LT(std::abs(matrix[r * dim + c]), 1e-12)
                    << r << "," << c;
            }
        }
    }
}

TEST(Hubbard, TermCounts1D)
{
    // L-site ring: L edges (1 for L=2), each edge gives 4 hopping
    // terms (2 spins x h.c.), plus L interaction terms.
    const auto ring3 = fermiHubbard1D(3, 1.0, 4.0);
    EXPECT_EQ(ring3.modes(), 6u);
    EXPECT_EQ(ring3.fermionTerms().size(), 3u * 4u + 3u);

    const auto ring2 = fermiHubbard1D(2, 1.0, 4.0);
    EXPECT_EQ(ring2.fermionTerms().size(), 1u * 4u + 2u);
}

TEST(Hubbard, TermCounts2x2)
{
    const auto torus = fermiHubbard2x2(1.0, 4.0);
    EXPECT_EQ(torus.modes(), 8u);
    EXPECT_EQ(torus.fermionTerms().size(), 4u * 4u + 4u);
}

TEST(Hubbard, SpectrumOfTwoSites)
{
    // Two-site Hubbard: the global Fock ground energy is the
    // minimum of the 1-electron bonding energy -t and the
    // 2-electron singlet energy U/2 - sqrt((U/2)^2 + 4 t^2).
    for (const double u : {1.0, 4.0}) {
        const double t = 1.0;
        const auto h = fermiHubbard1D(2, t, u);
        const double e0 = groundEnergy(h);
        const double singlet =
            u / 2.0 -
            std::sqrt((u / 2.0) * (u / 2.0) + 4.0 * t * t);
        EXPECT_NEAR(e0, std::min(-t, singlet), 1e-9) << "U=" << u;
    }
}

TEST(Hubbard, ConservesParticleNumber)
{
    const auto h = fermiHubbard1D(3, 1.0, 2.0);
    const auto matrix = fockMatrix(h);
    const std::size_t dim = std::size_t{1} << h.modes();
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            if (std::popcount(r) != std::popcount(c)) {
                EXPECT_LT(std::abs(matrix[r * dim + c]), 1e-12);
            }
}

TEST(Syk, TermCountIsChoose4)
{
    Rng rng(1);
    const auto syk3 = sykModel(3, rng); // 6 Majoranas
    EXPECT_EQ(syk3.majoranaTerms().size(), 15u); // C(6,4)
    Rng rng2(2);
    const auto syk5 = sykModel(5, rng2); // 10 Majoranas
    EXPECT_EQ(syk5.majoranaTerms().size(), 210u); // C(10,4)
}

TEST(Syk, DeterministicInSeed)
{
    Rng a(7), b(7);
    const auto first = sykModel(3, a);
    const auto second = sykModel(3, b);
    ASSERT_EQ(first.majoranaTerms().size(),
              second.majoranaTerms().size());
    for (std::size_t i = 0; i < first.majoranaTerms().size(); ++i) {
        EXPECT_DOUBLE_EQ(first.majoranaTerms()[i].coefficient,
                         second.majoranaTerms()[i].coefficient);
    }
}

TEST(Syk, MatrixIsHermitian)
{
    Rng rng(3);
    const auto syk = sykModel(3, rng);
    const auto matrix = fockMatrix(syk);
    const std::size_t dim = std::size_t{1} << syk.modes();
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            EXPECT_LT(std::abs(matrix[r * dim + c] -
                               std::conj(matrix[c * dim + r])),
                      1e-9);
}

TEST(SyntheticElectronic, HasDenseTermStructure)
{
    Rng rng(11);
    const auto h = syntheticElectronicStructure(6, rng);
    EXPECT_EQ(h.modes(), 6u);
    // One-body: 3x3 orbital pairs x 2 spins; two-body: nonzero.
    EXPECT_GT(h.fermionTerms().size(), 50u);
    const auto matrix = fockMatrix(h);
    const std::size_t dim = 64;
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            EXPECT_LT(std::abs(matrix[r * dim + c] -
                               std::conj(matrix[c * dim + r])),
                      1e-9);
}

TEST(SyntheticElectronic, RequiresEvenModes)
{
    Rng rng(1);
    EXPECT_THROW(syntheticElectronicStructure(5, rng), PanicError);
}

} // namespace
} // namespace fermihedral::fermion
