/**
 * @file
 * Tests for Fermionic operator algebra and Majorana expansion.
 *
 * Correctness anchor: the Majorana expansion of a term, evaluated
 * through the exact Fock-space Majorana action, must reproduce the
 * direct Fock-space action of the creation/annihilation product.
 */

#include <gtest/gtest.h>

#include <bit>
#include <complex>

#include "common/logging.h"
#include "common/rng.h"
#include "fermion/fock.h"
#include "fermion/operators.h"

namespace fermihedral::fermion {
namespace {

using Amp = std::complex<double>;

TEST(MajoranaReduce, EmptySequence)
{
    const auto [mask, sign] = reduceMajoranaSequence({});
    EXPECT_EQ(mask, 0u);
    EXPECT_EQ(sign, 1);
}

TEST(MajoranaReduce, SquareIsIdentity)
{
    const std::uint32_t seq[] = {3, 3};
    const auto [mask, sign] = reduceMajoranaSequence(seq);
    EXPECT_EQ(mask, 0u);
    EXPECT_EQ(sign, 1);
}

TEST(MajoranaReduce, SwapFlipsSign)
{
    const std::uint32_t seq[] = {2, 1};
    const auto [mask, sign] = reduceMajoranaSequence(seq);
    EXPECT_EQ(mask, 0b110u);
    EXPECT_EQ(sign, -1);
}

TEST(MajoranaReduce, SandwichedPairPicksUpSign)
{
    // g1 g2 g1 = -g1 g1 g2 = -g2.
    const std::uint32_t seq[] = {1, 2, 1};
    const auto [mask, sign] = reduceMajoranaSequence(seq);
    EXPECT_EQ(mask, 0b100u);
    EXPECT_EQ(sign, -1);
}

TEST(MajoranaReduce, LongerPermutationParity)
{
    // (3,2,1,0): 6 inversions -> even -> +1.
    const std::uint32_t seq[] = {3, 2, 1, 0};
    const auto [mask, sign] = reduceMajoranaSequence(seq);
    EXPECT_EQ(mask, 0b1111u);
    EXPECT_EQ(sign, 1);
}

TEST(ExpandFermionTerm, NumberOperatorStructure)
{
    // a^dag_0 a_0 = (I - i g0 g1 ... ) /
    //   expansion: 1/2 (I + i g0 g1) with our convention.
    FermionTerm term{1.0, {create(0), annihilate(0)}};
    const auto monomials = expandFermionTerm(term);
    ASSERT_EQ(monomials.size(), 4u);
    Amp identity{0, 0}, pair{0, 0};
    for (const auto &mono : monomials) {
        if (mono.mask == 0)
            identity += mono.coefficient;
        else if (mono.mask == 0b11)
            pair += mono.coefficient;
        else
            FAIL() << "unexpected mask " << mono.mask;
    }
    EXPECT_NEAR(std::abs(identity - Amp{0.5, 0.0}), 0.0, 1e-12);
    // a^dag a = (g0 - i g1)(g0 + i g1)/4 = (2I + i g0 g1 - i g1 g0)/4
    //         = 1/2 I + i/2 g0 g1.
    EXPECT_NEAR(std::abs(pair - Amp{0.0, 0.5}), 0.0, 1e-12);
}

TEST(ExpandFermionTerm, CountsArePowersOfTwo)
{
    FermionTerm quad{0.5,
                     {create(0), create(1), annihilate(2),
                      annihilate(3)}};
    EXPECT_EQ(expandFermionTerm(quad).size(), 16u);
}

/**
 * Property: the Majorana expansion reproduces the operator exactly
 * on every Fock basis state.
 */
class ExpansionProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ExpansionProperty, MatchesFockAction)
{
    const int modes = 3;
    const int seed = GetParam();
    Rng rng(seed);

    // Random term with 1..4 distinct-mode operators.
    const int num_ops = 1 + static_cast<int>(rng.nextBelow(4));
    std::vector<FermionOp> ops;
    for (int i = 0; i < num_ops; ++i) {
        ops.push_back(FermionOp{
            static_cast<std::uint32_t>(rng.nextBelow(modes)),
            rng.nextBool()});
    }
    FermionTerm term{1.0, ops};
    const auto monomials = expandFermionTerm(term);

    const std::size_t dim = std::size_t{1} << modes;
    for (std::uint64_t basis = 0; basis < dim; ++basis) {
        // Direct action.
        std::vector<Amp> direct(dim, Amp{0, 0});
        if (const auto image = applyFermionOps(term.ops, basis))
            direct[image->bits] += image->sign;

        // Expanded action.
        std::vector<Amp> expanded(dim, Amp{0, 0});
        for (const auto &mono : monomials) {
            std::vector<std::uint32_t> indices;
            for (int i = 0; i < 64; ++i) {
                if ((mono.mask >> i) & 1)
                    indices.push_back(i);
            }
            const auto image = applyMajoranaOps(indices, basis);
            expanded[image.bits] += mono.coefficient *
                                    image.amplitude;
        }

        for (std::uint64_t row = 0; row < dim; ++row) {
            EXPECT_LT(std::abs(direct[row] - expanded[row]), 1e-12)
                << "basis " << basis << " row " << row;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpansionProperty,
                         ::testing::Range(0, 25));

TEST(MajoranaStructure, NumberOperatorHasPairSubset)
{
    FermionHamiltonian h(2);
    h.addFermionTerm(1.0, {create(0), annihilate(0)});
    const auto structure = majoranaStructure(h);
    ASSERT_EQ(structure.size(), 1u);
    EXPECT_EQ(structure[0].mask, 0b11u);
    EXPECT_EQ(structure[0].multiplicity, 2u);
}

TEST(MajoranaStructure, HoppingTermSubsets)
{
    // a^dag_0 a_1 expands over {g0,g1} x {g2,g3}: four products of
    // two distinct-mode Majoranas, all with multiplicity 1.
    FermionHamiltonian h(2);
    h.addFermionTerm(1.0, {create(0), annihilate(1)});
    const auto structure = majoranaStructure(h);
    ASSERT_EQ(structure.size(), 4u);
    for (const auto &subset : structure) {
        EXPECT_EQ(std::popcount(subset.mask), 2);
        EXPECT_EQ(subset.multiplicity, 1u);
    }
}

TEST(MajoranaStructure, MajoranaTermsPassThrough)
{
    FermionHamiltonian h(3);
    h.addMajoranaTerm(0.25, {0, 1, 2, 3});
    h.addMajoranaTerm(0.5, {3, 2, 1, 0}); // same subset, reordered
    const auto structure = majoranaStructure(h);
    ASSERT_EQ(structure.size(), 1u);
    EXPECT_EQ(structure[0].mask, 0b1111u);
    EXPECT_EQ(structure[0].multiplicity, 2u);
}

TEST(FermionHamiltonian, RejectsOutOfRangeModes)
{
    FermionHamiltonian h(2);
    EXPECT_THROW(h.addFermionTerm(1.0, {create(5)}), PanicError);
    EXPECT_THROW(h.addMajoranaTerm(1.0, {7}), PanicError);
}

TEST(FockMatrix, AnticommutatorOfMajoranas)
{
    // {g_i, g_j} = 2 delta_ij on the full Fock space.
    const int modes = 3;
    const std::size_t dim = std::size_t{1} << modes;
    for (std::uint32_t i = 0; i < 2 * modes; ++i) {
        for (std::uint32_t j = i; j < 2 * modes; ++j) {
            for (std::uint64_t basis = 0; basis < dim; ++basis) {
                const std::uint32_t ij[] = {i, j};
                const std::uint32_t ji[] = {j, i};
                const auto a = applyMajoranaOps(ij, basis);
                const auto b = applyMajoranaOps(ji, basis);
                Amp sum{0, 0};
                if (a.bits == basis)
                    sum += a.amplitude;
                if (b.bits == basis)
                    sum += b.amplitude;
                // Off-diagonal images must cancel pairwise.
                if (a.bits != basis) {
                    EXPECT_LT(std::abs(a.amplitude + b.amplitude),
                              1e-12);
                } else {
                    const double expected = i == j ? 2.0 : 0.0;
                    EXPECT_LT(std::abs(sum - expected), 1e-12);
                }
            }
        }
    }
}

} // namespace
} // namespace fermihedral::fermion
