/**
 * @file
 * Unit tests for the CLI flag parser and the table renderer.
 */

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/logging.h"
#include "common/suggest.h"
#include "common/table.h"

namespace fermihedral {
namespace {

TEST(Flags, DefaultsSurviveEmptyArgv)
{
    FlagSet flags("test");
    auto *modes = flags.addInt("modes", 6, "mode count");
    auto *noise = flags.addDouble("noise", 0.01, "error rate");
    auto *fast = flags.addBool("fast", false, "skip slow parts");
    char prog[] = "prog";
    char *argv[] = {prog};
    EXPECT_TRUE(flags.parse(1, argv));
    EXPECT_EQ(*modes, 6);
    EXPECT_DOUBLE_EQ(*noise, 0.01);
    EXPECT_FALSE(*fast);
}

TEST(Flags, EqualsAndSpaceSyntax)
{
    FlagSet flags("test");
    auto *modes = flags.addInt("modes", 6, "mode count");
    auto *name = flags.addString("name", "bk", "encoding name");
    char prog[] = "prog";
    char a1[] = "--modes=12";
    char a2[] = "--name";
    char a3[] = "jw";
    char *argv[] = {prog, a1, a2, a3};
    EXPECT_TRUE(flags.parse(4, argv));
    EXPECT_EQ(*modes, 12);
    EXPECT_EQ(*name, "jw");
}

TEST(Flags, BoolByPresenceAndValue)
{
    FlagSet flags("test");
    auto *fast = flags.addBool("fast", false, "");
    auto *slow = flags.addBool("slow", true, "");
    char prog[] = "prog";
    char a1[] = "--fast";
    char a2[] = "--slow=false";
    char *argv[] = {prog, a1, a2};
    EXPECT_TRUE(flags.parse(3, argv));
    EXPECT_TRUE(*fast);
    EXPECT_FALSE(*slow);
}

TEST(Flags, HelpReturnsFalse)
{
    FlagSet flags("test tool");
    flags.addInt("modes", 6, "mode count");
    char prog[] = "prog";
    char a1[] = "--help";
    char *argv[] = {prog, a1};
    EXPECT_FALSE(flags.parse(2, argv));
    EXPECT_NE(flags.usage().find("--modes"), std::string::npos);
}

TEST(Flags, UnknownFlagIsFatal)
{
    FlagSet flags("test");
    char prog[] = "prog";
    char a1[] = "--nonsense";
    char *argv[] = {prog, a1};
    EXPECT_THROW(flags.parse(2, argv), FatalError);
}

TEST(Flags, UnknownFlagSuggestsNearestName)
{
    FlagSet flags("test");
    flags.addInt("modes", 6, "mode count");
    flags.addInt("timeout", 30, "budget");
    char prog[] = "prog";
    char a1[] = "--mdoes=4"; // transposition: distance 2
    char *argv[] = {prog, a1};
    try {
        flags.parse(2, argv);
        FAIL() << "expected FatalError";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what())
                      .find("did you mean '--modes'"),
                  std::string::npos)
            << error.what();
    }
}

TEST(Flags, UnknownFlagFarFromEverythingGetsNoSuggestion)
{
    FlagSet flags("test");
    flags.addInt("modes", 6, "mode count");
    char prog[] = "prog";
    char a1[] = "--qqqqqqqq";
    char *argv[] = {prog, a1};
    try {
        flags.parse(2, argv);
        FAIL() << "expected FatalError";
    } catch (const FatalError &error) {
        const std::string what = error.what();
        EXPECT_EQ(what.find("did you mean"), std::string::npos);
        EXPECT_NE(what.find("try --help"), std::string::npos);
    }
}

TEST(Suggest, EditDistanceIsExactLevenshtein)
{
    EXPECT_EQ(editDistance("", ""), 0u);
    EXPECT_EQ(editDistance("abc", "abc"), 0u);
    EXPECT_EQ(editDistance("abc", ""), 3u);
    EXPECT_EQ(editDistance("", "abc"), 3u);
    EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
    EXPECT_EQ(editDistance("modes", "mdoes"), 2u);
    EXPECT_EQ(editDistance("sat-noalg", "sat-noalgo"), 1u);
}

TEST(Suggest, NearestRespectsTheDistanceCap)
{
    const std::vector<std::string> names = {"modes", "timeout",
                                            "threads"};
    EXPECT_EQ(suggestNearest("mode", names).value_or(""), "modes");
    EXPECT_EQ(suggestNearest("threds", names).value_or(""),
              "threads");
    EXPECT_FALSE(suggestNearest("zzzz", names).has_value());
    EXPECT_FALSE(suggestNearest("mo", names).has_value());
}

TEST(Table, RendersAlignedColumns)
{
    Table table({"Case", "N", "Value"});
    table.addRow({"Hubbard", "4", "90"});
    table.addRow({"SYK", "10", "55208"});
    const std::string out = table.render();
    EXPECT_NE(out.find("| Hubbard"), std::string::npos);
    EXPECT_NE(out.find("| 55208"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(Table, CsvHasNoPadding)
{
    Table table({"a", "b"});
    table.addRow({"1", "2"});
    EXPECT_EQ(table.renderCsv(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchPanics)
{
    Table table({"a", "b"});
    EXPECT_THROW(table.addRow({"1"}), PanicError);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(std::int64_t{42}), "42");
    EXPECT_EQ(Table::percent(0.2361, 2), "23.61%");
    EXPECT_EQ(Table::percent(-0.0578, 2), "-5.78%");
}

} // namespace
} // namespace fermihedral
