/**
 * @file
 * Tests for the Tseitin formula builder and the capped totalizer.
 *
 * Gate semantics are verified by enumerating input assignments via
 * solver assumptions; totalizer bounds are verified by model
 * counting against binomial expectations.
 */

#include <gtest/gtest.h>

#include <bit>
#include <numeric>
#include <vector>

#include "sat/formula.h"
#include "sat/solver.h"
#include "sat/totalizer.h"

namespace fermihedral::sat {
namespace {

/** Force the inputs to a fixed assignment through assumptions. */
std::vector<Lit>
assume(const std::vector<Lit> &inputs, std::uint64_t bits)
{
    std::vector<Lit> assumptions;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const bool value = (bits >> i) & 1;
        assumptions.push_back(value ? inputs[i] : ~inputs[i]);
    }
    return assumptions;
}

TEST(Formula, AndGateTruthTable)
{
    for (std::uint64_t bits = 0; bits < 8; ++bits) {
        Solver solver;
        Formula formula(solver);
        std::vector<Lit> in = {formula.newLit(), formula.newLit(),
                               formula.newLit()};
        const Lit y = formula.mkAnd(in);
        auto assumptions = assume(in, bits);
        assumptions.push_back(bits == 7 ? y : ~y);
        EXPECT_EQ(solver.solve(assumptions), SolveStatus::Sat);
        // The opposite output value must be impossible.
        assumptions.back() = ~assumptions.back();
        EXPECT_EQ(solver.solve(assumptions), SolveStatus::Unsat);
    }
}

TEST(Formula, OrGateTruthTable)
{
    for (std::uint64_t bits = 0; bits < 8; ++bits) {
        Solver solver;
        Formula formula(solver);
        std::vector<Lit> in = {formula.newLit(), formula.newLit(),
                               formula.newLit()};
        const Lit y = formula.mkOr(in);
        auto assumptions = assume(in, bits);
        assumptions.push_back(bits != 0 ? y : ~y);
        EXPECT_EQ(solver.solve(assumptions), SolveStatus::Sat);
        assumptions.back() = ~assumptions.back();
        EXPECT_EQ(solver.solve(assumptions), SolveStatus::Unsat);
    }
}

TEST(Formula, XorGateTruthTable)
{
    for (std::uint64_t bits = 0; bits < 4; ++bits) {
        Solver solver;
        Formula formula(solver);
        const Lit a = formula.newLit();
        const Lit b = formula.newLit();
        const Lit y = formula.mkXor(a, b);
        const bool expected = ((bits & 1) ^ ((bits >> 1) & 1)) != 0;
        auto assumptions = assume({a, b}, bits);
        assumptions.push_back(expected ? y : ~y);
        EXPECT_EQ(solver.solve(assumptions), SolveStatus::Sat);
        assumptions.back() = ~assumptions.back();
        EXPECT_EQ(solver.solve(assumptions), SolveStatus::Unsat);
    }
}

TEST(Formula, XorChainParity)
{
    for (std::uint64_t bits = 0; bits < 32; ++bits) {
        Solver solver;
        Formula formula(solver);
        std::vector<Lit> in;
        for (int i = 0; i < 5; ++i)
            in.push_back(formula.newLit());
        const Lit y = formula.mkXorChain(in);
        const bool parity = std::popcount(bits) % 2 == 1;
        auto assumptions = assume(in, bits);
        assumptions.push_back(parity ? y : ~y);
        EXPECT_EQ(solver.solve(assumptions), SolveStatus::Sat);
    }
}

TEST(Formula, AssertXorEqualsFiltersParity)
{
    for (const bool target : {false, true}) {
        Solver solver;
        Formula formula(solver);
        std::vector<Lit> in;
        for (int i = 0; i < 4; ++i)
            in.push_back(formula.newLit());
        formula.assertXorEquals(in, target);
        for (std::uint64_t bits = 0; bits < 16; ++bits) {
            const bool parity = std::popcount(bits) % 2 == 1;
            const auto status = solver.solve(assume(in, bits));
            EXPECT_EQ(status, parity == target
                                  ? SolveStatus::Sat
                                  : SolveStatus::Unsat)
                << "bits=" << bits << " target=" << target;
        }
    }
}

TEST(Formula, ConstantsBehave)
{
    Solver solver;
    Formula formula(solver);
    const Lit t = formula.trueLit();
    const Lit f = formula.falseLit();
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(t), LBool::True);
    EXPECT_EQ(solver.modelValue(f), LBool::False);
}

TEST(Formula, EmptyGateEdgeCases)
{
    Solver solver;
    Formula formula(solver);
    const Lit empty_and = formula.mkAnd(std::span<const Lit>{});
    const Lit empty_or = formula.mkOr(std::span<const Lit>{});
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(empty_and), LBool::True);
    EXPECT_EQ(solver.modelValue(empty_or), LBool::False);
}

/** Totalizer bound property over (inputs, cap, bound) sweeps. */
struct TotalizerParam
{
    int inputs;
    int bound;
};

class TotalizerProperty
    : public ::testing::TestWithParam<TotalizerParam>
{
};

TEST_P(TotalizerProperty, BoundAdmitsExactlyLowAssignments)
{
    const auto param = GetParam();
    Solver solver;
    Formula formula(solver);
    std::vector<Lit> in;
    for (int i = 0; i < param.inputs; ++i)
        in.push_back(formula.newLit());
    Totalizer totalizer(solver, in, param.bound);
    totalizer.boundAtMost(param.bound);

    for (std::uint64_t bits = 0;
         bits < (std::uint64_t{1} << param.inputs); ++bits) {
        const int count = std::popcount(bits);
        const auto status = solver.solve(assume(in, bits));
        EXPECT_EQ(status, count <= param.bound
                              ? SolveStatus::Sat
                              : SolveStatus::Unsat)
            << "bits=" << bits;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TotalizerProperty,
    ::testing::Values(TotalizerParam{1, 0}, TotalizerParam{4, 0},
                      TotalizerParam{4, 2}, TotalizerParam{5, 1},
                      TotalizerParam{6, 3}, TotalizerParam{7, 5},
                      TotalizerParam{8, 4}, TotalizerParam{9, 2},
                      TotalizerParam{10, 7}));

TEST(Totalizer, AtLeastOutputsAreImplied)
{
    // With k inputs forced true, atLeast(j) must hold for j <= k.
    const int n = 6;
    Solver solver;
    Formula formula(solver);
    std::vector<Lit> in;
    for (int i = 0; i < n; ++i)
        in.push_back(formula.newLit());
    Totalizer totalizer(solver, in, n);
    for (int k = 1; k <= n; ++k) {
        std::vector<Lit> assumptions =
            assume(in, (std::uint64_t{1} << k) - 1);
        for (int j = 1; j <= k; ++j)
            assumptions.push_back(~totalizer.atLeast(j));
        // Asserting NOT atLeast(j) for satisfied j conflicts.
        EXPECT_EQ(solver.solve(assumptions), SolveStatus::Unsat)
            << "k=" << k;
    }
}

TEST(Totalizer, IncrementalTightening)
{
    const int n = 8;
    Solver solver;
    Formula formula(solver);
    std::vector<Lit> in;
    for (int i = 0; i < n; ++i)
        in.push_back(formula.newLit());
    Totalizer totalizer(solver, in, n);

    // Require at least 3 true inputs via plain clauses: x0..x2 = 1.
    for (int i = 0; i < 3; ++i)
        solver.addUnit(in[i]);

    for (int bound = n; bound >= 3; --bound) {
        totalizer.boundAtMost(bound);
        EXPECT_EQ(solver.solve(), SolveStatus::Sat)
            << "bound=" << bound;
    }
    totalizer.boundAtMost(2);
    EXPECT_EQ(solver.solve(), SolveStatus::Unsat);
}

TEST(Totalizer, CapSaturatesAboveBound)
{
    // A cap below the input count must still forbid sums > cap.
    const int n = 10, cap = 3;
    Solver solver;
    Formula formula(solver);
    std::vector<Lit> in;
    for (int i = 0; i < n; ++i)
        in.push_back(formula.newLit());
    Totalizer totalizer(solver, in, cap);
    totalizer.boundAtMost(cap);
    // 4 forced-true inputs exceed the bound.
    std::vector<Lit> assumptions;
    for (int i = 0; i < 4; ++i)
        assumptions.push_back(in[i]);
    EXPECT_EQ(solver.solve(assumptions), SolveStatus::Unsat);
    assumptions.pop_back();
    EXPECT_EQ(solver.solve(assumptions), SolveStatus::Sat);
}

} // namespace
} // namespace fermihedral::sat
