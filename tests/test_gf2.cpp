/**
 * @file
 * Unit tests for GF(2) linear algebra.
 */

#include <gtest/gtest.h>

#include "common/gf2.h"
#include "common/rng.h"

namespace fermihedral {
namespace {

TEST(BitVector, SetGetFlip)
{
    BitVector v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.isZero());
    v.set(0, true);
    v.set(129, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(129));
    EXPECT_FALSE(v.get(64));
    EXPECT_EQ(v.popcount(), 2u);
    v.flip(129);
    EXPECT_FALSE(v.get(129));
    EXPECT_EQ(v.popcount(), 1u);
}

TEST(BitVector, XorIsElementwise)
{
    BitVector a(70), b(70);
    a.set(3, true);
    a.set(69, true);
    b.set(3, true);
    b.set(42, true);
    a ^= b;
    EXPECT_FALSE(a.get(3));
    EXPECT_TRUE(a.get(42));
    EXPECT_TRUE(a.get(69));
}

TEST(BitMatrix, IdentityActsTrivially)
{
    const auto id = BitMatrix::identity(8);
    BitVector v(8);
    v.set(2, true);
    v.set(7, true);
    EXPECT_EQ(id.multiply(v), v);
    EXPECT_EQ(id.rank(), 8u);
}

TEST(BitMatrix, InverseOfIdentityIsIdentity)
{
    const auto id = BitMatrix::identity(5);
    const auto inv = id.inverse();
    ASSERT_TRUE(inv.has_value());
    for (std::size_t r = 0; r < 5; ++r)
        for (std::size_t c = 0; c < 5; ++c)
            EXPECT_EQ(inv->get(r, c), r == c);
}

TEST(BitMatrix, SingularMatrixHasNoInverse)
{
    BitMatrix m(3, 3);
    m.set(0, 0, true);
    m.set(1, 0, true); // duplicate column pattern
    EXPECT_FALSE(m.inverse().has_value());
    EXPECT_LT(m.rank(), 3u);
}

TEST(BitMatrix, RankOfDependentRows)
{
    BitMatrix m(3, 4);
    m.set(0, 0, true);
    m.set(0, 1, true);
    m.set(1, 1, true);
    m.set(1, 2, true);
    // Row 2 = row 0 xor row 1.
    m.set(2, 0, true);
    m.set(2, 2, true);
    EXPECT_EQ(m.rank(), 2u);
}

TEST(BitMatrix, TransposeRoundTrip)
{
    Rng rng(5);
    BitMatrix m(6, 9);
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < 9; ++c)
            m.set(r, c, rng.nextBool());
    const auto t = m.transposed();
    ASSERT_EQ(t.rows(), 9u);
    ASSERT_EQ(t.cols(), 6u);
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < 9; ++c)
            EXPECT_EQ(m.get(r, c), t.get(c, r));
}

/** Property: A * A^{-1} = I for random invertible matrices. */
class Gf2InverseProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(Gf2InverseProperty, InverseMultipliesToIdentity)
{
    const int n = GetParam();
    Rng rng(1000 + n);
    // Random invertible matrix: start from identity and apply row
    // operations, which preserve invertibility.
    BitMatrix m = BitMatrix::identity(n);
    for (int step = 0; step < 5 * n; ++step) {
        const auto a = rng.nextBelow(n);
        const auto b = rng.nextBelow(n);
        if (a != b)
            m.row(a) ^= m.row(b);
    }
    const auto inv = m.inverse();
    ASSERT_TRUE(inv.has_value());

    // Check A * (A^{-1} e_c) = e_c for every unit vector.
    for (int c = 0; c < n; ++c) {
        BitVector unit(n);
        unit.set(c, true);
        const BitVector x = inv->multiply(unit);
        const BitVector back = m.multiply(x);
        EXPECT_EQ(back, unit) << "column " << c;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Gf2InverseProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21,
                                           32));

} // namespace
} // namespace fermihedral
