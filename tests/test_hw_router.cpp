/**
 * @file
 * hw/router.h fuzz tests: routed circuits must implement the same
 * unitary as their logical input up to the reported final wire
 * permutation (checked against the dense statevector simulator),
 * place every CNOT on a topology edge, obey the
 * twoQubitGates == CNOTs + 3 * swaps accounting, and be
 * deterministic for equal (circuit, topology, options).
 */

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "common/logging.h"
#include "common/rng.h"
#include "hw/router.h"
#include "sim/statevector.h"

namespace fermihedral::hw {
namespace {

/** Random connected topology: spanning tree plus extra edges. */
Topology
randomConnected(std::size_t n, Rng &rng)
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    for (std::uint32_t q = 1; q < n; ++q)
        edges.push_back(
            {static_cast<std::uint32_t>(rng.nextBelow(q)), q});
    const std::size_t extra = rng.nextBelow(n);
    for (std::size_t i = 0; i < extra; ++i) {
        const auto a =
            static_cast<std::uint32_t>(rng.nextBelow(n));
        const auto b =
            static_cast<std::uint32_t>(rng.nextBelow(n));
        if (a != b)
            edges.push_back({std::min(a, b), std::max(a, b)});
    }
    return Topology::fromEdges(n, std::move(edges));
}

/** Random circuit over the compiler's gate set. */
circuit::Circuit
randomCircuit(std::size_t wires, std::size_t gates, Rng &rng)
{
    circuit::Circuit c(wires);
    for (std::size_t i = 0; i < gates; ++i) {
        const auto q =
            static_cast<std::uint32_t>(rng.nextBelow(wires));
        switch (rng.nextBelow(wires >= 2 ? 5 : 4)) {
        case 0:
            c.add(circuit::GateKind::H, q);
            break;
        case 1:
            c.add(circuit::GateKind::S, q);
            break;
        case 2:
            c.add(circuit::GateKind::Rz, q,
                  0.1 + 0.2 * static_cast<double>(
                                  rng.nextBelow(7)));
            break;
        case 3:
            c.add(circuit::GateKind::X, q);
            break;
        default: {
            auto t = static_cast<std::uint32_t>(
                rng.nextBelow(wires - 1));
            if (t >= q)
                ++t;
            c.addCnot(q, t);
            break;
        }
        }
    }
    return c;
}

/**
 * ||routed - logical|| up to the final permutation: the routed
 * state's amplitude at the index with wire w's bit moved to
 * physical qubit finalLayout[w] must match the (width-extended)
 * logical state's amplitude for wire index l.
 */
void
expectPermutationEquivalent(const circuit::Circuit &logical,
                            const Topology &topology,
                            const RoutedCircuit &routed,
                            std::uint64_t initial_bits)
{
    const std::size_t n = topology.numQubits();
    // The logical reference: same gates on an n-wide register
    // (extra wires idle), starting from the same basis state.
    circuit::Circuit widened(n);
    for (const auto &gate : logical.gates()) {
        if (circuit::isTwoQubit(gate.kind))
            widened.addCnot(gate.qubit0, gate.qubit1);
        else
            widened.add(gate.kind, gate.qubit0, gate.angle);
    }
    sim::StateVector reference(n);
    reference.setBasisState(initial_bits);
    reference.applyCircuit(widened);

    sim::StateVector physical(n);
    physical.setBasisState(initial_bits);
    physical.applyCircuit(routed.physical);

    ASSERT_EQ(routed.finalLayout.size(), n);
    for (std::uint64_t l = 0; l < reference.dimension(); ++l) {
        std::uint64_t p = 0;
        for (std::size_t w = 0; w < n; ++w)
            if ((l >> w) & 1)
                p |= std::uint64_t(1) << routed.finalLayout[w];
        const auto want = reference.amplitudes()[l];
        const auto got = physical.amplitudes()[p];
        ASSERT_NEAR(want.real(), got.real(), 1e-9);
        ASSERT_NEAR(want.imag(), got.imag(), 1e-9);
    }
}

TEST(Router, FuzzedCircuitsRoutePermutationEquivalent)
{
    Rng rng(20260807);
    for (int iteration = 0; iteration < 60; ++iteration) {
        const std::size_t n = 2 + rng.nextBelow(7);
        const auto topology = randomConnected(n, rng);
        if (!topology.connected())
            continue;
        const std::size_t wires = 1 + rng.nextBelow(n);
        const auto logical = randomCircuit(
            wires, 5 + rng.nextBelow(26), rng);

        RouterOptions options;
        options.lookahead = rng.nextBelow(10);
        options.seed = rng.nextBelow(1000);
        const auto routed =
            routeCircuit(logical, topology, options);

        // Edge legality: every routed CNOT acts on an edge.
        for (const auto &gate : routed.physical.gates())
            if (circuit::isTwoQubit(gate.kind))
                ASSERT_TRUE(
                    topology.hasEdge(gate.qubit0, gate.qubit1))
                    << "CNOT " << gate.qubit0 << "," << gate.qubit1;

        // Accounting: 3 extra CNOTs per SWAP, nothing else.
        EXPECT_EQ(routed.stats.twoQubitGates,
                  logical.costs().cnotGates +
                      3 * routed.stats.swaps);
        EXPECT_EQ(routed.stats.twoQubitGates,
                  routed.physical.costs().cnotGates);
        EXPECT_EQ(routed.stats.depth,
                  routed.physical.costs().depth);

        // The initial layout is the identity.
        for (std::uint32_t w = 0; w < n; ++w)
            ASSERT_EQ(routed.initialLayout[w], w);

        // Unitary equivalence from |0..0> and a random basis state.
        expectPermutationEquivalent(logical, topology, routed, 0);
        expectPermutationEquivalent(
            logical, topology, routed,
            rng.nextBelow(std::uint64_t(1) << n));
    }
}

TEST(Router, EqualInputsRouteIdentically)
{
    Rng rng(7);
    for (int iteration = 0; iteration < 10; ++iteration) {
        const std::size_t n = 3 + rng.nextBelow(5);
        const auto topology = randomConnected(n, rng);
        const auto logical = randomCircuit(n, 25, rng);
        RouterOptions options;
        options.seed = iteration;

        const auto first = routeCircuit(logical, topology, options);
        const auto second =
            routeCircuit(logical, topology, options);
        ASSERT_EQ(first.physical.size(), second.physical.size());
        for (std::size_t i = 0; i < first.physical.size(); ++i) {
            const auto &a = first.physical.gates()[i];
            const auto &b = second.physical.gates()[i];
            EXPECT_EQ(a.kind, b.kind);
            EXPECT_EQ(a.qubit0, b.qubit0);
            EXPECT_EQ(a.qubit1, b.qubit1);
            EXPECT_EQ(a.angle, b.angle);
        }
        EXPECT_EQ(first.finalLayout, second.finalLayout);
    }
}

TEST(Router, DistanceTwoCnotCostsOneSwap)
{
    circuit::Circuit logical(3);
    logical.addCnot(0, 2);
    const auto routed =
        routeCircuit(logical, Topology::linear(3), {});
    EXPECT_EQ(routed.stats.swaps, 1u);
    EXPECT_EQ(routed.stats.twoQubitGates, 4u);
    expectPermutationEquivalent(logical, Topology::linear(3),
                                routed, 0);
    expectPermutationEquivalent(logical, Topology::linear(3),
                                routed, 0b101);
}

TEST(Router, AdjacentCircuitsRouteSwapFree)
{
    // Everything already nearest-neighbour: the router must not
    // insert a single SWAP and the gate list is the input's.
    circuit::Circuit logical(4);
    logical.add(circuit::GateKind::H, 0);
    logical.addCnot(0, 1);
    logical.addCnot(2, 3);
    logical.addCnot(1, 2);
    const auto routed =
        routeCircuit(logical, Topology::linear(4), {});
    EXPECT_EQ(routed.stats.swaps, 0u);
    EXPECT_EQ(routed.physical.size(), logical.size());
    EXPECT_EQ(routed.finalLayout, routed.initialLayout);
}

TEST(Router, InvalidInputsAreFatal)
{
    circuit::Circuit wide(5);
    wide.addCnot(0, 4);
    EXPECT_THROW(routeCircuit(wide, Topology::linear(3), {}),
                 PanicError);

    const auto disconnected =
        Topology::fromEdges(4, {{0, 1}, {2, 3}});
    circuit::Circuit c(4);
    c.addCnot(0, 3);
    EXPECT_THROW(routeCircuit(c, disconnected, {}), PanicError);
}

} // namespace
} // namespace fermihedral::hw
