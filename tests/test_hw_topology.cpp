/**
 * @file
 * hw/topology.h unit and property tests: the named builders produce
 * the documented shapes, the BFS distance matrix behaves like a
 * metric on random graphs, the edge-list document round-trips
 * bit-exactly, and corrupted documents / typo'd specs are rejected
 * with a diagnostic instead of crashing.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "hw/topology.h"

namespace fermihedral::hw {
namespace {

TEST(TopologyBuilders, LinearPathShape)
{
    const auto t = Topology::linear(5);
    EXPECT_EQ(t.numQubits(), 5u);
    EXPECT_EQ(t.edges().size(), 4u);
    EXPECT_TRUE(t.connected());
    EXPECT_EQ(t.distance(0, 4), 4u);
    EXPECT_EQ(t.diameter(), 4u);
    EXPECT_EQ(t.spec(), "linear:5");
    for (std::uint32_t i = 0; i + 1 < 5; ++i)
        EXPECT_TRUE(t.hasEdge(i, i + 1));
    EXPECT_FALSE(t.hasEdge(0, 2));
}

TEST(TopologyBuilders, GridShape)
{
    // 2x4: width 2, height 4, qubit index = y * width + x.
    const auto t = Topology::grid(2, 4);
    EXPECT_EQ(t.numQubits(), 8u);
    // (width-1)*height horizontal + width*(height-1) vertical.
    EXPECT_EQ(t.edges().size(), 4u + 6u);
    EXPECT_TRUE(t.connected());
    // Opposite corners (0,0) and (1,3): Manhattan distance 4.
    EXPECT_EQ(t.distance(0, 7), 4u);
    EXPECT_EQ(t.diameter(), 4u);
    EXPECT_TRUE(t.hasEdge(0, 1));  // (0,0)-(1,0)
    EXPECT_TRUE(t.hasEdge(0, 2));  // (0,0)-(0,1)
    EXPECT_FALSE(t.hasEdge(1, 2)); // diagonal
}

TEST(TopologyBuilders, AllToAllIsDiameterOne)
{
    const auto t = Topology::allToAll(5);
    EXPECT_EQ(t.numQubits(), 5u);
    EXPECT_EQ(t.edges().size(), 10u);
    EXPECT_EQ(t.diameter(), 1u);
    for (std::uint32_t a = 0; a < 5; ++a)
        for (std::uint32_t b = 0; b < 5; ++b)
            EXPECT_EQ(t.distance(a, b), a == b ? 0u : 1u);
}

TEST(TopologyBuilders, HeavyHexOneCellIsTheTwelveCycle)
{
    const auto t = Topology::heavyHex(1);
    EXPECT_EQ(t.numQubits(), 12u);
    EXPECT_EQ(t.edges().size(), 12u);
    EXPECT_TRUE(t.connected());
    // One subdivided hexagon is a plain 12-cycle: every qubit has
    // degree 2 and the diameter is half the cycle length.
    for (std::uint32_t q = 0; q < 12; ++q)
        EXPECT_EQ(t.neighbors(q).size(), 2u) << "qubit " << q;
    EXPECT_EQ(t.diameter(), 6u);
}

TEST(TopologyBuilders, HeavyHexGrowsNineQubitsPerCell)
{
    const auto t2 = Topology::heavyHex(2);
    EXPECT_EQ(t2.numQubits(), 21u);
    // Two 8-edge rails plus 2 edges per subdivided vertical.
    EXPECT_EQ(t2.edges().size(), 16u + 6u);
    EXPECT_TRUE(t2.connected());
    // Bridges subdivide the verticals: top(0)=0 to bottom(0)=9 is
    // 2 hops through bridge qubit 18.
    EXPECT_EQ(t2.distance(0, 9), 2u);
    EXPECT_EQ(Topology::heavyHex(3).numQubits(), 30u);
}

/** Random connected topology: spanning tree plus extra edges. */
Topology
randomConnected(std::size_t n, Rng &rng)
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    for (std::uint32_t q = 1; q < n; ++q)
        edges.push_back(
            {static_cast<std::uint32_t>(rng.nextBelow(q)), q});
    const std::size_t extra = rng.nextBelow(n);
    for (std::size_t i = 0; i < extra; ++i) {
        const auto a =
            static_cast<std::uint32_t>(rng.nextBelow(n));
        const auto b =
            static_cast<std::uint32_t>(rng.nextBelow(n));
        if (a != b)
            edges.push_back({std::min(a, b), std::max(a, b)});
    }
    return Topology::fromEdges(n, std::move(edges));
}

TEST(TopologyDistance, BehavesLikeAMetricOnRandomGraphs)
{
    Rng rng(20260807);
    for (int iteration = 0; iteration < 40; ++iteration) {
        const std::size_t n = 2 + rng.nextBelow(10);
        const auto t = randomConnected(n, rng);
        ASSERT_TRUE(t.connected());
        for (std::uint32_t a = 0; a < n; ++a) {
            EXPECT_EQ(t.distance(a, a), 0u);
            for (std::uint32_t b = 0; b < n; ++b) {
                const auto d = t.distance(a, b);
                EXPECT_EQ(d, t.distance(b, a));
                EXPECT_EQ(d == 1, t.hasEdge(a, b));
                EXPECT_LE(d, t.diameter());
                for (std::uint32_t c = 0; c < n; ++c)
                    EXPECT_LE(d, t.distance(a, c) +
                                     t.distance(c, b));
            }
        }
    }
}

TEST(TopologyDistance, DisconnectedPairsReportUnreachable)
{
    // Two components: 0-1 and 2-3.
    const auto t = Topology::fromEdges(4, {{0, 1}, {2, 3}});
    EXPECT_FALSE(t.connected());
    EXPECT_EQ(t.distance(0, 2), Topology::kUnreachable);
    EXPECT_EQ(t.distance(1, 3), Topology::kUnreachable);
    EXPECT_EQ(t.distance(0, 1), 1u);
}

TEST(TopologySerialize, RoundTripsBitExactly)
{
    Rng rng(42);
    for (int iteration = 0; iteration < 30; ++iteration) {
        const std::size_t n = 1 + rng.nextBelow(12);
        const auto t = n == 1 ? Topology::linear(1)
                              : randomConnected(n, rng);
        const std::string text = t.serialize();
        const auto parsed = Topology::tryParse(text);
        ASSERT_TRUE(parsed.has_value()) << text;
        EXPECT_EQ(*parsed, t);
        // Canonical: a second trip is byte-identical.
        EXPECT_EQ(parsed->serialize(), text);
    }
}

TEST(TopologySerialize, CorruptedDocumentsAreRejected)
{
    const std::string good = Topology::heavyHex(1).serialize();
    ASSERT_TRUE(Topology::tryParse(good).has_value());

    const std::string cases[] = {
        "",
        "garbage\n",
        "fermihedral-topology v2\nqubits 2\nedges 1\n0 1\n",
        good.substr(0, good.size() / 2),      // truncated
        good + "7 8\n",                       // trailing bytes
        "fermihedral-topology v1\nqubits 2\nedges 1\n0 2\n",
        "fermihedral-topology v1\nqubits 2\nedges 1\n1 1\n",
        "fermihedral-topology v1\nqubits 3\nedges 2\n"
        "0 1\n0 1\n",                         // duplicate edge
        "fermihedral-topology v1\nqubits 0\nedges 0\n",
        "fermihedral-topology v1\nedges 1\nqubits 2\n0 1\n",
    };
    for (const auto &text : cases)
        EXPECT_FALSE(Topology::tryParse(text).has_value()) << text;
    EXPECT_THROW(Topology::parse("nonsense"), FatalError);
}

TEST(TopologySpec, EverySpecRoundTrips)
{
    for (const char *spec :
         {"linear:8", "grid:2x4", "heavy-hex:2", "all-to-all:6",
          "edges:4:0-1,1-2,2-3,0-3"}) {
        const auto t = Topology::parseSpec(spec);
        const auto again = Topology::tryParseSpec(t.spec());
        ASSERT_TRUE(again.has_value()) << spec;
        EXPECT_EQ(*again, t) << spec;
        // The structural form names the same graph too.
        const auto structural =
            Topology::tryParseSpec(t.edgesSpec());
        ASSERT_TRUE(structural.has_value()) << spec;
        EXPECT_EQ(*structural, t) << spec;
    }
}

TEST(TopologySpec, MalformedSpecsReturnDiagnostics)
{
    for (const char *spec :
         {"", "grid", "grid:2", "grid:0x4", "grid:2x", "linear:",
          "linear:0", "heavy-hex:0", "edges:3", "edges:3:0-3",
          "edges:3:0-0", "edges:3:01", "linear:99999999999"}) {
        std::string error;
        EXPECT_FALSE(
            Topology::tryParseSpec(spec, &error).has_value())
            << spec;
        EXPECT_FALSE(error.empty()) << spec;
    }
}

TEST(TopologySpec, UnknownFamilySuggestsTheNearestName)
{
    std::string error;
    EXPECT_FALSE(
        Topology::tryParseSpec("gird:2x4", &error).has_value());
    EXPECT_NE(error.find("did you mean 'grid'"), std::string::npos)
        << error;
    EXPECT_THROW(Topology::parseSpec("gird:2x4"), FatalError);
}

} // namespace
} // namespace fermihedral::hw
